"""The Figure 9 experiment: bulk bitwise throughput across five systems.

For each of the seven operations, each system's throughput on a large
(32 MB in the paper) vector is computed; the summary ratios the paper
headlines (Ambit = 44.9x Skylake, 32x GTX 745, 2.4x HMC 2.0; Ambit-3D =
9.7x HMC 2.0) are derived the same way: mean throughput across the
seven operations.

``measure_ambit_functional`` cross-checks the analytical Ambit numbers
by actually executing operations on the functional device and timing
them with the controller's clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp
from repro.dram.chip import RowLocation
from repro.engine.batch import BatchReport
from repro.perf.systems import (
    FIGURE9_OPS,
    AmbitSystem,
    BandwidthBoundSystem,
    ambit,
    ambit_3d,
    gtx745,
    hmc20,
    skylake,
)

#: The headline mean speedups of Section 7, for comparison printouts.
PAPER_MEAN_SPEEDUPS = {
    ("Ambit", "Skylake"): 44.9,
    ("Ambit", "GTX745"): 32.0,
    ("Ambit", "HMC 2.0"): 2.4,
    ("Ambit-3D", "HMC 2.0"): 9.7,
    ("HMC 2.0", "Skylake"): 18.5,
    ("HMC 2.0", "GTX745"): 13.1,
}


@dataclass
class Figure9Result:
    """Throughput of every system on every operation (GOps/s)."""

    systems: List[str]
    throughput: Dict[str, Dict[BulkOp, float]]

    def mean(self, system: str) -> float:
        """Mean throughput across the seven operations."""
        values = self.throughput[system]
        return float(np.mean([values[op] for op in FIGURE9_OPS]))

    def speedup(self, system: str, baseline: str) -> float:
        """Ratio of mean throughputs."""
        return self.mean(system) / self.mean(baseline)


def figure9_experiment(
    systems: Optional[Sequence[object]] = None,
) -> Figure9Result:
    """Compute the Figure 9 matrix with the default five systems."""
    if systems is None:
        systems = [skylake(), gtx745(), hmc20(), ambit(), ambit_3d()]
    throughput: Dict[str, Dict[BulkOp, float]] = {}
    names: List[str] = []
    for system in systems:
        names.append(system.name)
        throughput[system.name] = {
            op: system.throughput_gops(op) for op in FIGURE9_OPS
        }
    return Figure9Result(systems=names, throughput=throughput)


def measure_ambit_functional(
    device: AmbitDevice, op: BulkOp, rows_per_bank: int = 4
) -> float:
    """Measured Ambit throughput from the functional device (GOps/s).

    Executes ``rows_per_bank`` row-operations on every bank (subarray 0)
    and divides output bytes by the bank-parallel makespan.  This is the
    cross-check that the analytical model and the command-level model
    agree.
    """
    device.reset_stats()
    rng = np.random.default_rng(1)
    words = device.geometry.subarray.words_per_row
    for bank in range(device.geometry.banks):
        for i in range(rows_per_bank):
            loc = lambda a: RowLocation(bank=bank, subarray=0, address=a)
            device.write_row(
                loc(0), rng.integers(0, 2**63, size=words, dtype=np.uint64)
            )
            device.write_row(
                loc(1), rng.integers(0, 2**63, size=words, dtype=np.uint64)
            )
            device.bbop_row(
                op, loc(2), loc(0), None if op.arity == 1 else loc(1)
            )
    total_bytes = device.geometry.banks * rows_per_bank * device.row_bytes
    return total_bytes / device.elapsed_ns


def throughput_rows(
    device: AmbitDevice, op: BulkOp, rows_per_bank: int, seed: int = 1
) -> Tuple[List[RowLocation], List[RowLocation], Optional[List[RowLocation]]]:
    """Operand row lists for a Figure-9-style throughput run.

    ``rows_per_bank`` destination rows per bank (subarray 0), sources at
    fixed addresses 0/1, distinct destinations from address 2 upward --
    the same work :func:`measure_ambit_functional` performs, expressed
    as row batches for the engine.  Source rows are initialised with
    seeded random data.
    """
    geo = device.geometry
    if rows_per_bank > geo.subarray.data_rows - 2:
        raise ValueError(
            f"rows_per_bank={rows_per_bank} exceeds the "
            f"{geo.subarray.data_rows - 2} distinct destination rows of "
            f"a subarray"
        )
    rng = np.random.default_rng(seed)
    words = geo.subarray.words_per_row
    dst: List[RowLocation] = []
    src1: List[RowLocation] = []
    src2: List[RowLocation] = []
    for bank in range(geo.banks):
        device.write_row(
            RowLocation(bank, 0, 0),
            rng.integers(0, 2**63, size=words, dtype=np.uint64),
        )
        device.write_row(
            RowLocation(bank, 0, 1),
            rng.integers(0, 2**63, size=words, dtype=np.uint64),
        )
        for i in range(rows_per_bank):
            dst.append(RowLocation(bank, 0, 2 + i))
            src1.append(RowLocation(bank, 0, 0))
            src2.append(RowLocation(bank, 0, 1))
    return dst, src1, src2 if op.arity >= 2 else None


def measure_ambit_batched(
    device: AmbitDevice, op: BulkOp, rows_per_bank: int = 4
) -> Tuple[float, BatchReport]:
    """Measured Ambit throughput through the batch engine (GOps/s).

    Executes the same per-bank row-operations as
    :func:`measure_ambit_functional` but as one engine batch: plans are
    cached, the functional effect is fused per (bank, subarray) group,
    and groups issue round-robin across banks.  Accounted time is
    identical to the per-row path; wall-clock time is what improves.
    Returns ``(throughput_gops, batch_report)``.
    """
    device.reset_stats()
    dst, src1, src2 = throughput_rows(device, op, rows_per_bank)
    report = device.engine.run_rows(op, dst, src1, src2)
    total_bytes = device.geometry.banks * rows_per_bank * device.row_bytes
    return total_bytes / device.elapsed_ns, report


def measure_ambit_sharded(
    device: "ShardedDevice", op: BulkOp, rows_per_bank: int = 4
) -> Tuple[float, BatchReport]:
    """Measured Ambit throughput through a sharded device (GOps/s).

    The multi-process analogue of :func:`measure_ambit_batched`: the
    same operand rows, executed via
    :meth:`repro.parallel.device.ShardedDevice.run_rows` so banks are
    split across worker processes.  The *accounted* throughput is
    bit-identical to the batched path (the sharded device merges
    deterministically); only host wall-clock changes.  Returns
    ``(throughput_gops, batch_report)``; ``report.shards`` tells how
    many workers participated.
    """
    device.reset_stats()
    dst, src1, src2 = throughput_rows(device, op, rows_per_bank)
    report = device.run_rows(op, dst, src1, src2)
    total_bytes = device.geometry.banks * rows_per_bank * device.row_bytes
    return total_bytes / device.elapsed_ns, report


_OP_LABELS = {
    BulkOp.NOT: "not",
    BulkOp.AND: "and/or",
    BulkOp.OR: "and/or",
    BulkOp.NAND: "nand/nor",
    BulkOp.NOR: "nand/nor",
    BulkOp.XOR: "xor/xnor",
    BulkOp.XNOR: "xor/xnor",
}


def format_figure9(result: Figure9Result) -> str:
    """Render the Figure 9 matrix and the headline ratios."""
    ops = [BulkOp.NOT, BulkOp.AND, BulkOp.NAND, BulkOp.XOR]
    lines = ["Figure 9: Throughput of bulk bitwise operations (GOps/s)"]
    header = f"{'system':>10}" + "".join(
        f"{_OP_LABELS[op]:>10}" for op in ops
    ) + f"{'mean':>10}"
    lines.append(header)
    for name in result.systems:
        row = f"{name:>10}"
        for op in ops:
            row += f"{result.throughput[name][op]:>10.1f}"
        row += f"{result.mean(name):>10.1f}"
        lines.append(row)
    lines.append("")
    lines.append(f"{'speedup':>22} {'measured':>10} {'paper':>8}")
    for (system, baseline), paper in PAPER_MEAN_SPEEDUPS.items():
        if system in result.throughput and baseline in result.throughput:
            measured = result.speedup(system, baseline)
            lines.append(
                f"{system + ' vs ' + baseline:>22} {measured:>9.1f}X {paper:>7.1f}X"
            )
    return "\n".join(lines)
