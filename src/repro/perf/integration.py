"""System-integration alternatives: memory bus vs I/O device (S 5.4).

The paper argues for plugging Ambit directly onto the memory bus rather
than behind an I/O (e.g. PCIe) device interface, for three reasons:
applications trigger operations with CPU instructions instead of a
device API; no data copies between host and accelerator memory; and
existing cache-coherence machinery keeps Ambit memory coherent.

This module prices both integration styles so the claim is measurable:

* **memory-bus Ambit** -- per operation: instruction issue + controller
  setup (tens of ns) and the hardware coherence actions; operands live
  where they already are.
* **device Ambit** -- per operation: a driver invocation (syscall +
  doorbell, ~microseconds), plus DMA of any non-resident operand into
  device memory and of any CPU-consumed result back over the link.

The crossover -- device integration amortises only when data stays
resident and operations are batched -- is what
``bench_ablation_integration`` sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class MemoryBusIntegration:
    """Ambit on the system memory bus (the paper's design)."""

    #: bbop instruction + controller tracking overhead per operation.
    issue_ns: float = 20.0
    #: Coherence actions per operation (DBI lookup; dirty writebacks are
    #: workload-dependent and charged by the system model, so the fixed
    #: part here is the clean-source case).
    coherence_ns: float = 10.0

    def overhead_ns(self, operand_bytes: int, result_bytes: int) -> float:
        """Integration overhead of one bulk operation (data stays put)."""
        return self.issue_ns + self.coherence_ns


@dataclass(frozen=True)
class DeviceIntegration:
    """Ambit behind an I/O device interface (PCIe-attached)."""

    #: Driver call + doorbell + completion interrupt, per operation
    #: (typical accelerator round trip).
    invoke_ns: float = 2_000.0
    #: Host<->device link bandwidth (PCIe 3.0 x8 ~ 7.9 GB/s effective).
    link_gbps: float = 7.9
    #: Fraction of operand bytes that must be DMA-ed in (0 when data is
    #: already resident in device memory).
    def __post_init__(self) -> None:
        if self.invoke_ns < 0 or self.link_gbps <= 0:
            raise ConfigError("invalid device-integration parameters")

    def overhead_ns(
        self,
        operand_bytes: int,
        result_bytes: int,
        operands_resident: bool = False,
        result_consumed_by_host: bool = True,
    ) -> float:
        """Integration overhead of one device-side bulk operation."""
        total = self.invoke_ns
        if not operands_resident:
            total += operand_bytes / self.link_gbps
        if result_consumed_by_host:
            total += result_bytes / self.link_gbps
        return total


def integration_comparison(
    operand_bytes: int,
    result_bytes: int,
    operations: int,
    op_latency_ns: float,
    operands_resident: bool = False,
    result_consumed_by_host: bool = False,
    bus: MemoryBusIntegration = MemoryBusIntegration(),
    device: DeviceIntegration = DeviceIntegration(),
) -> dict:
    """Total time of a batch of operations under both integrations.

    ``operand_bytes``/``result_bytes`` are per operation;
    ``op_latency_ns`` is the in-DRAM execution time per operation (same
    for both styles -- the accelerator itself is identical).
    """
    if operations <= 0:
        raise ConfigError("operations must be positive")
    bus_total = operations * (
        op_latency_ns + bus.overhead_ns(operand_bytes, result_bytes)
    )
    device_total = operations * (
        op_latency_ns
        + device.overhead_ns(
            operand_bytes,
            result_bytes,
            operands_resident=operands_resident,
            result_consumed_by_host=result_consumed_by_host,
        )
    )
    return {
        "memory_bus_ns": bus_total,
        "device_ns": device_total,
        "device_penalty": device_total / bus_total,
    }
