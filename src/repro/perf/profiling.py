"""Canned profiling workloads for ``repro profile``.

Each workload executes real microprograms on a real (small) device with
a tracer attached, verifies every result bit-exactly against numpy, and
returns the :class:`~repro.obs.profiler.ProfileReport` -- so the
profile's numbers always describe a *correct* run.  The CLI wraps this
with optional Chrome-trace / JSON-lines sinks.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.core.device import AmbitDevice
from repro.core.driver import AmbitDriver
from repro.core.microprograms import BulkOp
from repro.dram.geometry import DramGeometry, SubarrayGeometry
from repro.errors import ConfigError, SimulationError
from repro.obs.profiler import ProfileReport, profile
from repro.obs.sinks import TraceSink
from repro.obs.tracer import Tracer

#: The seven bulk bitwise operations of the paper's evaluation.
LOGIC_OPS: Tuple[BulkOp, ...] = (
    BulkOp.AND,
    BulkOp.OR,
    BulkOp.NOT,
    BulkOp.NAND,
    BulkOp.NOR,
    BulkOp.XOR,
    BulkOp.XNOR,
)

#: Workload name -> the bulk ops it exercises.
WORKLOADS: Dict[str, Tuple[BulkOp, ...]] = {
    **{op.value: (op,) for op in LOGIC_OPS},
    "maj": (BulkOp.MAJ,),
    "copy": (BulkOp.COPY,),
    "all": LOGIC_OPS,
}

_NUMPY_REFERENCE = {
    BulkOp.AND: lambda a, b, c: a & b,
    BulkOp.OR: lambda a, b, c: a | b,
    BulkOp.NOT: lambda a, b, c: ~a,
    BulkOp.NAND: lambda a, b, c: ~(a & b),
    BulkOp.NOR: lambda a, b, c: ~(a | b),
    BulkOp.XOR: lambda a, b, c: a ^ b,
    BulkOp.XNOR: lambda a, b, c: ~(a ^ b),
    BulkOp.MAJ: lambda a, b, c: (a & b) | (a & c) | (b & c),
    BulkOp.COPY: lambda a, b, c: a.copy(),
}


def profile_geometry(row_bytes: int = 512) -> DramGeometry:
    """A small but multi-bank geometry for profiling runs."""
    return DramGeometry(
        banks=2,
        subarrays_per_bank=2,
        subarray=SubarrayGeometry(rows=64, row_bytes=row_bytes),
    )


def run_profile_workload(
    workload: str,
    repeats: int = 4,
    geometry: Optional[DramGeometry] = None,
    sinks: Iterable[TraceSink] = (),
    seed: int = 7,
) -> ProfileReport:
    """Execute and profile one canned workload.

    Parameters
    ----------
    workload:
        A key of :data:`WORKLOADS` (``and``/``or``/.../``all``).
    repeats:
        Row-sized instances of each op to execute (spread across banks
        round-robin, so bank-level parallelism shows in the trace).
    geometry:
        Device shape; defaults to :func:`profile_geometry`.
    sinks:
        Extra trace sinks (Chrome trace, JSON lines, ring buffer) fed by
        the run's tracer.  Callers own closing file-backed sinks.
    """
    try:
        ops = WORKLOADS[workload]
    except KeyError:
        raise ConfigError(
            f"unknown profile workload {workload!r}; "
            f"available: {', '.join(sorted(WORKLOADS))}"
        ) from None
    if repeats <= 0:
        raise ConfigError(f"repeats must be positive; got {repeats}")

    device = AmbitDevice(geometry=geometry or profile_geometry())
    # Rows are placed through the subarray-aware driver, so the report
    # also reflects real allocator-pool pressure (high-water mark).
    driver = AmbitDriver(device)
    tracer = device.attach_tracer(
        Tracer(sinks=sinks, timing=device.timing, row_bytes=device.row_bytes)
    )
    geo = device.geometry
    words = geo.subarray.words_per_row
    row_bits = device.row_bits
    rng = np.random.default_rng(seed)
    with profile(device, tracer=tracer) as report:
        for op in ops:
            for i in range(repeats):
                # Four co-located row-sized operands per instance; the
                # driver round-robins instances across (bank, subarray)
                # stripes, so bank-level parallelism shows in the trace.
                handles = [driver.allocate(row_bits)]
                for _ in range(3):
                    handles.append(
                        driver.allocate(row_bits, like=handles[0])
                    )
                ra, rb, rc, rd = (h.rows[0] for h in handles)
                a = rng.integers(0, 2**63, size=words, dtype=np.uint64)
                b = rng.integers(0, 2**63, size=words, dtype=np.uint64)
                c = rng.integers(0, 2**63, size=words, dtype=np.uint64)
                device.write_row(ra, a)
                device.write_row(rb, b)
                device.write_row(rc, c)
                device.bbop_row(
                    op,
                    rd,
                    ra,
                    rb if op.arity >= 2 else None,
                    rc if op.arity == 3 else None,
                )
                expected = _NUMPY_REFERENCE[op](a, b, c)
                if not np.array_equal(device.read_row(rd), expected):
                    raise SimulationError(
                        f"profile workload {op.value} produced a wrong "
                        f"result (instance {i})"
                    )
                for handle in handles:
                    driver.free(handle)
    device.detach_tracer()
    report.device = device
    return report
