"""Compiled-versus-native benchmark: the compiler must not tax silicon.

Two claims are priced here, both model-deterministic (they depend on
the timing model and the seed, never on the host):

* **Plan parity.**  For AND and XOR -- the two operations with both a
  hand-written native microprogram and an obvious compiled spelling --
  the synthesized command stream is executed next to the native one and
  the modelled latencies are compared.  The gate is a ratio ceiling
  (``repro.obs.regress.COMPILE_MAX_RATIO``); the measured outcome is in
  fact *trace identity*: the compiler reaches the exact byte stream of
  the hand-written program, so the ratio is 1.0 by construction.
* **Kernel correctness.**  The bit-serial ``add`` and ``popcount``
  kernels run on a real device against integer numpy oracles; the
  payload records bit-exactness flags plus their modelled device time.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

#: The native/compiled pairs priced for parity.
PARITY_CASES = (
    ("and", "a & b"),
    ("xor", "a ^ b"),
)


def _fresh_device(row_bytes: int):
    from repro.core.device import AmbitDevice
    from repro.dram.geometry import small_test_geometry

    return AmbitDevice(
        geometry=small_test_geometry(
            rows=32, row_bytes=row_bytes, banks=2, subarrays_per_bank=2
        )
    )


def _seed_rows(device, rng, locations) -> None:
    words = device.geometry.subarray.words_per_row
    for loc in locations:
        device.write_row(
            loc, rng.integers(0, 1 << 63, words, dtype=np.uint64)
        )


def _parity_case(op_name: str, expr_text: str, row_bytes: int, seed: int):
    """Execute one op natively and compiled; compare model time + trace."""
    from repro.compile import compile_expr, parse_expr
    from repro.core.microprograms import BulkOp
    from repro.dram.chip import RowLocation
    from repro.obs import CommandLog

    dst = RowLocation(0, 0, 3)
    src1 = RowLocation(0, 0, 0)
    src2 = RowLocation(0, 0, 1)

    native = _fresh_device(row_bytes)
    rng = np.random.default_rng(seed)
    _seed_rows(native, rng, (src1, src2))
    log = CommandLog(native)
    native.bbop_row(BulkOp(op_name), dst, src1, src2)
    native_text = log.text()
    log.detach()
    native_ns = native.elapsed_ns
    native_result = native.read_row(dst).copy()

    cop = compile_expr(parse_expr(expr_text), name=op_name)
    compiled = _fresh_device(row_bytes)
    rng = np.random.default_rng(seed)
    _seed_rows(compiled, rng, (src1, src2))
    temps = [RowLocation(0, 0, 4 + t) for t in range(cop.num_temps)]
    log = CommandLog(compiled)
    compiled.bbop_compiled_row(cop, dst, [src1, src2], temps)
    compiled_text = log.text()
    log.detach()
    compiled_ns = compiled.elapsed_ns
    compiled_result = compiled.read_row(dst).copy()

    return {
        "native_ns": native_ns,
        "compiled_ns": compiled_ns,
        "ratio": compiled_ns / native_ns,
        "trace_identical": native_text == compiled_text,
        "bit_exact": bool(np.array_equal(native_result, compiled_result)),
        "compiled_temps": cop.num_temps,
    }


def _kernel_section(row_bytes: int, seed: int) -> Dict[str, Any]:
    """Run ``add`` and ``popcount`` on-device against numpy oracles."""
    from repro.apps.bitvector import AmbitBitSystem
    from repro.compile.kernels import BitColumn, add, popcount
    from repro.dram.geometry import small_test_geometry

    system = AmbitBitSystem(
        geometry=small_test_geometry(rows=64, row_bytes=row_bytes)
    )
    device = system.device
    rng = np.random.default_rng(seed)
    n = device.row_bits
    bits = 6

    lhs = rng.integers(0, 1 << bits, n, dtype=np.uint64)
    rhs = rng.integers(0, 1 << bits, n, dtype=np.uint64)
    start_ns = device.elapsed_ns
    a = BitColumn.from_ints(system, lhs, bits)
    b = BitColumn.from_ints(system, rhs, bits, like=a.planes[0])
    total = add(a, b)
    add_ns = device.elapsed_ns - start_ns
    add_ok = bool(
        np.array_equal(total.to_ints(), (lhs + rhs) % (1 << bits))
    )
    for column in (total, a, b):
        column.free()

    planes = [rng.integers(0, 2, n).astype(bool) for _ in range(7)]
    start_ns = device.elapsed_ns
    vectors = [system.from_bits(p) for p in planes]
    counts = popcount(vectors)
    popcount_ns = device.elapsed_ns - start_ns
    popcount_ok = bool(
        np.array_equal(
            counts.to_ints(), np.sum(planes, axis=0).astype(np.uint64)
        )
    )
    counts.free()
    for vector in vectors:
        vector.free()

    return {
        "add_bit_exact": add_ok,
        "add_modelled_ns": add_ns,
        "add_lanes": int(n),
        "add_width_bits": bits,
        "popcount_bit_exact": popcount_ok,
        "popcount_modelled_ns": popcount_ns,
        "popcount_planes": len(planes),
    }


def run_compile_bench(row_bytes: int = 64, seed: int = 7) -> Dict[str, Any]:
    """The full compile-bench payload (``BENCH_compile.json``)."""
    parity = {
        op_name: _parity_case(op_name, expr_text, row_bytes, seed)
        for op_name, expr_text in PARITY_CASES
    }
    kernels = _kernel_section(row_bytes, seed)
    return {
        "config": {"row_bytes": row_bytes, "seed": seed},
        "parity": parity,
        "kernels": kernels,
        "bit_exact": (
            all(case["bit_exact"] for case in parity.values())
            and kernels["add_bit_exact"]
            and kernels["popcount_bit_exact"]
        ),
    }


def format_compile_bench(payload: Dict[str, Any]) -> str:
    """Render the payload as a small human-readable table."""
    lines = ["compiled vs native microprograms (modelled device time)"]
    lines.append(
        f"  {'op':<6} {'native ns':>10} {'compiled ns':>12} "
        f"{'ratio':>7} {'trace':>10}"
    )
    for op_name, case in payload["parity"].items():
        trace = "identical" if case["trace_identical"] else "DIFFERS"
        lines.append(
            f"  {op_name:<6} {case['native_ns']:>10.1f} "
            f"{case['compiled_ns']:>12.1f} {case['ratio']:>7.3f} "
            f"{trace:>10}"
        )
    kernels = payload["kernels"]
    lines.append("bit-serial kernels vs numpy oracles")
    lines.append(
        f"  add      {kernels['add_lanes']} lanes x "
        f"{kernels['add_width_bits']} bits: "
        f"{'bit-exact' if kernels['add_bit_exact'] else 'MISMATCH'} "
        f"({kernels['add_modelled_ns']:.0f} ns modelled)"
    )
    lines.append(
        f"  popcount {kernels['popcount_planes']} planes: "
        f"{'bit-exact' if kernels['popcount_bit_exact'] else 'MISMATCH'} "
        f"({kernels['popcount_modelled_ns']:.0f} ns modelled)"
    )
    return "\n".join(lines)
