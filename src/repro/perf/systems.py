"""Throughput models of the five systems compared in Figure 9.

Section 7's central claim is that for bulk bitwise operations every
processor-side system -- Skylake CPU, GTX 745 GPU, and even the logic
layer of HMC 2.0 -- is limited by the memory bandwidth available to it,
while Ambit is limited only by DRAM-internal row-buffer width and
bank-level parallelism.  The models here are exactly that dichotomy:

* :class:`BandwidthBoundSystem` -- throughput = effective bandwidth
  divided by the traffic each output byte requires (2 bytes moved for
  ``not``/``copy``: read + write; 3 for two-operand ops: two reads +
  write).
* :class:`AmbitSystem` -- throughput = (row bytes / op latency) x
  banks, with op latency from the AAP/AP microprogram timing.

Throughput unit: **GOps/s, one op = one byte of output** -- i.e. GB/s
of produced result, matching the scale of the paper's Figure 9 axis.

Calibration: peak bandwidths come from the hardware specs quoted in
Section 7; the streaming efficiencies are fitted so the *cross-baseline*
ratios match the paper (HMC = 18.5x Skylake, 13.1x GTX 745).  All
numbers are printed next to the paper's in the benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.addressing import AmbitAddressMap
from repro.core.microprograms import BulkOp, compile_op
from repro.dram.geometry import DramGeometry, SubarrayGeometry
from repro.dram.timing import TimingParameters, ddr3_1600, hmc_like
from repro.errors import ConfigError

#: Bytes moved over the processor's memory interface per byte of output.
TRAFFIC_PER_OUTPUT_BYTE: Dict[BulkOp, int] = {
    BulkOp.NOT: 2,
    BulkOp.COPY: 2,
    BulkOp.AND: 3,
    BulkOp.OR: 3,
    BulkOp.NAND: 3,
    BulkOp.NOR: 3,
    BulkOp.XOR: 3,
    BulkOp.XNOR: 3,
}

#: The seven operations averaged in Figure 9.
FIGURE9_OPS: Tuple[BulkOp, ...] = (
    BulkOp.NOT,
    BulkOp.AND,
    BulkOp.OR,
    BulkOp.NAND,
    BulkOp.NOR,
    BulkOp.XOR,
    BulkOp.XNOR,
)


@dataclass(frozen=True)
class BandwidthBoundSystem:
    """A processor whose bulk bitwise throughput is bandwidth-limited.

    Parameters
    ----------
    name: Display name.
    peak_gbps: Peak memory bandwidth of the system.
    efficiency: Achieved fraction of peak on streaming bitwise kernels.
    """

    name: str
    peak_gbps: float
    efficiency: float

    def __post_init__(self) -> None:
        if self.peak_gbps <= 0 or not 0 < self.efficiency <= 1.0:
            raise ConfigError(f"{self.name}: invalid bandwidth model")

    @property
    def effective_gbps(self) -> float:
        return self.peak_gbps * self.efficiency

    def throughput_gops(self, op: BulkOp) -> float:
        """Output bytes per nanosecond = GOps/s (1 op = 1 output byte)."""
        return self.effective_gbps / TRAFFIC_PER_OUTPUT_BYTE[op]


@dataclass(frozen=True)
class AmbitSystem:
    """An Ambit-enabled DRAM device's bulk bitwise throughput.

    One bulk operation produces ``row_bytes`` of output per subarray per
    microprogram execution; banks run independent command streams.
    ``salp_subarrays > 1`` additionally exploits subarray-level
    parallelism (SALP [59]) -- Section 1: Ambit's performance scales
    with "the memory-level parallelism available inside DRAM (i.e.,
    number of banks or subarrays)".
    """

    name: str
    timing: TimingParameters
    banks: int
    row_bytes: int
    split_decoder: bool = True
    salp_subarrays: int = 1

    def __post_init__(self) -> None:
        if self.banks <= 0 or self.row_bytes <= 0 or self.salp_subarrays <= 0:
            raise ConfigError(f"{self.name}: invalid Ambit geometry")

    def op_latency_ns(self, op: BulkOp) -> float:
        """Latency of one microprogram on one subarray."""
        amap = AmbitAddressMap(SubarrayGeometry(rows=1024, row_bytes=self.row_bytes))
        program = compile_op(
            amap,
            op,
            3,
            0,
            None if op.arity == 1 else 1,
            2 if op.arity == 3 else None,
        )
        return sum(
            p.latency_ns(self.timing, amap, self.split_decoder)
            for p in program.primitives
        )

    def throughput_gops(self, op: BulkOp) -> float:
        """Output bytes per nanosecond across all parallel units."""
        per_unit = self.row_bytes / self.op_latency_ns(op)  # bytes/ns
        return per_unit * self.banks * self.salp_subarrays


# ----------------------------------------------------------------------
# The five systems of Figure 9.
# ----------------------------------------------------------------------

def skylake() -> BandwidthBoundSystem:
    """4-core Intel Skylake with AVX, 2x 64-bit DDR3-2133 channels.

    Peak = 2 * 8 B * 2133 MT/s = 34.1 GB/s; the fitted 0.51 streaming
    efficiency reflects the measured read-modify-write throughput of the
    paper's microbenchmark (and pins HMC at 18.5x Skylake).
    """
    return BandwidthBoundSystem("Skylake", peak_gbps=34.1, efficiency=0.51)


def gtx745() -> BandwidthBoundSystem:
    """NVIDIA GTX 745: 128-bit DDR3-1800 channel = 28.8 GB/s peak.

    GPUs stream close to peak; 0.85 pins HMC at 13.1x the GPU.
    """
    return BandwidthBoundSystem("GTX745", peak_gbps=28.8, efficiency=0.85)


def hmc20() -> BandwidthBoundSystem:
    """Processing in the logic layer of HMC 2.0: 32 vaults x 10 GB/s."""
    return BandwidthBoundSystem("HMC 2.0", peak_gbps=320.0, efficiency=1.0)


def ambit(banks: int = 8) -> AmbitSystem:
    """Ambit in a regular DDR3-1600 module: 8 banks, 8 KB rows."""
    return AmbitSystem("Ambit", timing=ddr3_1600(), banks=banks, row_bytes=8192)


def ambit_3d() -> AmbitSystem:
    """Ambit integrated into 3D-stacked DRAM (HMC-like).

    A 4 GB HMC 2.0 has 256 banks; per-bank row buffers in 3D-stacked
    DRAM are narrower than DDR modules' (1 KB here).  Core array timing
    matches DDR (same DRAM microarchitecture).
    """
    return AmbitSystem("Ambit-3D", timing=hmc_like(), banks=256, row_bytes=1024)


def ambit_for_geometry(
    geometry: DramGeometry, timing: TimingParameters, split_decoder: bool = True
) -> AmbitSystem:
    """Throughput model matching an arbitrary device configuration."""
    return AmbitSystem(
        "Ambit(custom)",
        timing=timing,
        banks=geometry.banks,
        row_bytes=geometry.row_bytes,
        split_decoder=split_decoder,
    )
