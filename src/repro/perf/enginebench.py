"""Batch-engine speedup benchmark: wall-clock rows/s, slow vs batched.

The per-row path walks ``compile -> primitives -> commands -> subarray``
in pure Python for every row; the batch engine compiles each distinct
plan once, fuses the functional work of a (bank, subarray) group into
one numpy operation, and extends the trace from cached command
schedules.  :func:`run_engine_bench` measures real wall-clock time for
both paths on the Figure-9-style workload across bank counts and
returns the ``BENCH_engine.json`` payload:

* ``slow_rows_per_s`` / ``batched_rows_per_s`` -- best-of-``repeats``
  wall-clock row throughput of each path,
* ``speedup`` -- their ratio,
* ``parallelism`` -- the engine's serialized-vs-interleaved makespan
  ratio (the modelled bank-level overlap, distinct from wall-clock).

Both paths are pinned bit-exact and accounting-exact against each other
inside the run, so a speedup can never come from skipped work.  The
benchmark test under ``benchmarks/`` asserts thresholds and writes the
payload; ``repro bench --check`` re-runs this against the committed
baseline (see :mod:`repro.obs.regress`).
"""

from __future__ import annotations

import math
import time
from typing import Any, Callable, Dict, Tuple

import numpy as np

from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp
from repro.dram.geometry import DramGeometry, SubarrayGeometry
from repro.errors import ConfigError
from repro.perf.throughput import throughput_rows

DEFAULT_BANK_COUNTS: Tuple[int, ...] = (1, 2, 4, 8)


def _geometry(banks: int, row_bytes: int) -> DramGeometry:
    return DramGeometry(
        banks=banks,
        subarrays_per_bank=2,
        subarray=SubarrayGeometry(rows=64, row_bytes=row_bytes),
    )


def _run_slow(device, op, dst, src1, src2) -> None:
    for i in range(len(dst)):
        device.bbop_row(op, dst[i], src1[i], src2[i])


def _best_of(repeats: int, fn: Callable[[], Any]) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_engine_bench(
    rows_per_bank: int = 40,
    row_bytes: int = 1024,
    repeats: int = 3,
    bank_counts: Tuple[int, ...] = DEFAULT_BANK_COUNTS,
    op: BulkOp = BulkOp.AND,
) -> Dict[str, Any]:
    """Time the per-row and batched paths; return the payload."""
    if repeats < 1:
        raise ConfigError(f"repeats must be >= 1; got {repeats}")
    results = []
    for banks in bank_counts:
        slow = AmbitDevice(geometry=_geometry(banks, row_bytes))
        fast = AmbitDevice(geometry=_geometry(banks, row_bytes))
        dst, src1, src2 = throughput_rows(slow, op, rows_per_bank)
        throughput_rows(fast, op, rows_per_bank)  # same seed, same data
        rows = len(dst)

        slow.reset_stats()
        slow_s = _best_of(
            repeats, lambda: _run_slow(slow, op, dst, src1, src2)
        )
        slow.reset_stats()
        _run_slow(slow, op, dst, src1, src2)

        fast.reset_stats()
        batched_s = _best_of(
            repeats, lambda: fast.engine.run_rows(op, dst, src1, src2)
        )
        fast.reset_stats()
        report = fast.engine.run_rows(op, dst, src1, src2)

        # The speedup must be wall-clock only: cells and accounting match.
        if report.fused_rows != rows:
            raise ConfigError(
                f"batch engine fused {report.fused_rows}/{rows} rows at "
                f"{banks} banks"
            )
        for loc in dst:
            if not np.array_equal(fast.read_row(loc), slow.read_row(loc)):
                raise ConfigError(
                    f"batched path diverged from per-row path at {loc}"
                )
        if not (
            math.isclose(fast.elapsed_ns, slow.elapsed_ns)
            and math.isclose(fast.busy_ns, slow.busy_ns)
        ):
            raise ConfigError(
                "batched path's accounted time diverged from per-row path"
            )

        results.append(
            {
                "banks": banks,
                "rows": rows,
                "slow_rows_per_s": rows / slow_s,
                "batched_rows_per_s": rows / batched_s,
                "speedup": slow_s / batched_s,
                "parallelism": report.parallelism.parallelism,
            }
        )
    return {
        "op": op.value,
        "rows_per_bank": rows_per_bank,
        "row_bytes": row_bytes,
        "results": results,
    }


def format_engine_bench(payload: Dict[str, Any]) -> str:
    """Render the payload as the familiar throughput table."""
    lines = [
        f"{'banks':>6} {'rows':>6} {'slow rows/s':>14} "
        f"{'batched rows/s':>14} {'speedup':>9} {'parallelism':>12}"
    ]
    for r in payload["results"]:
        lines.append(
            f"{r['banks']:>6} {r['rows']:>6} {r['slow_rows_per_s']:>14.0f} "
            f"{r['batched_rows_per_s']:>14.0f} {r['speedup']:>8.1f}x "
            f"{r['parallelism']:>11.2f}x"
        )
    return "\n".join(lines)
