"""Raw throughput models and the Figure 9 experiment (Section 7)."""

from repro.perf.systems import (
    FIGURE9_OPS,
    TRAFFIC_PER_OUTPUT_BYTE,
    AmbitSystem,
    BandwidthBoundSystem,
    ambit,
    ambit_3d,
    ambit_for_geometry,
    gtx745,
    hmc20,
    skylake,
)
from repro.perf.integration import (
    DeviceIntegration,
    MemoryBusIntegration,
    integration_comparison,
)
from repro.perf.profiling import (
    LOGIC_OPS,
    WORKLOADS,
    profile_geometry,
    run_profile_workload,
)
from repro.perf.throughput import (
    PAPER_MEAN_SPEEDUPS,
    Figure9Result,
    figure9_experiment,
    format_figure9,
    measure_ambit_functional,
)

__all__ = [
    "AmbitSystem",
    "BandwidthBoundSystem",
    "DeviceIntegration",
    "MemoryBusIntegration",
    "FIGURE9_OPS",
    "Figure9Result",
    "LOGIC_OPS",
    "PAPER_MEAN_SPEEDUPS",
    "WORKLOADS",
    "profile_geometry",
    "run_profile_workload",
    "TRAFFIC_PER_OUTPUT_BYTE",
    "ambit",
    "ambit_3d",
    "ambit_for_geometry",
    "figure9_experiment",
    "format_figure9",
    "gtx745",
    "hmc20",
    "integration_comparison",
    "measure_ambit_functional",
    "skylake",
]
