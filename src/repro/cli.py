"""Command-line interface: regenerate any paper experiment directly.

Usage::

    python -m repro list                 # available experiments
    python -m repro table2 [--trials N]
    python -m repro table3
    python -m repro fig9
    python -m repro fig10 [--users N] [--weeks W]
    python -m repro fig11 [--rows N] [--bits B]
    python -m repro fig12 [--elements E]
    python -m repro demo                 # quick end-to-end smoke demo
    python -m repro profile [WORKLOAD] [--chrome-trace FILE] [--jsonl FILE]
    python -m repro metrics [WORKLOAD]   # Prometheus/JSON metric exposition
    python -m repro top [--jobs N]       # per-op + per-worker health view
    python -m repro top --url URL        # same view for a remote server
    python -m repro bench [--jobs N]     # serial vs multi-process timing
    python -m repro bench --check        # regression gate vs committed JSON
    python -m repro serve [--port P]     # async bulk-bitwise NDJSON service
    python -m repro loadgen [--clients N]  # deterministic SLO load soak

Every command prints the same formatted table the corresponding
benchmark writes to ``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _cmd_table2(args: argparse.Namespace) -> None:
    from repro.circuit import (
        format_table2,
        max_tolerable_variation,
        table2_experiment,
    )

    print(format_table2(table2_experiment(trials=args.trials, jobs=args.jobs)))
    print(f"\nadversarial-corner tolerance: "
          f"+/-{max_tolerable_variation() * 100:.2f}%  (paper: ~6%)")


def _cmd_table3(args: argparse.Namespace) -> None:
    from repro.energy import format_table3, table3_experiment

    print(format_table3(table3_experiment()))


def _cmd_fig9(args: argparse.Namespace) -> None:
    from repro.perf import figure9_experiment, format_figure9

    print(format_figure9(figure9_experiment()))


def _cmd_fig10(args: argparse.Namespace) -> None:
    from repro.apps import bitmap_index as bi
    from repro.sim import AmbitContext, CpuContext

    workload = bi.generate_workload(args.users, args.weeks, seed=10)
    base = bi.run_query(CpuContext(), workload, args.weeks)
    ambit = bi.run_query(AmbitContext(), workload, args.weeks)
    assert base.unique_active_every_week == ambit.unique_active_every_week
    print(f"Figure 10 point: u={args.users:,} users, w={args.weeks} weeks")
    print(f"  unique active every week : {base.unique_active_every_week:,}")
    print(f"  baseline : {base.elapsed_ns / 1e6:9.2f} ms")
    print(f"  Ambit    : {ambit.elapsed_ns / 1e6:9.2f} ms "
          f"({base.elapsed_ns / ambit.elapsed_ns:.1f}X; paper: 5.4-6.6X)")


def _cmd_fig11(args: argparse.Namespace) -> None:
    from repro.apps.bitweaving import (
        BitWeavingColumn,
        scan_range_ambit,
        scan_range_baseline,
    )
    from repro.sim import AmbitContext, CpuContext
    from repro.workloads import column_values

    rng = np.random.default_rng(20)
    values = column_values(args.rows, args.bits, rng)
    column = BitWeavingColumn.encode(values, args.bits)
    c1, c2 = (1 << args.bits) // 4, (3 << args.bits) // 4
    base_ctx, ambit_ctx = CpuContext(), AmbitContext()
    _, count_b = scan_range_baseline(base_ctx, column, c1, c2)
    _, count_a = scan_range_ambit(ambit_ctx, column, c1, c2)
    assert count_a == count_b
    print(f"Figure 11 point: b={args.bits} bits, r={args.rows:,} rows, "
          f"predicate [{c1}, {c2}]")
    print(f"  count(*) : {count_a:,}")
    print(f"  baseline : {base_ctx.elapsed_ns / 1e6:9.2f} ms")
    print(f"  Ambit    : {ambit_ctx.elapsed_ns / 1e6:9.2f} ms "
          f"({base_ctx.elapsed_ns / ambit_ctx.elapsed_ns:.1f}X; "
          f"paper: 1.8-11.8X)")


def _cmd_fig12(args: argparse.Namespace) -> None:
    from repro.apps.sets import AmbitSetOps, BitsetSetOps, RBTreeSetOps
    from repro.sim.cpu import CpuModel
    from repro.workloads import random_sets

    domain, m = 512 * 1024, 15
    cpu = CpuModel()
    sets = random_sets(m, args.elements, domain, np.random.default_rng(1))
    print(f"Figure 12 point: m={m} sets, e={args.elements} of N={domain:,}")
    print(f"{'op':>14} {'rbtree us':>10} {'bitset us':>10} {'ambit us':>10}")
    impls = {
        "rbtree": RBTreeSetOps(cpu),
        "bitset": BitsetSetOps(domain, cpu),
        "ambit": AmbitSetOps(domain, cpu),
    }
    for op in ("union", "intersection", "difference"):
        times = {
            name: getattr(impl, op)(sets).elapsed_ns / 1e3
            for name, impl in impls.items()
        }
        print(f"{op:>14} {times['rbtree']:>10.1f} {times['bitset']:>10.1f} "
              f"{times['ambit']:>10.1f}")


def _cmd_demo(args: argparse.Namespace) -> None:
    from repro import AmbitBitSystem, DramGeometry, SubarrayGeometry

    system = AmbitBitSystem(
        geometry=DramGeometry(
            banks=2,
            subarrays_per_bank=2,
            subarray=SubarrayGeometry(rows=32, row_bytes=1024),
        )
    )
    rng = np.random.default_rng(0)
    bits_a = rng.random(50_000) < 0.5
    bits_b = rng.random(50_000) < 0.5
    a = system.from_bits(bits_a)
    b = system.from_bits(bits_b, like=a)
    c = (a & b) | ~a
    assert np.array_equal(c.to_bits(), (bits_a & bits_b) | ~bits_a)
    acts, pres, _, _ = system.device.chip.trace.counts()
    print("demo: (a & b) | ~a over 50,000 bits, computed in simulated DRAM")
    print(f"  popcount(result) = {c.popcount():,}")
    print(f"  {acts} ACTIVATEs / {pres} PRECHARGEs issued, "
          f"{system.elapsed_ns:,.0f} ns bank-parallel makespan")
    print("  verified bit-exact against numpy")


def _cmd_profile(args: argparse.Namespace) -> None:
    from repro.obs.sinks import ChromeTraceSink, JsonLinesSink
    from repro.perf.profiling import profile_geometry, run_profile_workload

    sinks = []
    if args.chrome_trace:
        sinks.append(ChromeTraceSink(args.chrome_trace))
    if args.jsonl:
        sinks.append(JsonLinesSink(args.jsonl))
    try:
        report = run_profile_workload(
            args.workload,
            repeats=args.repeats,
            geometry=profile_geometry(row_bytes=args.row_bytes),
            sinks=sinks,
        )
    finally:
        for sink in sinks:
            sink.close()
    print(f"profile: workload={args.workload} repeats={args.repeats} "
          f"row_bytes={args.row_bytes} (bit-exact vs numpy)")
    print(report.format_table())
    if args.chrome_trace:
        print(f"\nChrome trace written to {args.chrome_trace} "
              f"(load in chrome://tracing or https://ui.perfetto.dev)")
    if args.jsonl:
        print(f"JSON-lines event log written to {args.jsonl}")


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.errors import ConfigError
    from repro.perf.profiling import profile_geometry, run_profile_workload

    try:
        report = run_profile_workload(
            args.workload,
            repeats=args.repeats,
            geometry=profile_geometry(row_bytes=args.row_bytes),
        )
    except ConfigError as exc:
        print(f"metrics: {exc}", file=sys.stderr)
        return 2
    registry = report.device.metrics
    if args.format == "prom":
        text = registry.render_prometheus()
    else:
        import json

        text = json.dumps(registry.snapshot(), indent=2, sort_keys=True)
    if args.jsonl:
        count = registry.write_jsonl(args.jsonl)
        print(f"{count} metric sample(s) written to {args.jsonl}",
              file=sys.stderr)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")
        print(f"metrics written to {args.output}", file=sys.stderr)
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    if args.serve is not None:
        from repro.obs.metrics import MetricsServer

        with MetricsServer(registry, port=args.serve) as server:
            print(f"serving {server.url} (Ctrl-C to stop)", file=sys.stderr)
            try:
                import threading

                threading.Event().wait()
            except KeyboardInterrupt:
                pass
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import numpy as np

    if args.url:
        import json
        import urllib.error
        import urllib.request

        from repro.obs.metrics import format_top, registry_from_snapshot

        url = args.url.rstrip("/")
        if not url.startswith("http"):
            url = f"http://{url}"
        # Accept the exposition paths too: HOST:P, HOST:P/metrics and
        # HOST:P/metrics.json all address the same server.
        for suffix in ("/metrics.json", "/metrics"):
            if url.endswith(suffix):
                url = url[: -len(suffix)]
                break
        try:
            with urllib.request.urlopen(f"{url}/metrics.json", timeout=10) as r:
                snapshot = json.loads(r.read())
        except (urllib.error.URLError, OSError, ValueError) as exc:
            print(f"top: cannot scrape {url}/metrics.json: {exc}",
                  file=sys.stderr)
            return 2
        print(f"top: remote registry at {url}\n")
        print(format_top(registry_from_snapshot(snapshot)))
        return 0

    from repro.core.microprograms import BulkOp
    from repro.dram.chip import RowLocation
    from repro.dram.geometry import DramGeometry, SubarrayGeometry
    from repro.obs.metrics import format_top
    from repro.parallel.device import ShardedDevice

    geometry = DramGeometry(
        banks=args.banks,
        subarrays_per_bank=2,
        subarray=SubarrayGeometry(rows=64, row_bytes=args.row_bytes),
    )
    rng = np.random.default_rng(11)
    with ShardedDevice(geometry=geometry, max_workers=args.jobs) as device:
        words = geometry.subarray.words_per_row
        rows_per_bank = 6
        dst, src1, src2 = [], [], []
        for bank in range(args.banks):
            for i in range(rows_per_bank):
                dst.append(RowLocation(bank, 0, 2 + i))
                src1.append(RowLocation(bank, 0, 2 + rows_per_bank + i))
                src2.append(RowLocation(bank, 0, 2 + 2 * rows_per_bank + i))
        for loc in src1 + src2:
            device.write_row(
                loc, rng.integers(0, 2**63, size=words, dtype=np.uint64)
            )
        for op in (BulkOp.AND, BulkOp.XOR, BulkOp.NOT):
            device.run_rows(
                op, dst, src1, src2 if op.arity >= 2 else None
            )
        print(f"top: {args.banks}-bank sharded workload, "
              f"jobs={device.max_workers}\n")
        print(format_top(device.metrics))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.core.microprograms import BulkOp
    from repro.parallel.bench import (
        ParallelBenchConfig,
        format_parallel_bench,
        run_parallel_bench,
    )
    from repro.parallel.pmap import default_jobs

    if args.check:
        from repro.obs.regress import run_bench_check

        reports = run_bench_check(
            args.results_dir,
            repeats=args.repeats,
            tolerance_scale=args.tolerance_scale,
        )
        for report in reports:
            print(report.format())
        failed = [r for r in reports if not r.ok]
        if failed:
            print(f"\nREGRESSION: {len(failed)} benchmark(s) out of "
                  f"tolerance", file=sys.stderr)
            return 1
        print("\nall benchmarks within tolerance of the committed baselines")
        return 0

    config = ParallelBenchConfig(
        jobs=args.jobs if args.jobs is not None else default_jobs(),
        banks=args.banks,
        rows_per_bank=args.rows_per_bank,
        op=BulkOp(args.op),
        dispatch=args.dispatch,
        mc_trials=args.trials,
        repeats=args.repeats,
    )
    payload = run_parallel_bench(config)
    print(format_parallel_bench(payload))
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"\npayload written to {args.output}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.errors import ConfigError
    from repro.faults import ChaosConfig, format_chaos, run_chaos
    from repro.log import configure_logging

    configure_logging(args.log_level, json_format=args.log_json)
    try:
        report = run_chaos(
            ChaosConfig(
                ops=args.ops,
                seed=args.seed,
                fault_rate=args.fault_rate,
                jobs=args.jobs,
                banks=args.banks,
                row_bytes=args.row_bytes,
                recovery=not args.no_recovery,
            )
        )
    except ConfigError as exc:
        print(f"chaos: {exc}", file=sys.stderr)
        return 2
    print(format_chaos(report))
    if args.scrape:
        print()
        print(report.scrape)
    return report.exit_code


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.errors import ConfigError
    from repro.log import configure_logging
    from repro.serve import BulkBitwiseServer, ServeConfig

    configure_logging(args.log_level, json_format=args.log_json)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        banks=args.banks,
        rows=args.rows,
        row_bytes=args.row_bytes,
        jobs=args.jobs,
        coalesce=not args.no_coalesce,
        max_queue=args.max_queue,
        max_batch_ops=args.max_batch_ops,
        max_vectors=args.max_vectors,
        max_rows=args.max_rows,
        max_inflight=args.max_inflight,
        fault_rate=args.fault_rate,
        seed=args.seed,
        metrics_port=args.metrics_port,
        trace=not args.no_trace,
        max_spans=args.max_spans,
        slo_ms=args.slo_ms,
        flight_path=args.flight_recorder,
    )

    async def _serve() -> None:
        server = BulkBitwiseServer(config)
        await server.start()
        print(f"serving bulk-bitwise NDJSON on "
              f"{config.host}:{server.port}", file=sys.stderr)
        if server.metrics_server is not None:
            base = server.metrics_server.url.rsplit("/metrics", 1)[0]
            print(f"metrics at {server.metrics_server.url} "
                  f"(watch with: repro top --url {base})",
                  file=sys.stderr)
        if config.trace:
            print(f"request spans on (query with: repro spans --connect "
                  f"{config.host}:{server.port} --slowest 10)",
                  file=sys.stderr)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.close()

    try:
        asyncio.run(_serve())
    except ConfigError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("serve: stopped", file=sys.stderr)
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.errors import ConfigError
    from repro.serve.loadgen import (
        LoadGenConfig,
        format_loadgen,
        run_loadgen,
    )

    try:
        report = run_loadgen(LoadGenConfig(
            clients=args.clients,
            ops=args.ops,
            bits=args.bits,
            seed=args.seed,
            concurrency=args.concurrency,
            p99_slo_ms=args.p99_slo_ms,
            connect=args.connect,
            jobs=args.jobs,
            fault_rate=args.fault_rate,
            quota_probe=not args.no_quota_probe,
            burst=args.burst,
            expect_coalescing=args.expect_coalescing,
            expect_backpressure=args.expect_backpressure,
            expect_quota=args.expect_quota,
            expect_faults=args.expect_faults,
        ))
    except ConfigError as exc:
        print(f"loadgen: {exc}", file=sys.stderr)
        return 2
    print(format_loadgen(report))
    return report.exit_code


def _cmd_spans(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.obs.spans import (
        chrome_trace,
        format_spans_table,
        format_trace_tree,
        validate_trace,
    )

    host, _, port_raw = args.connect.rpartition(":")
    host = host or "127.0.0.1"
    try:
        port = int(port_raw)
    except ValueError:
        print(f"spans: bad --connect {args.connect!r}; expected HOST:PORT",
              file=sys.stderr)
        return 2

    request = {"cmd": "spans"}
    if args.trace:
        request["trace"] = args.trace
    else:
        request["slowest"] = args.slowest
        if args.tenant:
            request["tenant"] = args.tenant
        if args.op:
            request["op"] = args.op

    async def _rpc():
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(json.dumps(request).encode() + b"\n")
            await writer.drain()
            line = await reader.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            return json.loads(line)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    try:
        response = asyncio.run(_rpc())
    except (ConnectionError, OSError, ValueError) as exc:
        print(f"spans: cannot query {host}:{port}: {exc}", file=sys.stderr)
        return 2
    if not response.get("ok"):
        print(f"spans: {response.get('error')}: {response.get('message')}",
              file=sys.stderr)
        return 1

    traces = response.get("spans", [])
    if args.json:
        print(json.dumps(traces, indent=2, sort_keys=True))
    elif args.trace:
        for trace in traces:
            print(format_trace_tree(trace))
    else:
        print(format_spans_table(traces))
        if "recorded" in response:
            print(f"\n{len(traces)} of {response['recorded']} recorded "
                  f"trace(s) shown")
    if args.chrome:
        with open(args.chrome, "w") as handle:
            json.dump(chrome_trace(traces), handle)
            handle.write("\n")
        print(f"chrome trace written to {args.chrome} "
              f"(open in chrome://tracing or https://ui.perfetto.dev)")
    if args.check:
        problems = []
        for trace in traces:
            problems.extend(
                f"{trace.get('trace', '?')}: {problem}"
                for problem in validate_trace(trace)
            )
        if problems:
            print("\nspan check FAILED:", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        print(f"span check OK: {len(traces)} trace(s) well-formed, "
              f"stage breakdowns sum to the wall clock")
    return 0


def _cmd_report(args: argparse.Namespace) -> None:
    from repro.report import ReportConfig, generate_report

    text = generate_report(ReportConfig(fast=args.fast))
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"report written to {args.output}")
    else:
        print(text)


def _cmd_compile(args: argparse.Namespace) -> None:
    from repro.compile import compile_expr, parse_expr, variables

    expr = parse_expr(args.expr)
    cop = compile_expr(expr, name=args.name)
    print(f"{cop.value}: {args.expr}")
    print(f"  inputs : {', '.join(cop.inputs)}")
    print(f"  steps  : {len(cop.steps)}  "
          f"({cop.num_aap} AAP + {cop.num_ap} AP, "
          f"{cop.num_temps} scratch row(s))")
    for line in cop.describe():
        print(f"    {line}")

    if args.stats or args.run:
        from repro.core.device import AmbitDevice
        from repro.dram.geometry import small_test_geometry

        device = AmbitDevice(geometry=small_test_geometry(
            rows=64, row_bytes=args.row_bytes
        ))
        dk = cop.arity + cop.num_temps
        plan = device.controller.plan_cache.get_compiled(
            cop,
            dk,
            tuple(range(cop.arity)),
            tuple(cop.arity + t for t in range(cop.num_temps)),
        )
        print(f"  plan   : {plan.num_commands} bus commands, "
              f"{plan.total_ns:.1f} ns per {args.row_bytes}-byte row")

    if args.run:
        from repro.apps.bitvector import AmbitBitSystem
        from repro.compile.ir import evaluate

        system = AmbitBitSystem(device=device)
        rng = np.random.default_rng(args.seed)
        nbits = device.row_bits
        names = variables(expr)
        bits = {
            name: rng.integers(0, 2, nbits).astype(bool) for name in names
        }
        vectors = {
            name: system.from_bits(bits[name]) for name in names
        }
        out = vectors[names[0]].compute(cop, **vectors)
        want = evaluate(expr, bits)
        ok = bool(np.array_equal(out.to_bits(), want))
        print(f"  run    : {nbits} lanes on device -- "
              f"{'OK (matches the numpy oracle)' if ok else 'MISMATCH'}")
        if not ok:
            raise SystemExit(1)


def _cmd_list(args: argparse.Namespace) -> None:
    print("experiments:")
    for name, doc in (
        ("table2", "TRA failure rate vs process variation (Section 6)"),
        ("table3", "energy of bulk bitwise operations (Section 7)"),
        ("fig9", "throughput across five systems (Section 7)"),
        ("fig10", "bitmap-index query performance (Section 8.1)"),
        ("fig11", "BitWeaving column scans (Section 8.2)"),
        ("fig12", "set operations (Section 8.3)"),
        ("demo", "end-to-end functional smoke demo"),
        ("compile", "compile a boolean expression to a MAJ/NOT microprogram"),
        ("profile", "per-op counters + optional Chrome trace"),
        ("metrics", "metrics registry exposition (Prometheus text / JSON)"),
        ("top", "per-op latency + per-worker health view"),
        ("bench", "serial vs multi-process wall-clock benchmark"),
        ("chaos", "fault-injection soak with detection and recovery"),
        ("serve", "NDJSON/TCP bulk-bitwise service (coalescing front door)"),
        ("loadgen", "deterministic client swarm + SLO soak against serve"),
        ("spans", "query a serve instance's request traces (socket to "
                  "silicon)"),
        ("report", "full markdown reproduction report"),
    ):
        print(f"  {name:<8} {doc}")


def _add_logging_flags(p: argparse.ArgumentParser) -> None:
    """`--log-level` / `--log-json` for the long-running surfaces."""
    p.add_argument("--log-level", default="warning",
                   choices=("debug", "info", "warning", "error", "critical"),
                   help="stderr log level for the repro.* loggers")
    p.add_argument("--log-json", action="store_true",
                   help="one JSON object per log line instead of text")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ambit reproduction: regenerate the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(func=_cmd_list)

    p = sub.add_parser("table2", help="TRA reliability Monte Carlo")
    p.add_argument("--trials", type=int, default=100_000)
    p.add_argument("--jobs", type=int, default=None,
                   help="fan variation levels across N processes "
                        "(bit-identical to the serial run)")
    p.set_defaults(func=_cmd_table2)

    sub.add_parser("table3", help="energy table").set_defaults(func=_cmd_table3)
    sub.add_parser("fig9", help="throughput figure").set_defaults(func=_cmd_fig9)

    p = sub.add_parser("fig10", help="bitmap-index point")
    p.add_argument("--users", type=int, default=8_000_000)
    p.add_argument("--weeks", type=int, default=4)
    p.set_defaults(func=_cmd_fig10)

    p = sub.add_parser("fig11", help="BitWeaving point")
    p.add_argument("--rows", type=int, default=2_000_000)
    p.add_argument("--bits", type=int, default=16)
    p.set_defaults(func=_cmd_fig11)

    p = sub.add_parser("fig12", help="set-operations point")
    p.add_argument("--elements", type=int, default=256)
    p.set_defaults(func=_cmd_fig12)

    sub.add_parser("demo", help="functional demo").set_defaults(func=_cmd_demo)

    p = sub.add_parser(
        "compile",
        help="compile a boolean expression to an Ambit microprogram",
    )
    p.add_argument("--expr", required=True, metavar="EXPR",
                   help="expression over &, |, ^, ~, maj(a,b,c), "
                        "mux(sel,a,b), e.g. 'a & ~(b ^ c)'")
    p.add_argument("--name", default=None,
                   help="operation name (default: derived fingerprint)")
    p.add_argument("--stats", action="store_true",
                   help="also print the bound plan's command/latency cost")
    p.add_argument("--run", action="store_true",
                   help="execute one row batch on a small device and "
                        "verify against the numpy oracle")
    p.add_argument("--row-bytes", type=int, default=512,
                   help="row size of the stats/run device")
    p.add_argument("--seed", type=int, default=7,
                   help="input seed for --run")
    p.set_defaults(func=_cmd_compile)

    p = sub.add_parser(
        "profile",
        help="profile a bulk-op workload (counters + Chrome trace)",
    )
    p.add_argument(
        "workload",
        nargs="?",
        default="all",
        help="one of: and, or, not, nand, nor, xor, xnor, maj, copy, all",
    )
    p.add_argument("--repeats", type=int, default=4,
                   help="row-sized instances per op")
    p.add_argument("--row-bytes", type=int, default=512,
                   help="row size of the profiled device")
    p.add_argument("--chrome-trace", default=None, metavar="FILE",
                   help="write a chrome://tracing / Perfetto trace_event JSON")
    p.add_argument("--jsonl", default=None, metavar="FILE",
                   help="write the raw event stream as JSON lines")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "metrics",
        help="run a workload and expose its metrics registry "
             "(Prometheus text or JSON snapshot)",
    )
    p.add_argument(
        "workload",
        nargs="?",
        default="all",
        help="one of: and, or, not, nand, nor, xor, xnor, maj, copy, all",
    )
    p.add_argument("--repeats", type=int, default=4,
                   help="row-sized instances per op")
    p.add_argument("--row-bytes", type=int, default=512,
                   help="row size of the profiled device")
    p.add_argument("--format", choices=("prom", "json"), default="prom",
                   help="exposition format on stdout")
    p.add_argument("--jsonl", default=None, metavar="FILE",
                   help="also write one JSON line per metric sample")
    p.add_argument("--output", default=None, metavar="FILE",
                   help="write the exposition to a file instead of stdout")
    p.add_argument("--serve", type=int, default=None, metavar="PORT",
                   help="after the run, serve /metrics on PORT until Ctrl-C")
    p.set_defaults(func=_cmd_metrics)

    p = sub.add_parser(
        "top",
        help="run a sharded workload and print the per-op / per-worker "
             "health view",
    )
    p.add_argument("--jobs", type=int, default=4,
                   help="worker processes for the sharded run")
    p.add_argument("--banks", type=int, default=4)
    p.add_argument("--row-bytes", type=int, default=512)
    p.add_argument("--url", default=None, metavar="URL",
                   help="scrape a remote MetricsServer (/metrics.json) "
                        "instead of running a local workload")
    p.set_defaults(func=_cmd_top)

    p = sub.add_parser(
        "bench",
        help="serial vs multi-process wall-clock benchmark "
             "(Monte Carlo + sharded bulk ops)",
    )
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: schedulable CPUs)")
    p.add_argument("--trials", type=int, default=8_000_000,
                   help="Monte Carlo trials")
    p.add_argument("--banks", type=int, default=8)
    p.add_argument("--rows-per-bank", type=int, default=8)
    p.add_argument("--op", default="and",
                   help="bulk op for the sharded arm")
    p.add_argument("--dispatch", default="sharded",
                   choices=("sharded", "auto", "fused", "serial"),
                   help="dispatch tier of the sharded arm (auto = "
                        "cost-model tuner)")
    p.add_argument("--repeats", type=int, default=3,
                   help="timings per arm; best is kept")
    p.add_argument("--output", default=None, metavar="FILE",
                   help="also write the JSON payload")
    p.add_argument("--check", action="store_true",
                   help="regression gate: re-run the gated benchmarks and "
                        "compare against benchmarks/results/BENCH_*.json; "
                        "exit 1 on regression")
    p.add_argument("--results-dir", default="benchmarks/results",
                   help="directory holding the committed baselines")
    p.add_argument("--tolerance-scale", type=float, default=1.0,
                   help="scale every check tolerance (e.g. 1.5 for noisy "
                        "CI hosts)")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "chaos",
        help="fault-injection soak: run bulk ops under a deterministic "
             "fault plan; exit 1 on any unrecovered fault or bit mismatch",
    )
    p.add_argument("--ops", type=int, default=500,
                   help="bulk operations to execute")
    p.add_argument("--seed", type=int, default=0,
                   help="seeds the workload and the fault plan")
    p.add_argument("--fault-rate", type=float, default=1e-3,
                   help="expected faults per op per subarray")
    p.add_argument("--jobs", type=int, default=1,
                   help=">= 2 runs sharded and adds worker crash/stall "
                        "fault kinds")
    p.add_argument("--banks", type=int, default=2)
    p.add_argument("--row-bytes", type=int, default=64)
    p.add_argument("--no-recovery", action="store_true",
                   help="detect only: every perturbed result counts as "
                        "unrecovered (proves detection is live)")
    p.add_argument("--scrape", action="store_true",
                   help="also print the ambit_faults_* Prometheus families")
    _add_logging_flags(p)
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "serve",
        help="NDJSON/TCP bulk-bitwise service with a coalescing front "
             "door (Ctrl-C to stop)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 = ephemeral; the bound port is "
                        "printed)")
    p.add_argument("--banks", type=int, default=4)
    p.add_argument("--rows", type=int, default=512,
                   help="rows per subarray (capacity)")
    p.add_argument("--row-bytes", type=int, default=512)
    p.add_argument("--jobs", type=int, default=1,
                   help=">= 2 serves from a sharded multi-process device")
    p.add_argument("--no-coalesce", action="store_true",
                   help="dispatch one request per engine batch "
                        "(benchmark control arm)")
    p.add_argument("--max-queue", type=int, default=4096,
                   help="admission queue bound; overflow is rejected "
                        "with a backpressure error")
    p.add_argument("--max-batch-ops", type=int, default=512,
                   help="max requests fused into one drain cycle")
    p.add_argument("--max-vectors", type=int, default=16,
                   help="per-tenant vector quota (0 = unlimited)")
    p.add_argument("--max-rows", type=int, default=512,
                   help="per-tenant row quota (0 = unlimited)")
    p.add_argument("--max-inflight", type=int, default=64,
                   help="per-tenant in-flight op quota (0 = unlimited)")
    p.add_argument("--fault-rate", type=float, default=0.0,
                   help="> 0 injects a deterministic fault plan under "
                        "the live service")
    p.add_argument("--seed", type=int, default=0,
                   help="seeds the fault plan")
    p.add_argument("--metrics-port", type=int, default=None, metavar="PORT",
                   help="also serve /metrics and /metrics.json (watch "
                        "remotely with: repro top --url HOST:PORT)")
    p.add_argument("--no-trace", action="store_true",
                   help="disable request spans (they are on by default; "
                        "see repro spans)")
    p.add_argument("--max-spans", type=int, default=512,
                   help="completed request traces kept in the span ring")
    p.add_argument("--slo-ms", type=float, default=0.0,
                   help="> 0 arms the flight recorder's latency trigger "
                        "(any request slower than this dumps the ring)")
    p.add_argument("--flight-recorder", default=None, metavar="FILE",
                   help="append the span ring to this JSONL file on an "
                        "unrecovered fault, backpressure rejection or "
                        "SLO breach")
    _add_logging_flags(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="deterministic client swarm + SLO soak against the serve "
             "front door; exit 1 on bit mismatch, SLO miss or a failed "
             "expectation",
    )
    p.add_argument("--clients", type=int, default=64,
                   help="concurrent tenants")
    p.add_argument("--ops", type=int, default=16,
                   help="awaited bulk ops per client")
    p.add_argument("--bits", type=int, default=4096,
                   help="vector width in bits")
    p.add_argument("--seed", type=int, default=0,
                   help="seeds every client schedule and payload")
    p.add_argument("--concurrency", type=int, default=128,
                   help="max simultaneous client connections")
    p.add_argument("--p99-slo-ms", type=float, default=500.0,
                   help="p99 request-latency SLO")
    p.add_argument("--connect", default=None, metavar="HOST:PORT",
                   help="target an already-running server instead of "
                        "self-hosting one")
    p.add_argument("--jobs", type=int, default=1,
                   help="self-hosted server worker processes")
    p.add_argument("--fault-rate", type=float, default=0.0,
                   help="self-hosted server fault-injection rate")
    p.add_argument("--no-quota-probe", action="store_true",
                   help="skip the deliberate vector-quota probe")
    p.add_argument("--burst", type=int, default=96,
                   help="pipelined burst size used to provoke "
                        "backpressure (0 = skip)")
    p.add_argument("--expect-coalescing", action="store_true",
                   help="fail unless the server fused >= 1 batch")
    p.add_argument("--expect-backpressure", action="store_true",
                   help="fail unless the burst drew >= 1 backpressure "
                        "rejection")
    p.add_argument("--expect-quota", action="store_true",
                   help="fail unless the probe drew >= 1 quota rejection")
    p.add_argument("--expect-faults", action="store_true",
                   help="fail unless >= 1 fault was injected and every "
                        "one was recovered")
    p.set_defaults(func=_cmd_loadgen)

    p = sub.add_parser(
        "spans",
        help="query a serve instance's request traces: slowest-N stage "
             "table, one-trace span tree, Chrome export",
    )
    p.add_argument("trace", nargs="?", default=None,
                   help="a trace id to print as a span tree "
                        "(default: list recent traces)")
    p.add_argument("--connect", required=True, metavar="HOST:PORT",
                   help="the serve instance to query")
    p.add_argument("--slowest", type=int, default=10,
                   help="list the N slowest recorded requests")
    p.add_argument("--tenant", default=None,
                   help="only this tenant's requests")
    p.add_argument("--op", default=None,
                   help="only this bulk op (e.g. and, xor)")
    p.add_argument("--chrome", default=None, metavar="FILE",
                   help="also write a Chrome trace_event JSON of the "
                        "listed traces, one lane per request")
    p.add_argument("--check", action="store_true",
                   help="validate every listed trace (stage sums, span "
                        "tree shape); exit 1 on any problem")
    p.add_argument("--json", action="store_true",
                   help="print raw trace JSON instead of tables")
    p.set_defaults(func=_cmd_spans)

    p = sub.add_parser("report", help="full reproduction report (markdown)")
    p.add_argument("--fast", action="store_true",
                   help="reduced workload sizes")
    p.add_argument("--output", default=None, help="write to a file")
    p.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args) or 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
