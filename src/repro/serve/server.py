"""The async bulk-bitwise service: NDJSON front door over the engine.

:class:`BulkBitwiseServer` glues every prior layer of the stack into a
network-facing accelerator service:

* the **protocol** (:mod:`repro.serve.protocol`) frames requests;
* the **allocator** (:mod:`repro.serve.alloc`) places named vectors;
* the **tenant registry** (:mod:`repro.serve.tenants`) enforces quotas
  and admission;
* the **coalescer** (:mod:`repro.serve.coalescer`) fuses concurrent
  ``op`` requests into hazard-safe waves;
* every device touch goes through one
  :class:`~repro.faults.recover.FaultTolerantSession` on a
  **single-thread executor** -- the event loop never blocks on DRAM
  work, and the device never sees two threads;
* optional seeded fault injection
  (:class:`~repro.faults.injector.FaultInjector`) runs before each
  wave, so the recovery ladder is exercised under live traffic;
* ``ambit_serve_*`` metric families land in the device's
  :class:`~repro.obs.metrics.MetricsRegistry`, optionally exposed on a
  :class:`~repro.obs.metrics.MetricsServer` for ``repro top --url``.

Concurrency model: asyncio handles sockets and framing; each request
line becomes a task, so one connection can pipeline thousands of
requests.  ``op`` requests await a future resolved by the coalescer's
drain loop; everything else runs as one executor call.  The executor
has exactly one thread, which serializes all device access without any
locking in the engine.
"""

from __future__ import annotations

import asyncio
import contextvars
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.core.microprograms import BulkOp
from repro.dram.geometry import DramGeometry, small_test_geometry
from repro.errors import ConfigError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.recover import FaultTolerantSession, RecoveryPolicy
from repro.log import get_logger
from repro.obs.spans import FlightRecorder, RequestSpanCtx, SpanStore
from repro.serve.alloc import StripedAllocator
from repro.serve.coalescer import Coalescer, OpRequest, Wave
from repro.serve.protocol import (
    COMMANDS,
    E_BACKPRESSURE,
    E_FAULT,
    E_INTERNAL,
    E_NO_TRACE,
    E_PROTOCOL,
    E_SHAPE,
    E_UNKNOWN,
    MAX_LINE_BYTES,
    ServeError,
    bytes_to_rows,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    payload_bytes,
    rows_to_hex,
)
from repro.serve.tenants import TenantQuota, TenantRegistry

log = get_logger("serve")

#: The in-flight request's span context.  Set by :meth:`_serve_line`
#: (each request line is its own asyncio task, so the var is naturally
#: request-scoped) and read by command handlers and the device wrapper.
_REQUEST_CTX: "contextvars.ContextVar[Optional[RequestSpanCtx]]" = (
    contextvars.ContextVar("repro_request_ctx", default=None)
)

#: Request-latency buckets: 100 us .. 10 s (the default device-latency
#: buckets top out at ~0.4 ms -- far too tight for network round trips).
SERVE_LATENCY_BUCKETS_NS: Tuple[float, ...] = tuple(
    1e5 * (4.0 ** i) for i in range(12)
)

_OPS_BY_NAME = {op.value: op for op in BulkOp}
_SRC_FIELDS = ("src1", "src2", "src3")


@dataclass(frozen=True)
class ServeConfig:
    """Everything one server instance needs, CLI-mappable."""

    host: str = "127.0.0.1"
    port: int = 0                    # 0 = ephemeral, report after bind
    banks: int = 4
    subarrays: int = 1
    rows: int = 512
    row_bytes: int = 512
    jobs: int = 1                    # >= 2 -> ShardedDevice dispatch
    max_plans: Optional[int] = 256   # PlanCache LRU bound (None = off)
    max_queue: int = 4096
    max_batch_ops: int = 512
    coalesce: bool = True
    max_vectors: int = 16
    max_rows: int = 512
    max_inflight: int = 64
    fault_rate: float = 0.0
    fault_ops: int = 512             # fault-plan horizon, in waves
    variation_level: float = 0.15
    recovery: bool = True
    spare_rows: int = 2
    seed: int = 0
    metrics_port: Optional[int] = None
    trace: bool = True               # request spans (socket -> silicon)
    max_spans: int = 512             # span-ring capacity
    slo_ms: float = 0.0              # > 0: flight-recorder latency trigger
    flight_path: Optional[str] = None  # JSONL dump target (None = off)

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ConfigError` on bad settings."""
        if self.banks < 1 or self.subarrays < 1:
            raise ConfigError("banks and subarrays must be >= 1")
        if self.rows < 22:
            raise ConfigError(
                f"rows must be >= 22 (18 reserved + scratch + data); "
                f"got {self.rows}"
            )
        if self.row_bytes < 8 or self.row_bytes % 8:
            raise ConfigError("row_bytes must be a positive multiple of 8")
        if self.jobs < 1:
            raise ConfigError(f"jobs must be >= 1; got {self.jobs}")
        if self.max_plans is not None and self.max_plans < 1:
            raise ConfigError("max_plans must be >= 1 or None")
        if self.max_queue < 1 or self.max_batch_ops < 1:
            raise ConfigError("max_queue and max_batch_ops must be >= 1")
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ConfigError("fault_rate must be in [0, 1]")
        if self.fault_ops < 1:
            raise ConfigError("fault_ops must be >= 1")
        if self.spare_rows < 0:
            raise ConfigError("spare_rows must be >= 0")
        if self.max_spans < 1:
            raise ConfigError("max_spans must be >= 1")
        if self.slo_ms < 0:
            raise ConfigError("slo_ms must be >= 0")

    def geometry(self) -> DramGeometry:
        """The device geometry this configuration describes."""
        return small_test_geometry(
            rows=self.rows,
            row_bytes=self.row_bytes,
            banks=self.banks,
            subarrays_per_bank=self.subarrays,
        )

    def quota(self) -> TenantQuota:
        """The per-tenant quota this configuration describes."""
        return TenantQuota(
            max_vectors=self.max_vectors,
            max_rows=self.max_rows,
            max_inflight=self.max_inflight,
        )


class BulkBitwiseServer:
    """One listening service over one (possibly sharded) device."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config = config if config is not None else ServeConfig()
        config.validate()
        geometry = config.geometry()
        if config.jobs >= 2:
            from repro.parallel.device import ShardedDevice

            self.device = ShardedDevice(
                geometry=geometry, max_workers=config.jobs
            )
        else:
            from repro.core.device import AmbitDevice

            self.device = AmbitDevice(geometry=geometry)
        self.metrics = self.device.metrics
        if config.max_plans is not None:
            self.device.controller.plan_cache.max_plans = config.max_plans
        self.allocator = StripedAllocator(
            geometry, scratch_rows=2, spare_rows=config.spare_rows
        )
        self.session = FaultTolerantSession(
            self.device, RecoveryPolicy(enabled=config.recovery)
        )
        for bank, sub in self.allocator.stripes:
            self.session.set_scratch(bank, sub, self.allocator.scratch_rows)
            if self.allocator.spare_rows:
                self.session.add_spares(bank, sub, self.allocator.spare_rows)
        self.tenants = TenantRegistry(
            self.allocator, config.quota(), self.metrics
        )
        self.executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="ambit-serve"
        )
        self.coalescer = Coalescer(
            runner=self._run_waves,
            executor=self.executor,
            metrics=self.metrics,
            max_queue=config.max_queue,
            max_batch_ops=config.max_batch_ops,
            coalesce=config.coalesce,
        )
        self.injector: Optional[FaultInjector] = None
        if config.fault_rate > 0.0:
            # Target the first stripe only: the allocator places row 0
            # of *every* vector there, so each drawn fault lands in
            # rows live traffic will actually touch (a fault on a bank
            # no vector reaches validates nothing).
            plan = FaultPlan.generate(
                ops=config.fault_ops,
                seed=config.seed,
                fault_rate=config.fault_rate,
                rows={
                    self.allocator.stripes[0]:
                        list(range(self.allocator.slots_total))
                },
                row_bits=geometry.subarray.row_bits,
                variation_level=config.variation_level,
            )
            self.injector = FaultInjector(self.device, plan, self.metrics)
        self._wave_index = 0
        self._m_requests = self.metrics.counter(
            "ambit_serve_requests_total",
            "Service requests handled, by command and outcome",
            labels=("cmd", "status"),
        )
        self._m_latency = self.metrics.histogram(
            "ambit_serve_request_latency_ns",
            "End-to-end request latency (decode to response write)",
            labels=("cmd",),
            buckets=SERVE_LATENCY_BUCKETS_NS,
        )
        self._m_errors = self.metrics.counter(
            "ambit_serve_errors_total",
            "Requests that returned a typed error, by wire code",
            labels=("code",),
        )
        self.spans: Optional[SpanStore] = None
        self.recorder: Optional[FlightRecorder] = None
        if config.trace:
            self.spans = SpanStore(capacity=config.max_spans)
            self.recorder = FlightRecorder(
                self.spans,
                path=config.flight_path,
                slo_ms=config.slo_ms,
                trigger_codes=(E_FAULT, E_BACKPRESSURE),
            )
        self._server: Optional[asyncio.AbstractServer] = None
        self.metrics_server = None
        if config.metrics_port is not None:
            from repro.obs.metrics import MetricsServer

            self.metrics_server = MetricsServer(
                self.metrics, port=config.metrics_port
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "BulkBitwiseServer":
        """Bind the listening socket and spawn the drain loop."""
        self._server = await asyncio.start_server(
            self._on_client,
            host=self.config.host,
            port=self.config.port,
            limit=MAX_LINE_BYTES,
        )
        self.coalescer.start()
        return self

    @property
    def port(self) -> int:
        """The bound TCP port (valid after :meth:`start`)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Serve until cancelled (the ``repro serve`` foreground)."""
        assert self._server is not None, "server not started"
        await self._server.serve_forever()

    async def close(self) -> None:
        """Stop listening, stop the coalescer, release the device."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.coalescer.close()
        self.executor.shutdown(wait=True)
        if self.metrics_server is not None:
            self.metrics_server.close()
        self.device.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        tasks: set = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    async with write_lock:
                        writer.write(encode_frame(error_response(
                            None, E_PROTOCOL,
                            f"line exceeds {MAX_LINE_BYTES} bytes",
                        )))
                        await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(
                    self._serve_line(line, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            for task in tasks:
                task.cancel()
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass  # connection (or the whole server) is going down

    async def _serve_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        started = time.perf_counter_ns()
        request_id = None
        cmd = "invalid"
        ctx: Optional[RequestSpanCtx] = None
        token = None
        want_timing = False
        try:
            request = decode_frame(line)
            request_id = request.get("id")
            want_timing = request.get("detail") == "timing"
            raw_cmd = request.get("cmd")
            if raw_cmd in COMMANDS:
                cmd = raw_cmd
            else:
                raise ServeError(
                    E_UNKNOWN, f"unknown command {raw_cmd!r}; "
                    f"expected one of {', '.join(COMMANDS)}"
                )
            if self.spans is not None:
                tenant = request.get("tenant")
                op = request.get("op")
                ctx = RequestSpanCtx(
                    cmd=cmd,
                    tenant=tenant if isinstance(tenant, str) else None,
                    op=op if isinstance(op, str) else None,
                    start_ns=started,
                )
                token = _REQUEST_CTX.set(ctx)
            response = await getattr(self, f"_cmd_{cmd}")(request)
            status = "ok"
        except ServeError as exc:
            response = error_response(request_id, exc.code, exc.message)
            status = exc.code
        except Exception as exc:  # engine/device errors -> internal
            log.warning(
                "request failed with %s: %s", type(exc).__name__, exc,
                extra={"ctx_cmd": cmd,
                       "ctx_trace": ctx.trace if ctx else None},
            )
            response = error_response(
                request_id, E_INTERNAL, f"{type(exc).__name__}: {exc}"
            )
            status = E_INTERNAL
        finally:
            if token is not None:
                _REQUEST_CTX.reset(token)
        if request_id is not None:
            response["id"] = request_id
        if status != "ok":
            self._m_errors.labels(code=status).inc()
        if ctx is not None:
            ctx.mark("result")
            if want_timing:
                # The serialize tail is still ahead of us, so this is
                # the breakdown *so far*; the stored trace (finished
                # after the socket write) is the authoritative one.
                response["timing"] = {
                    "trace": ctx.trace,
                    "stages_ns": ctx.breakdown(time.perf_counter_ns()),
                }
        self._m_requests.labels(cmd=cmd, status=status).inc()
        self._m_latency.labels(cmd=cmd).observe(
            time.perf_counter_ns() - started,
            exemplar=ctx.trace if ctx is not None else None,
        )
        try:
            async with write_lock:
                writer.write(encode_frame(response))
                await writer.drain()
        except (ConnectionError, OSError):
            log.debug("client went away before the response was written",
                      extra={"ctx_cmd": cmd})
        if ctx is not None and self.spans is not None:
            trace = self.spans.add(ctx.finish(status))
            if self.recorder is not None:
                reason = self.recorder.observe(trace)
                if reason is not None:
                    log.warning(
                        "flight recorder triggered",
                        extra={"ctx_reason": reason,
                               "ctx_trace": trace.trace,
                               "ctx_status": status,
                               "ctx_wall_ms": round(trace.wall_ns / 1e6, 3)},
                    )

    # ------------------------------------------------------------------
    # Request helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _tenant_of(request: Dict[str, Any]) -> str:
        tenant = request.get("tenant")
        if not isinstance(tenant, str) or not tenant:
            raise ServeError(
                E_PROTOCOL, "request needs a non-empty string 'tenant'"
            )
        return tenant

    @staticmethod
    def _name_of(request: Dict[str, Any], field: str = "name") -> str:
        name = request.get(field)
        if not isinstance(name, str) or not name:
            raise ServeError(
                E_PROTOCOL, f"request needs a non-empty string {field!r}"
            )
        return name

    async def _on_device(self, fn, *args):
        """Run a device-touching callable on the single device thread.

        When the request is traced, the executor-side wrapper stamps
        device occupancy and the recovery attempts it incurred into a
        local dict; the awaiting coroutine adopts them afterwards, so
        the span context itself never leaves the event loop.
        """
        loop = asyncio.get_event_loop()
        ctx = _REQUEST_CTX.get()
        if ctx is None:
            return await loop.run_in_executor(self.executor, fn, *args)
        timing: Dict[str, Any] = {}

        def timed():
            timing["device_start"] = time.perf_counter_ns()
            attempts_mark = self.session.attempts_total
            try:
                return fn(*args)
            finally:
                timing["device_end"] = time.perf_counter_ns()
                timing["attempts"] = [
                    attempt.to_dict()
                    for attempt in self.session.attempts_since(attempts_mark)
                ]

        try:
            return await loop.run_in_executor(self.executor, timed)
        finally:
            ctx.adopt(timing)

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    async def _cmd_ping(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return ok_response(pong=True)

    async def _cmd_create(self, request: Dict[str, Any]) -> Dict[str, Any]:
        tenant = self._tenant_of(request)
        name = self._name_of(request)
        bits = request.get("bits")
        if not isinstance(bits, int) or isinstance(bits, bool) or bits < 1:
            raise ServeError(E_PROTOCOL, "'bits' must be a positive integer")
        handle = self.tenants.create_vector(tenant, name, bits)
        words = self.device.geometry.subarray.words_per_row
        zeros = np.zeros(words, dtype=np.uint64)

        def _zero_fill() -> None:
            for loc in handle.rows:
                self.session.write_row(loc, zeros)

        await self._on_device(_zero_fill)
        return ok_response(name=name, bits=bits, rows=len(handle.rows))

    async def _cmd_write(self, request: Dict[str, Any]) -> Dict[str, Any]:
        tenant = self._tenant_of(request)
        name = self._name_of(request)
        handle = self.tenants.lookup(tenant, name)
        raw = payload_bytes(request.get("data"), handle.bits)
        images = bytes_to_rows(
            raw, len(handle.rows), self.device.geometry.subarray.row_bytes
        )

        def _store() -> None:
            for loc, image in zip(handle.rows, images):
                self.session.write_row(loc, image)

        await self._on_device(_store)
        return ok_response(name=name, bits=handle.bits)

    async def _cmd_read(self, request: Dict[str, Any]) -> Dict[str, Any]:
        tenant = self._tenant_of(request)
        name = self._name_of(request)
        handle = self.tenants.lookup(tenant, name)

        def _load():
            return [self.session.read_row(loc) for loc in handle.rows]

        images = await self._on_device(_load)
        return ok_response(
            name=name,
            bits=handle.bits,
            data=rows_to_hex(images, handle.bits),
        )

    async def _cmd_op(self, request: Dict[str, Any]) -> Dict[str, Any]:
        tenant = self._tenant_of(request)
        op_name = request.get("op")
        op = _OPS_BY_NAME.get(op_name)
        if op is None:
            raise ServeError(
                E_PROTOCOL, f"unknown op {op_name!r}; expected one of "
                f"{', '.join(sorted(_OPS_BY_NAME))}"
            )
        dst = self.tenants.lookup(tenant, self._name_of(request, "dst"))
        srcs = []
        for field in _SRC_FIELDS[: op.arity]:
            if field not in request:
                raise ServeError(
                    E_SHAPE, f"op {op.value!r} takes {op.arity} source(s); "
                    f"missing {field!r}"
                )
            srcs.append(
                self.tenants.lookup(tenant, self._name_of(request, field))
            )
        for operand in srcs:
            if operand.bits != dst.bits:
                raise ServeError(
                    E_SHAPE,
                    f"operand {operand.name!r} is {operand.bits} bit(s) but "
                    f"destination {dst.name!r} is {dst.bits}",
                )
        self.tenants.admit(tenant)
        ctx = _REQUEST_CTX.get()
        op_request = OpRequest(
            op=op,
            tenant=tenant,
            dst=dst.rows,
            srcs=tuple(operand.rows for operand in srcs),
            future=asyncio.get_event_loop().create_future(),
        )
        if ctx is not None:
            # The wave runner stamps device timing into the OpRequest on
            # the device thread; the trace id rides along so the runner
            # can join the hardware tracer's op frames to this request.
            op_request.timing["trace"] = ctx.trace
        try:
            self.coalescer.submit(op_request)
            await op_request.future
        finally:
            if ctx is not None:
                ctx.adopt(op_request.timing)
            self.tenants.release(tenant)
        return ok_response(op=op.value, dst=dst.name)

    async def _cmd_delete(self, request: Dict[str, Any]) -> Dict[str, Any]:
        tenant = self._tenant_of(request)
        name = self._name_of(request)
        handle = self.tenants.delete_vector(tenant, name)

        def _forget() -> None:
            for loc in handle.rows:
                self.session.shadow.pop(
                    (loc.bank, loc.subarray, loc.address), None
                )

        await self._on_device(_forget)
        return ok_response(name=name, rows=len(handle.rows))

    async def _cmd_stats(self, request: Dict[str, Any]) -> Dict[str, Any]:
        totals = {
            "batches": self._family_total("ambit_serve_batches_total"),
            "coalesced_batches": self._family_total(
                "ambit_serve_coalesced_batches_total"
            ),
            "backpressure": self._family_total(
                "ambit_serve_backpressure_total"
            ),
            "quota_rejections": self._family_total(
                "ambit_serve_quota_rejections_total"
            ),
            "faults_recovered": self._family_total(
                "ambit_faults_recovered_total"
            ),
            "faults_unrecovered": self._family_total(
                "ambit_faults_unrecovered_total"
            ),
            "plan_evictions": self._family_total(
                "ambit_plan_cache_evictions_total"
            ),
        }
        snapshot = {
            name: value
            for name, value in self.metrics.snapshot().items()
            if name.startswith("ambit_serve_")
        }
        return ok_response(totals=totals, metrics=snapshot)

    async def _cmd_spans(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if self.spans is None:
            raise ServeError(
                E_PROTOCOL,
                "request tracing is disabled on this server (--no-trace)",
            )
        trace_id = request.get("trace")
        if trace_id is not None:
            if not isinstance(trace_id, str):
                raise ServeError(E_PROTOCOL, "'trace' must be a string")
            trace = self.spans.get(trace_id)
            if trace is None:
                raise ServeError(
                    E_NO_TRACE,
                    f"no trace {trace_id!r} in the span ring "
                    f"(capacity {self.spans.capacity}; it may have aged out)",
                )
            return ok_response(spans=[trace.to_dict()])
        slowest = request.get("slowest")
        if slowest is not None and (
            not isinstance(slowest, int) or isinstance(slowest, bool)
            or slowest < 1
        ):
            raise ServeError(E_PROTOCOL, "'slowest' must be a positive int")
        tenant = request.get("tenant")
        op = request.get("op")
        traces = self.spans.list(
            slowest=slowest,
            tenant=tenant if isinstance(tenant, str) else None,
            op=op if isinstance(op, str) else None,
        )
        return ok_response(
            spans=[trace.to_dict() for trace in traces],
            recorded=len(self.spans),
        )

    def _family_total(self, name: str) -> float:
        """Sum a counter family across all label combinations (0 if absent)."""
        family = self.metrics.get(name)
        if family is None:
            return 0.0
        return float(sum(
            child.value
            for child in family.children.values()
            if hasattr(child, "value")
        ))

    # ------------------------------------------------------------------
    # Wave execution (single device thread)
    # ------------------------------------------------------------------
    def _run_waves(self, waves):
        outcomes = []
        for wave in waves:
            outcomes.extend(self._run_wave(wave))
        return outcomes

    def _run_wave(self, wave: Wave):
        if self.injector is not None:
            self.injector.before_op(self._wave_index)
        wave_index = self._wave_index
        self._wave_index += 1
        dst, (src1, src2, src3) = wave.operands()
        log_start = len(self.session.log)
        attempts_mark = self.session.attempts_total
        traces = [
            request.timing["trace"]
            for request in wave.requests
            if "trace" in request.timing
        ]
        tracer = getattr(self.device, "tracer", None)
        if tracer is not None and traces:
            # Join key between the request span trees and the hardware
            # tracer's op events: every op frame the wave executes is
            # stamped with the member trace ids and the wave span label.
            tracer.span_context = (",".join(traces), f"wave:{wave_index}")
        device_start = time.perf_counter_ns()
        error: Optional[Exception] = None
        try:
            self.session.run_rows(wave.op, dst, src1, src2, src3)
        except Exception as exc:
            error = exc
        finally:
            device_end = time.perf_counter_ns()
            if tracer is not None:
                tracer.span_context = None
            attempts = [
                attempt.to_dict()
                for attempt in self.session.attempts_since(attempts_mark)
            ]
            wave_info = {
                "index": wave_index,
                "requests": len(wave.requests),
                "wave_op": wave.op.value,
            }
            for request in wave.requests:
                request.timing["device_start"] = device_start
                request.timing["device_end"] = device_end
                request.timing["attempts"] = attempts
                request.timing["wave"] = wave_info
        if error is not None:
            return [(request, error) for request in wave.requests]
        bad_keys = {
            (record.bank, record.subarray, record.address)
            for record in self.session.log[log_start:]
            if record.action == "unrecovered"
        }
        outcomes = []
        for request in wave.requests:
            if bad_keys & request.dst_keys:
                outcomes.append((request, ServeError(
                    E_FAULT,
                    "an unrecovered fault corrupted the destination; "
                    "rewrite the operands and retry",
                )))
            else:
                outcomes.append((request, None))
        return outcomes
