"""Wire protocol of the bulk-bitwise service: NDJSON over TCP.

One request per line, one JSON object per request; one response line
per request, echoing the request's ``id`` so clients may pipeline.
Commands (all requests carry ``cmd``, ``tenant`` and optionally ``id``):

``ping``
    Liveness probe; responds ``{"ok": true, "pong": true}``.
``create``
    ``{name, bits}`` -- allocate a named bitvector of ``bits`` bits,
    striped across the device's (bank, subarray) pairs and zero-filled.
``write``
    ``{name, data}`` -- store packed little-endian bits (hex string of
    ``ceil(bits / 8)`` bytes) into the vector.
``read``
    ``{name}`` -- read the vector back; responds ``{data: <hex>}``.
``op``
    ``{op, dst, src1[, src2[, src3]]}`` -- one of the nine bulk
    bitwise operations over same-shaped named vectors.  The server is
    free to *coalesce* concurrent ``op`` requests into one fused
    engine batch; the response arrives when the operation's batch has
    executed and verified.
``delete``
    ``{name}`` -- free the vector's rows.
``stats``
    Server-side totals (coalesced batches, backpressure, quota
    rejections, fault counters) plus the ``ambit_serve_*`` metric
    snapshot -- the programmatic face of ``repro top --url``.
``spans``
    Query the server's recent request traces (``repro spans``).
    ``{trace}`` fetches one trace by id; otherwise ``{slowest, tenant,
    op}`` filter the ring.  Responds ``{spans: [<trace>, ...]}`` where
    each trace carries the span tree and the critical-path stage
    breakdown (see :mod:`repro.obs.spans`).

Any request may additionally carry ``"detail": "timing"``; the
response then includes a ``timing`` object with the request's trace id
and its stage breakdown so far -- the wire form of a Server-Timing
header.

Errors respond ``{"ok": false, "error": <code>, "message": ...}``;
codes are the ``E_*`` constants below.  Two of them drive client-side
flow control: ``backpressure`` (the admission queue is full -- retry
later) and ``quota`` (a per-tenant limit was hit).

Bit packing is fixed little-endian: bit *i* of the vector is bit
``i % 8`` of byte ``i // 8`` (``numpy.packbits(bitorder="little")``),
and row images are the same byte stream chunked into rows -- so the
packed client payload and the device's uint64 row words agree without
any per-word swizzling on little-endian hosts.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

import numpy as np

#: Upper bound on one NDJSON line (and so on one write payload).
MAX_LINE_BYTES = 8 * 1024 * 1024

# Error codes -----------------------------------------------------------
E_PROTOCOL = "protocol"          # unparseable line / malformed request
E_UNKNOWN = "unknown_command"
E_NO_VECTOR = "no_such_vector"
E_EXISTS = "vector_exists"
E_SHAPE = "shape_mismatch"       # operand bit widths differ / bad arity
E_QUOTA = "quota"                # per-tenant limit (vectors/rows/inflight)
E_CAPACITY = "capacity"          # device out of rows (global, not tenant)
E_BACKPRESSURE = "backpressure"  # admission queue full; retry
E_FAULT = "fault"                # unrecovered fault hit the destination
E_NO_TRACE = "no_such_trace"     # trace id fell out of the span ring
E_INTERNAL = "internal"

#: Commands the server accepts.
COMMANDS = (
    "ping", "create", "write", "read", "op", "delete", "stats", "spans",
)


class ServeError(Exception):
    """A protocol-level failure with a wire error code."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


def encode_frame(obj: Dict[str, Any]) -> bytes:
    """One NDJSON line, compact separators, newline-terminated."""
    return json.dumps(obj, separators=(",", ":")).encode() + b"\n"


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one request line; raises :class:`ServeError` on junk."""
    if len(line) > MAX_LINE_BYTES:
        raise ServeError(E_PROTOCOL, f"line exceeds {MAX_LINE_BYTES} bytes")
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise ServeError(E_PROTOCOL, f"bad JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ServeError(E_PROTOCOL, "request must be a JSON object")
    return obj


def ok_response(request_id: Any = None, **fields: Any) -> Dict[str, Any]:
    """A success frame echoing the request id."""
    frame: Dict[str, Any] = {"ok": True}
    if request_id is not None:
        frame["id"] = request_id
    frame.update(fields)
    return frame


def error_response(
    request_id: Any, code: str, message: str
) -> Dict[str, Any]:
    """A failure frame echoing the request id."""
    frame: Dict[str, Any] = {"ok": False, "error": code, "message": message}
    if request_id is not None:
        frame["id"] = request_id
    return frame


# ----------------------------------------------------------------------
# Bit packing
# ----------------------------------------------------------------------
def pack_bits(bits: np.ndarray) -> str:
    """Bool/0-1 array -> hex string of little-endian packed bytes."""
    packed = np.packbits(np.asarray(bits, dtype=np.uint8), bitorder="little")
    return packed.tobytes().hex()

def unpack_bits(data_hex: str, bits: int) -> np.ndarray:
    """Hex payload -> bool array of exactly ``bits`` bits."""
    raw = payload_bytes(data_hex, bits)
    unpacked = np.unpackbits(
        np.frombuffer(raw, dtype=np.uint8), bitorder="little"
    )
    return unpacked[:bits].astype(bool)


def payload_bytes(data_hex: str, bits: int) -> bytes:
    """Validate and decode a ``write`` payload for a ``bits``-wide vector."""
    if not isinstance(data_hex, str):
        raise ServeError(E_PROTOCOL, "data must be a hex string")
    try:
        raw = bytes.fromhex(data_hex)
    except ValueError:
        raise ServeError(E_PROTOCOL, "data is not valid hex") from None
    expected = (bits + 7) // 8
    if len(raw) != expected:
        raise ServeError(
            E_SHAPE,
            f"payload is {len(raw)} byte(s); a {bits}-bit vector "
            f"needs exactly {expected}",
        )
    return raw


def bytes_to_rows(
    raw: bytes, nrows: int, row_bytes: int
) -> List[np.ndarray]:
    """Chunk a packed payload into ``nrows`` uint64 row images (zero-padded)."""
    padded = raw.ljust(nrows * row_bytes, b"\x00")
    return [
        np.frombuffer(
            padded[i * row_bytes:(i + 1) * row_bytes], dtype="<u8"
        ).copy()
        for i in range(nrows)
    ]


def rows_to_hex(images: List[np.ndarray], bits: int) -> str:
    """Concatenate row images and trim to the vector's payload size."""
    raw = b"".join(np.ascontiguousarray(img, dtype="<u8").tobytes()
                   for img in images)
    nbytes = (bits + 7) // 8
    return raw[:nbytes].hex()
