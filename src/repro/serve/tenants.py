"""Per-tenant vector namespaces, quotas, and admission control.

Tenants are named namespaces created on first use; each owns its
vectors and is bounded by a :class:`TenantQuota`: how many vectors, how
many device rows, and how many operations in flight at once.  Quota
rejections are cheap, synchronous, and *counted* -- the
``ambit_serve_quota_rejections_total{tenant, kind}`` family is how an
operator sees a noisy neighbour being clipped rather than silently
starving everyone else (the shared-accelerator framing of the In-DRAM
Bulk Bitwise Execution Engine survey).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.dram.chip import RowLocation
from repro.serve.alloc import StripedAllocator
from repro.serve.protocol import (
    E_EXISTS,
    E_NO_VECTOR,
    E_QUOTA,
    ServeError,
)


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant limits; a zero/negative value means unlimited."""

    max_vectors: int = 16
    max_rows: int = 512
    max_inflight: int = 64


@dataclass(frozen=True)
class VectorHandle:
    """One named, placed bitvector."""

    tenant: str
    name: str
    bits: int
    rows: Tuple[RowLocation, ...]


@dataclass
class Tenant:
    """One namespace and its live accounting."""

    name: str
    vectors: Dict[str, VectorHandle] = field(default_factory=dict)
    inflight: int = 0

    @property
    def rows_used(self) -> int:
        return sum(len(v.rows) for v in self.vectors.values())


class TenantRegistry:
    """All tenants of one server, backed by one allocator."""

    def __init__(
        self,
        allocator: StripedAllocator,
        quota: Optional[TenantQuota] = None,
        metrics=None,
    ):
        self.allocator = allocator
        self.quota = quota if quota is not None else TenantQuota()
        self.tenants: Dict[str, Tenant] = {}
        self._m_quota = None
        if metrics is not None:
            self._m_quota = metrics.counter(
                "ambit_serve_quota_rejections_total",
                "Requests rejected by a per-tenant quota, by kind",
                labels=("tenant", "kind"),
            )
            tenants_g = metrics.gauge(
                "ambit_serve_tenants", "Live tenant namespaces"
            )
            vectors_g = metrics.gauge(
                "ambit_serve_vectors", "Live named bitvectors across tenants"
            )
            slots_g = metrics.gauge(
                "ambit_serve_slots_free",
                "Unallocated row slots on the device",
            )

            def _collect() -> None:
                tenants_g.set(len(self.tenants))
                vectors_g.set(
                    sum(len(t.vectors) for t in self.tenants.values())
                )
                slots_g.set(self.allocator.slots_free)

            metrics.register_collector(_collect)

    # ------------------------------------------------------------------
    def tenant(self, name: str) -> Tenant:
        """The tenant named ``name`` (created on first use)."""
        entry = self.tenants.get(name)
        if entry is None:
            entry = self.tenants[name] = Tenant(name=name)
        return entry

    def _reject(self, tenant: str, kind: str, message: str) -> ServeError:
        if self._m_quota is not None:
            self._m_quota.labels(tenant=tenant, kind=kind).inc()
        return ServeError(E_QUOTA, message)

    # ------------------------------------------------------------------
    def create_vector(
        self, tenant_name: str, name: str, bits: int
    ) -> VectorHandle:
        """Allocate a vector; raises quota/capacity/exists errors."""
        entry = self.tenant(tenant_name)
        if name in entry.vectors:
            raise ServeError(
                E_EXISTS, f"vector {name!r} already exists for this tenant"
            )
        quota = self.quota
        if 0 < quota.max_vectors <= len(entry.vectors):
            raise self._reject(
                tenant_name,
                "vectors",
                f"tenant {tenant_name!r} is at its vector quota "
                f"({quota.max_vectors})",
            )
        nrows = self.allocator.rows_for(bits)
        if 0 < quota.max_rows < entry.rows_used + nrows:
            raise self._reject(
                tenant_name,
                "rows",
                f"tenant {tenant_name!r} would exceed its row quota "
                f"({entry.rows_used} + {nrows} > {quota.max_rows})",
            )
        rows = self.allocator.allocate(nrows)
        handle = VectorHandle(
            tenant=tenant_name, name=name, bits=bits, rows=rows
        )
        entry.vectors[name] = handle
        return handle

    def delete_vector(self, tenant_name: str, name: str) -> VectorHandle:
        """Free a vector's rows; returns the dropped handle."""
        handle = self.lookup(tenant_name, name)
        del self.tenant(tenant_name).vectors[name]
        self.allocator.free(handle.rows)
        return handle

    def lookup(self, tenant_name: str, name: str) -> VectorHandle:
        """The handle for ``name``; raises ``no_such_vector``."""
        entry = self.tenants.get(tenant_name)
        handle = entry.vectors.get(name) if entry is not None else None
        if handle is None:
            raise ServeError(
                E_NO_VECTOR,
                f"tenant {tenant_name!r} has no vector {name!r}",
            )
        return handle

    # ------------------------------------------------------------------
    # Admission (in-flight operation bound)
    # ------------------------------------------------------------------
    def admit(self, tenant_name: str) -> None:
        """Count one op in flight; raises the inflight quota."""
        entry = self.tenant(tenant_name)
        if 0 < self.quota.max_inflight <= entry.inflight:
            raise self._reject(
                tenant_name,
                "inflight",
                f"tenant {tenant_name!r} has {entry.inflight} operation(s) "
                f"in flight (limit {self.quota.max_inflight})",
            )
        entry.inflight += 1

    def release(self, tenant_name: str) -> None:
        """Return one in-flight credit."""
        entry = self.tenants.get(tenant_name)
        if entry is not None and entry.inflight > 0:
            entry.inflight -= 1
