"""Serving-layer benchmark: coalesced versus one-op-per-batch dispatch.

The service's entire reason to exist is the claim that a *coalescing*
front door turns thousands of small concurrent client ops into the
bulk shape the engine is fast at.  This bench measures exactly that
claim and nothing else: the same seeded client swarm (every client
synchronously awaiting each op -- the worst case for batching, since
nothing arrives pre-grouped) runs twice against self-hosted servers
that differ in a single bit, ``ServeConfig.coalesce``:

* **coalesced** -- the drain loop fuses whatever is queued into
  hazard-safe waves (one engine batch per wave);
* **single** -- the drain loop dispatches one request per batch, i.e.
  the front door without its tentpole.

Both arms verify bit-exactness through the load generator's read-back
(a throughput number from a server that corrupted state would be
worthless), quotas and backpressure are opened wide so admission noise
cannot pollute the comparison, and each arm keeps its best of
``repeats`` runs to damp scheduler jitter.  The paper-shaped claim --
amortizing fixed per-batch cost over many rows is where in-DRAM
throughput comes from (Ambit Section 7.1 at memory scale, the batched
engine at per-dispatch scale) -- becomes a single recorded ratio:
``speedup = coalesced.throughput / single.throughput``, gated in
``benchmarks/results/BENCH_serve.json`` by ``repro bench --check``.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional

from repro.errors import ConfigError
from repro.serve.loadgen import (
    VECTOR_NAMES,
    LoadGenConfig,
    run_loadgen,
)
from repro.serve.server import ServeConfig


@dataclass(frozen=True)
class ServeBenchConfig:
    """One A/B run; deterministic given ``seed``."""

    clients: int = 64
    ops: int = 8          # awaited ops per client, per arm
    bits: int = 2048
    seed: int = 7
    repeats: int = 3      # best-of, per arm

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ConfigError` on bad sizes."""
        if self.clients < 1 or self.ops < 1 or self.bits < 1:
            raise ConfigError("clients, ops and bits must all be >= 1")
        if self.repeats < 1:
            raise ConfigError(f"repeats must be >= 1; got {self.repeats}")


def _serve_config(
    config: ServeBenchConfig, coalesce: bool, trace: bool = True
) -> ServeConfig:
    """A server sized so *only* the coalesce bit differs between arms.

    Quotas unlimited and the queue far above the client count: any
    rejection would add client retries and measure flow control, not
    batching.
    """
    row_bytes = 512
    row_bits = row_bytes * 8
    rows_per_vector = max(1, -(-config.bits // row_bits))
    slots_per_vector = max(1, -(-rows_per_vector // 4))
    slots = (config.clients * len(VECTOR_NAMES) + 8) * slots_per_vector
    return ServeConfig(
        banks=4,
        rows=slots + 24,
        row_bytes=row_bytes,
        coalesce=coalesce,
        max_queue=max(4096, config.clients * 4),
        max_batch_ops=1024,
        max_vectors=0,
        max_rows=0,
        max_inflight=0,
        seed=config.seed,
        trace=trace,
    )


def _run_arm(
    config: ServeBenchConfig, coalesce: bool, trace: bool = True
) -> Dict[str, Any]:
    best: Optional[Dict[str, Any]] = None
    for repeat in range(config.repeats):
        report = run_loadgen(LoadGenConfig(
            clients=config.clients,
            ops=config.ops,
            bits=config.bits,
            seed=config.seed,          # same swarm every repeat and arm
            concurrency=config.clients,
            quota_probe=False,
            burst=0,
            serve=_serve_config(config, coalesce, trace),
        ))
        if not report.bit_exact:
            raise AssertionError(
                f"{'coalesced' if coalesce else 'single'} arm lost "
                f"{report.mismatches} bit(s) on repeat {repeat}; a "
                f"throughput number from a corrupting server is void"
            )
        totals = report.server_totals
        batches = totals.get("batches", 0.0)
        arm = {
            "throughput_ops_s": report.throughput_ops_s,
            "wall_s": report.wall_s,
            "p50_ms": report.p50_ms,
            "p99_ms": report.p99_ms,
            "ops_ok": report.ops_ok,
            "batches": batches,
            "coalesced_batches": totals.get("coalesced_batches", 0.0),
            "mean_batch_requests": (
                report.ops_ok / batches if batches else 0.0
            ),
            "bit_exact": report.bit_exact,
        }
        if best is None or arm["throughput_ops_s"] > best["throughput_ops_s"]:
            best = arm
    assert best is not None
    return best


def run_serve_bench(
    config: Optional[ServeBenchConfig] = None,
) -> Dict[str, Any]:
    """Both arms; raises on any bit-exactness violation."""
    config = config if config is not None else ServeBenchConfig()
    config.validate()
    coalesced = _run_arm(config, coalesce=True)
    single = _run_arm(config, coalesce=False)
    return {
        "bench": "serve",
        "cpu_count": os.cpu_count() or 1,
        "config": asdict(config),
        "coalesced": coalesced,
        "single": single,
        "speedup": (
            coalesced["throughput_ops_s"] / single["throughput_ops_s"]
            if single["throughput_ops_s"]
            else 0.0
        ),
        "bit_exact": coalesced["bit_exact"] and single["bit_exact"],
    }


def run_spans_overhead_bench(
    config: Optional[ServeBenchConfig] = None,
) -> Dict[str, Any]:
    """Request tracing on versus off, same swarm: the span tax.

    Per-request span materialization (checkpoint stamps, breakdown
    arithmetic, ring insertion) rides the serving hot path, so it must
    pay its way: the recorded ``overhead`` is
    ``1 - traced.throughput / untraced.throughput`` (positive = tracing
    costs throughput), gated in ``BENCH_spans_overhead.json`` against
    an absolute ceiling rather than a baseline ratio -- the claim is
    "tracing is cheap", not "tracing costs what it cost last week".
    """
    config = config if config is not None else ServeBenchConfig()
    config.validate()
    traced = _run_arm(config, coalesce=True, trace=True)
    untraced = _run_arm(config, coalesce=True, trace=False)
    overhead = (
        1.0 - traced["throughput_ops_s"] / untraced["throughput_ops_s"]
        if untraced["throughput_ops_s"]
        else 0.0
    )
    return {
        "bench": "spans_overhead",
        "cpu_count": os.cpu_count() or 1,
        "config": asdict(config),
        "traced": traced,
        "untraced": untraced,
        "overhead": overhead,
        "bit_exact": traced["bit_exact"] and untraced["bit_exact"],
    }


def format_spans_overhead_bench(payload: Dict[str, Any]) -> str:
    """Human-readable tracing-tax summary."""
    config = payload["config"]
    lines = [
        "ambit spans bench: request tracing on vs off",
        f"  {config['clients']} clients x {config['ops']} ops x "
        f"{config['bits']} bits  seed {config['seed']}  "
        f"best of {config['repeats']}",
    ]
    for name in ("traced", "untraced"):
        arm = payload[name]
        lines.append(
            f"  {name:>9}: {arm['throughput_ops_s']:8.0f} ops/s  "
            f"p99 {arm['p99_ms']:6.2f} ms"
        )
    lines.append(
        f"  overhead {payload['overhead'] * 100:+.1f}%  "
        f"bit-exact {'yes' if payload['bit_exact'] else 'NO'}"
    )
    if "max_overhead" in payload:
        lines.append(f"  ceiling {payload['max_overhead'] * 100:.0f}%")
    return "\n".join(lines)


def format_serve_bench(payload: Dict[str, Any]) -> str:
    """Human-readable A/B summary."""
    config = payload["config"]
    lines = [
        "ambit serve bench: coalesced vs one-op-per-batch",
        f"  {config['clients']} clients x {config['ops']} ops x "
        f"{config['bits']} bits  seed {config['seed']}  "
        f"best of {config['repeats']}",
    ]
    for name in ("coalesced", "single"):
        arm = payload[name]
        lines.append(
            f"  {name:>9}: {arm['throughput_ops_s']:8.0f} ops/s  "
            f"p99 {arm['p99_ms']:6.2f} ms  "
            f"{arm['batches']:.0f} batches "
            f"({arm['mean_batch_requests']:.1f} req/batch)"
        )
    lines.append(
        f"  speedup {payload['speedup']:.2f}x  "
        f"bit-exact {'yes' if payload['bit_exact'] else 'NO'}"
    )
    if "speedup_tier" in payload:
        lines.append(
            f"  floor {payload.get('required_speedup', 0)}x "
            f"(tier {payload['speedup_tier']})"
        )
    return "\n".join(lines)
