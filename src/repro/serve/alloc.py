"""Striped row allocation for served bitvectors.

The driver's lesson from PR 2 applies unchanged to a multi-tenant
service: bulk operations are cheap when co-operating rows sit at
*matching local addresses* across (bank, subarray) stripes, because
every such row triple compiles to the same microprogram plan -- one
PlanCache entry serves thousands of rows.  The allocator therefore
hands out rows in **slots**: one slot is one local D-group address
reserved across *every* stripe of the device.  Row *i* of any vector
sits on stripe ``i % stripes`` -- the walk starts at stripe 0 for
*every* vector, because the engine pairs operands row-by-row and each
(dst, src1, ...) triple must share a (bank, subarray); a per-vector
offset would misalign triples the moment two vectors appear in one
``op``.  Multi-row vectors still fan across banks (row 0 on bank 0,
row 1 on bank 1, ...), preserving bank-level parallelism for the
sharded dispatch tiers.

Consequences the serving layer relies on:

* any two vectors occupy disjoint rows (slots are exclusive), so
  requests from different tenants can never alias each other;
* operands of one ``op`` request line up stripe-by-stripe, satisfying
  the engine's same-(bank, subarray) operand rule by construction;
* a coalesced wave over many vectors touches few distinct local
  addresses, keeping the plan cache hot (and bounded -- see
  :attr:`repro.engine.plan.PlanCache.max_plans`).

The tail of each subarray's D-group is reserved: two scratch rows for
the recovery ladder (DCC probes, degraded xor) and an optional pool of
spare rows donated to the repair map.
"""

from __future__ import annotations

import heapq
from math import ceil
from typing import List, Tuple

from repro.dram.chip import RowLocation
from repro.dram.geometry import DramGeometry
from repro.errors import ConfigError
from repro.serve.protocol import E_CAPACITY, ServeError


class StripedAllocator:
    """Slot-granular row allocator over every (bank, subarray) stripe."""

    def __init__(
        self,
        geometry: DramGeometry,
        scratch_rows: int = 2,
        spare_rows: int = 0,
    ):
        self.geometry = geometry
        #: Stripe order: bank-major so consecutive rows of one vector
        #: land in different banks (bank-parallel batches).
        self.stripes: Tuple[Tuple[int, int], ...] = tuple(
            (bank, sub)
            for sub in range(geometry.subarrays_per_bank)
            for bank in range(geometry.banks)
        )
        data_rows = geometry.subarray.data_rows
        reserved = scratch_rows + spare_rows
        usable = data_rows - reserved
        if usable < 1:
            raise ConfigError(
                f"geometry exposes {data_rows} data rows per subarray but "
                f"{reserved} are reserved (scratch + spares); nothing left "
                f"to serve"
            )
        self._usable = usable
        self._free: List[int] = list(range(usable))
        heapq.heapify(self._free)
        #: Per-subarray rows the recovery ladder may clobber.
        self.scratch_rows: Tuple[int, ...] = tuple(
            range(usable, usable + scratch_rows)
        )
        #: Per-subarray rows donated to the repair map's spare pool.
        self.spare_rows: Tuple[int, ...] = tuple(
            range(usable + scratch_rows, usable + reserved)
        )

    # ------------------------------------------------------------------
    @property
    def row_bits(self) -> int:
        return self.geometry.subarray.row_bits

    @property
    def slots_total(self) -> int:
        return self._usable

    @property
    def slots_free(self) -> int:
        return len(self._free)

    @property
    def rows_per_slot(self) -> int:
        return len(self.stripes)

    def rows_for(self, bits: int) -> int:
        """Rows a ``bits``-wide vector occupies (>= 1)."""
        if bits < 1:
            raise ServeError(E_CAPACITY, f"bits must be >= 1; got {bits}")
        return ceil(bits / self.row_bits)

    # ------------------------------------------------------------------
    def allocate(self, nrows: int) -> Tuple[RowLocation, ...]:
        """Reserve ``nrows`` rows; raises ``capacity`` when full.

        Lowest-address slots first (deterministic under a fixed request
        order); row *i* always lands on stripe ``i % stripes`` so that
        equal-width vectors line up triple-by-triple in any ``op``.
        """
        n = len(self.stripes)
        slots = ceil(nrows / n)
        if slots > len(self._free):
            raise ServeError(
                E_CAPACITY,
                f"device is out of rows: need {slots} slot(s), "
                f"{len(self._free)} free (of {self._usable})",
            )
        addresses = [heapq.heappop(self._free) for _ in range(slots)]
        rows = []
        for i in range(nrows):
            bank, sub = self.stripes[i % n]
            rows.append(RowLocation(bank, sub, addresses[i // n]))
        return tuple(rows)

    def free(self, rows: Tuple[RowLocation, ...]) -> None:
        """Return a vector's slots to the pool."""
        for address in sorted({loc.address for loc in rows}):
            heapq.heappush(self._free, address)
