"""Deterministic load generator and SLO soak for the serving layer.

``repro loadgen`` is to the service what ``repro chaos`` is to the
fault stack: a seeded, self-verifying acceptance run.  It simulates
*N* logical clients (thousands, bounded by a concurrency window so file
descriptors stay sane), each owning four named vectors and a local
numpy model of their contents.  Every client streams a seeded sequence
of random bulk ops, applies each acknowledged op to its model, retries
on ``backpressure``/``quota`` with deterministic backoff, resynchronises
from the server on a ``fault`` error, and finally reads every vector
back -- **bit-exactness is the pass condition**, not a sampled spot
check.

Two deliberately adversarial sub-scenarios make the protection
machinery observable instead of hoping load happens to trigger it:

* a **quota probe** (client 0) creates vectors until the per-tenant
  vector quota rejects it, then deletes them;
* a **pipelined burst** (client 0) fires a window of ops without
  awaiting responses, overrunning the in-flight quota and -- because
  the admission queue is finite -- the coalescer's backpressure bound.

The report carries client-side latency percentiles (exact, from every
recorded round trip), throughput over the op phase, the server's own
``stats`` totals, and an expectation checklist (coalescing happened,
backpressure fired, quotas clipped, faults were seen) that the CI smoke
job asserts.  Exit codes mirror ``repro chaos``: 0 pass, 1 fail,
2 bad config.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.serve.protocol import pack_bits, unpack_bits
from repro.serve.server import BulkBitwiseServer, ServeConfig

#: The nine ops, name -> (arity, numpy model).
OP_MODELS: Dict[str, Tuple[int, Any]] = {
    "copy": (1, lambda a: a.copy()),
    "not": (1, lambda a: ~a),
    "and": (2, lambda a, b: a & b),
    "or": (2, lambda a, b: a | b),
    "nand": (2, lambda a, b: ~(a & b)),
    "nor": (2, lambda a, b: ~(a | b)),
    "xor": (2, lambda a, b: a ^ b),
    "xnor": (2, lambda a, b: ~(a ^ b)),
    "maj": (3, lambda a, b, c: (a & b) | (b & c) | (a & c)),
}
OP_NAMES = tuple(sorted(OP_MODELS))
VECTOR_NAMES = ("a", "b", "c", "d")


@dataclass(frozen=True)
class LoadGenConfig:
    """One soak run, CLI-mappable; fully determined by ``seed``."""

    clients: int = 64
    ops: int = 16                  # bulk ops per client
    bits: int = 4096               # width of every client vector
    seed: int = 0
    concurrency: int = 128         # clients active at once (fd bound)
    p99_slo_ms: float = 500.0
    connect: Optional[str] = None  # "host:port"; None = self-hosted
    jobs: int = 1                  # self-hosted device workers
    fault_rate: float = 0.0        # self-hosted fault injection
    quota_probe: bool = True
    burst: int = 96                # pipelined ops in the burst (0 = off)
    max_retries: int = 64
    expect_coalescing: bool = False
    expect_backpressure: bool = False
    expect_quota: bool = False
    expect_faults: bool = False
    #: Explicit self-hosted server config (None = derive via
    #: :meth:`serve_config`); ignored when ``connect`` is set.
    serve: Optional[ServeConfig] = None

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ConfigError` on bad sizes."""
        if self.clients < 1:
            raise ConfigError(f"clients must be >= 1; got {self.clients}")
        if self.ops < 1:
            raise ConfigError(f"ops must be >= 1; got {self.ops}")
        if self.bits < 1:
            raise ConfigError(f"bits must be >= 1; got {self.bits}")
        if self.concurrency < 1:
            raise ConfigError("concurrency must be >= 1")
        if self.p99_slo_ms <= 0:
            raise ConfigError("p99_slo_ms must be > 0")
        if self.burst < 0 or self.max_retries < 1:
            raise ConfigError("burst must be >= 0 and max_retries >= 1")
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ConfigError("fault_rate must be in [0, 1]")
        if self.connect is not None:
            host, _, port = self.connect.rpartition(":")
            if not host or not port.isdigit():
                raise ConfigError(
                    f"connect must look like host:port; got {self.connect!r}"
                )

    # ------------------------------------------------------------------
    def serve_config(self) -> ServeConfig:
        """The self-hosted server sized for this soak.

        Rows scale with the client count (each vector burns whole
        slots), the admission queue is kept *small* relative to the
        burst so backpressure is reachable, and the in-flight quota
        sits above the queue bound so the burst exercises both limits.
        """
        row_bytes = 512
        row_bits = row_bytes * 8
        rows_per_vector = max(1, -(-self.bits // row_bits))
        stripes = 4  # banks below
        slots_per_vector = max(1, -(-rows_per_vector // stripes))
        slots = (self.clients * len(VECTOR_NAMES) + 16) * slots_per_vector
        return ServeConfig(
            banks=4,
            rows=slots + 24,  # + 18 reserved + scratch/spares + slack
            row_bytes=row_bytes,
            jobs=self.jobs,
            max_queue=16,
            max_batch_ops=512,
            max_vectors=len(VECTOR_NAMES) + 4,
            max_rows=0,  # row budget covered by the vector quota here
            max_inflight=64,
            fault_rate=self.fault_rate,
            fault_ops=64,
            seed=self.seed,
        )


@dataclass
class LoadReport:
    """Everything a pass/fail decision and a human need."""

    config: LoadGenConfig
    ops_sent: int = 0
    ops_ok: int = 0
    retries: int = 0
    backpressure_hits: int = 0
    quota_hits: int = 0
    fault_errors: int = 0
    mismatches: int = 0
    wall_s: float = 0.0
    throughput_ops_s: float = 0.0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0
    server_totals: Dict[str, float] = field(default_factory=dict)
    expectations: List[Tuple[str, bool]] = field(default_factory=list)

    @property
    def bit_exact(self) -> bool:
        return self.mismatches == 0

    @property
    def slo_ok(self) -> bool:
        return self.p99_ms <= self.config.p99_slo_ms

    @property
    def ok(self) -> bool:
        return (
            self.bit_exact
            and self.slo_ok
            and self.server_totals.get("faults_unrecovered", 0.0) == 0.0
            and all(passed for _, passed in self.expectations)
        )

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1


# ----------------------------------------------------------------------
# Client machinery
# ----------------------------------------------------------------------
class _Shared:
    """Accumulators every logical client writes into."""

    def __init__(self, config: LoadGenConfig):
        self.config = config
        self.semaphore = asyncio.Semaphore(config.concurrency)
        self.latencies_ns: List[int] = []
        self.report = LoadReport(config=config)


class _Client:
    def __init__(self, index: int, host: str, port: int, shared: _Shared):
        self.index = index
        self.host = host
        self.port = port
        self.shared = shared
        self.config = shared.config
        self.rng = np.random.default_rng([shared.config.seed, index])
        self.tenant = f"t{index:04d}"
        self.model: Dict[str, np.ndarray] = {}
        # Pre-draw the whole op schedule so retries/backoff cannot
        # perturb which ops run (the soak is seed-deterministic).
        self.schedule = [
            (
                OP_NAMES[int(self.rng.integers(len(OP_NAMES)))],
                tuple(int(j) for j in self.rng.permutation(len(VECTOR_NAMES))),
            )
            for _ in range(shared.config.ops)
        ]

    # -- connection scope ----------------------------------------------
    async def _phase(self, fn):
        async with self.shared.semaphore:
            reader, writer = await asyncio.open_connection(self.host, self.port)
            try:
                return await fn(reader, writer)
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

    async def _rpc(self, reader, writer, obj) -> Dict[str, Any]:
        writer.write(json.dumps(obj, separators=(",", ":")).encode() + b"\n")
        await writer.drain()
        line = await reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    async def _rpc_timed(self, reader, writer, obj) -> Dict[str, Any]:
        started = time.perf_counter_ns()
        response = await self._rpc(reader, writer, obj)
        self.shared.latencies_ns.append(time.perf_counter_ns() - started)
        return response

    async def _op_with_retry(self, reader, writer, obj) -> Dict[str, Any]:
        report = self.shared.report
        response: Dict[str, Any] = {}
        for attempt in range(self.config.max_retries):
            response = await self._rpc_timed(reader, writer, obj)
            if response.get("ok"):
                return response
            code = response.get("error")
            if code == "backpressure":
                report.backpressure_hits += 1
            elif code == "quota":
                report.quota_hits += 1
            else:
                return response  # fault / shape / internal: caller's call
            report.retries += 1
            await asyncio.sleep(0.001 * (attempt + 1))
        return response

    # -- phases --------------------------------------------------------
    async def setup(self) -> None:
        async def run(reader, writer):
            for name in VECTOR_NAMES:
                response = await self._rpc(reader, writer, {
                    "cmd": "create", "tenant": self.tenant,
                    "name": name, "bits": self.config.bits,
                })
                if not response.get("ok"):
                    raise ConfigError(
                        f"setup failed for {self.tenant}/{name}: "
                        f"{response.get('message')}"
                    )
                value = self.rng.integers(
                    0, 2, self.config.bits
                ).astype(bool)
                response = await self._rpc(reader, writer, {
                    "cmd": "write", "tenant": self.tenant,
                    "name": name, "data": pack_bits(value),
                })
                if not response.get("ok"):
                    raise ConfigError(
                        f"seed write failed for {self.tenant}/{name}: "
                        f"{response.get('message')}"
                    )
                self.model[name] = value

        await self._phase(run)

    async def run_ops(self) -> None:
        report = self.shared.report

        async def run(reader, writer):
            for op_name, perm in self.schedule:
                arity, fn = OP_MODELS[op_name]
                dst = VECTOR_NAMES[perm[0]]
                srcs = [VECTOR_NAMES[perm[1 + i]] for i in range(arity)]
                request = {
                    "cmd": "op", "tenant": self.tenant,
                    "op": op_name, "dst": dst,
                }
                for i, src in enumerate(srcs):
                    request[f"src{i + 1}"] = src
                report.ops_sent += 1
                response = await self._op_with_retry(reader, writer, request)
                if response.get("ok"):
                    report.ops_ok += 1
                    self.model[dst] = fn(*(self.model[s] for s in srcs))
                elif response.get("error") == "fault":
                    report.fault_errors += 1
                    await self._resync(reader, writer)
                # anything else: model untouched; verify will catch a
                # server that acked state it does not hold.

        await self._phase(run)

    async def _resync(self, reader, writer) -> None:
        """Adopt the server's state after an unrecovered fault."""
        for name in VECTOR_NAMES:
            response = await self._rpc(reader, writer, {
                "cmd": "read", "tenant": self.tenant, "name": name,
            })
            if response.get("ok"):
                self.model[name] = unpack_bits(
                    response["data"], self.config.bits
                )

    async def quota_probe(self) -> None:
        """Create vectors until the quota clips us, then clean up."""
        async def run(reader, writer):
            created = []
            for i in range(256):
                response = await self._rpc_timed(reader, writer, {
                    "cmd": "create", "tenant": self.tenant,
                    "name": f"probe{i}", "bits": self.config.bits,
                })
                if response.get("ok"):
                    created.append(f"probe{i}")
                    continue
                if response.get("error") == "quota":
                    self.shared.report.quota_hits += 1
                break
            for name in created:
                await self._rpc(reader, writer, {
                    "cmd": "delete", "tenant": self.tenant, "name": name,
                })

        await self._phase(run)

    async def burst(self) -> None:
        """Pipeline a window of identical ops without awaiting.

        Every burst op computes ``c = a xor b``; whether one or all of
        them land, the final state of ``c`` is the same, so the burst
        stays verifiable no matter which subset the in-flight quota or
        the admission queue rejects.
        """
        report = self.shared.report

        async def run(reader, writer):
            window = self.config.burst
            for i in range(window):
                writer.write(json.dumps({
                    "cmd": "op", "tenant": self.tenant, "op": "xor",
                    "dst": "c", "src1": "a", "src2": "b", "id": i,
                }, separators=(",", ":")).encode() + b"\n")
            await writer.drain()
            any_ok = False
            for _ in range(window):
                response = json.loads(await reader.readline())
                report.ops_sent += 1
                if response.get("ok"):
                    report.ops_ok += 1
                    any_ok = True
                elif response.get("error") == "backpressure":
                    report.backpressure_hits += 1
                elif response.get("error") == "quota":
                    report.quota_hits += 1
                elif response.get("error") == "fault":
                    report.fault_errors += 1
            if any_ok:
                self.model["c"] = self.model["a"] ^ self.model["b"]
            # Faults (or nothing landing) leave 'c' ambiguous only in
            # the fault case; resync settles it either way.
            if report.fault_errors:
                await self._resync(reader, writer)

        await self._phase(run)

    async def verify(self) -> None:
        async def run(reader, writer):
            for name in VECTOR_NAMES:
                response = await self._rpc(reader, writer, {
                    "cmd": "read", "tenant": self.tenant, "name": name,
                })
                if not response.get("ok"):
                    self.shared.report.mismatches += self.config.bits
                    continue
                got = unpack_bits(response["data"], self.config.bits)
                self.shared.report.mismatches += int(
                    (got != self.model[name]).sum()
                )

        await self._phase(run)


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------
async def _fetch_stats(host: str, port: int) -> Dict[str, float]:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(b'{"cmd":"stats","tenant":"loadgen"}\n')
        await writer.drain()
        response = json.loads(await reader.readline())
        return dict(response.get("totals", {}))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _quantile_ms(samples: List[int], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[rank] / 1e6


async def _run(config: LoadGenConfig) -> LoadReport:
    server: Optional[BulkBitwiseServer] = None
    if config.connect is None:
        server = BulkBitwiseServer(
            config.serve if config.serve is not None
            else config.serve_config()
        )
        await server.start()
        host, port = server.config.host, server.port
    else:
        raw_host, _, raw_port = config.connect.rpartition(":")
        host, port = raw_host, int(raw_port)

    shared = _Shared(config)
    report = shared.report
    try:
        clients = [
            _Client(i, host, port, shared) for i in range(config.clients)
        ]
        await asyncio.gather(*(c.setup() for c in clients))

        started = time.perf_counter()
        await asyncio.gather(*(c.run_ops() for c in clients))
        report.wall_s = time.perf_counter() - started

        probe = clients[0]
        if config.quota_probe:
            await probe.quota_probe()
        if config.burst > 0:
            await probe.burst()

        await asyncio.gather(*(c.verify() for c in clients))
        report.server_totals = await _fetch_stats(host, port)
    finally:
        if server is not None:
            await server.close()

    report.throughput_ops_s = (
        report.ops_ok / report.wall_s if report.wall_s > 0 else 0.0
    )
    report.p50_ms = _quantile_ms(shared.latencies_ns, 0.50)
    report.p95_ms = _quantile_ms(shared.latencies_ns, 0.95)
    report.p99_ms = _quantile_ms(shared.latencies_ns, 0.99)

    totals = report.server_totals
    if config.expect_coalescing:
        report.expectations.append((
            "coalesced batches on the server",
            totals.get("coalesced_batches", 0.0) >= 1.0,
        ))
    if config.expect_backpressure:
        report.expectations.append((
            "backpressure rejections observed",
            report.backpressure_hits >= 1
            or totals.get("backpressure", 0.0) >= 1.0,
        ))
    if config.expect_quota:
        report.expectations.append((
            "quota rejections observed",
            report.quota_hits >= 1
            or totals.get("quota_rejections", 0.0) >= 1.0,
        ))
    if config.expect_faults:
        report.expectations.append((
            "injected faults surfaced and were handled",
            totals.get("faults_recovered", 0.0)
            + totals.get("faults_unrecovered", 0.0)
            + report.fault_errors
            >= 1.0,
        ))
    return report


def run_loadgen(config: Optional[LoadGenConfig] = None) -> LoadReport:
    """Execute one soak; raises only :class:`ConfigError`."""
    config = config if config is not None else LoadGenConfig()
    config.validate()
    return asyncio.run(_run(config))


def format_loadgen(report: LoadReport) -> str:
    """Human-readable soak summary, ``repro chaos`` style."""
    config = report.config
    lines = [
        "ambit serve load soak",
        f"  clients {config.clients}  ops/client {config.ops}  "
        f"bits {config.bits}  seed {config.seed}",
        f"  target {'self-hosted' if config.connect is None else config.connect}"
        f"  concurrency {config.concurrency}",
        f"  ops: sent {report.ops_sent}  ok {report.ops_ok}  "
        f"retries {report.retries}",
        f"  rejections: backpressure {report.backpressure_hits}  "
        f"quota {report.quota_hits}  fault errors {report.fault_errors}",
        f"  latency ms: p50 {report.p50_ms:.2f}  p95 {report.p95_ms:.2f}  "
        f"p99 {report.p99_ms:.2f}  (SLO p99 <= {config.p99_slo_ms:.0f})",
        f"  throughput {report.throughput_ops_s:.0f} ops/s over "
        f"{report.wall_s:.2f} s",
    ]
    totals = report.server_totals
    if totals:
        lines.append(
            f"  server: batches {totals.get('batches', 0):.0f}  "
            f"coalesced {totals.get('coalesced_batches', 0):.0f}  "
            f"faults recovered {totals.get('faults_recovered', 0):.0f}  "
            f"unrecovered {totals.get('faults_unrecovered', 0):.0f}"
        )
    for label, passed in report.expectations:
        lines.append(f"  [{'ok  ' if passed else 'FAIL'}] expected {label}")
    lines.append(
        f"  bit-exact: {'yes' if report.bit_exact else f'NO ({report.mismatches} bit(s))'}  "
        f"slo: {'ok' if report.slo_ok else 'VIOLATED'}"
    )
    lines.append(f"  verdict: {'PASS' if report.ok else 'FAIL'}")
    return "\n".join(lines)
