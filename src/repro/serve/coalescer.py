"""The request coalescer: many small ops in, few fused batches out.

Ambit's throughput comes from amortizing fixed costs over bulk work --
row-activation sequences over huge bitvectors in the paper, plan
compilation and batch dispatch in this stack.  A service front door
inverts the shape: thousands of clients each submit *one* small
operation at a time, and executing them one-per-batch pays the full
per-batch overhead (engine planning/report, executor hand-off, dispatch
tier selection) per row triple.  The coalescer restores the bulk shape:

1. every ``op`` request lands in one bounded :class:`asyncio.Queue`
   (overflow = ``backpressure`` error, the client retries -- admission
   control at the front door rather than unbounded buffering);
2. a single drain loop pulls whatever is queued (up to
   ``max_batch_ops``) and partitions it into **waves**: groups that
   share one :class:`~repro.core.microprograms.BulkOp` and are mutually
   hazard-free;
3. each wave executes as *one* ``run_rows`` batch on the device --
   through the fault-tolerant session, the plan cache, and the sharded
   device's dispatch tiers -- and every member request's future
   resolves from the wave's outcome.

Hazard rules make coalescing safe under arbitrary concurrency: queue
order is the semantic order, and a request may only be placed in (or
reordered ahead into) a wave if its rows do not conflict with any
*earlier-queued* request left behind in a later wave.  Concretely, for
each request we find the last wave it conflicts with (destination
overlapping any rows, or any rows overlapping a destination) and join
the first same-op wave strictly after it.  Requests over disjoint
vectors -- the common case, since the allocator gives every vector
exclusive slots -- commute freely, so a mixed drain of nine op kinds
still forms nine big waves instead of a wave per run of equal ops.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.microprograms import BulkOp
from repro.dram.chip import RowLocation
from repro.serve.protocol import E_BACKPRESSURE, ServeError

#: Request-count buckets of one executed wave.
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
                      256.0, 512.0, 1024.0)

RowKey = Tuple[int, int, int]


def _keys(rows: Sequence[RowLocation]) -> FrozenSet[RowKey]:
    return frozenset((r.bank, r.subarray, r.address) for r in rows)


@dataclass
class OpRequest:
    """One client operation waiting to be batched."""

    op: BulkOp
    tenant: str
    dst: Tuple[RowLocation, ...]
    srcs: Tuple[Tuple[RowLocation, ...], ...]
    future: "asyncio.Future[Any]"
    #: Request-span checkpoints stamped as the request crosses threads
    #: (coalescer: ``submitted``/``drained``; wave runner:
    #: ``device_start``/``device_end``, ``attempts``, ``wave``).  The
    #: awaiting coroutine adopts this after the future resolves, so the
    #: span context itself never crosses a thread.
    timing: Dict[str, Any] = field(default_factory=dict)
    dst_keys: FrozenSet[RowKey] = field(init=False)
    all_keys: FrozenSet[RowKey] = field(init=False)

    def __post_init__(self) -> None:
        self.dst_keys = _keys(self.dst)
        self.all_keys = self.dst_keys.union(
            *(_keys(src) for src in self.srcs)
        )


@dataclass
class Wave:
    """One executable batch: same op, mutually hazard-free requests."""

    op: BulkOp
    requests: List[OpRequest] = field(default_factory=list)
    dst_keys: FrozenSet[RowKey] = frozenset()
    all_keys: FrozenSet[RowKey] = frozenset()

    def conflicts(self, request: OpRequest) -> bool:
        """True when executing ``request`` with this wave would reorder
        a genuine data dependency (RAW, WAR, or WAW)."""
        return bool(
            request.all_keys & self.dst_keys
            or request.dst_keys & self.all_keys
        )

    def add(self, request: OpRequest) -> None:
        """Fuse ``request`` into this wave, widening its row sets."""
        self.requests.append(request)
        self.dst_keys |= request.dst_keys
        self.all_keys |= request.all_keys

    def operands(
        self,
    ) -> Tuple[List[RowLocation], List[Optional[List[RowLocation]]]]:
        """Concatenated (dst, [src1, src2, src3]) row lists of the wave."""
        dst: List[RowLocation] = []
        arity = self.op.arity
        srcs: List[List[RowLocation]] = [[] for _ in range(arity)]
        for request in self.requests:
            dst.extend(request.dst)
            for i in range(arity):
                srcs[i].extend(request.srcs[i])
        padded: List[Optional[List[RowLocation]]] = [None, None, None]
        for i in range(arity):
            padded[i] = srcs[i]
        return dst, padded


def plan_waves(requests: Sequence[OpRequest]) -> List[Wave]:
    """Partition queued requests into hazard-safe same-op waves.

    Queue order is program order: request *r* may join a wave only if
    every earlier-queued request whose rows conflict with *r* executes
    in a strictly earlier wave.  Requests that conflict with nothing
    (disjoint vectors) sort freely into the first wave of their op.
    """
    waves: List[Wave] = []
    for request in requests:
        barrier = -1
        for idx, wave in enumerate(waves):
            if wave.conflicts(request):
                barrier = idx
        placed = None
        for idx in range(barrier + 1, len(waves)):
            if waves[idx].op is request.op:
                placed = waves[idx]
                break
        if placed is None:
            placed = Wave(op=request.op)
            waves.append(placed)
        placed.add(request)
    return waves


#: Runner contract: executes waves (on the device thread) and returns
#: one ``(request, error-or-None)`` outcome per member request.
WaveRunner = Callable[
    [List[Wave]], List[Tuple[OpRequest, Optional[Exception]]]
]


class Coalescer:
    """Bounded admission queue + drain loop + wave planner."""

    def __init__(
        self,
        runner: WaveRunner,
        executor,
        metrics=None,
        max_queue: int = 4096,
        max_batch_ops: int = 512,
        coalesce: bool = True,
    ):
        self.runner = runner
        self.executor = executor
        self.coalesce = coalesce
        self.max_batch_ops = max(1, max_batch_ops)
        self._queue: "asyncio.Queue[OpRequest]" = asyncio.Queue(
            maxsize=max_queue
        )
        self._task: Optional["asyncio.Task[None]"] = None
        self._m_batches = self._m_coalesced = None
        self._m_backpressure = self._m_sizes = None
        if metrics is not None:
            self._m_batches = metrics.counter(
                "ambit_serve_batches_total",
                "Device batches dispatched by the serving layer",
            )
            self._m_coalesced = metrics.counter(
                "ambit_serve_coalesced_batches_total",
                "Dispatched batches that fused >= 2 client requests",
            )
            self._m_backpressure = metrics.counter(
                "ambit_serve_backpressure_total",
                "Op requests rejected because the admission queue was full",
            )
            self._m_sizes = metrics.histogram(
                "ambit_serve_batch_requests",
                "Client requests fused into one dispatched batch",
                buckets=BATCH_SIZE_BUCKETS,
            )
            depth = metrics.gauge(
                "ambit_serve_queue_depth", "Ops waiting in the admission queue"
            )
            metrics.register_collector(
                lambda: depth.set(self._queue.qsize())
            )

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the drain loop on the running event loop."""
        if self._task is None:
            self._task = asyncio.get_event_loop().create_task(self._drain())

    async def close(self) -> None:
        """Stop the drain loop; queued requests get an internal error."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    # ------------------------------------------------------------------
    def submit(self, request: OpRequest) -> None:
        """Enqueue or reject-with-backpressure (never blocks)."""
        request.timing["submitted"] = time.perf_counter_ns()
        try:
            self._queue.put_nowait(request)
        except asyncio.QueueFull:
            if self._m_backpressure is not None:
                self._m_backpressure.inc()
            raise ServeError(
                E_BACKPRESSURE,
                "admission queue is full; retry after a backoff",
            ) from None

    # ------------------------------------------------------------------
    async def _drain(self) -> None:
        loop = asyncio.get_event_loop()
        while True:
            first = await self._queue.get()
            batch = [first]
            if self.coalesce:
                while len(batch) < self.max_batch_ops:
                    try:
                        batch.append(self._queue.get_nowait())
                    except asyncio.QueueEmpty:
                        break
            drained = time.perf_counter_ns()
            for request in batch:
                request.timing["drained"] = drained
            waves = plan_waves(batch)
            if self._m_batches is not None:
                for wave in waves:
                    self._m_batches.inc()
                    self._m_sizes.observe(len(wave.requests))
                    if len(wave.requests) >= 2:
                        self._m_coalesced.inc()
            try:
                outcomes = await loop.run_in_executor(
                    self.executor, self.runner, waves
                )
            except Exception as exc:  # runner itself blew up
                outcomes = [
                    (request, exc)
                    for wave in waves
                    for request in wave.requests
                ]
            for request, error in outcomes:
                if request.future.done():
                    continue  # client went away mid-flight
                if error is None:
                    request.future.set_result(None)
                else:
                    request.future.set_exception(error)
