"""The high-throughput async bulk-bitwise service (PR 7).

A network front door over the whole stack: named per-tenant bitvectors,
the nine bulk operations over NDJSON/TCP, and a request coalescer that
fuses concurrent client ops into single engine batches.  See
``docs/SERVICE.md``.
"""

from repro.serve.alloc import StripedAllocator
from repro.serve.coalescer import Coalescer, OpRequest, Wave, plan_waves
from repro.serve.protocol import ServeError
from repro.serve.server import BulkBitwiseServer, ServeConfig
from repro.serve.tenants import TenantQuota, TenantRegistry, VectorHandle

__all__ = [
    "BulkBitwiseServer",
    "Coalescer",
    "OpRequest",
    "ServeConfig",
    "ServeError",
    "StripedAllocator",
    "TenantQuota",
    "TenantRegistry",
    "VectorHandle",
    "Wave",
    "plan_waves",
]
