"""Exception hierarchy for the Ambit reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration object is internally inconsistent."""


class DramProtocolError(ReproError):
    """An illegal DRAM command sequence was issued.

    The DRAM model enforces the command protocol of a real device: a bank
    must be precharged before a fresh activation performs charge sharing,
    READ/WRITE require an open row, and so on.  Violations raise this
    error rather than silently corrupting state.
    """


class AddressError(ReproError):
    """A row/column address is out of range or in the wrong address group."""


class AlignmentError(ReproError):
    """A ``bbop`` operand violates Ambit's row-alignment requirements.

    Section 5.4.3 of the paper: Ambit operations are row-wide, so the
    source and destination must be row-aligned and the size a multiple of
    the DRAM row size.  Misaligned requests must fall back to the CPU.
    """


class AllocationError(ReproError):
    """The subarray-aware driver could not place a bitvector (Section 5.4.2)."""


class CompileError(ReproError):
    """The MAJ/NOT operation compiler rejected an expression.

    Raised by :mod:`repro.compile` for malformed expressions, unbound
    variables, invalid row assignments, or surface syntax outside the
    whitelisted grammar of ``repro compile --expr``.
    """


class EccError(ReproError):
    """An uncorrectable error was detected by the TMR ECC scheme (Section 5.4.5)."""


class SimulationError(ReproError):
    """The system-level cost simulator was driven with inconsistent inputs."""


class ConcurrencyError(ReproError):
    """A multi-process invariant of the sharded simulator was violated.

    Raised when statistics are reset while shard jobs are in flight
    (quiesce first -- see ``docs/SCALING.md``), or when a worker process
    dies mid-batch and the shared row store may hold partial results.
    """


class FaultError(ReproError):
    """The fault-recovery layer could not restore correct operation.

    Raised by :mod:`repro.faults` when a detected fault survives the
    full recovery ladder (retry, spare-row remap, DCC reroute) -- e.g.
    a subarray is out of spare rows, or a row stays wrong after repair.
    See ``docs/RELIABILITY.md``.
    """
