"""Monte-Carlo TRA reliability study (Table 2 of the paper).

The paper runs 100,000 SPICE iterations per variation level, from +/-5 %
to +/-25 %, and reports the fraction of triple-row activations that
resolve incorrectly.  This module reproduces that experiment against the
analytical charge-sharing + sense-margin model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.senseamp_dynamics import AnalogSenseModel
from repro.circuit.variation import VariationSpec
from repro.errors import ConfigError

#: The variation levels of Table 2.
TABLE2_LEVELS: Tuple[float, ...] = (0.0, 0.05, 0.10, 0.15, 0.20, 0.25)

#: The paper's measured failure percentages, for comparison printouts.
TABLE2_PAPER_FAILURES: Dict[float, float] = {
    0.0: 0.00,
    0.05: 0.00,
    0.10: 0.29,
    0.15: 6.01,
    0.20: 16.36,
    0.25: 26.19,
}


@dataclass(frozen=True)
class MonteCarloResult:
    """Outcome of one variation level's trial batch."""

    level: float
    trials: int
    failures: int

    @property
    def failure_rate(self) -> float:
        return self.failures / self.trials if self.trials else 0.0

    @property
    def failure_percent(self) -> float:
        return 100.0 * self.failure_rate


def tra_failure_rate(
    level: float,
    trials: int = 100_000,
    rng: Optional[np.random.Generator] = None,
    patterns: str = "random",
) -> MonteCarloResult:
    """Run ``trials`` independent TRAs at one variation level.

    Parameters
    ----------
    level:
        Component variation bound (0.10 = "+/-10 %").
    trials:
        Number of independent bitline trials.
    patterns:
        ``"random"`` draws the three cell values uniformly (the Monte-
        Carlo deck exercises arbitrary data); ``"marginal"`` restricts to
        the k in {1, 2} patterns whose deviation is minimal, giving the
        conservative per-bit failure rate.
    """
    if trials <= 0:
        raise ConfigError(f"trials must be positive; got {trials}")
    rng = rng if rng is not None else np.random.default_rng(42)
    model = AnalogSenseModel(VariationSpec(level=level), rng)
    if patterns == "random":
        bits = rng.integers(0, 2, size=(3, trials)).astype(np.uint8)
    elif patterns == "marginal":
        # k=1 or k=2 with the minority cell in a random position.
        k = rng.integers(1, 3, size=trials)
        bits = np.zeros((3, trials), dtype=np.uint8)
        for t_k in (1, 2):
            mask = k == t_k
            n = int(mask.sum())
            cols = np.nonzero(mask)[0]
            for col in cols:
                ones = rng.choice(3, size=t_k, replace=False)
                bits[ones, col] = 1
    else:
        raise ConfigError(f"unknown pattern mode {patterns!r}")
    expected = (bits.sum(axis=0) >= 2).astype(np.uint8)
    sensed = model.resolve_tra(bits)
    failures = int((sensed != expected).sum())
    return MonteCarloResult(level=level, trials=trials, failures=failures)


#: Default chunk count for the parallel Monte Carlo.  Chunk count is
#: part of the experiment *configuration* (it fixes the per-chunk RNG
#: streams); job count is not -- see :func:`tra_failure_rate_parallel`.
DEFAULT_MC_CHUNKS = 32


def _mc_chunk(args: Tuple[float, int, np.random.SeedSequence, str]) -> int:
    """One worker's share of trials; returns its failure count.

    Module-level so it pickles; consumes a pre-spawned child
    ``SeedSequence`` so the drawn stream depends only on the chunk
    index, never on which process runs it.
    """
    level, trials, seed_seq, patterns = args
    rng = np.random.default_rng(seed_seq)
    return tra_failure_rate(
        level, trials=trials, rng=rng, patterns=patterns
    ).failures


def tra_failure_rate_parallel(
    level: float,
    trials: int = 100_000,
    chunks: Optional[int] = None,
    seed: int = 42,
    jobs: Optional[int] = None,
    patterns: str = "random",
) -> MonteCarloResult:
    """:func:`tra_failure_rate` fanned across worker processes.

    The ``trials`` are split into ``chunks`` pieces, each driven by an
    independent child of ``SeedSequence(seed)`` (see
    :func:`repro.parallel.pmap.spawn_seeds`), and the per-chunk failure
    counts are summed.  The result is a pure function of
    ``(level, trials, chunks, seed, patterns)``: running with ``jobs=1``
    or ``jobs=64`` returns the identical count, so **chunk count is
    experiment configuration, job count is not**.  The drawn streams
    differ from the single-``rng`` :func:`tra_failure_rate` (one long
    stream versus ``chunks`` independent ones) -- both are valid Monte
    Carlo decks; pick one per experiment and keep ``chunks`` fixed.
    """
    from repro.parallel.pmap import parallel_map, spawn_seeds

    if trials <= 0:
        raise ConfigError(f"trials must be positive; got {trials}")
    chunks = DEFAULT_MC_CHUNKS if chunks is None else chunks
    if chunks <= 0:
        raise ConfigError(f"chunks must be positive; got {chunks}")
    chunks = min(chunks, trials)
    base, extra = divmod(trials, chunks)
    sizes = [base + (1 if i < extra else 0) for i in range(chunks)]
    seeds = spawn_seeds(seed, chunks)
    failures = parallel_map(
        _mc_chunk,
        [(level, size, ss, patterns) for size, ss in zip(sizes, seeds)],
        jobs=jobs,
    )
    return MonteCarloResult(
        level=level, trials=trials, failures=sum(failures)
    )


def _table2_level(args: Tuple[float, int, int]) -> MonteCarloResult:
    """One variation level of Table 2 (module-level for pickling)."""
    level, trials, level_seed = args
    rng = np.random.default_rng(level_seed)
    return tra_failure_rate(level, trials=trials, rng=rng)


def table2_experiment(
    levels: Sequence[float] = TABLE2_LEVELS,
    trials: int = 100_000,
    seed: int = 42,
    jobs: Optional[int] = None,
) -> Dict[float, MonteCarloResult]:
    """Reproduce Table 2: failure rate per variation level.

    Each level already draws from its own ``default_rng(seed + i)``
    stream, so fanning levels across processes (``jobs > 1``) returns
    results bit-identical to the serial run.
    """
    items = [(level, trials, seed + i) for i, level in enumerate(levels)]
    if jobs is not None and jobs > 1:
        from repro.parallel.pmap import parallel_map

        computed = parallel_map(_table2_level, items, jobs=jobs)
    else:
        computed = [_table2_level(item) for item in items]
    return {result.level: result for result in computed}


def format_table2(results: Dict[float, MonteCarloResult]) -> str:
    """Render the experiment next to the paper's numbers."""
    lines = [
        "Table 2: Effect of process variation on TRA",
        f"{'Variation':>10} {'Measured %':>12} {'Paper %':>10}",
    ]
    for level in sorted(results):
        r = results[level]
        paper = TABLE2_PAPER_FAILURES.get(level)
        paper_s = f"{paper:.2f}" if paper is not None else "--"
        lines.append(
            f"{'+/-' + format(level * 100, '.0f') + '%':>10} "
            f"{r.failure_percent:>12.2f} {paper_s:>10}"
        )
    return "\n".join(lines)
