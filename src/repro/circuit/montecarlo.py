"""Monte-Carlo TRA reliability study (Table 2 of the paper).

The paper runs 100,000 SPICE iterations per variation level, from +/-5 %
to +/-25 %, and reports the fraction of triple-row activations that
resolve incorrectly.  This module reproduces that experiment against the
analytical charge-sharing + sense-margin model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.senseamp_dynamics import AnalogSenseModel
from repro.circuit.variation import VariationSpec
from repro.errors import ConfigError

#: The variation levels of Table 2.
TABLE2_LEVELS: Tuple[float, ...] = (0.0, 0.05, 0.10, 0.15, 0.20, 0.25)

#: The paper's measured failure percentages, for comparison printouts.
TABLE2_PAPER_FAILURES: Dict[float, float] = {
    0.0: 0.00,
    0.05: 0.00,
    0.10: 0.29,
    0.15: 6.01,
    0.20: 16.36,
    0.25: 26.19,
}


@dataclass(frozen=True)
class MonteCarloResult:
    """Outcome of one variation level's trial batch."""

    level: float
    trials: int
    failures: int

    @property
    def failure_rate(self) -> float:
        return self.failures / self.trials if self.trials else 0.0

    @property
    def failure_percent(self) -> float:
        return 100.0 * self.failure_rate


def tra_failure_rate(
    level: float,
    trials: int = 100_000,
    rng: Optional[np.random.Generator] = None,
    patterns: str = "random",
) -> MonteCarloResult:
    """Run ``trials`` independent TRAs at one variation level.

    Parameters
    ----------
    level:
        Component variation bound (0.10 = "+/-10 %").
    trials:
        Number of independent bitline trials.
    patterns:
        ``"random"`` draws the three cell values uniformly (the Monte-
        Carlo deck exercises arbitrary data); ``"marginal"`` restricts to
        the k in {1, 2} patterns whose deviation is minimal, giving the
        conservative per-bit failure rate.
    """
    if trials <= 0:
        raise ConfigError(f"trials must be positive; got {trials}")
    rng = rng if rng is not None else np.random.default_rng(42)
    model = AnalogSenseModel(VariationSpec(level=level), rng)
    if patterns == "random":
        bits = rng.integers(0, 2, size=(3, trials)).astype(np.uint8)
    elif patterns == "marginal":
        # k=1 or k=2 with the minority cell in a random position.
        k = rng.integers(1, 3, size=trials)
        bits = np.zeros((3, trials), dtype=np.uint8)
        for t_k in (1, 2):
            mask = k == t_k
            n = int(mask.sum())
            cols = np.nonzero(mask)[0]
            for col in cols:
                ones = rng.choice(3, size=t_k, replace=False)
                bits[ones, col] = 1
    else:
        raise ConfigError(f"unknown pattern mode {patterns!r}")
    expected = (bits.sum(axis=0) >= 2).astype(np.uint8)
    sensed = model.resolve_tra(bits)
    failures = int((sensed != expected).sum())
    return MonteCarloResult(level=level, trials=trials, failures=failures)


def table2_experiment(
    levels: Sequence[float] = TABLE2_LEVELS,
    trials: int = 100_000,
    seed: int = 42,
) -> Dict[float, MonteCarloResult]:
    """Reproduce Table 2: failure rate per variation level."""
    results: Dict[float, MonteCarloResult] = {}
    for i, level in enumerate(levels):
        rng = np.random.default_rng(seed + i)
        results[level] = tra_failure_rate(level, trials=trials, rng=rng)
    return results


def format_table2(results: Dict[float, MonteCarloResult]) -> str:
    """Render the experiment next to the paper's numbers."""
    lines = [
        "Table 2: Effect of process variation on TRA",
        f"{'Variation':>10} {'Measured %':>12} {'Paper %':>10}",
    ]
    for level in sorted(results):
        r = results[level]
        paper = TABLE2_PAPER_FAILURES.get(level)
        paper_s = f"{paper:.2f}" if paper is not None else "--"
        lines.append(
            f"{'+/-' + format(level * 100, '.0f') + '%':>10} "
            f"{r.failure_percent:>12.2f} {paper_s:>10}"
        )
    return "\n".join(lines)
