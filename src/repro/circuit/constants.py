"""Nominal circuit parameters for the TRA reliability study (Section 6).

The paper's SPICE setup: 55 nm DDR3 model parameters from the Rambus
power model (cell capacitance 22 fF; transistor W/H 55 nm / 85 nm) and
PTM low-power transistor models.  We reproduce the study analytically
from charge-sharing physics plus a calibrated sense-margin model.

Derived quantities at these nominals:

* single-cell sensing deviation ``Cc*VDD/2/(Cc+Cb)`` ~ 167 mV,
* TRA deviation (Equation 1, k=2) ``Cc*VDD/(6Cc+2Cb)`` ~ 115 mV --
  smaller than single-cell sensing, which is issue 1 of Section 3.2.

Calibration notes
-----------------
Two behavioural constants are fitted, both documented in
EXPERIMENTS.md:

* ``WORST_CASE_OFFSET_FRACTION`` -- the sense-amplifier input offset at
  the fully adversarial corner.  With every charge-sharing component
  simultaneously pushed against the TRA, the corner margin crosses zero
  at ~+/-6 % component variation, reproducing the paper's worst-case
  result.
* ``MC_OFFSET_LN_A`` / ``MC_OFFSET_B`` -- the Monte-Carlo sense-margin
  sigma, ``sigma_off(level) = VDD * exp(MC_OFFSET_LN_A + MC_OFFSET_B *
  level)``.  Threshold mismatch and drive-current loss compound
  super-linearly with process variation; the exponential form is fitted
  so the failure-rate curve lands on Table 2 (0 % through +/-5 %,
  ~0.3 % at +/-10 %, ~26 % at +/-25 %).
"""

from __future__ import annotations

#: Cell capacitance (farads): 22 fF, from the Rambus power model.
CELL_CAPACITANCE_F: float = 22e-15

#: Bitline capacitance (farads).  DRAM bitlines run ~3.5x the cell
#: capacitance for 512-cell bitlines at 55 nm (Keeth et al., "DRAM
#: Circuit Design"); 77 fF puts the single-cell sensing deviation near
#: the ~150-200 mV that the literature reports.
BITLINE_CAPACITANCE_F: float = 77e-15

#: DRAM core array voltage (volts).  DDR3 VDD = 1.5 V.
VDD: float = 1.5

#: Worst-corner sense-amplifier input offset, as a fraction of VDD
#: (~62 mV).  Calibrated: the adversarial corner tolerates ~+/-6 %
#: variation in every component before this offset eats the margin.
WORST_CASE_OFFSET_FRACTION: float = 0.041

#: Monte-Carlo sense-margin model: sigma_off(level) =
#: VDD * exp(MC_OFFSET_LN_A + MC_OFFSET_B * level).
MC_OFFSET_LN_A: float = -5.08
MC_OFFSET_B: float = 12.2

#: Component-draw shape: normal with sigma = SIGMA_FRACTION * level,
#: clipped to +/- level (corner-bounded, like a SPICE MC deck).
SIGMA_FRACTION: float = 0.55
