"""Analog resolution model for triple-row activation.

This is the "SPICE substitute": given the logical values of the three
cells on each bitline, it samples per-bitline circuit parameters from a
:class:`~repro.circuit.variation.VariationSampler`, computes the
charge-sharing deviation, and resolves each sense amplifier against a
sampled offset.  The same object plugs into the functional subarray
(:class:`repro.dram.senseamp.SenseAmplifierArray`) as its
``charge_model``, so a whole Ambit device can be run with analog TRA
behaviour.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.circuit import constants
from repro.circuit.charge import charge_sharing_deviation
from repro.circuit.variation import VariationSampler, VariationSpec
from repro.errors import ConfigError


class AnalogSenseModel:
    """Resolves TRAs through the charge-sharing + sense-margin model.

    Parameters
    ----------
    spec:
        Variation level configuration.  ``VariationSpec(level=0.0)``
        reproduces ideal majority behaviour exactly.
    rng:
        Random generator (seed it for reproducibility).
    """

    def __init__(
        self, spec: VariationSpec, rng: Optional[np.random.Generator] = None
    ):
        self.spec = spec
        self.sampler = VariationSampler(
            spec, rng if rng is not None else np.random.default_rng(0)
        )

    def deviations(self, bits: np.ndarray) -> np.ndarray:
        """Charge-sharing deviation per bitline.

        ``bits`` has shape ``(3, n)``: the logical values of the three
        cells on each of ``n`` bitlines.
        """
        if bits.ndim != 2 or bits.shape[0] != 3:
            raise ConfigError(f"bits must have shape (3, n); got {bits.shape}")
        n = bits.shape[1]
        caps = [self.sampler.cell_capacitance(n) for _ in range(3)]
        volts = [self.sampler.stored_voltage(bits[i]) for i in range(3)]
        cb = self.sampler.bitline_capacitance(n)
        vpre = self.sampler.precharge_voltage(n)
        return charge_sharing_deviation(caps, volts, cb, vpre)

    def resolve_tra(self, bits: np.ndarray) -> np.ndarray:
        """Sense each bitline of a TRA; returns the resolved bits.

        A sense amplifier drives the bitline to VDD when the deviation
        exceeds its (sampled) input offset, to 0 otherwise -- so with
        sufficient variation the result can differ from the ideal
        majority, which is exactly the failure mode Table 2 quantifies.
        """
        delta = self.deviations(bits)
        offset = self.sampler.sense_offset(delta.shape)
        return (delta > offset).astype(np.uint8)


def worst_case_corner_margin(
    level: float,
    cell_capacitance: float = constants.CELL_CAPACITANCE_F,
    bitline_capacitance: float = constants.BITLINE_CAPACITANCE_F,
    vdd: float = constants.VDD,
    offset_fraction: float = constants.WORST_CASE_OFFSET_FRACTION,
) -> float:
    """Sensing margin when *every* component is adversarial (volts).

    The worst TRA input is k=2 (two charged cells, one empty): the
    deviation is positive but minimal.  The adversarial corner pushes
    every component against it:

    * charged cells: capacitance and stored voltage ``level`` low,
    * empty cell: capacitance ``level`` high, parked ``level`` above 0,
    * bitline capacitance ``level`` high (dilutes the deviation),
    * precharge reference ``level`` high,
    * sense amplifier at its worst-corner offset.

    A non-negative margin means the TRA still resolves correctly.
    """
    if level < 0:
        raise ConfigError(f"variation level must be non-negative; got {level}")
    cc, cb = cell_capacitance, bitline_capacitance
    caps = [cc * (1 - level), cc * (1 - level), cc * (1 + level)]
    volts = [vdd * (1 - level), vdd * (1 - level), vdd * level]
    cb_w = cb * (1 + level)
    vpre = (vdd / 2) * (1 + level)
    delta = float(charge_sharing_deviation(caps, volts, cb_w, vpre))
    return delta - offset_fraction * vdd


def max_tolerable_variation(
    tolerance: float = 1e-5, upper: float = 0.5
) -> float:
    """Largest variation level the adversarial corner tolerates.

    Bisects :func:`worst_case_corner_margin`; the paper reports ~+/-6 %.
    """
    lo, hi = 0.0, upper
    if worst_case_corner_margin(hi) > 0:
        return hi
    while hi - lo > tolerance:
        mid = (lo + hi) / 2
        if worst_case_corner_margin(mid) > 0:
            lo = mid
        else:
            hi = mid
    return lo
