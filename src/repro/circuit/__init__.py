"""Circuit layer: charge-sharing physics and TRA reliability (Section 6).

The analytical substitute for the paper's SPICE simulations:

* :mod:`~repro.circuit.charge` -- Equation 1 and its generalisation to
  per-cell capacitances/voltages.
* :mod:`~repro.circuit.variation` -- process-variation sampling.
* :mod:`~repro.circuit.senseamp_dynamics` -- analog TRA resolution and
  the adversarial-corner analysis (the paper's +/-6 % result).
* :mod:`~repro.circuit.montecarlo` -- the Table 2 experiment.
"""

from repro.circuit import constants
from repro.circuit.charge import (
    charge_sharing_deviation,
    majority_expected,
    single_cell_deviation,
    tra_deviation_ideal,
)
from repro.circuit.montecarlo import (
    TABLE2_LEVELS,
    TABLE2_PAPER_FAILURES,
    MonteCarloResult,
    format_table2,
    table2_experiment,
    tra_failure_rate,
)
from repro.circuit.senseamp_dynamics import (
    AnalogSenseModel,
    max_tolerable_variation,
    worst_case_corner_margin,
)
from repro.circuit.variation import VariationSampler, VariationSpec

__all__ = [
    "AnalogSenseModel",
    "MonteCarloResult",
    "TABLE2_LEVELS",
    "TABLE2_PAPER_FAILURES",
    "VariationSampler",
    "VariationSpec",
    "charge_sharing_deviation",
    "constants",
    "format_table2",
    "majority_expected",
    "max_tolerable_variation",
    "single_cell_deviation",
    "table2_experiment",
    "tra_deviation_ideal",
    "tra_failure_rate",
    "worst_case_corner_margin",
]
