"""Process-variation sampling for the TRA reliability study.

Section 6 models "variation in all the components in the subarray (cell
capacitance, transistor length/width/resistance, bitline/wordline
capacitance and resistance, and voltage levels)".  We group those into
the quantities that enter the charge-sharing equation:

* per-cell capacitance (cell geometry + access-transistor strength,
  since an undersized transistor transfers less charge in tRAS),
* per-cell stored voltage (write-driver level + leakage since restore),
* bitline capacitance,
* precharge (reference) voltage.

Each component is drawn as a relative perturbation: normal with
``sigma = SIGMA_FRACTION * level``, clipped to ``+/- level`` -- so the
"+/-x %" levels of Table 2 bound the support exactly, like corner limits
in a SPICE Monte-Carlo deck.  The sense-amplifier resolution margin is
modelled separately in :mod:`repro.circuit.senseamp_dynamics`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit import constants
from repro.errors import ConfigError


@dataclass(frozen=True)
class VariationSpec:
    """Configuration of one Monte-Carlo variation level.

    Parameters
    ----------
    level:
        The "+/-x" bound as a fraction (0.10 for the Table 2 "+/-10 %"
        column).  Every varied component stays within this bound.
    sigma_fraction:
        Standard deviation of each component as a fraction of ``level``.
    """

    level: float
    sigma_fraction: float = constants.SIGMA_FRACTION

    def __post_init__(self) -> None:
        if not 0.0 <= self.level < 1.0:
            raise ConfigError(f"variation level must be in [0, 1); got {self.level}")
        if self.sigma_fraction <= 0:
            raise ConfigError("sigma_fraction must be positive")


class VariationSampler:
    """Draws per-trial perturbations for the charge-sharing model."""

    def __init__(self, spec: VariationSpec, rng: np.random.Generator):
        self.spec = spec
        self.rng = rng

    def relative(self, size) -> np.ndarray:
        """Sample clipped-normal relative perturbations in ``+/-level``."""
        level = self.spec.level
        if level == 0.0:
            return np.zeros(size)
        sigma = self.spec.sigma_fraction * level
        draw = self.rng.normal(0.0, sigma, size=size)
        return np.clip(draw, -level, level)

    def cell_capacitance(self, size) -> np.ndarray:
        """Per-cell capacitance draws around the 22 fF nominal."""
        return constants.CELL_CAPACITANCE_F * (1.0 + self.relative(size))

    def bitline_capacitance(self, size) -> np.ndarray:
        """Bitline capacitance draws around the 77 fF nominal."""
        return constants.BITLINE_CAPACITANCE_F * (1.0 + self.relative(size))

    def precharge_voltage(self, size) -> np.ndarray:
        """Precharge reference draws around VDD/2."""
        return (constants.VDD / 2.0) * (1.0 + self.relative(size))

    def stored_voltage(self, bits: np.ndarray) -> np.ndarray:
        """Voltage on cells storing the given bits.

        A logical 1 sits below VDD by up to the variation level (write
        level + leakage since restore); a logical 0 sits above ground
        symmetrically.  ``bits`` is a 0/1 array; output broadcasts.
        """
        bits = np.asarray(bits)
        droop = np.abs(self.relative(bits.shape))
        ones = constants.VDD * (1.0 - droop)
        zeros = constants.VDD * droop
        return np.where(bits > 0, ones, zeros)

    def sense_margin_sigma(self) -> float:
        """Sigma of the calibrated sense-resolution margin (volts).

        sigma_off(level) = VDD * exp(MC_OFFSET_LN_A + MC_OFFSET_B*level).
        Zero variation resolves ideally.
        """
        if self.spec.level == 0.0:
            return 0.0
        return constants.VDD * float(
            np.exp(constants.MC_OFFSET_LN_A + constants.MC_OFFSET_B * self.spec.level)
        )

    def sense_offset(self, size) -> np.ndarray:
        """Per-trial sense-amplifier offset voltages (signed)."""
        sigma = self.sense_margin_sigma()
        if sigma == 0.0:
            return np.zeros(size)
        return self.rng.normal(0.0, sigma, size=size)
