"""Charge-sharing mathematics (Equation 1 of the paper and generalisations).

The bitline starts precharged at VDD/2.  Raising wordlines connects cell
capacitors to it; charge redistributes until everything sits at one
voltage.  The deviation of that voltage from the precharge level is what
the sense amplifier resolves.

Equation 1 (ideal, identical cells)::

    delta = (k * Cc * VDD + Cb * VDD/2) / (3*Cc + Cb)  -  VDD/2
          = (2k - 3) * Cc / (6*Cc + 2*Cb) * VDD

with ``k`` the number of fully charged cells among the three.  The
deviation is positive iff ``k >= 2`` -- the majority function.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.circuit import constants
from repro.errors import ConfigError

ArrayLike = Union[float, np.ndarray]


def tra_deviation_ideal(
    k: int,
    cell_capacitance: float = constants.CELL_CAPACITANCE_F,
    bitline_capacitance: float = constants.BITLINE_CAPACITANCE_F,
    vdd: float = constants.VDD,
) -> float:
    """Equation 1: bitline deviation of a TRA with ``k`` charged cells.

    Parameters mirror the paper's: identical cell capacitance, ideal
    transistors/bitlines, fully charged/empty cells.
    """
    if k not in (0, 1, 2, 3):
        raise ConfigError(f"k must be in 0..3; got {k}")
    cc, cb = cell_capacitance, bitline_capacitance
    return (2 * k - 3) * cc / (6 * cc + 2 * cb) * vdd


def single_cell_deviation(
    charged: bool,
    cell_capacitance: float = constants.CELL_CAPACITANCE_F,
    bitline_capacitance: float = constants.BITLINE_CAPACITANCE_F,
    vdd: float = constants.VDD,
) -> float:
    """Deviation of a normal single-cell activation (Figure 3).

    ``+Cc*VDD/2/(Cc+Cb)`` for a charged cell, the negative for empty.
    Useful as the reference point: the TRA deviation is smaller (issue 1
    of Section 3.2), which this module lets tests quantify.
    """
    cc, cb = cell_capacitance, bitline_capacitance
    magnitude = cc * vdd / (2 * (cc + cb))
    return magnitude if charged else -magnitude


def charge_sharing_deviation(
    cell_capacitances: Sequence[ArrayLike],
    cell_voltages: Sequence[ArrayLike],
    bitline_capacitance: ArrayLike = constants.BITLINE_CAPACITANCE_F,
    precharge_voltage: ArrayLike = constants.VDD / 2,
) -> np.ndarray:
    """General charge sharing: arbitrary per-cell capacitance and voltage.

    ``delta = (sum(Ci * Vi) + Cb * Vpre) / (sum(Ci) + Cb) - Vpre``

    All arguments broadcast, so one call evaluates a whole Monte-Carlo
    batch (arrays of per-trial parameters).
    """
    if len(cell_capacitances) != len(cell_voltages):
        raise ConfigError(
            f"{len(cell_capacitances)} capacitances vs "
            f"{len(cell_voltages)} voltages"
        )
    caps = [np.asarray(c, dtype=np.float64) for c in cell_capacitances]
    volts = [np.asarray(v, dtype=np.float64) for v in cell_voltages]
    cb = np.asarray(bitline_capacitance, dtype=np.float64)
    vpre = np.asarray(precharge_voltage, dtype=np.float64)
    charge = sum(c * v for c, v in zip(caps, volts)) + cb * vpre
    total_cap = sum(caps) + cb
    return charge / total_cap - vpre


def majority_expected(values: Sequence[int]) -> int:
    """Reference majority of a TRA's three logical inputs."""
    if len(values) != 3 or any(v not in (0, 1) for v in values):
        raise ConfigError(f"majority_expected needs three bits; got {values!r}")
    return 1 if sum(values) >= 2 else 0
