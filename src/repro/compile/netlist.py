"""Expression -> MAJ/NOT netlist lowering with common-subexpression sharing.

The middle end of the compiler.  A :class:`Netlist` is a topologically
ordered list of gates over two node kinds:

* ``maj`` -- 3-operand majority, what one triple-row activation
  computes.  AND and OR are majorities with a constant operand
  (``maj(a, b, 0) = a & b``, ``maj(a, b, 1) = a | b``), which is
  exactly how the backend emits them (the Figure 8a program *is* a
  majority with a control-row copy).
* ``xor`` -- 2-operand exclusive-or.  Formally ``xor`` is itself a
  MAJ/NOT composition, but Ambit's B-group provides a fused 7-primitive
  program for it (Figure 8c, both dual-contact cells at once), so the
  netlist keeps it first-class instead of paying the naive 3-gate
  expansion.

NOT is never a gate: negation lives on operand edges (the ``neg`` flag
of :class:`Operand`) and is resolved by the backend, which absorbs it
into the dual-contact cells wherever possible (NAND/NOR/XNOR variants
cost zero extra primitives; a residual edge costs one 2-AAP DCC NOT).

Construction **hash-conses**: structurally identical gates -- after
constant folding, operand sorting (maj and xor are fully commutative),
and negation normalisation -- share one node, so a reused subexpression
is computed once into one scratch row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.compile.ir import (
    And,
    Const,
    Expr,
    Maj,
    Mux,
    Not,
    Or,
    Var,
    Xor,
    variables,
)
from repro.errors import CompileError

#: Operand kinds.
IN = "in"        # index into the netlist's input tuple
NODE = "node"    # index into the node list
CONST = "const"  # index 0 (all zeros) or 1 (all ones)


@dataclass(frozen=True, order=True)
class Operand:
    """One gate input: an input/node/constant reference, possibly negated."""

    kind: str
    index: int
    neg: bool = False

    def negated(self) -> "Operand":
        """The complement: constants flip their index, others the flag."""
        if self.kind == CONST:
            return Operand(CONST, 1 - self.index)
        return Operand(self.kind, self.index, not self.neg)


@dataclass(frozen=True)
class Node:
    """One gate: ``maj`` over 3 operands or ``xor`` over 2."""

    fn: str
    operands: Tuple[Operand, ...]


@dataclass(frozen=True)
class Netlist:
    """A compiled expression: inputs, topologically ordered gates, output."""

    inputs: Tuple[str, ...]
    nodes: Tuple[Node, ...]
    output: Operand


class _Builder:
    """Hash-consing netlist construction."""

    def __init__(self, inputs: Tuple[str, ...]):
        self.inputs = inputs
        self.index = {name: i for i, name in enumerate(inputs)}
        self.nodes: List[Node] = []
        self.interned: Dict[Node, int] = {}
        self.memo: Dict[Expr, Operand] = {}

    # ------------------------------------------------------------------
    def _intern(self, fn: str, operands: Tuple[Operand, ...]) -> Operand:
        node = Node(fn, tuple(sorted(operands)))
        existing = self.interned.get(node)
        if existing is not None:
            return Operand(NODE, existing)
        self.interned[node] = len(self.nodes)
        self.nodes.append(node)
        return Operand(NODE, len(self.nodes) - 1)

    def _maj(self, a: Operand, b: Operand, c: Operand) -> Operand:
        ops = [a, b, c]
        # Constant folding.
        consts = [op for op in ops if op.kind == CONST]
        if len(consts) == 3:
            total = sum(op.index for op in consts)
            return Operand(CONST, int(total >= 2))
        if len(consts) == 2:
            rest = next(op for op in ops if op.kind != CONST)
            if consts[0].index == consts[1].index:
                return consts[0]  # two equal constants carry the vote
            return rest           # 0 and 1 cancel; the data operand decides
        # Algebraic identities on equal / complementary operand pairs.
        for i in range(3):
            for j in range(i + 1, 3):
                if ops[i] == ops[j]:
                    return ops[i]             # maj(x, x, y) = x
                if ops[i] == ops[j].negated():
                    return ops[3 - i - j]     # maj(x, ~x, y) = y
        # Self-duality: maj(~x, ~y, ~z) = ~maj(x, y, z).  Complementing
        # all operands is free for constants, so whenever two or more
        # data operands are negated it strictly reduces the NOTs the
        # backend must materialise.
        data_negs = sum(1 for op in ops if op.kind != CONST and op.neg)
        if data_negs >= 2:
            flipped = self._maj(*[op.negated() for op in ops])
            return flipped.negated()
        return self._intern("maj", tuple(ops))

    def _xor(self, a: Operand, b: Operand) -> Operand:
        # xor(~x, y) = ~xor(x, y): negations commute out entirely.
        neg = a.neg ^ b.neg
        a = Operand(a.kind, a.index) if a.kind != CONST else a
        b = Operand(b.kind, b.index) if b.kind != CONST else b
        result = self._xor_pos(a, b)
        return result.negated() if neg else result

    def _xor_pos(self, a: Operand, b: Operand) -> Operand:
        if a.kind == CONST and b.kind == CONST:
            return Operand(CONST, a.index ^ b.index)
        for x, y in ((a, b), (b, a)):
            if x.kind == CONST:
                return y.negated() if x.index else y
        if a == b:
            return Operand(CONST, 0)
        return self._intern("xor", (a, b))

    # ------------------------------------------------------------------
    def lower(self, expr: Expr) -> Operand:
        cached = self.memo.get(expr)
        if cached is not None:
            return cached
        if isinstance(expr, Var):
            result = Operand(IN, self.index[expr.name])
        elif isinstance(expr, Const):
            result = Operand(CONST, int(expr.value))
        elif isinstance(expr, Not):
            result = self.lower(expr.x).negated()
        elif isinstance(expr, And):
            result = self._maj(
                self.lower(expr.a), self.lower(expr.b), Operand(CONST, 0)
            )
        elif isinstance(expr, Or):
            result = self._maj(
                self.lower(expr.a), self.lower(expr.b), Operand(CONST, 1)
            )
        elif isinstance(expr, Xor):
            result = self._xor(self.lower(expr.a), self.lower(expr.b))
        elif isinstance(expr, Maj):
            result = self._maj(
                self.lower(expr.a), self.lower(expr.b), self.lower(expr.c)
            )
        elif isinstance(expr, Mux):
            # sel ? a : b  =  (sel & a) | (~sel & b), built through the
            # hash-consed maj constructors so shared selects fold.
            sel = self.lower(expr.sel)
            then = self._maj(sel, self.lower(expr.a), Operand(CONST, 0))
            other = self._maj(
                sel.negated(), self.lower(expr.b), Operand(CONST, 0)
            )
            result = self._maj(then, other, Operand(CONST, 1))
        else:
            raise CompileError(f"unknown expression node {expr!r}")
        self.memo[expr] = result
        return result


def build_netlist(expr: Expr) -> Netlist:
    """Lower an expression to its hash-consed MAJ/NOT netlist."""
    inputs = variables(expr)
    builder = _Builder(inputs)
    output = builder.lower(expr)
    return Netlist(
        inputs=inputs, nodes=tuple(builder.nodes), output=output
    )
