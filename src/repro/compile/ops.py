"""Backend of the operation compiler: netlist -> AAP microprograms.

A :class:`CompiledOp` is the compiled artefact: a straight-line
sequence of :class:`Step`\\ s over an abstract row-slot space --
input slots ``0..arity-1``, scratch slots ``arity..arity+num_temps-1``,
plus the sentinels :data:`C0_SLOT`/:data:`C1_SLOT` (the pre-initialised
all-zeros/all-ones control rows) and :data:`DST_SLOT` (the caller's
destination row).  Each step is one *native* Ambit microprogram
(AND/OR/NAND/NOR/XOR/XNOR/MAJ/NOT/COPY), so a compiled plan's cost is
exactly the sum of the hand-written Figure-8 programs it strings
together; a compiled two-input AND or XOR is byte-for-byte the paper's
own program.

Lowering applies NOT-pushdown through the dual-contact cells: a gate
whose value is consumed only in negated form is emitted as its
negative-output native variant (AND -> NAND, OR -> NOR, XOR -> XNOR),
which costs nothing extra because the DCC inversion rides along with
the triple-row activation.  Residual negations fall back to the 2-AAP
DCC NOT, materialised once per value and shared.

Scratch slots are assigned by a linear scan over step liveness, so a
deep expression reuses a small set of reserved rows instead of one row
per gate.

The class is duck-typed against :class:`repro.core.microprograms.BulkOp`
where the engine needs it (``.value``, ``.arity``, hashability) and
adds the compiled-op protocol: :meth:`program` (bind slots to real row
addresses and concatenate the native microprograms) and
:meth:`eval_rows` (the functional model used by the fused batch kernel
and the fault-tolerant shadow).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compile.ir import Expr
from repro.compile.netlist import (
    CONST,
    IN,
    NODE,
    Netlist,
    Operand,
    build_netlist,
)
from repro.core.microprograms import BulkOp, Microprogram, compile_op
from repro.errors import CompileError

#: Sentinel slots resolved at :meth:`CompiledOp.program` time.
C0_SLOT = -1   # the all-zeros control row, amap.c(0)
C1_SLOT = -2   # the all-ones control row, amap.c(1)
DST_SLOT = -3  # the caller's destination row

#: AAP/AP cost of each native microprogram (Section 3.4 / Figure 8).
AAP_COUNTS = {
    BulkOp.COPY: 1,
    BulkOp.NOT: 2,
    BulkOp.AND: 4,
    BulkOp.OR: 4,
    BulkOp.MAJ: 4,
    BulkOp.NAND: 5,
    BulkOp.NOR: 5,
    BulkOp.XOR: 5,
    BulkOp.XNOR: 5,
}
AP_COUNTS = {BulkOp.XOR: 2, BulkOp.XNOR: 2}

_SINGLE_DCC_STEPS = (BulkOp.NOT, BulkOp.NAND, BulkOp.NOR)
_DUAL_DCC_STEPS = (BulkOp.XOR, BulkOp.XNOR)


@dataclass(frozen=True)
class Step:
    """One native microprogram: ``dst <- op(*srcs)`` over row slots."""

    op: BulkOp
    dst: int
    srcs: Tuple[int, ...]


@dataclass(frozen=True)
class CompiledOp:
    """A synthesized bulk-bitwise operation (see module docstring)."""

    name: str
    inputs: Tuple[str, ...]
    steps: Tuple[Step, ...]
    num_temps: int
    fingerprint: str

    # -- the BulkOp-compatible surface -------------------------------
    @property
    def value(self) -> str:
        """Label used by metrics, tracing, and plan-cache stats."""
        return f"c:{self.name}"

    @property
    def arity(self) -> int:
        return len(self.inputs)

    # -- static cost model -------------------------------------------
    @property
    def num_aap(self) -> int:
        return sum(AAP_COUNTS[step.op] for step in self.steps)

    @property
    def num_ap(self) -> int:
        return sum(AP_COUNTS.get(step.op, 0) for step in self.steps)

    @property
    def uses_single_dcc(self) -> bool:
        """True when some step routes through one dual-contact cell."""
        return any(step.op in _SINGLE_DCC_STEPS for step in self.steps)

    @property
    def uses_dual_dcc(self) -> bool:
        """True when some step needs both dual-contact cells (XOR/XNOR)."""
        return any(step.op in _DUAL_DCC_STEPS for step in self.steps)

    # -- binding to real rows ----------------------------------------
    def _row(self, slot: int, dk: int, srcs, temps, amap) -> int:
        if slot == DST_SLOT:
            return dk
        if slot == C0_SLOT:
            return amap.c(0)
        if slot == C1_SLOT:
            return amap.c(1)
        if slot < self.arity:
            return srcs[slot]
        return temps[slot - self.arity]

    def program(
        self,
        amap,
        dk: int,
        srcs: Sequence[int],
        temps: Sequence[int],
        dcc: int = 0,
    ) -> Microprogram:
        """Bind slots to row addresses and emit the full microprogram.

        ``srcs`` are the operand rows in :attr:`inputs` order, ``temps``
        the reserved scratch rows.  The destination and every scratch
        row must be distinct from each other and from the operands
        (scratch rows are clobbered; the destination is written last by
        its final step but may be an intermediate of none).
        """
        srcs = tuple(srcs)
        temps = tuple(temps)
        if len(srcs) != self.arity:
            raise CompileError(
                f"{self.value} takes {self.arity} source rows; got {len(srcs)}"
            )
        if len(temps) != self.num_temps:
            raise CompileError(
                f"{self.value} needs {self.num_temps} scratch rows; "
                f"got {len(temps)}"
            )
        if len(set(temps)) != len(temps) or set(temps) & set(srcs):
            raise CompileError(
                f"{self.value}: scratch rows must be distinct from each "
                f"other and from the sources"
            )
        if dk in srcs or dk in temps:
            raise CompileError(
                f"{self.value}: destination row {dk} aliases an operand "
                f"or scratch row"
            )
        primitives = []
        for step in self.steps:
            operands = [self._row(s, dk, srcs, temps, amap) for s in step.srcs]
            kwargs = dict(zip(("di", "dj", "dl"), operands))
            native = compile_op(
                amap,
                step.op,
                dk=self._row(step.dst, dk, srcs, temps, amap),
                dcc=dcc,
                **kwargs,
            )
            primitives.extend(native.primitives)
        return Microprogram(op=self, primitives=tuple(primitives))

    # -- functional model --------------------------------------------
    def eval_rows(self, sources: Sequence[np.ndarray]):
        """Interpret the steps over row values.

        Returns ``(dst_value, temp_values)`` where ``temp_values`` are
        the *final* contents of each scratch row -- the fused batch
        kernel pokes those too, so fused and per-row execution leave
        bit-identical memory behind.
        """
        if len(sources) != self.arity:
            raise CompileError(
                f"{self.value} takes {self.arity} sources; got {len(sources)}"
            )
        values: Dict[int, np.ndarray] = {
            i: np.asarray(src) for i, src in enumerate(sources)
        }
        sample = values[0]
        zeros = sample ^ sample
        values[C0_SLOT] = zeros
        values[C1_SLOT] = ~zeros
        dst = None
        for step in self.steps:
            operands = [values[s] for s in step.srcs]
            result = _apply_native(step.op, operands)
            if step.dst == DST_SLOT:
                dst = result
            else:
                values[step.dst] = result
        if dst is None:  # pragma: no cover - emitter always writes dst
            raise CompileError(f"{self.value}: no step writes the destination")
        temp_values = tuple(
            values[self.arity + k] for k in range(self.num_temps)
        )
        return dst, temp_values

    # -- human-readable form -----------------------------------------
    def _slot_name(self, slot: int) -> str:
        if slot == DST_SLOT:
            return "dst"
        if slot == C0_SLOT:
            return "C0"
        if slot == C1_SLOT:
            return "C1"
        if slot < self.arity:
            return self.inputs[slot]
        return f"t{slot - self.arity}"

    def describe(self) -> List[str]:
        """One line per step, for ``repro compile --stats``."""
        lines = []
        for step in self.steps:
            operands = ", ".join(self._slot_name(s) for s in step.srcs)
            lines.append(
                f"{step.op.value:5s} {self._slot_name(step.dst)} <- {operands}"
            )
        return lines

    def __repr__(self) -> str:
        return (
            f"CompiledOp({self.value}/{self.arity}, {len(self.steps)} steps, "
            f"{self.num_temps} temps, {self.num_aap} AAP + {self.num_ap} AP)"
        )


def _apply_native(op: BulkOp, operands: List[np.ndarray]) -> np.ndarray:
    if op is BulkOp.COPY:
        return operands[0].copy()
    if op is BulkOp.NOT:
        return ~operands[0]
    a, b = operands[0], operands[1]
    if op is BulkOp.AND:
        return a & b
    if op is BulkOp.OR:
        return a | b
    if op is BulkOp.NAND:
        return ~(a & b)
    if op is BulkOp.NOR:
        return ~(a | b)
    if op is BulkOp.XOR:
        return a ^ b
    if op is BulkOp.XNOR:
        return ~(a ^ b)
    if op is BulkOp.MAJ:
        c = operands[2]
        return (a & b) | (a & c) | (b & c)
    raise CompileError(f"cannot interpret native op {op!r}")


# ----------------------------------------------------------------------
# Netlist -> steps
# ----------------------------------------------------------------------
class _Emitter:
    """Emit native steps for the live nodes of a netlist."""

    def __init__(self, net: Netlist):
        self.net = net
        self.n = len(net.inputs)
        self.steps: List[Step] = []
        self.next_vtemp = self.n
        # Slots currently holding each value, by polarity.
        self.pos_slot: Dict[Tuple[str, int], int] = {
            (IN, i): i for i in range(self.n)
        }
        self.neg_slot: Dict[Tuple[str, int], int] = {}
        # Dead-node elimination: hash-consing can orphan a gate when a
        # later fold collapses its only consumer (e.g. x ^ x over a
        # shared x), so only nodes reachable from the output are live.
        self.live: set = set()
        self._mark(net.output)
        # Use polarities decide the NOT-pushdown variants.
        self.pos_uses: Dict[Tuple[str, int], int] = {}
        self.neg_uses: Dict[Tuple[str, int], int] = {}
        self._count(net.output)
        for index in self.live:
            for operand in net.nodes[index].operands:
                self._count(operand)

    def _mark(self, operand: Operand) -> None:
        if operand.kind == NODE and operand.index not in self.live:
            self.live.add(operand.index)
            for inner in self.net.nodes[operand.index].operands:
                self._mark(inner)

    def _count(self, operand: Operand) -> None:
        if operand.kind == CONST:
            return
        key = (operand.kind, operand.index)
        table = self.neg_uses if operand.neg else self.pos_uses
        table[key] = table.get(key, 0) + 1

    # ------------------------------------------------------------------
    def _vtemp(self) -> int:
        slot = self.next_vtemp
        self.next_vtemp += 1
        return slot

    def _emit(self, op: BulkOp, dst: int, srcs: Tuple[int, ...]) -> None:
        self.steps.append(Step(op, dst, srcs))

    def _resolve(self, operand: Operand) -> int:
        """Slot holding the operand's value, materialising a NOT if due."""
        if operand.kind == CONST:
            return C1_SLOT if operand.index else C0_SLOT
        key = (operand.kind, operand.index)
        table = self.neg_slot if operand.neg else self.pos_slot
        slot = table.get(key)
        if slot is not None:
            return slot
        other = (self.pos_slot if operand.neg else self.neg_slot)[key]
        slot = self._vtemp()
        self._emit(BulkOp.NOT, slot, (other,))
        table[key] = slot
        return slot

    # ------------------------------------------------------------------
    def run(self) -> None:
        for index, node in enumerate(self.net.nodes):
            if index not in self.live:
                continue
            key = (NODE, index)
            only_neg = bool(self.neg_uses.get(key)) and not self.pos_uses.get(
                key
            )
            if node.fn == "xor":
                a, b = (self._resolve(op) for op in node.operands)
                slot = self._vtemp()
                if only_neg:
                    self._emit(BulkOp.XNOR, slot, (a, b))
                    self.neg_slot[key] = slot
                else:
                    self._emit(BulkOp.XOR, slot, (a, b))
                    self.pos_slot[key] = slot
                continue
            consts = [op for op in node.operands if op.kind == CONST]
            data = [op for op in node.operands if op.kind != CONST]
            if consts:
                # maj(a, b, 0/1) is AND/OR; only-negated uses take the
                # NAND/NOR variant for free through the DCC.
                control = consts[0].index
                a, b = self._resolve(data[0]), self._resolve(data[1])
                slot = self._vtemp()
                if only_neg:
                    op = BulkOp.NOR if control else BulkOp.NAND
                    self._emit(op, slot, (a, b))
                    self.neg_slot[key] = slot
                else:
                    op = BulkOp.OR if control else BulkOp.AND
                    self._emit(op, slot, (a, b))
                    self.pos_slot[key] = slot
            else:
                # True 3-operand majority; no negated-output native
                # variant exists, so negated uses NOT lazily.
                srcs = tuple(self._resolve(op) for op in node.operands)
                slot = self._vtemp()
                self._emit(BulkOp.MAJ, slot, srcs)
                self.pos_slot[key] = slot
        self._finish_output()

    def _finish_output(self) -> None:
        out = self.net.output
        if out.kind == CONST:
            src = C1_SLOT if out.index else C0_SLOT
            self._emit(BulkOp.COPY, DST_SLOT, (src,))
            return
        key = (out.kind, out.index)
        table = self.neg_slot if out.neg else self.pos_slot
        slot = table.get(key)
        if slot is None:
            # Only the opposite polarity exists; the DCC NOT writes
            # straight to the destination row.
            other = (self.pos_slot if out.neg else self.neg_slot)[key]
            self._emit(BulkOp.NOT, DST_SLOT, (other,))
            return
        if slot < self.n:
            self._emit(BulkOp.COPY, DST_SLOT, (slot,))
            return
        if any(slot in step.srcs for step in self.steps):
            # Another gate still reads this scratch row; copy out.
            self._emit(BulkOp.COPY, DST_SLOT, (slot,))
            return
        # Sole consumer: retarget the producing step at the destination.
        for idx, step in enumerate(self.steps):
            if step.dst == slot:
                self.steps[idx] = Step(step.op, DST_SLOT, step.srcs)
                return
        raise CompileError(
            "internal: output scratch slot has no producing step"
        )  # pragma: no cover


def _allocate(steps: List[Step], arity: int) -> Tuple[List[Step], int]:
    """Map virtual scratch slots to a minimal set of physical ones.

    Linear scan over last-use liveness.  A scratch row freed by its
    final read may be reallocated as the destination of the *same*
    step for the TRA-based ops (their microprograms copy every operand
    into the bitwise group before the result row is written); the
    single-operand NOT/COPY keep source and destination distinct.
    """
    last_read: Dict[int, int] = {}
    for idx, step in enumerate(steps):
        for src in step.srcs:
            if src >= arity:
                last_read[src] = idx
    mapping: Dict[int, int] = {}
    free: List[int] = []
    used = 0
    allocated: List[Step] = []
    for idx, step in enumerate(steps):
        srcs = tuple(
            mapping[src] if src >= arity else src for src in step.srcs
        )

        def _release() -> None:
            for src in sorted({s for s in step.srcs if s >= arity}):
                if last_read.get(src) == idx:
                    free.append(mapping[src])

        in_place_ok = step.op not in (BulkOp.NOT, BulkOp.COPY)
        if in_place_ok:
            _release()
        if step.dst >= arity:
            if free:
                phys = free.pop()
            else:
                phys = arity + used
                used += 1
            mapping[step.dst] = phys
            dst = phys
        else:
            dst = step.dst
        if not in_place_ok:
            _release()
        allocated.append(Step(step.op, dst, srcs))
    return allocated, used


_CACHE: Dict[Tuple[Expr, Optional[str]], CompiledOp] = {}


def compile_expr(expr: Expr, name: Optional[str] = None) -> CompiledOp:
    """Compile an expression to a :class:`CompiledOp`.

    Compilation is memoised on ``(expr, name)`` -- expressions are
    frozen and hashable, so repeated kernels (every plane of a
    bit-serial add, say) reuse one artefact and therefore one plan
    cache entry per row shape.
    """
    cached = _CACHE.get((expr, name))
    if cached is not None:
        return cached
    net = build_netlist(expr)
    if not net.inputs:
        raise CompileError(
            "expression must reference at least one variable; row-wide "
            "constants have no operand rows to take a shape from"
        )
    emitter = _Emitter(net)
    emitter.run()
    steps, num_temps = _allocate(emitter.steps, len(net.inputs))
    blob = repr((net.inputs, steps)).encode()
    fingerprint = hashlib.sha1(blob).hexdigest()[:12]
    compiled = CompiledOp(
        name=name or f"expr_{fingerprint[:8]}",
        inputs=net.inputs,
        steps=tuple(steps),
        num_temps=num_temps,
        fingerprint=fingerprint,
    )
    _CACHE[(expr, name)] = compiled
    return compiled
