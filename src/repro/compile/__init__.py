"""`repro.compile`: the MAJ/NOT operation compiler.

Front end (:mod:`~repro.compile.ir`): a boolean expression language
over named row-wide variables.  Middle end
(:mod:`~repro.compile.netlist`): hash-consed MAJ/NOT netlists.  Back
end (:mod:`~repro.compile.ops`): row-slot microprogram steps bound to
real rows through the plan cache.  On top,
:mod:`~repro.compile.kernels` provides bit-serial arithmetic over
``BitVector`` columns.  See ``docs/COMPILER.md``.
"""

from repro.compile.ir import (
    And,
    Const,
    Expr,
    FALSE,
    Maj,
    Mux,
    Not,
    Or,
    TRUE,
    Var,
    Xor,
    evaluate,
    maj,
    mux,
    parse_expr,
    variables,
)
from repro.compile.netlist import Netlist, Node, Operand, build_netlist
from repro.compile.ops import (
    C0_SLOT,
    C1_SLOT,
    DST_SLOT,
    CompiledOp,
    Step,
    compile_expr,
)
from repro.errors import CompileError

__all__ = [
    "And",
    "C0_SLOT",
    "C1_SLOT",
    "CompileError",
    "CompiledOp",
    "Const",
    "DST_SLOT",
    "Expr",
    "FALSE",
    "Maj",
    "Mux",
    "Netlist",
    "Node",
    "Not",
    "Operand",
    "Or",
    "Step",
    "TRUE",
    "Var",
    "Xor",
    "build_netlist",
    "compile_expr",
    "evaluate",
    "maj",
    "mux",
    "parse_expr",
    "variables",
]
