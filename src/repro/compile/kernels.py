"""Bit-serial arithmetic kernels built from compiled operations.

Ambit rows are bit-*parallel* but carry no arithmetic; the classic
in-DRAM recipe (SIMDRAM, see PAPERS.md) is therefore **bit-serial**:
an N-bit integer per element is stored as N bitvector *planes* (LSB
first), and arithmetic walks the planes with full-adder boolean steps.
Every step here is a :class:`~repro.compile.ops.CompiledOp` executed
through ``BitVector.compute``, so the work runs in-DRAM, hits the plan
cache, and is accounted per-AAP exactly like the hand-written ops.

:class:`BitColumn` is the column type (a list of equal-shape
``BitVector`` planes); :func:`add`, :func:`sub`, :func:`compare_lt`,
:func:`compare_eq`, :func:`popcount` and :func:`select` are the
kernels.  The module only duck-types against ``BitVector`` (``compute``,
``free``, ``system`` ...), so it imports nothing from ``repro.apps``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.compile.ir import Var, maj, mux
from repro.compile.ops import CompiledOp, compile_expr
from repro.errors import CompileError

_A, _B, _C = Var("a"), Var("b"), Var("c")

#: Full-adder planes: sum and carry of three operands.
SUM3 = compile_expr(_A ^ _B ^ _C, name="sum3")
CARRY3 = compile_expr(maj(_A, _B, _C), name="carry3")
#: Two's-complement subtraction planes (``a + ~b + 1``).
DIFF3 = compile_expr(_A ^ ~_B ^ _C, name="diff3")
BORROW3 = compile_expr(maj(_A, ~_B, _C), name="borrow3")
#: LSB-to-MSB comparator folds.
LT_STEP = compile_expr(mux(_A ^ _B, _B, _C), name="lt_step")
EQ_STEP = compile_expr(_C & ~(_A ^ _B), name="eq_step")
#: Half-adder planes for the popcount ripple.
XOR2 = compile_expr(_A ^ _B, name="xor2")
AND2 = compile_expr(_A & _B, name="and2")
#: Masked select.
MUX = compile_expr(mux(Var("m"), _A, _B), name="mux")

ALL_KERNEL_OPS = (
    SUM3, CARRY3, DIFF3, BORROW3, LT_STEP, EQ_STEP, XOR2, AND2, MUX,
)


def _zeros_like(vec):
    return vec.system.bitvector(vec.nbits, like=vec)


def _ones_like(vec):
    zeros = _zeros_like(vec)
    ones = ~zeros
    zeros.free()
    return ones


@dataclass
class BitColumn:
    """A column of N-bit integers as bitvector planes, LSB first."""

    planes: List[object]

    def __post_init__(self):
        if not self.planes:
            raise CompileError("a BitColumn needs at least one plane")
        nbits = self.planes[0].nbits
        if any(p.nbits != nbits for p in self.planes):
            raise CompileError("all planes of a column must have equal nbits")

    @property
    def width(self) -> int:
        """Bits per element (number of planes)."""
        return len(self.planes)

    @property
    def nbits(self) -> int:
        """Elements per column (bits per plane)."""
        return self.planes[0].nbits

    # ------------------------------------------------------------------
    @classmethod
    def from_ints(cls, system, values: Sequence[int], bits: int, like=None):
        """Pack unsigned integers into ``bits`` planes on the device."""
        values = np.asarray(values, dtype=np.uint64)
        if bits < 1:
            raise CompileError("columns need at least one bit plane")
        if values.size and int(values.max()) >> bits:
            raise CompileError(
                f"value {int(values.max())} does not fit in {bits} bits"
            )
        planes = []
        for k in range(bits):
            plane_bits = ((values >> np.uint64(k)) & np.uint64(1)).astype(bool)
            plane = system.from_bits(plane_bits, like=like)
            if like is None:
                like = plane  # co-locate the rest of the column
            planes.append(plane)
        return cls(planes)

    def to_ints(self) -> np.ndarray:
        """Read the column back as a ``uint64`` array."""
        out = np.zeros(self.nbits, dtype=np.uint64)
        for k, plane in enumerate(self.planes):
            out |= plane.to_bits().astype(np.uint64) << np.uint64(k)
        return out

    def free(self) -> None:
        """Return every plane's rows to the driver's free pool."""
        for plane in self.planes:
            plane.free()


def _check_pair(a: BitColumn, b: BitColumn) -> None:
    if a.width != b.width or a.nbits != b.nbits:
        raise CompileError(
            f"columns must match: {a.width}x{a.nbits} vs {b.width}x{b.nbits}"
        )


def _ripple(a: BitColumn, b: BitColumn, sum_op: CompiledOp,
            carry_op: CompiledOp, carry) -> BitColumn:
    """Shared adder/subtractor ripple; consumes and frees the carry."""
    planes = []
    for pa, pb in zip(a.planes, b.planes):
        planes.append(pa.compute(sum_op, a=pa, b=pb, c=carry))
        next_carry = pa.compute(carry_op, a=pa, b=pb, c=carry)
        carry.free()
        carry = next_carry
    carry.free()  # modular arithmetic: the carry-out is dropped
    return BitColumn(planes)


def add(a: BitColumn, b: BitColumn) -> BitColumn:
    """Element-wise ``(a + b) mod 2**width``, bit-serially in DRAM."""
    _check_pair(a, b)
    return _ripple(a, b, SUM3, CARRY3, _zeros_like(a.planes[0]))


def sub(a: BitColumn, b: BitColumn) -> BitColumn:
    """Element-wise ``(a - b) mod 2**width`` via ``a + ~b + 1``."""
    _check_pair(a, b)
    return _ripple(a, b, DIFF3, BORROW3, _ones_like(a.planes[0]))


def compare_lt(a: BitColumn, b: BitColumn):
    """Element-wise unsigned ``a < b`` as a single mask vector.

    Walks LSB to MSB keeping ``lt = (a_k != b_k) ? b_k : lt`` so the
    most significant differing bit decides.
    """
    _check_pair(a, b)
    result = _zeros_like(a.planes[0])
    for pa, pb in zip(a.planes, b.planes):
        step = pa.compute(LT_STEP, a=pa, b=pb, c=result)
        result.free()
        result = step
    return result


def compare_eq(a: BitColumn, b: BitColumn):
    """Element-wise ``a == b`` as a single mask vector."""
    _check_pair(a, b)
    result = _ones_like(a.planes[0])
    for pa, pb in zip(a.planes, b.planes):
        step = pa.compute(EQ_STEP, a=pa, b=pb, c=result)
        result.free()
        result = step
    return result


def popcount(vectors: Sequence[object]) -> BitColumn:
    """Per-bit-position count of set bits across ``vectors``.

    Returns a :class:`BitColumn` of width ``ceil(log2(N + 1))`` whose
    element ``i`` is the number of input vectors with bit ``i`` set --
    a vertical popcount by half-adder ripple increments.
    """
    vectors = list(vectors)
    if not vectors:
        raise CompileError("popcount needs at least one vector")
    width = max(1, math.ceil(math.log2(len(vectors) + 1)))
    counters = [_zeros_like(vectors[0]) for _ in range(width)]
    for vec in vectors:
        carry = vec
        for i, counter in enumerate(counters):
            bit = counter.compute(XOR2, a=counter, b=carry)
            next_carry = counter.compute(AND2, a=counter, b=carry)
            if carry is not vec:
                carry.free()
            counter.free()
            counters[i] = bit
            carry = next_carry
        carry.free()  # width covers N, so the top carry is always zero
    return BitColumn(counters)


def select(mask, a: BitColumn, b: BitColumn) -> BitColumn:
    """Element-wise masked select: plane-wise ``mask ? a : b``."""
    _check_pair(a, b)
    planes = [
        pa.compute(MUX, m=mask, a=pa, b=pb)
        for pa, pb in zip(a.planes, b.planes)
    ]
    return BitColumn(planes)
