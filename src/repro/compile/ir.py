"""Expression IR of the MAJ/NOT operation compiler.

Ambit's native op set is the paper's fixed nine, but triple-row
activation is a *majority gate*, and majority plus negation is
functionally complete -- SIMDRAM's observation (see PAPERS.md).  This
module is the front end of that generality: a tiny boolean expression
language over named row-wide variables.

* :class:`Var`, :class:`Const` are the leaves; :class:`Not`,
  :class:`And`, :class:`Or`, :class:`Xor`, :class:`Maj`, :class:`Mux`
  the combinators.  All nodes are frozen and hashable, so structural
  equality is expression equality -- which is what makes
  common-subexpression sharing in :mod:`repro.compile.netlist` a dict
  lookup.
* Builder sugar: ``&``, ``|``, ``^``, ``~`` on any node, plus the
  :func:`maj` / :func:`mux` helpers; python booleans/ints coerce to
  :class:`Const`.
* :func:`evaluate` is the numpy oracle every conformance test compares
  against: it applies the same ``&``/``|``/``^``/``~`` operators to
  boolean or packed-uint64 arrays.
* :func:`parse_expr` reads the same surface syntax from the command
  line (``repro compile --expr "maj(a, b, c) ^ ~a"``) via a
  whitelisted :mod:`ast` walk -- never ``eval``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Tuple, Union

from repro.errors import CompileError

ExprLike = Union["Expr", bool, int]


class Expr:
    """Base class of all expression nodes (frozen, hashable)."""

    __slots__ = ()

    def __and__(self, other: ExprLike) -> "Expr":
        return And(self, _coerce(other))

    def __rand__(self, other: ExprLike) -> "Expr":
        return And(_coerce(other), self)

    def __or__(self, other: ExprLike) -> "Expr":
        return Or(self, _coerce(other))

    def __ror__(self, other: ExprLike) -> "Expr":
        return Or(_coerce(other), self)

    def __xor__(self, other: ExprLike) -> "Expr":
        return Xor(self, _coerce(other))

    def __rxor__(self, other: ExprLike) -> "Expr":
        return Xor(_coerce(other), self)

    def __invert__(self) -> "Expr":
        return Not(self)

    def __bool__(self) -> bool:
        raise CompileError(
            "expressions have no truth value; use &, |, ^, ~ (not "
            "`and`/`or`/`not`) to combine them"
        )


@dataclass(frozen=True)
class Var(Expr):
    """A named row-wide input."""

    name: str

    def __post_init__(self):
        if not self.name or not self.name.isidentifier():
            raise CompileError(
                f"variable names must be identifiers; got {self.name!r}"
            )

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Expr):
    """An all-zeros (False) or all-ones (True) row constant."""

    value: bool

    def __repr__(self) -> str:
        return "1" if self.value else "0"


@dataclass(frozen=True)
class Not(Expr):
    x: Expr

    def __repr__(self) -> str:
        return f"~{self.x!r}"


@dataclass(frozen=True)
class And(Expr):
    a: Expr
    b: Expr

    def __repr__(self) -> str:
        return f"({self.a!r} & {self.b!r})"


@dataclass(frozen=True)
class Or(Expr):
    a: Expr
    b: Expr

    def __repr__(self) -> str:
        return f"({self.a!r} | {self.b!r})"


@dataclass(frozen=True)
class Xor(Expr):
    a: Expr
    b: Expr

    def __repr__(self) -> str:
        return f"({self.a!r} ^ {self.b!r})"


@dataclass(frozen=True)
class Maj(Expr):
    """3-input majority -- what a triple-row activation computes natively."""

    a: Expr
    b: Expr
    c: Expr

    def __repr__(self) -> str:
        return f"maj({self.a!r}, {self.b!r}, {self.c!r})"


@dataclass(frozen=True)
class Mux(Expr):
    """``sel ? a : b`` -- the masked-select primitive of the kernels."""

    sel: Expr
    a: Expr
    b: Expr

    def __repr__(self) -> str:
        return f"mux({self.sel!r}, {self.a!r}, {self.b!r})"


TRUE = Const(True)
FALSE = Const(False)


def _coerce(value: ExprLike) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return Const(value)
    if isinstance(value, int):
        if value in (0, 1):
            return Const(bool(value))
        raise CompileError(
            f"integer constants must be 0 or 1; got {value}"
        )
    raise CompileError(f"cannot use {value!r} in an expression")


def maj(a: ExprLike, b: ExprLike, c: ExprLike) -> Maj:
    """Majority of three operands."""
    return Maj(_coerce(a), _coerce(b), _coerce(c))


def mux(sel: ExprLike, a: ExprLike, b: ExprLike) -> Mux:
    """``sel ? a : b`` bit by bit."""
    return Mux(_coerce(sel), _coerce(a), _coerce(b))


# ----------------------------------------------------------------------
# Introspection and the functional oracle
# ----------------------------------------------------------------------
def variables(expr: Expr) -> Tuple[str, ...]:
    """Distinct variable names in first-appearance (pre-order) order.

    This order is the input-binding contract everywhere: compiled
    operands, ``BitVector.compute`` keyword bindings, and the oracle's
    environment all index inputs by it.
    """
    seen: Dict[str, None] = {}

    def walk(node: Expr) -> None:
        if isinstance(node, Var):
            seen.setdefault(node.name, None)
        elif isinstance(node, Not):
            walk(node.x)
        elif isinstance(node, (And, Or, Xor)):
            walk(node.a)
            walk(node.b)
        elif isinstance(node, Maj):
            walk(node.a)
            walk(node.b)
            walk(node.c)
        elif isinstance(node, Mux):
            walk(node.sel)
            walk(node.a)
            walk(node.b)
        elif not isinstance(node, Const):
            raise CompileError(f"unknown expression node {node!r}")

    walk(expr)
    return tuple(seen)


def evaluate(expr: Expr, env: Dict[str, object]):
    """The numpy oracle: apply the expression to the bound values.

    Values may be boolean arrays, packed ``uint64`` arrays, or numpy
    scalars -- anything supporting ``&``, ``|``, ``^``, ``~``.
    Constants take the shape of the environment: ``0`` is ``v ^ v`` of
    an arbitrary bound value, ``1`` its complement.
    """
    if not env:
        raise CompileError("evaluate needs at least one bound variable")
    sample = next(iter(env.values()))
    zeros = sample ^ sample
    ones = ~zeros

    def walk(node: Expr):
        if isinstance(node, Var):
            if node.name not in env:
                raise CompileError(f"unbound variable {node.name!r}")
            return env[node.name]
        if isinstance(node, Const):
            return ones if node.value else zeros
        if isinstance(node, Not):
            return ~walk(node.x)
        if isinstance(node, And):
            return walk(node.a) & walk(node.b)
        if isinstance(node, Or):
            return walk(node.a) | walk(node.b)
        if isinstance(node, Xor):
            return walk(node.a) ^ walk(node.b)
        if isinstance(node, Maj):
            a, b, c = walk(node.a), walk(node.b), walk(node.c)
            return (a & b) | (a & c) | (b & c)
        if isinstance(node, Mux):
            sel = walk(node.sel)
            return (sel & walk(node.a)) | (~sel & walk(node.b))
        raise CompileError(f"unknown expression node {node!r}")

    return walk(expr)


# ----------------------------------------------------------------------
# Surface syntax (the CLI front end)
# ----------------------------------------------------------------------
_CALLS = {"maj": (Maj, 3), "mux": (Mux, 3)}


def parse_expr(text: str) -> Expr:
    """Parse ``"maj(a, b, c) ^ (a & ~b)"``-style surface syntax.

    Accepts names, ``0``/``1`` constants, ``&``/``|``/``^``/``~``,
    parentheses, and the ``maj(...)``/``mux(...)`` calls -- nothing
    else.  Implemented as a whitelisted walk over :func:`ast.parse`, so
    arbitrary python never executes.
    """
    try:
        tree = ast.parse(text, mode="eval")
    except SyntaxError as exc:
        raise CompileError(f"cannot parse expression {text!r}: {exc}") from exc

    def build(node: ast.AST) -> Expr:
        if isinstance(node, ast.Expression):
            return build(node.body)
        if isinstance(node, ast.Name):
            if node.id in _CALLS:
                raise CompileError(f"{node.id!r} must be called, not referenced")
            return Var(node.id)
        if isinstance(node, ast.Constant):
            return _coerce(node.value)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Invert):
            return Not(build(node.operand))
        if isinstance(node, ast.BinOp):
            ops = {ast.BitAnd: And, ast.BitOr: Or, ast.BitXor: Xor}
            cls = ops.get(type(node.op))
            if cls is not None:
                return cls(build(node.left), build(node.right))
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            entry = _CALLS.get(node.func.id)
            if entry is None:
                raise CompileError(
                    f"unknown function {node.func.id!r}; only "
                    f"{sorted(_CALLS)} may be called"
                )
            cls, arity = entry
            if node.keywords or len(node.args) != arity:
                raise CompileError(
                    f"{node.func.id} takes exactly {arity} positional "
                    f"arguments"
                )
            return cls(*[build(arg) for arg in node.args])
        raise CompileError(
            f"unsupported syntax at {ast.dump(node)[:60]}; expressions "
            f"use names, 0/1, &, |, ^, ~, maj(), mux()"
        )

    return build(tree)
