"""Bit-parallel DNA read pre-alignment filtering (Section 8.4.4).

DNA read mappers spend most of their time verifying candidate
alignments.  Bitvector filters (Shifted Hamming Distance, GateKeeper)
reject hopeless candidates with a handful of bulk bitwise operations:
encode sequences as one bitvector per base, compute per-position match
masks with AND/OR, and -- to tolerate indels -- AND the mismatch masks
across small shifts, since a true error mismatches under *every* shift.

All heavy steps are charged bulk operations, so the filter's cost on
baseline vs Ambit systems can be compared, while the accept/reject
decision is functionally exact and validated against direct string
comparison in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.microprograms import BulkOp
from repro.errors import SimulationError
from repro.sim.system import ExecutionContext

BASES = "ACGT"


def encode_sequence(sequence: str) -> Dict[str, np.ndarray]:
    """Encode a DNA string as four packed per-base bitvectors.

    ``masks[b]`` has bit ``i`` set iff ``sequence[i] == b``.
    """
    if not sequence:
        raise SimulationError("cannot encode an empty sequence")
    sequence = sequence.upper()
    invalid = set(sequence) - set(BASES)
    if invalid:
        raise SimulationError(f"invalid bases {sorted(invalid)}; expected {BASES}")
    n = len(sequence)
    padded = -(-n // 64) * 64
    arr = np.frombuffer(sequence.encode("ascii"), dtype=np.uint8)
    masks = {}
    for base in BASES:
        bits = np.zeros(padded, dtype=bool)
        bits[:n] = arr == ord(base)
        masks[base] = np.packbits(bits, bitorder="little").view(np.uint64)
    return masks


def match_mask(
    ctx: ExecutionContext,
    read: Dict[str, np.ndarray],
    reference: Dict[str, np.ndarray],
) -> np.ndarray:
    """Positions where read and reference agree: OR over per-base ANDs.

    4 bulk ANDs + 3 bulk ORs, the core kernel of the filter.
    """
    per_base = [
        ctx.bulk_op(BulkOp.AND, read[b], reference[b], label="dna") for b in BASES
    ]
    acc = per_base[0]
    for mask in per_base[1:]:
        acc = ctx.bulk_op(BulkOp.OR, acc, mask, label="dna")
    return acc


def _shift_masks(masks: Dict[str, np.ndarray], shift: int, length: int):
    """Shift a per-base encoding by ``shift`` positions (re-encode)."""
    # Functional helper: shifting the underlying string keeps the code
    # obviously correct; hardware would shift the bitvectors directly.
    seq = decode_sequence(masks, length)
    if shift >= 0:
        shifted = seq[shift:] + "A" * shift
    else:
        shifted = "A" * (-shift) + seq[:shift]
    return encode_sequence(shifted)


def decode_sequence(masks: Dict[str, np.ndarray], length: int) -> str:
    """Inverse of :func:`encode_sequence` (round-trip checks)."""
    out = ["?"] * length
    for base in BASES:
        bits = np.unpackbits(masks[base].view(np.uint8), bitorder="little")[:length]
        for i in np.nonzero(bits)[0]:
            out[int(i)] = base
    return "".join(out)


@dataclass(frozen=True)
class FilterDecision:
    """Outcome of the pre-alignment filter for one candidate."""

    accepted: bool
    mismatches: int


def shd_filter(
    ctx: ExecutionContext,
    read: str,
    reference_window: str,
    max_errors: int,
    max_shift: int = 0,
) -> FilterDecision:
    """Shifted-Hamming-Distance-style candidate filter.

    A candidate passes when, after forgiving up to ``max_shift`` bases
    of shift (indel slack), at most ``max_errors`` positions mismatch
    under every shift.  ``max_shift=0`` degenerates to a plain Hamming
    filter.
    """
    if len(read) != len(reference_window):
        raise SimulationError("read and reference window lengths differ")
    if max_errors < 0 or max_shift < 0:
        raise SimulationError("max_errors and max_shift must be non-negative")
    n = len(read)
    read_masks = encode_sequence(read)
    ref_masks = encode_sequence(reference_window)
    # Mismatch mask per shift; a position is a hard error only if it
    # mismatches for every shift in the window.
    hard_errors = None
    for shift in range(-max_shift, max_shift + 1):
        shifted = (
            read_masks if shift == 0 else _shift_masks(read_masks, shift, n)
        )
        matches = match_mask(ctx, shifted, ref_masks)
        mismatches = ctx.bulk_op(BulkOp.NOT, matches, label="dna")
        if hard_errors is None:
            hard_errors = mismatches
        else:
            hard_errors = ctx.bulk_op(BulkOp.AND, hard_errors, mismatches, label="dna")
    bits = np.unpackbits(hard_errors.view(np.uint8), bitorder="little")
    bits[n:] = 0  # padding lanes encode 'A' vs 'A' noise; mask them out
    errors = ctx.popcount(
        np.packbits(bits, bitorder="little").view(np.uint64), label="dna-count"
    )
    return FilterDecision(accepted=errors <= max_errors, mismatches=errors)


def hamming_distance(a: str, b: str) -> int:
    """Direct reference mismatch count."""
    if len(a) != len(b):
        raise SimulationError("sequences differ in length")
    return sum(1 for x, y in zip(a, b) if x != y)


def shd_filter_batch(
    ctx: ExecutionContext,
    reads: List[str],
    reference_windows: List[str],
    max_errors: int,
    max_shift: int = 0,
) -> List[FilterDecision]:
    """Filter many (read, candidate-window) pairs with one bulk pass.

    This is how the filter actually earns its keep on Ambit: the
    per-base masks of all pairs are concatenated (each pair padded to a
    64-bit lane boundary so no bits leak across pairs), the whole batch
    goes through one set of row-wide bulk operations, and a single CPU
    pass extracts the per-pair error counts.
    """
    if len(reads) != len(reference_windows):
        raise SimulationError("reads and windows must pair up")
    if not reads:
        return []
    lanes = []  # per-pair (start_bit, length)
    shifted_reads: Dict[int, List[str]] = {
        s: [] for s in range(-max_shift, max_shift + 1)
    }
    window_cat: List[str] = []
    cursor = 0
    for read, window in zip(reads, reference_windows):
        if len(read) != len(window):
            raise SimulationError("read and reference window lengths differ")
        pad = (-len(read)) % 64
        lanes.append((cursor, len(read)))
        cursor += len(read) + pad
        for shift in shifted_reads:
            if shift >= 0:
                s = read[shift:] + "A" * shift
            else:
                s = "A" * (-shift) + read[:shift]
            shifted_reads[shift].append(s + "A" * pad)
        window_cat.append(window + "C" * pad)  # pad mismatches read pad
    ref_masks = encode_sequence("".join(window_cat))
    hard_errors = None
    for shift, parts in shifted_reads.items():
        read_masks = encode_sequence("".join(parts))
        matches = match_mask(ctx, read_masks, ref_masks)
        mismatches = ctx.bulk_op(BulkOp.NOT, matches, label="dna")
        if hard_errors is None:
            hard_errors = mismatches
        else:
            hard_errors = ctx.bulk_op(
                BulkOp.AND, hard_errors, mismatches, label="dna"
            )
    bits = np.unpackbits(hard_errors.view(np.uint8), bitorder="little")
    # One CPU pass over the error vector extracts every lane's count;
    # charge it as a single bitcount sweep.
    ctx.popcount(hard_errors, label="dna-count")
    decisions = []
    for start, length in lanes:
        errors = int(bits[start : start + length].sum())
        decisions.append(
            FilterDecision(accepted=errors <= max_errors, mismatches=errors)
        )
    return decisions
