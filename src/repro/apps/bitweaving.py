"""BitWeaving: fast column scans via bulk bitwise operations
(Section 8.2, Figure 11).

BitWeaving-V (Li & Patel, SIGMOD 2013) stores a b-bit column as b
*bit-planes*: plane j holds bit j (MSB first) of every value,
contiguously.  A range predicate ``c1 <= val <= c2`` then evaluates with
bit-parallel logic over the planes, and the ``count(*)`` is one bitcount
of the result mask.

Two execution paths:

* **Baseline CPU** -- the classic BitWeaving kernel: one streaming pass
  over each plane with the comparison state (eq/lt/gt masks) held in
  SIMD registers.  Memory traffic: each plane read once, the result
  mask written once.
* **Ambit** -- every mask update is a bulk bitwise operation in DRAM.
  Ambit cannot keep state in registers, so it executes more (cheap,
  row-parallel) operations; the CPU only performs the final bitcount.

Both paths compute through the same numpy semantics, so results are
identical by construction, and the Ambit path's operation count is the
honest count of bulk operations an Ambit-side compiler would emit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.microprograms import BulkOp
from repro.errors import SimulationError
from repro.sim.system import ExecutionContext


@dataclass
class BitWeavingColumn:
    """A column stored in BitWeaving-V layout (MSB-first bit planes)."""

    bits: int
    rows: int
    planes: List[np.ndarray]  # packed uint64, planes[0] = MSB

    @property
    def plane_bytes(self) -> int:
        return self.planes[0].nbytes

    @property
    def total_bytes(self) -> int:
        return self.bits * self.plane_bytes

    @classmethod
    def encode(cls, values: np.ndarray, bits: int) -> "BitWeavingColumn":
        """Encode integer values into bit planes."""
        values = np.asarray(values, dtype=np.uint64)
        if bits <= 0 or bits > 64:
            raise SimulationError(f"bits must be 1..64; got {bits}")
        if values.size == 0:
            raise SimulationError("cannot encode an empty column")
        if int(values.max()) >= (1 << bits):
            raise SimulationError(f"a value exceeds {bits} bits")
        rows = values.size
        planes = []
        for j in range(bits - 1, -1, -1):  # MSB first
            plane_bits = ((values >> np.uint64(j)) & np.uint64(1)).astype(bool)
            planes.append(_pack_padded(plane_bits))
        return cls(bits=bits, rows=rows, planes=planes)

    def decode(self) -> np.ndarray:
        """Recover the integer values (for round-trip tests)."""
        values = np.zeros(self.rows, dtype=np.uint64)
        for j, plane in enumerate(self.planes):
            shift = np.uint64(self.bits - 1 - j)
            bits = np.unpackbits(plane.view(np.uint8), bitorder="little")[: self.rows]
            values |= bits.astype(np.uint64) << shift
        return values


def _constant_bit(c: int, bits: int, plane_index: int) -> int:
    """Bit of constant ``c`` at MSB-first plane ``plane_index``."""
    return (c >> (bits - 1 - plane_index)) & 1


def _compare_le_ambit(
    ctx: ExecutionContext, column: BitWeavingColumn, c: int
) -> np.ndarray:
    """Bulk-op evaluation of ``val <= c``: returns the packed mask.

    Plane-by-plane from the MSB: ``lt`` accumulates "already strictly
    less", ``eq`` tracks "equal so far".  Every mask update is a charged
    bulk operation.
    """
    words = column.planes[0].size
    ones = np.full(words, np.uint64(0xFFFFFFFFFFFFFFFF))
    zeros = np.zeros(words, dtype=np.uint64)
    eq, lt = ones, zeros
    for j, plane in enumerate(column.planes):
        if _constant_bit(c, column.bits, j):
            # c bit is 1: values with a 0 here (while equal) go below.
            not_plane = ctx.bulk_op(BulkOp.NOT, plane, label="bitwise")
            below = ctx.bulk_op(BulkOp.AND, eq, not_plane, label="bitwise")
            lt = ctx.bulk_op(BulkOp.OR, lt, below, label="bitwise")
            eq = ctx.bulk_op(BulkOp.AND, eq, plane, label="bitwise")
        else:
            # c bit is 0: values with a 1 here leave the "equal" set
            # upward; only the 0-branch can remain equal.
            not_plane = ctx.bulk_op(BulkOp.NOT, plane, label="bitwise")
            eq = ctx.bulk_op(BulkOp.AND, eq, not_plane, label="bitwise")
    return ctx.bulk_op(BulkOp.OR, lt, eq, label="bitwise")


def scan_range_ambit(
    ctx: ExecutionContext, column: BitWeavingColumn, c1: int, c2: int
) -> Tuple[np.ndarray, int]:
    """Ambit-side ``select count(*) where c1 <= val <= c2``.

    Returns the packed predicate mask and the count.
    """
    if not 0 <= c1 <= c2 < (1 << column.bits):
        raise SimulationError(f"bad range [{c1}, {c2}] for {column.bits}-bit column")
    le_c2 = _compare_le_ambit(ctx, column, c2)
    if c1 == 0:
        mask = le_c2
    else:
        le_c1m1 = _compare_le_ambit(ctx, column, c1 - 1)
        ge_c1 = ctx.bulk_op(BulkOp.NOT, le_c1m1, label="bitwise")
        mask = ctx.bulk_op(BulkOp.AND, le_c2, ge_c1, label="bitwise")
    mask = _trim_mask(mask, column.rows)
    count = ctx.popcount(mask)
    return mask, count


def scan_range_baseline(
    ctx: ExecutionContext, column: BitWeavingColumn, c1: int, c2: int
) -> Tuple[np.ndarray, int]:
    """CPU BitWeaving scan: fused register kernel, one pass per plane.

    Costing: each plane is streamed once (the eq/lt state lives in
    registers), the result mask is written once, and the count(*) is a
    bitcount.  The working set deciding the streaming rate is the whole
    column plus the mask -- this is what produces Figure 11's jumps when
    the column stops fitting in the on-chip cache.
    """
    if not 0 <= c1 <= c2 < (1 << column.bits):
        raise SimulationError(f"bad range [{c1}, {c2}] for {column.bits}-bit column")
    working_set = column.total_bytes + column.plane_bytes
    # One streaming read per plane (two predicates share the pass: the
    # kernel maintains both comparisons' state in registers).
    ctx.charge_stream(
        column.bits * column.plane_bytes, working_set, label="bitwise"
    )
    # Result mask writeback.
    ctx.charge_stream(column.plane_bytes, working_set, label="bitwise")
    mask = _trim_mask(reference_range_mask(column, c1, c2), column.rows)
    count = ctx.popcount(mask)
    return mask, count


def reference_range_mask(
    column: BitWeavingColumn, c1: int, c2: int
) -> np.ndarray:
    """Plain-numpy reference predicate mask (packed uint64)."""
    values = column.decode()
    bits = (values >= c1) & (values <= c2)
    return _pack_padded(bits)


def _pack_padded(bits: np.ndarray) -> np.ndarray:
    """Pack a boolean array into uint64 words, zero-padded to 64 bits."""
    n = bits.size
    padded = np.zeros(-(-n // 64) * 64, dtype=bool)
    padded[:n] = bits
    return np.packbits(padded, bitorder="little").view(np.uint64)


def _trim_mask(mask: np.ndarray, rows: int) -> np.ndarray:
    """Zero the padding bits beyond ``rows`` in a packed mask."""
    bits = np.unpackbits(mask.view(np.uint8), bitorder="little")
    bits[rows:] = 0
    return np.packbits(bits, bitorder="little").view(np.uint64)
