"""Bit-serial arithmetic on bulk bitwise operations (the SIMDRAM path).

The paper's conclusion expects Ambit to "enable better design of other
applications"; the most celebrated follow-on (SIMDRAM, ASPLOS 2021)
builds *arithmetic* from the majority function -- because a full adder
is exactly

    sum_i   = a_i XOR b_i XOR carry
    carry'  = MAJ(a_i, b_i, carry)

and triple-row activation computes MAJ natively
(:data:`repro.core.microprograms.BulkOp.MAJ`).  This module implements
vertical (bit-serial) arithmetic over BitWeaving-style bit-plane
columns:

* :func:`add_columns` -- element-wise A + B across a whole column with
  3 bulk operations per bit plane,
* :func:`subtract_columns` -- A - B via two's complement,
* :func:`sum_aggregate` -- ``select sum(column)`` without any adder at
  all: per plane, one popcount scaled by the plane's weight (with an
  optional predicate mask, giving the column store its SUM aggregates).

Everything is verified against direct numpy arithmetic in the tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.apps.bitweaving import BitWeavingColumn, _pack_padded
from repro.core.microprograms import BulkOp
from repro.errors import SimulationError
from repro.sim.system import ExecutionContext


def add_columns(
    ctx: ExecutionContext, a: BitWeavingColumn, b: BitWeavingColumn
) -> BitWeavingColumn:
    """Element-wise ``a + b`` over bit-plane columns.

    The result has one more bit plane than the wider input (the final
    carry).  Cost: per input plane, 2 bulk XORs + 1 bulk MAJ -- all
    row-parallel, so a million-row addition is ~3 bulk operations per
    bit of precision.
    """
    if a.rows != b.rows:
        raise SimulationError("columns must have equal row counts")
    bits = max(a.bits, b.bits)
    words = a.planes[0].size
    zeros = np.zeros(words, dtype=np.uint64)

    def plane(col: BitWeavingColumn, i: int) -> np.ndarray:
        """Plane ``i`` counted from the LSB; zeros beyond the width."""
        return col.planes[col.bits - 1 - i] if i < col.bits else zeros

    carry = zeros
    out_planes = []  # LSB first while building
    for i in range(bits):
        pa, pb = plane(a, i), plane(b, i)
        half = ctx.bulk_op(BulkOp.XOR, pa, pb, label="add")
        out_planes.append(ctx.bulk_op(BulkOp.XOR, half, carry, label="add"))
        carry = ctx.bulk_maj(pa, pb, carry, label="add")
    out_planes.append(carry)  # the (bits+1)-th plane
    return BitWeavingColumn(
        bits=bits + 1, rows=a.rows, planes=list(reversed(out_planes))
    )


def subtract_columns(
    ctx: ExecutionContext, a: BitWeavingColumn, b: BitWeavingColumn
) -> BitWeavingColumn:
    """Element-wise ``a - b`` (two's complement), assuming ``a >= b``.

    ``a - b = a + NOT(b) + 1`` at the width of ``a``: the NOT is one
    bulk operation per plane, the +1 enters as the initial carry, and
    the final carry-out is discarded (it is 1 exactly when a >= b).
    """
    if a.rows != b.rows:
        raise SimulationError("columns must have equal row counts")
    if b.bits > a.bits:
        raise SimulationError("subtrahend wider than minuend")
    bits = a.bits
    words = a.planes[0].size
    zeros = np.zeros(words, dtype=np.uint64)
    ones = _pack_padded(np.ones(a.rows, dtype=bool))
    if ones.size < words:
        ones = np.concatenate([ones, np.zeros(words - ones.size, dtype=np.uint64)])

    def plane(col: BitWeavingColumn, i: int) -> np.ndarray:
        return col.planes[col.bits - 1 - i] if i < col.bits else zeros

    carry = ones  # the +1 of two's complement, only in valid lanes
    out_planes = []
    for i in range(bits):
        pa = plane(a, i)
        # NOT(b) restricted to valid lanes: lanes beyond b's rows hold
        # padding zeros whose complement must not pollute the carry, so
        # complement against the lane mask instead of all 64 bits.
        nb = ctx.bulk_op(BulkOp.XOR, plane(b, i), ones, label="sub")
        half = ctx.bulk_op(BulkOp.XOR, pa, nb, label="sub")
        out_planes.append(ctx.bulk_op(BulkOp.XOR, half, carry, label="sub"))
        carry = ctx.bulk_maj(pa, nb, carry, label="sub")
    return BitWeavingColumn(
        bits=bits, rows=a.rows, planes=list(reversed(out_planes))
    )


def sum_aggregate(
    ctx: ExecutionContext,
    column: BitWeavingColumn,
    mask: Optional[np.ndarray] = None,
) -> int:
    """``select sum(column) [where mask]`` without a single adder.

    Plane ``i`` (weight ``2**i``) contributes ``2**i * popcount(plane
    AND mask)``; the per-plane AND is a bulk operation, the weighted sum
    of (at most 64) scalar popcounts happens on the CPU.  This is the
    aggregate kernel a BitWeaving/Ambit column store uses for SUM/AVG.
    """
    total = 0
    for i, plane in enumerate(column.planes):
        weight = 1 << (column.bits - 1 - i)
        counted = plane
        if mask is not None:
            if mask.shape != plane.shape:
                raise SimulationError("mask shape does not match the planes")
            counted = ctx.bulk_op(BulkOp.AND, plane, mask, label="sum")
        total += weight * ctx.popcount(counted, label="sum")
    return total
