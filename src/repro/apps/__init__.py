"""Applications of bulk bitwise operations (Section 8).

* :mod:`~repro.apps.bitvector` -- device-backed bitvectors, the
  user-facing Ambit API.
* :mod:`~repro.apps.bitmap_index` -- database bitmap indices (Fig. 10).
* :mod:`~repro.apps.bitweaving` -- BitWeaving-V column scans (Fig. 11).
* :mod:`~repro.apps.rbtree` / :mod:`~repro.apps.sets` -- set data
  structures: red-black tree vs bitvectors (Fig. 12).
* :mod:`~repro.apps.bloom` / :mod:`~repro.apps.bitfunnel` -- web-search
  document filtering (Section 8.4.1).
* :mod:`~repro.apps.masked_init` -- masked initialisation (8.4.2).
* :mod:`~repro.apps.crypto` -- XOR encryption and secret sharing (8.4.3).
* :mod:`~repro.apps.dna` -- DNA read pre-alignment filtering (8.4.4).
"""

from repro.apps.bitfunnel import BitFunnelIndex
from repro.apps.bitmap_index import (
    BitmapIndexWorkload,
    QueryResult,
    generate_workload,
    reference_query,
    run_query,
)
from repro.apps.arithmetic import add_columns, subtract_columns, sum_aggregate
from repro.apps.bitvector import AmbitBitSystem, BitVector
from repro.apps.bitweaving import (
    BitWeavingColumn,
    reference_range_mask,
    scan_range_ambit,
    scan_range_baseline,
)
from repro.apps.bloom import BloomFilter, optimal_num_hashes
from repro.apps.columnstore import (
    Eq,
    select_sum,
    Ge,
    Le,
    Predicate,
    Range,
    Table,
    reference_eval,
    select_count,
)
from repro.apps.compression import (
    WahBitmap,
    ambit_or_wah_decision,
    wah_and,
    wah_decode,
    wah_encode,
    wah_or,
)
from repro.apps.graph import BitGraph, bfs_levels, reachable_set, triangle_count
from repro.apps.crypto import (
    combine_shares,
    keystream,
    make_shares,
    xor_decrypt,
    xor_encrypt,
)
from repro.apps.dna import (
    FilterDecision,
    shd_filter_batch,
    decode_sequence,
    encode_sequence,
    hamming_distance,
    match_mask,
    shd_filter,
)
from repro.apps.masked_init import (
    clear_color_channel,
    masked_init,
    reference_masked_init,
)
from repro.apps.rbtree import RBTreeStats, RedBlackTree
from repro.apps.sets import (
    AmbitSetOps,
    BitsetSetOps,
    RBTreeSetOps,
    SetOpResult,
    reference_set_op,
)

__all__ = [
    "AmbitBitSystem",
    "add_columns",
    "AmbitSetOps",
    "BitFunnelIndex",
    "BitVector",
    "BitWeavingColumn",
    "BitmapIndexWorkload",
    "BitsetSetOps",
    "BitGraph",
    "Eq",
    "Ge",
    "Le",
    "Predicate",
    "Range",
    "Table",
    "BloomFilter",
    "WahBitmap",
    "ambit_or_wah_decision",
    "bfs_levels",
    "FilterDecision",
    "QueryResult",
    "RBTreeSetOps",
    "RBTreeStats",
    "RedBlackTree",
    "SetOpResult",
    "clear_color_channel",
    "combine_shares",
    "decode_sequence",
    "encode_sequence",
    "generate_workload",
    "hamming_distance",
    "keystream",
    "make_shares",
    "masked_init",
    "match_mask",
    "optimal_num_hashes",
    "reference_eval",
    "reference_masked_init",
    "reference_query",
    "reference_range_mask",
    "reachable_set",
    "reference_set_op",
    "run_query",
    "scan_range_ambit",
    "scan_range_baseline",
    "select_count",
    "select_sum",
    "subtract_columns",
    "sum_aggregate",
    "shd_filter",
    "shd_filter_batch",
    "triangle_count",
    "wah_and",
    "wah_decode",
    "wah_encode",
    "wah_or",
    "xor_decrypt",
    "xor_encrypt",
]
