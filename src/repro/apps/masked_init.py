"""Masked initialisation via bulk AND/OR (Section 8.4.2).

"Masked initializations are very useful in applications like graphics
(e.g., for clearing a specific color in an image).  By expressing such
masked operations using bitwise AND/OR operations, we can easily
accelerate such masked initializations using Ambit."

Semantics: given a buffer ``B``, a mask ``M`` and an initialisation
pattern ``V``::

    B = (B and not M) or (V and M)

i.e. bits selected by the mask take the pattern's value, everything else
is preserved.  For the common clear-to-zero case the expression
collapses to a single AND with the inverted mask.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.microprograms import BulkOp
from repro.errors import SimulationError
from repro.sim.system import ExecutionContext


def masked_init(
    ctx: ExecutionContext,
    buffer: np.ndarray,
    mask: np.ndarray,
    pattern: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Set masked bits of ``buffer`` to ``pattern`` (zero if omitted).

    Executes through charged bulk operations: 2 ops for a masked clear,
    4 for a general masked write.
    """
    if buffer.shape != mask.shape:
        raise SimulationError("buffer and mask shapes differ")
    not_mask = ctx.bulk_op(BulkOp.NOT, mask, label="masked-init")
    kept = ctx.bulk_op(BulkOp.AND, buffer, not_mask, label="masked-init")
    if pattern is None:
        return kept
    if pattern.shape != mask.shape:
        raise SimulationError("pattern and mask shapes differ")
    injected = ctx.bulk_op(BulkOp.AND, pattern, mask, label="masked-init")
    return ctx.bulk_op(BulkOp.OR, kept, injected, label="masked-init")


def clear_color_channel(
    ctx: ExecutionContext,
    image_words: np.ndarray,
    channel: int,
    bytes_per_pixel: int = 4,
) -> np.ndarray:
    """Clear one byte-wide colour channel of a packed image.

    The graphics example from the paper: builds the channel mask
    (repeating byte pattern) and applies a masked clear.
    """
    if not 0 <= channel < bytes_per_pixel:
        raise SimulationError(
            f"channel {channel} out of range for {bytes_per_pixel} B/pixel"
        )
    if 8 % bytes_per_pixel != 0:
        raise SimulationError("bytes_per_pixel must divide the 8-byte word")
    pattern_bytes = bytearray(8)
    for i in range(0, 8, bytes_per_pixel):
        pattern_bytes[i + channel] = 0xFF
    mask_word = np.frombuffer(bytes(pattern_bytes), dtype=np.uint64)[0]
    mask = np.full(image_words.shape, mask_word, dtype=np.uint64)
    return masked_init(ctx, image_words, mask)


def reference_masked_init(
    buffer: np.ndarray, mask: np.ndarray, pattern: Optional[np.ndarray] = None
) -> np.ndarray:
    """Plain-numpy reference."""
    if pattern is None:
        return buffer & ~mask
    return (buffer & ~mask) | (pattern & mask)
