"""BitFunnel-style document filtering for web search (Section 8.4.1).

BitFunnel (Goodwin et al., SIGIR 2017) stores document signatures as
Bloom filters in *bit-sliced* form: slice ``p`` holds bit ``p`` of every
document's signature, documents across the bit positions of a machine
word.  A query -- also a bag of terms -- needs documents whose signature
has a 1 in every position any query term hashes to, so matching is a
bitwise AND of the slices selected by the query across *all documents
simultaneously*.

That AND across row-sized slices is precisely Ambit's bulk operation:
"with Ambit, this operation can be significantly accelerated by
simultaneously performing the filtering for thousands of documents."

The implementation is functional end to end: documents are indexed
through the real Bloom hash functions, queries run against an
:class:`~repro.sim.system.ExecutionContext`, and matches are verified
against direct per-document filter checks in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set

import numpy as np

from repro.apps.bloom import BloomFilter, _hash_pair
from repro.core.microprograms import BulkOp
from repro.errors import SimulationError
from repro.sim.system import ExecutionContext


@dataclass
class BitFunnelIndex:
    """A bit-sliced Bloom-signature index.

    ``slices[p]`` is a packed bitvector over documents: bit ``d`` of
    slice ``p`` says "document d's signature has bit p set".
    """

    signature_bits: int
    num_hashes: int
    num_docs: int
    slices: List[np.ndarray]

    #: Row rank (BitFunnel's space/precision dial): at rank r, groups of
    #: ``2**r`` documents share each slice bit (OR-folded), quartering
    #: memory per rank step at the cost of extra false-positive
    #: candidates that the verification pass removes.
    rank: int = 0

    @classmethod
    def build(
        cls,
        documents: Sequence[Sequence[str]],
        signature_bits: int = 512,
        num_hashes: int = 3,
        rank: int = 0,
    ) -> "BitFunnelIndex":
        """Index a corpus of tokenised documents.

        ``rank > 0`` builds higher-rank rows: slice bit ``g`` covers the
        document group ``[g * 2**rank, (g+1) * 2**rank)``.
        """
        if not documents:
            raise SimulationError("cannot index an empty corpus")
        if rank < 0:
            raise SimulationError(f"rank must be non-negative; got {rank}")
        num_docs = len(documents)
        group = 1 << rank
        num_groups = -(-num_docs // group)
        padded = -(-num_groups // 64) * 64
        slice_bits = [np.zeros(padded, dtype=bool) for _ in range(signature_bits)]
        for d, terms in enumerate(documents):
            bloom = BloomFilter.build(terms, signature_bits, num_hashes)
            sig = np.unpackbits(bloom.vector.view(np.uint8), bitorder="little")
            for p in np.nonzero(sig)[0]:
                slice_bits[p][d // group] = True
        slices = [
            np.packbits(bits, bitorder="little").view(np.uint64)
            for bits in slice_bits
        ]
        return cls(
            signature_bits=signature_bits,
            num_hashes=num_hashes,
            num_docs=num_docs,
            slices=slices,
            rank=rank,
        )

    # ------------------------------------------------------------------
    def query_positions(self, terms: Sequence[str]) -> List[int]:
        """Signature positions a query's terms require to be set."""
        positions: Set[int] = set()
        for term in terms:
            h1, h2 = _hash_pair(term)
            for i in range(self.num_hashes):
                positions.add((h1 + i * h2) % self.signature_bits)
        return sorted(positions)

    @property
    def num_groups(self) -> int:
        """Document groups per slice (== num_docs at rank 0)."""
        return -(-self.num_docs // (1 << self.rank))

    def match(
        self, ctx: ExecutionContext, terms: Sequence[str]
    ) -> List[int]:
        """Candidate documents whose signature covers the query.

        One bulk AND per required position beyond the first; the context
        prices them (CPU streaming vs Ambit in-DRAM).  At rank 0 the
        candidates are exactly the signature matches; at higher ranks
        every document of a matching group is a candidate (the
        rank-induced false positives, removed by
        :meth:`match_verified`).
        """
        positions = self.query_positions(terms)
        if not positions:
            raise SimulationError("query has no terms")
        acc = self.slices[positions[0]]
        for p in positions[1:]:
            acc = ctx.bulk_op(BulkOp.AND, acc, self.slices[p], label="filter")
        bits = np.unpackbits(acc.view(np.uint8), bitorder="little")
        group = 1 << self.rank
        matches: List[int] = []
        for g in np.nonzero(bits[: self.num_groups])[0]:
            start = int(g) * group
            matches.extend(range(start, min(start + group, self.num_docs)))
        return matches

    def match_verified(
        self,
        ctx: ExecutionContext,
        terms: Sequence[str],
        documents: Sequence[Sequence[str]],
    ) -> List[int]:
        """Signature filtering plus exact verification of candidates.

        The BitFunnel pipeline: cheap bit-sliced AND narrows the corpus,
        then candidates are checked against the actual documents.
        """
        return [
            d
            for d in self.match(ctx, terms)
            if all(t in documents[d] for t in terms)
        ]

    def match_reference(self, terms: Sequence[str]) -> List[int]:
        """Per-group reference matching (no bit slicing)."""
        positions = self.query_positions(terms)
        group = 1 << self.rank
        matches: List[int] = []
        for g in range(self.num_groups):
            if all(self._group_bit(p, g) for p in positions):
                start = g * group
                matches.extend(range(start, min(start + group, self.num_docs)))
        return matches

    def _group_bit(self, position: int, group: int) -> bool:
        word, bit = divmod(group, 64)
        return bool((int(self.slices[position][word]) >> bit) & 1)
