"""Bloom filters: the substrate behind BitFunnel (Section 8.4.1).

BitFunnel represents documents and queries as bags of words hashed into
Bloom filters.  This module is a from-scratch Bloom filter over packed
uint64 bitvectors, with deterministic double hashing, so the BitFunnel
reproduction (and any other probabilistic-membership user) has a real
substrate rather than a stub.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Iterable, List

import numpy as np

from repro.errors import SimulationError


def _hash_pair(item: str) -> tuple:
    """Two independent 64-bit hashes of a string (for double hashing)."""
    digest = hashlib.blake2b(item.encode("utf-8"), digest_size=16).digest()
    return (
        int.from_bytes(digest[:8], "little"),
        int.from_bytes(digest[8:], "little"),
    )


def optimal_num_hashes(bits: int, expected_items: int) -> int:
    """k = (m/n) ln 2, clamped to at least 1."""
    if expected_items <= 0:
        return 1
    return max(1, round(bits / expected_items * math.log(2)))


@dataclass
class BloomFilter:
    """A fixed-size Bloom filter over packed uint64 words."""

    bits: int
    num_hashes: int
    vector: np.ndarray

    @classmethod
    def empty(cls, bits: int, num_hashes: int) -> "BloomFilter":
        if bits <= 0 or bits % 64 != 0:
            raise SimulationError(f"bits must be a positive multiple of 64; got {bits}")
        if num_hashes <= 0:
            raise SimulationError(f"num_hashes must be positive; got {num_hashes}")
        return cls(
            bits=bits,
            num_hashes=num_hashes,
            vector=np.zeros(bits // 64, dtype=np.uint64),
        )

    @classmethod
    def build(
        cls, items: Iterable[str], bits: int, num_hashes: int
    ) -> "BloomFilter":
        bloom = cls.empty(bits, num_hashes)
        for item in items:
            bloom.add(item)
        return bloom

    # ------------------------------------------------------------------
    def _positions(self, item: str) -> List[int]:
        h1, h2 = _hash_pair(item)
        return [(h1 + i * h2) % self.bits for i in range(self.num_hashes)]

    def add(self, item: str) -> None:
        """Insert an item: set its k hashed bit positions."""
        for pos in self._positions(item):
            word, bit = divmod(pos, 64)
            self.vector[word] |= np.uint64(1) << np.uint64(bit)

    def __contains__(self, item: str) -> bool:
        for pos in self._positions(item):
            word, bit = divmod(pos, 64)
            if not (int(self.vector[word]) >> bit) & 1:
                return False
        return True

    def false_positive_rate(self, items_inserted: int) -> float:
        """Theoretical FPR for the given load."""
        k, m, n = self.num_hashes, self.bits, items_inserted
        if n == 0:
            return 0.0
        return (1.0 - math.exp(-k * n / m)) ** k
