"""XOR-based encryption with bulk bitwise operations (Section 8.4.3).

"Many encryption algorithms heavily use bitwise operations (e.g., XOR).
The Ambit support for fast bulk bitwise operations can boost the
performance of existing encryption algorithms."

Two classic XOR-centric schemes are implemented over charged bulk
operations:

* **One-time pad / stream cipher**: ``ciphertext = plaintext xor
  keystream`` -- one bulk XOR per block, with a deterministic
  counter-mode keystream generator built on BLAKE2 (so the scheme is a
  real, decryptable cipher rather than a toy toggle).
* **XOR visual cryptography / secret sharing** (Tuyls et al.): split a
  bitmap into ``n`` random shares whose XOR reconstructs the secret;
  any subset of fewer than ``n`` shares is information-theoretically
  uniform.
"""

from __future__ import annotations

import hashlib
from typing import List, Tuple

import numpy as np

from repro.core.microprograms import BulkOp
from repro.errors import SimulationError
from repro.sim.system import ExecutionContext


def keystream(key: bytes, nonce: bytes, num_words: int) -> np.ndarray:
    """Counter-mode keystream of ``num_words`` uint64 words.

    Block ``i`` is ``BLAKE2b(key, nonce || i)``; deterministic for
    (key, nonce), unpredictable without the key.
    """
    if not key:
        raise SimulationError("key must be non-empty")
    words: List[int] = []
    counter = 0
    while len(words) < num_words:
        block = hashlib.blake2b(
            nonce + counter.to_bytes(8, "little"), key=key, digest_size=64
        ).digest()
        words.extend(
            int.from_bytes(block[i : i + 8], "little") for i in range(0, 64, 8)
        )
        counter += 1
    return np.array(words[:num_words], dtype=np.uint64)


def xor_encrypt(
    ctx: ExecutionContext, plaintext: np.ndarray, key: bytes, nonce: bytes
) -> np.ndarray:
    """Encrypt packed uint64 plaintext: one bulk XOR with the keystream."""
    stream = keystream(key, nonce, plaintext.size)
    return ctx.bulk_op(BulkOp.XOR, plaintext, stream, label="encrypt")


def xor_decrypt(
    ctx: ExecutionContext, ciphertext: np.ndarray, key: bytes, nonce: bytes
) -> np.ndarray:
    """Decrypt: XOR with the same keystream (XOR is an involution)."""
    stream = keystream(key, nonce, ciphertext.size)
    return ctx.bulk_op(BulkOp.XOR, ciphertext, stream, label="decrypt")


def make_shares(
    ctx: ExecutionContext,
    secret: np.ndarray,
    n: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, ...]:
    """XOR secret sharing: ``n`` shares whose XOR is the secret.

    Shares 1..n-1 are uniform random; the last is the running XOR of the
    secret with the others (n-1 bulk XORs).
    """
    if n < 2:
        raise SimulationError(f"need at least 2 shares; got {n}")
    shares = [
        rng.integers(0, 2**63, size=secret.size, dtype=np.uint64)
        for _ in range(n - 1)
    ]
    last = secret
    for share in shares:
        last = ctx.bulk_op(BulkOp.XOR, last, share, label="share")
    return tuple(shares + [last])


def combine_shares(
    ctx: ExecutionContext, shares: Tuple[np.ndarray, ...]
) -> np.ndarray:
    """Reconstruct the secret: XOR-reduce all shares (n-1 bulk XORs)."""
    if len(shares) < 2:
        raise SimulationError("need at least 2 shares to combine")
    acc = shares[0]
    for share in shares[1:]:
        acc = ctx.bulk_op(BulkOp.XOR, acc, share, label="combine")
    return acc
