"""Database bitmap indices accelerated by Ambit (Section 8.1, Figure 10).

The workload reproduces the paper's real-application query (drawn from a
production analytics engine): bitmap indices track, per user, daily
activity and static attributes (gender).  The query:

    "How many unique users were active every week for the past w weeks?
     and how many male users were active each of the past w weeks?"

Executing it requires ``6w`` bulk OR, ``2w - 1`` bulk AND, and ``w + 1``
bitcount operations; the bitcounts run on the CPU in both systems
(Ambit has no bit-count primitive), which is what bounds Ambit's
speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.microprograms import BulkOp
from repro.errors import SimulationError
from repro.sim.system import ExecutionContext

DAYS_PER_WEEK = 7


@dataclass
class BitmapIndexWorkload:
    """The bitmaps backing the query.

    Attributes
    ----------
    users: Number of users (bits per bitmap).
    daily_activity: One packed uint64 bitmap per day, newest last.
    male: Packed gender bitmap.
    """

    users: int
    daily_activity: List[np.ndarray]
    male: np.ndarray

    @property
    def days(self) -> int:
        return len(self.daily_activity)


def generate_workload(
    users: int,
    weeks: int,
    seed: int = 0,
    daily_active_probability: float = 0.3,
    male_probability: float = 0.5,
) -> BitmapIndexWorkload:
    """Deterministic synthetic bitmaps for ``weeks`` of daily activity."""
    if users <= 0 or weeks <= 0:
        raise SimulationError("users and weeks must be positive")
    rng = np.random.default_rng(seed)
    words = -(-users // 64)
    daily = []
    for _day in range(weeks * DAYS_PER_WEEK):
        bits = rng.random(words * 64) < daily_active_probability
        bits[users:] = False
        daily.append(np.packbits(bits, bitorder="little").view(np.uint64))
    male_bits = rng.random(words * 64) < male_probability
    male_bits[users:] = False
    male = np.packbits(male_bits, bitorder="little").view(np.uint64)
    return BitmapIndexWorkload(users=users, daily_activity=daily, male=male)


@dataclass(frozen=True)
class QueryResult:
    """Answer plus the time the context charged."""

    unique_active_every_week: int
    male_active_per_week: List[int]
    elapsed_ns: float


def run_query(
    ctx: ExecutionContext, workload: BitmapIndexWorkload, weeks: int
) -> QueryResult:
    """Execute the Figure 10 query on the given execution context.

    The same function serves baseline and Ambit runs; the context
    decides what each bulk operation costs.
    """
    if weeks * DAYS_PER_WEEK > workload.days:
        raise SimulationError(
            f"workload has {workload.days} days; query needs "
            f"{weeks * DAYS_PER_WEEK}"
        )
    start_ns = ctx.elapsed_ns
    # Weekly activity: OR-reduce each week's seven daily bitmaps
    # (6 ORs per week -> 6w bulk ORs).
    weekly: List[np.ndarray] = []
    days = workload.daily_activity[-weeks * DAYS_PER_WEEK :]
    for week in range(weeks):
        week_days = days[week * DAYS_PER_WEEK : (week + 1) * DAYS_PER_WEEK]
        acc = week_days[0]
        for day in week_days[1:]:
            acc = ctx.bulk_op(BulkOp.OR, acc, day, label="or")
        weekly.append(acc)

    # Unique users active every week: AND-reduce the weekly bitmaps
    # (w - 1 bulk ANDs) and bitcount once.
    every_week = weekly[0]
    for week_map in weekly[1:]:
        every_week = ctx.bulk_op(BulkOp.AND, every_week, week_map, label="and")
    unique = ctx.popcount(every_week)

    # Male users active each week: one AND + bitcount per week
    # (w bulk ANDs, w bitcounts) -- totals: 2w-1 ANDs, w+1 bitcounts.
    male_counts = []
    for week_map in weekly:
        male_week = ctx.bulk_op(BulkOp.AND, week_map, workload.male, label="and")
        male_counts.append(ctx.popcount(male_week))

    return QueryResult(
        unique_active_every_week=unique,
        male_active_per_week=male_counts,
        elapsed_ns=ctx.elapsed_ns - start_ns,
    )


def bitmap_density(bitmap: np.ndarray, users: int) -> float:
    """Fraction of set bits in a packed bitmap."""
    ones = int(np.unpackbits(bitmap.view(np.uint8)).sum())
    return ones / users if users else 0.0


def route_bitmap(bitmap: np.ndarray, users: int, threshold: float = 0.02) -> str:
    """Storage routing for one bitmap: Ambit rows or WAH on the CPU.

    Production bitmap indexes compress sparse bitmaps (FastBit's WAH);
    Ambit's row-wide operations need them uncompressed.  Very sparse
    bitmaps (rare attributes) compress so well that CPU-side WAH touches
    orders of magnitude less data than a full row scan, so a realistic
    engine routes per bitmap.  The threshold approximates where WAH's
    traffic advantage (~ratio x) overtakes Ambit's bandwidth advantage
    over the CPU.
    """
    density = bitmap_density(bitmap, users)
    # WAH collapses runs of 63 zero bits; expected compression for
    # density d is roughly 1 / (63 * d) for d << 1.
    return "wah-cpu" if density < threshold else "ambit"


def reference_query(workload: BitmapIndexWorkload, weeks: int) -> QueryResult:
    """Plain-numpy reference answer for correctness checks."""
    days = workload.daily_activity[-weeks * DAYS_PER_WEEK :]
    weekly = []
    for week in range(weeks):
        acc = days[week * DAYS_PER_WEEK]
        for day in days[week * DAYS_PER_WEEK + 1 : (week + 1) * DAYS_PER_WEEK]:
            acc = acc | day
        weekly.append(acc)
    every = weekly[0]
    for w in weekly[1:]:
        every = every & w
    popcnt = lambda v: int(np.unpackbits(v.view(np.uint8)).sum())
    return QueryResult(
        unique_active_every_week=popcnt(every),
        male_active_per_week=[popcnt(w & workload.male) for w in weekly],
        elapsed_ns=0.0,
    )
