"""A miniature BitWeaving column store (the WideTable motivation).

The paper motivates BitWeaving through WideTable [76], "an entire
database designed around" scans over bit-weaved columns.  This module is
that end-to-end slice: a table of integer columns stored in
BitWeaving-V layout, a predicate algebra (range / equality / comparison
per column, combined with AND/OR/NOT), and a tiny executor that compiles
a query to bulk bitwise operations over the predicate masks -- the exact
workload shape Ambit accelerates.

Queries run against an :class:`~repro.sim.system.ExecutionContext`
(baseline CPU or Ambit costing) and return verified results: the tests
check every query against a direct numpy evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.bitweaving import (
    BitWeavingColumn,
    scan_range_ambit,
    scan_range_baseline,
)
from repro.core.microprograms import BulkOp
from repro.errors import SimulationError
from repro.sim.system import ExecutionContext


@dataclass
class Table:
    """A read-only table of BitWeaving-encoded integer columns."""

    rows: int
    columns: Dict[str, BitWeavingColumn]

    @classmethod
    def from_columns(cls, data: Dict[str, Tuple[np.ndarray, int]]) -> "Table":
        """Build from ``{name: (values, bits)}``."""
        if not data:
            raise SimulationError("a table needs at least one column")
        columns = {}
        rows = None
        for name, (values, bits) in data.items():
            column = BitWeavingColumn.encode(np.asarray(values, np.uint64), bits)
            if rows is None:
                rows = column.rows
            elif column.rows != rows:
                raise SimulationError(
                    f"column {name!r} has {column.rows} rows; expected {rows}"
                )
            columns[name] = column
        return cls(rows=rows, columns=columns)

    def column(self, name: str) -> BitWeavingColumn:
        """Look up a column by name (raises on unknown names)."""
        try:
            return self.columns[name]
        except KeyError:
            raise SimulationError(
                f"no column {name!r}; have {sorted(self.columns)}"
            ) from None


# ----------------------------------------------------------------------
# Predicate algebra
# ----------------------------------------------------------------------

class Predicate:
    """Base class; subclasses compile to a packed row mask."""

    def mask(self, ctx: ExecutionContext, table: Table, ambit: bool) -> np.ndarray:
        """Compile this predicate to a packed row mask (charged ops)."""
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "Predicate":
        return _Combine(BulkOp.AND, self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return _Combine(BulkOp.OR, self, other)

    def __invert__(self) -> "Predicate":
        return _Negate(self)


@dataclass
class Range(Predicate):
    """``low <= column <= high`` (either bound optional)."""

    column: str
    low: Optional[int] = None
    high: Optional[int] = None

    def mask(self, ctx, table, ambit):
        """Scan the column for the (possibly open) range."""
        col = table.column(self.column)
        lo = 0 if self.low is None else self.low
        hi = (1 << col.bits) - 1 if self.high is None else self.high
        scan = scan_range_ambit if ambit else scan_range_baseline
        mask, _count = scan(ctx, col, lo, hi)
        return mask


def Eq(column: str, value: int) -> Range:  # noqa: N802 - predicate DSL
    """``column == value``."""
    return Range(column, value, value)


def Le(column: str, value: int) -> Range:  # noqa: N802
    """``column <= value``."""
    return Range(column, None, value)


def Ge(column: str, value: int) -> Range:  # noqa: N802
    """``column >= value``."""
    return Range(column, value, None)


@dataclass
class _Combine(Predicate):
    op: BulkOp
    left: Predicate
    right: Predicate

    def mask(self, ctx, table, ambit):
        lhs = self.left.mask(ctx, table, ambit)
        rhs = self.right.mask(ctx, table, ambit)
        return ctx.bulk_op(self.op, lhs, rhs, label="combine")


@dataclass
class _Negate(Predicate):
    inner: Predicate

    def mask(self, ctx, table, ambit):
        mask = ctx.bulk_op(
            BulkOp.NOT, self.inner.mask(ctx, table, ambit), label="combine"
        )
        return _trim(mask, None)


def _trim(mask: np.ndarray, rows: Optional[int]) -> np.ndarray:
    if rows is None:
        return mask
    bits = np.unpackbits(mask.view(np.uint8), bitorder="little")
    bits[rows:] = 0
    return np.packbits(bits, bitorder="little").view(np.uint64)


# ----------------------------------------------------------------------
# Query execution
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class QueryResult:
    count: int
    matching_rows: Tuple[int, ...]
    elapsed_ns: float


def select_count(
    ctx: ExecutionContext,
    table: Table,
    predicate: Predicate,
    ambit: bool,
    materialize: bool = False,
) -> QueryResult:
    """``select count(*) from table where <predicate>``.

    ``materialize=True`` also extracts the matching row ids (a CPU-side
    pass over the final mask, charged as a stream).
    """
    start = ctx.elapsed_ns
    mask = predicate.mask(ctx, table, ambit)
    mask = _trim(mask, table.rows)
    count = ctx.popcount(mask)
    rows: Tuple[int, ...] = ()
    if materialize:
        bits = np.unpackbits(mask.view(np.uint8), bitorder="little")[: table.rows]
        rows = tuple(int(r) for r in np.nonzero(bits)[0])
        ctx.charge_stream(mask.nbytes, mask.nbytes, label="materialize")
    return QueryResult(
        count=count, matching_rows=rows, elapsed_ns=ctx.elapsed_ns - start
    )


def select_sum(
    ctx: ExecutionContext,
    table: Table,
    column: str,
    predicate: Optional[Predicate],
    ambit: bool,
) -> int:
    """``select sum(column) from table [where <predicate>]``.

    The predicate mask (if any) is ANDed into each bit plane and the
    sum is assembled from weighted popcounts -- no adder involved (see
    :func:`repro.apps.arithmetic.sum_aggregate`).
    """
    from repro.apps.arithmetic import sum_aggregate

    col = table.column(column)
    mask = None
    if predicate is not None:
        mask = _trim(predicate.mask(ctx, table, ambit), table.rows)
    else:
        # Unfiltered SUM still needs the padding lanes masked out.
        bits = np.ones(table.rows, dtype=bool)
        padded = np.zeros(col.plane_bytes * 8, dtype=bool)
        padded[: table.rows] = bits
        mask = np.packbits(padded, bitorder="little").view(np.uint64)
    return sum_aggregate(ctx, col, mask=mask)


def reference_eval(
    table_data: Dict[str, np.ndarray], predicate: Predicate
) -> np.ndarray:
    """Direct numpy evaluation of a predicate tree (for verification)."""
    if isinstance(predicate, Range):
        values = table_data[predicate.column]
        lo = 0 if predicate.low is None else predicate.low
        hi = values.max() if predicate.high is None else predicate.high
        return (values >= lo) & (values <= hi)
    if isinstance(predicate, _Combine):
        lhs = reference_eval(table_data, predicate.left)
        rhs = reference_eval(table_data, predicate.right)
        return lhs & rhs if predicate.op is BulkOp.AND else lhs | rhs
    if isinstance(predicate, _Negate):
        return ~reference_eval(table_data, predicate.inner)
    raise SimulationError(f"unknown predicate {predicate!r}")
