"""Device-backed bitvectors: the application-facing Ambit API.

The accelerator API of Section 5.4.2: applications allocate bitvectors
through the driver (which co-locates co-operating vectors subarray by
subarray) and combine them with bulk bitwise operations that execute
entirely inside the DRAM device.

:class:`AmbitBitSystem` bundles a device and its driver;
:class:`BitVector` provides numpy-like operators on top.  Every
operation runs through the real command-level model, so results are
bit-exact and the device's timing/energy accounting reflects the work.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.device import AmbitDevice
from repro.core.driver import AmbitDriver, BitVectorHandle
from repro.core.microprograms import BulkOp
from repro.errors import AllocationError, CompileError
from repro.dram.geometry import DramGeometry


class AmbitBitSystem:
    """An Ambit device plus driver, ready to host bitvectors."""

    def __init__(
        self,
        device: Optional[AmbitDevice] = None,
        geometry: Optional[DramGeometry] = None,
    ):
        if device is not None and geometry is not None:
            raise AllocationError("pass either a device or a geometry, not both")
        self.device = device if device is not None else AmbitDevice(geometry=geometry)
        self.driver = AmbitDriver(self.device)

    # ------------------------------------------------------------------
    def bitvector(
        self, nbits: int, like: Optional["BitVector"] = None
    ) -> "BitVector":
        """Allocate a zeroed bitvector (optionally co-located with ``like``)."""
        handle = self.driver.allocate(
            nbits, like=None if like is None else like.handle
        )
        vector = BitVector(self, handle)
        vector.set_bits(np.zeros(nbits, dtype=bool))
        return vector

    def from_bits(
        self, bits: np.ndarray, like: Optional["BitVector"] = None
    ) -> "BitVector":
        """Allocate and initialise a bitvector from a boolean array."""
        bits = np.asarray(bits, dtype=bool)
        vector = self.bitvector(bits.size, like=like)
        vector.set_bits(bits)
        return vector

    @property
    def elapsed_ns(self) -> float:
        return self.device.elapsed_ns


class BitVector:
    """A bitvector living in Ambit DRAM rows.

    Supports ``&``, ``|``, ``^``, ``~`` (allocating the result
    co-located with the left operand) and the named in-place forms.
    Bits beyond ``nbits`` in the final row are kept zero.
    """

    def __init__(self, system: AmbitBitSystem, handle: BitVectorHandle):
        self.system = system
        self.handle = handle

    # ------------------------------------------------------------------
    @property
    def nbits(self) -> int:
        return self.handle.nbits

    @property
    def device(self) -> AmbitDevice:
        return self.system.device

    # ------------------------------------------------------------------
    # Host data movement
    # ------------------------------------------------------------------
    def set_bits(self, bits: np.ndarray) -> None:
        """Write a boolean array into the vector (row-padded with zeros)."""
        bits = np.asarray(bits, dtype=bool)
        if bits.size != self.nbits:
            raise AllocationError(
                f"bit array has {bits.size} bits; vector holds {self.nbits}"
            )
        row_bits = self.device.row_bits
        padded = np.zeros(self.handle.num_rows * row_bits, dtype=bool)
        padded[: self.nbits] = bits
        for i, loc in enumerate(self.handle.rows):
            chunk = padded[i * row_bits : (i + 1) * row_bits]
            packed = np.packbits(chunk, bitorder="little").view(np.uint64)
            self.device.write_row(loc, packed)

    def to_bits(self) -> np.ndarray:
        """Read the vector back as a boolean array of ``nbits``."""
        row_bits = self.device.row_bits
        out = np.zeros(self.handle.num_rows * row_bits, dtype=bool)
        for i, loc in enumerate(self.handle.rows):
            packed = self.device.read_row(loc)
            bits = np.unpackbits(packed.view(np.uint8), bitorder="little")
            out[i * row_bits : (i + 1) * row_bits] = bits.astype(bool)
        return out[: self.nbits]

    def popcount(self) -> int:
        """Count set bits (performed by the CPU, as in the paper)."""
        return int(self.to_bits().sum())

    # ------------------------------------------------------------------
    # Bulk bitwise operations (in-DRAM)
    # ------------------------------------------------------------------
    def op_into(
        self,
        op: BulkOp,
        dst: "BitVector",
        other: Optional["BitVector"] = None,
    ) -> "BitVector":
        """``dst = op(self, other)`` chunk by chunk inside DRAM.

        Chunks not co-located with the destination are staged through
        scratch rows (the driver's slow path); co-located layouts --
        anything allocated with ``like=`` -- run pure RowClone-FPM.

        With no tracer attached, co-located chunks execute through the
        batch engine (:mod:`repro.engine`): one fused kernel per
        (bank, subarray) group, issued round-robin across banks, with
        identical results and identical timing/energy accounting.  With
        a tracer attached, every chunk walks the per-row command path so
        the emitted trace stream is unchanged.
        """
        operands = [self] + ([other] if other is not None else [])
        for v in operands + [dst]:
            if v.handle.num_rows != self.handle.num_rows:
                raise AllocationError("bitvector operands must have equal row counts")
        driver = self.system.driver
        if self.device.tracer is not None:
            for i in range(self.handle.num_rows):
                d = dst.handle.rows[i]
                a = driver.stage_for(self.handle.rows[i], d, scratch_index=0)
                b = None
                if other is not None:
                    b = driver.stage_for(other.handle.rows[i], d, scratch_index=1)
                self.device.bbop_row(op, d, a, b)
            return dst
        # Batched path: fuse co-located chunks, stage strays per row.
        dst_rows, src_rows, other_rows = [], [], []
        for i in range(self.handle.num_rows):
            d = dst.handle.rows[i]
            a = self.handle.rows[i]
            b = other.handle.rows[i] if other is not None else None
            colocated = (a.bank, a.subarray) == (d.bank, d.subarray) and (
                b is None or (b.bank, b.subarray) == (d.bank, d.subarray)
            )
            if colocated:
                dst_rows.append(d)
                src_rows.append(a)
                if b is not None:
                    other_rows.append(b)
            else:
                a = driver.stage_for(a, d, scratch_index=0)
                if b is not None:
                    b = driver.stage_for(b, d, scratch_index=1)
                self.device.bbop_row(op, d, a, b)
        if dst_rows:
            self.device.engine.run_rows(
                op, dst_rows, src_rows, other_rows if other is not None else None
            )
        return dst

    def _binary(self, op: BulkOp, other: "BitVector") -> "BitVector":
        dst = self.system.bitvector(self.nbits, like=self)
        return self.op_into(op, dst, other)

    def __and__(self, other: "BitVector") -> "BitVector":
        return self._binary(BulkOp.AND, other)

    def __or__(self, other: "BitVector") -> "BitVector":
        return self._binary(BulkOp.OR, other)

    def __xor__(self, other: "BitVector") -> "BitVector":
        return self._binary(BulkOp.XOR, other)

    def __invert__(self) -> "BitVector":
        dst = self.system.bitvector(self.nbits, like=self)
        self.op_into(BulkOp.NOT, dst)
        # NOT flips the padding in the final partial row; re-zero it so
        # popcount and round-trips stay correct.
        dst._clear_padding()
        return dst

    def nand(self, other: "BitVector") -> "BitVector":
        """``~(self & other)`` via the Figure 8b microprogram."""
        result = self._binary(BulkOp.NAND, other)
        result._clear_padding()
        return result

    def nor(self, other: "BitVector") -> "BitVector":
        """``~(self | other)`` (the NAND program with C1)."""
        result = self._binary(BulkOp.NOR, other)
        result._clear_padding()
        return result

    def xnor(self, other: "BitVector") -> "BitVector":
        """``~(self ^ other)`` (the XOR program with swapped control rows)."""
        result = self._binary(BulkOp.XNOR, other)
        result._clear_padding()
        return result

    # ------------------------------------------------------------------
    # Compiled (synthesized) operations
    # ------------------------------------------------------------------
    def compute(self, op, **bindings) -> "BitVector":
        """Evaluate a compiled boolean expression over bitvectors.

        ``op`` may be an expression string (``"maj(a, b, c) ^ ~a"``), a
        :class:`repro.compile.ir.Expr`, or a pre-compiled
        :class:`repro.compile.ops.CompiledOp`.  Keyword arguments bind
        the expression's variables to bitvectors; when exactly one
        variable is left unbound it binds to ``self``.  Returns a fresh
        vector co-located with ``self`` holding the result.

        Execution runs entirely in-DRAM through the synthesized
        MAJ/NOT microprogram: scratch rows are leased from the driver
        chunk-aligned with the destination, co-located chunks go
        through the batch engine (or the sharded device when one wraps
        it), strays are staged like :meth:`op_into`, and an attached
        tracer sees the exact per-row command walk.
        """
        from repro.compile.ir import Expr, parse_expr
        from repro.compile.ops import CompiledOp, compile_expr

        if isinstance(op, str):
            op = parse_expr(op)
        if isinstance(op, Expr):
            cop = compile_expr(op)
        elif isinstance(op, CompiledOp):
            cop = op
        else:
            raise CompileError(
                f"compute takes an expression string, Expr, or "
                f"CompiledOp; got {op!r}"
            )
        extra = sorted(set(bindings) - set(cop.inputs))
        if extra:
            raise CompileError(
                f"unknown inputs {extra}; {cop.value} takes {list(cop.inputs)}"
            )
        unbound = [name for name in cop.inputs if name not in bindings]
        if len(unbound) == 1:
            bindings[unbound[0]] = self
        elif unbound:
            raise CompileError(
                f"unbound inputs {unbound} (with more than one free "
                f"variable every input must be bound by keyword)"
            )
        vectors = [bindings[name] for name in cop.inputs]
        for v in vectors:
            if v.nbits != self.nbits or v.handle.num_rows != self.handle.num_rows:
                raise AllocationError(
                    "bitvector operands must have equal sizes"
                )

        dst = self.system.bitvector(self.nbits, like=self)
        driver = self.system.driver
        with driver.temp_rows(dst.handle, cop.num_temps) as temp_handles:
            self._execute_compiled(cop, dst, vectors, temp_handles)
        # A compiled function with a non-zero image of all-zero inputs
        # (xnor-shaped outputs) flips the padding of the final partial
        # row; re-zero it so popcount and round-trips stay correct.
        pad, _ = cop.eval_rows(
            [np.zeros(1, dtype=np.uint64)] * cop.arity
        )
        if int(pad[0]):
            dst._clear_padding()
        return dst

    def _execute_compiled(self, cop, dst, vectors, temp_handles) -> None:
        driver = self.system.driver
        num_rows = self.handle.num_rows

        def row_operands(i):
            d = dst.handle.rows[i]
            srcs = [v.handle.rows[i] for v in vectors]
            strays = [
                s for s in srcs
                if (s.bank, s.subarray) != (d.bank, d.subarray)
            ]
            if len(strays) > 2:
                raise AllocationError(
                    f"chunk {i} has {len(strays)} cross-subarray operands; "
                    f"only 2 scratch rows exist -- allocate operands with "
                    f"like= to co-locate them"
                )
            temps = [h.rows[i] for h in temp_handles]
            return d, srcs, strays, temps

        if self.device.tracer is not None:
            for i in range(num_rows):
                d, srcs, _, temps = row_operands(i)
                staged = []
                scratch = 0
                for s in srcs:
                    if (s.bank, s.subarray) != (d.bank, d.subarray):
                        s = driver.stage_for(s, d, scratch_index=scratch)
                        scratch += 1
                    staged.append(s)
                self.device.bbop_compiled_row(cop, d, staged, temps)
            return
        # Batched path: fuse co-located chunks, stage strays per row.
        dst_rows = []
        operand_cols = [[] for _ in range(cop.arity)]
        temp_cols = [[] for _ in range(cop.num_temps)]
        for i in range(num_rows):
            d, srcs, strays, temps = row_operands(i)
            if not strays:
                dst_rows.append(d)
                for col, s in zip(operand_cols, srcs):
                    col.append(s)
                for col, t in zip(temp_cols, temps):
                    col.append(t)
                continue
            staged = []
            scratch = 0
            for s in srcs:
                if (s.bank, s.subarray) != (d.bank, d.subarray):
                    s = driver.stage_for(s, d, scratch_index=scratch)
                    scratch += 1
                staged.append(s)
            self.device.bbop_compiled_row(cop, d, staged, temps)
        if dst_rows:
            runner = getattr(self.device, "run_compiled", None)
            if runner is None:
                runner = self.device.engine.run_compiled
            runner(cop, dst_rows, operand_cols, temp_cols)

    def copy(self) -> "BitVector":
        """Duplicate the vector (RowClone copies, co-located)."""
        dst = self.system.bitvector(self.nbits, like=self)
        return self.op_into(BulkOp.COPY, dst)

    def free(self) -> None:
        """Return the vector's rows to the driver's free pool."""
        self.system.driver.free(self.handle)

    # ------------------------------------------------------------------
    def _clear_padding(self) -> None:
        row_bits = self.device.row_bits
        tail_bits = self.nbits % row_bits
        if tail_bits == 0:
            return
        loc = self.handle.rows[-1]
        packed = self.device.read_row(loc)
        bits = np.unpackbits(packed.view(np.uint8), bitorder="little")
        bits[tail_bits:] = 0
        self.device.write_row(
            loc, np.packbits(bits, bitorder="little").view(np.uint64)
        )
