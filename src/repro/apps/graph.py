"""Graph processing with bulk bitwise operations.

The paper's introduction lists graph processing among the domains that
"trigger bulk bitwise operations" (via Pinatubo [74]).  The classic
bitwise formulation is frontier-based BFS over a dense adjacency
bit-matrix:

    next = (OR of adjacency rows of the frontier) AND NOT visited

Every step is bulk AND/OR/NOT over N-bit vectors, i.e. exactly Ambit's
primitive.  The implementation is functional (real reachability/level
results, validated against networkx in the tests) with all vector steps
charged through an :class:`~repro.sim.system.ExecutionContext`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.microprograms import BulkOp
from repro.errors import SimulationError
from repro.sim.system import ExecutionContext


@dataclass
class BitGraph:
    """A directed graph as a dense adjacency bit-matrix.

    Row ``v`` is a packed bitvector over destination nodes: bit ``u``
    set means an edge ``v -> u``.
    """

    num_nodes: int
    rows: List[np.ndarray]

    @classmethod
    def from_edges(
        cls, num_nodes: int, edges: Sequence[Tuple[int, int]]
    ) -> "BitGraph":
        if num_nodes <= 0:
            raise SimulationError("graph needs at least one node")
        padded = -(-num_nodes // 64) * 64
        matrix = np.zeros((num_nodes, padded), dtype=bool)
        for src, dst in edges:
            if not (0 <= src < num_nodes and 0 <= dst < num_nodes):
                raise SimulationError(f"edge ({src}, {dst}) out of range")
            matrix[src, dst] = True
        rows = [
            np.packbits(matrix[v], bitorder="little").view(np.uint64)
            for v in range(num_nodes)
        ]
        return cls(num_nodes=num_nodes, rows=rows)

    @property
    def words(self) -> int:
        return self.rows[0].size

    def neighbors(self, node: int) -> List[int]:
        """Out-neighbour list of a node (decoded from its row)."""
        bits = np.unpackbits(self.rows[node].view(np.uint8), bitorder="little")
        return [int(u) for u in np.nonzero(bits[: self.num_nodes])[0]]


def _unpack(vector: np.ndarray, n: int) -> np.ndarray:
    return np.unpackbits(vector.view(np.uint8), bitorder="little")[:n].astype(bool)


def _pack(bits: np.ndarray) -> np.ndarray:
    padded = np.zeros(-(-bits.size // 64) * 64, dtype=bool)
    padded[: bits.size] = bits
    return np.packbits(padded, bitorder="little").view(np.uint64)


def bfs_levels(
    ctx: ExecutionContext, graph: BitGraph, source: int
) -> Dict[int, int]:
    """Breadth-first levels from ``source`` using bulk bitwise steps.

    Per level: an OR-reduction of the frontier nodes' adjacency rows,
    one NOT of the visited vector, and one AND -- all charged bulk
    operations.  Returns ``{node: level}`` for reachable nodes.
    """
    if not 0 <= source < graph.num_nodes:
        raise SimulationError(f"source {source} out of range")
    n = graph.num_nodes
    visited = np.zeros(n, dtype=bool)
    visited[source] = True
    frontier = [source]
    levels = {source: 0}
    level = 0
    while frontier:
        level += 1
        # OR-reduce the frontier's adjacency rows (bulk ORs).
        acc = graph.rows[frontier[0]]
        for v in frontier[1:]:
            acc = ctx.bulk_op(BulkOp.OR, acc, graph.rows[v], label="bfs-or")
        # next = acc & ~visited (bulk NOT + AND).
        not_visited = ctx.bulk_op(BulkOp.NOT, _pack(visited), label="bfs-not")
        next_packed = ctx.bulk_op(BulkOp.AND, acc, not_visited, label="bfs-and")
        next_bits = _unpack(next_packed, n)
        frontier = [int(u) for u in np.nonzero(next_bits)[0]]
        for u in frontier:
            levels[u] = level
        visited |= next_bits
    return levels


def reachable_set(
    ctx: ExecutionContext, graph: BitGraph, source: int
) -> List[int]:
    """All nodes reachable from ``source`` (including it)."""
    return sorted(bfs_levels(ctx, graph, source))


def triangle_count(ctx: ExecutionContext, graph: BitGraph) -> int:
    """Count triangles in an undirected graph via bulk ANDs.

    For each edge (u, v) with u < v, the common neighbours are
    ``adj[u] AND adj[v]`` -- one bulk AND per edge, then a bitcount.
    Each triangle is counted three times (once per edge).
    """
    total = 0
    for u in range(graph.num_nodes):
        for v in graph.neighbors(u):
            if v <= u:
                continue
            common = ctx.bulk_op(
                BulkOp.AND, graph.rows[u], graph.rows[v], label="tri-and"
            )
            count = ctx.popcount(common, label="tri-count")
            # Exclude any stray self-adjacency bits beyond the node range.
            total += count
    if total % 3 != 0:
        raise SimulationError("triangle count inconsistency (directed input?)")
    return total // 3
