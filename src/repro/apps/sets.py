"""Set data structures: bitvectors vs red-black trees (Section 8.3, Fig. 12).

Three implementations of the set operations union / intersection /
difference over ``m`` input sets with a bounded domain ``1..N``:

* :class:`RBTreeSetOps` -- red-black trees (``std::set`` stand-in),
  charged per node dereference at the pointer-chase latency.
* :class:`BitsetSetOps` -- software bitvectors processed with 128-bit
  SIMD on the CPU (the ``std::bitset`` stand-in), charged through the
  CPU streaming model.
* :class:`AmbitSetOps` -- the same bitvectors with the bulk operations
  executed by Ambit.  Because the input sets were just built/modified by
  the CPU, their cache lines are dirty: every Ambit operation first
  pays the coherence flush of Section 5.4.4, and the CPU reads the
  result back -- these two costs are what keeps Ambit's advantage over
  Bitset at the paper's ~3x rather than orders of magnitude.

All three produce identical membership results; the experiment driver
checks that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.apps.rbtree import RedBlackTree
from repro.core.microprograms import BulkOp
from repro.errors import SimulationError
from repro.sim.cpu import CpuModel
from repro.sim.system import AmbitContext, CpuContext


def _pack_domain(elements: Sequence[int], domain: int) -> np.ndarray:
    """Elements of ``1..domain`` -> packed uint64 bitvector."""
    bits = np.zeros(-(-domain // 64) * 64, dtype=bool)
    for e in elements:
        if not 1 <= e <= domain:
            raise SimulationError(f"element {e} outside domain 1..{domain}")
        bits[e - 1] = True
    return np.packbits(bits, bitorder="little").view(np.uint64)


def _unpack_domain(vector: np.ndarray, domain: int) -> List[int]:
    bits = np.unpackbits(vector.view(np.uint8), bitorder="little")[:domain]
    return [int(i) + 1 for i in np.nonzero(bits)[0]]


@dataclass
class SetOpResult:
    """Result membership plus the charged execution time."""

    elements: List[int]
    elapsed_ns: float


class RBTreeSetOps:
    """Red-black-tree sets with pointer-chase cost accounting."""

    def __init__(self, cpu: CpuModel):
        self.cpu = cpu

    def _build(self, elements: Sequence[int]) -> RedBlackTree:
        tree = RedBlackTree()
        for e in elements:
            tree.insert(e)
        return tree

    def _run(self, sets: Sequence[Sequence[int]], op: str) -> SetOpResult:
        if not sets:
            raise SimulationError("need at least one input set")
        trees = [self._build(s) for s in sets]
        for t in trees:
            t.stats.reset()  # charge only the operation, not the build
        out = RedBlackTree()
        if op == "union":
            for tree in trees:
                for key in tree:
                    out.insert(key)
        elif op == "intersection":
            first, rest = trees[0], trees[1:]
            for key in first:
                if all(key in t for t in rest):
                    out.insert(key)
        elif op == "difference":
            first, rest = trees[0], trees[1:]
            for key in first:
                if not any(key in t for t in rest):
                    out.insert(key)
        else:
            raise SimulationError(f"unknown set operation {op!r}")
        visits = sum(t.stats.node_visits for t in trees) + out.stats.node_visits
        elapsed = self.cpu.pointer_chase_ns(visits)
        return SetOpResult(elements=sorted(out), elapsed_ns=elapsed)

    def union(self, sets):
        """Union of all input sets."""
        return self._run(sets, "union")

    def intersection(self, sets):
        """Intersection of all input sets."""
        return self._run(sets, "intersection")

    def difference(self, sets):
        """First set minus the union of the rest."""
        return self._run(sets, "difference")


class _BitvectorSetOps:
    """Shared bitvector logic; the context decides the costs."""

    def __init__(self, domain: int):
        self.domain = domain

    def _make_context(self):
        raise NotImplementedError

    def _prologue(self, ctx, vectors: List[np.ndarray]) -> None:
        """Hook: extra costs before the bulk operations."""

    def _epilogue(self, ctx, result: np.ndarray) -> None:
        """Hook: extra costs after the bulk operations."""

    def _run(self, sets: Sequence[Sequence[int]], op: str) -> SetOpResult:
        if not sets:
            raise SimulationError("need at least one input set")
        vectors = [_pack_domain(s, self.domain) for s in sets]
        ctx = self._make_context()
        self._prologue(ctx, vectors)
        acc = vectors[0]
        for v in vectors[1:]:
            if op == "union":
                acc = ctx.bulk_op(BulkOp.OR, acc, v)
            elif op == "intersection":
                acc = ctx.bulk_op(BulkOp.AND, acc, v)
            elif op == "difference":
                # acc = acc & ~v, i.e. one NOT + one AND per input.
                not_v = ctx.bulk_op(BulkOp.NOT, v)
                acc = ctx.bulk_op(BulkOp.AND, acc, not_v)
            else:
                raise SimulationError(f"unknown set operation {op!r}")
        self._epilogue(ctx, acc)
        return SetOpResult(
            elements=_unpack_domain(acc, self.domain), elapsed_ns=ctx.elapsed_ns
        )

    def union(self, sets):
        return self._run(sets, "union")

    def intersection(self, sets):
        return self._run(sets, "intersection")

    def difference(self, sets):
        return self._run(sets, "difference")


class BitsetSetOps(_BitvectorSetOps):
    """SIMD bitvector sets on the baseline CPU."""

    def __init__(self, domain: int, cpu: CpuModel):
        super().__init__(domain)
        self.cpu = cpu

    def _make_context(self):
        return CpuContext(self.cpu)


class AmbitSetOps(_BitvectorSetOps):
    """Bitvector sets with Ambit-executed bulk operations."""

    def __init__(self, domain: int, cpu: CpuModel):
        super().__init__(domain)
        self.cpu = cpu

    def _make_context(self):
        return AmbitContext(self.cpu)

    def _prologue(self, ctx, vectors: List[np.ndarray]) -> None:
        # The input sets were just populated by the CPU: their lines are
        # dirty on chip and must be flushed before Ambit touches them.
        for v in vectors:
            ctx.mark_cpu_written(v.nbytes)

    def _epilogue(self, ctx, result: np.ndarray) -> None:
        # The application consumes the result on the CPU, streaming it
        # back from DRAM.
        ctx.charge_stream(result.nbytes, result.nbytes, label="readback")


def reference_set_op(sets: Sequence[Sequence[int]], op: str) -> List[int]:
    """Python-set reference for correctness checks."""
    acc = set(sets[0])
    for s in sets[1:]:
        if op == "union":
            acc |= set(s)
        elif op == "intersection":
            acc &= set(s)
        elif op == "difference":
            acc -= set(s)
        else:
            raise SimulationError(f"unknown set operation {op!r}")
    return sorted(acc)
