"""Word-Aligned Hybrid (WAH) bitmap compression.

Real bitmap-index engines (FastBit, the paper's reference [3]; Oracle;
the compression study the paper cites as [111]) store bitmaps
WAH-compressed.  This substrate implements WAH over 64-bit words:

* a **literal word** stores 63 payload bits verbatim,
* a **fill word** run-length-encodes k consecutive all-zero or all-one
  63-bit groups.

Logical AND/OR run directly on the compressed form (the whole point of
WAH), and the module quantifies the compression ratio, which is what
decides whether a query engine should decompress into Ambit rows (dense
bitmaps) or stay compressed on the CPU (sparse ones) -- see
:func:`ambit_or_wah_decision`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import SimulationError

#: Payload bits per WAH word (one bit is the literal/fill flag).
GROUP_BITS = 63

_FILL_FLAG = 1 << 63
_FILL_VALUE = 1 << 62
_COUNT_MASK = (1 << 62) - 1
_PAYLOAD_MASK = (1 << 63) - 1


@dataclass
class WahBitmap:
    """A WAH-compressed bitmap."""

    nbits: int
    words: List[int]

    @property
    def compressed_words(self) -> int:
        return len(self.words)

    @property
    def uncompressed_groups(self) -> int:
        return -(-self.nbits // GROUP_BITS)

    @property
    def compression_ratio(self) -> float:
        """Uncompressed 63-bit groups per stored word (>1 = wins)."""
        if not self.words:
            return 1.0
        return self.uncompressed_groups / len(self.words)


def _groups(bits: np.ndarray) -> List[int]:
    """Split a boolean array into 63-bit integer groups (zero-padded)."""
    n = bits.size
    padded = np.zeros(-(-n // GROUP_BITS) * GROUP_BITS, dtype=bool)
    padded[:n] = bits
    groups = []
    for i in range(0, padded.size, GROUP_BITS):
        chunk = padded[i : i + GROUP_BITS]
        value = 0
        for j in np.nonzero(chunk)[0]:
            value |= 1 << int(j)
        groups.append(value)
    return groups


def wah_encode(bits: np.ndarray) -> WahBitmap:
    """Compress a boolean array into WAH form."""
    bits = np.asarray(bits, dtype=bool)
    if bits.size == 0:
        raise SimulationError("cannot encode an empty bitmap")
    all_ones = (1 << GROUP_BITS) - 1
    words: List[int] = []
    run_value: int = -1
    run_length = 0

    def flush_run() -> None:
        nonlocal run_length, run_value
        if run_length:
            fill = _FILL_FLAG | (run_length & _COUNT_MASK)
            if run_value == all_ones:
                fill |= _FILL_VALUE
            words.append(fill)
            run_length = 0
            run_value = -1

    for group in _groups(bits):
        if group in (0, all_ones):
            if run_length and run_value != group:
                flush_run()
            run_value = group
            run_length += 1
        else:
            flush_run()
            words.append(group)  # literal: top bit clear
    flush_run()
    return WahBitmap(nbits=bits.size, words=words)


def wah_decode(bitmap: WahBitmap) -> np.ndarray:
    """Decompress back to a boolean array of ``nbits``."""
    all_ones = (1 << GROUP_BITS) - 1
    groups: List[int] = []
    for word in bitmap.words:
        if word & _FILL_FLAG:
            value = all_ones if word & _FILL_VALUE else 0
            groups.extend([value] * (word & _COUNT_MASK))
        else:
            groups.append(word & _PAYLOAD_MASK)
    if len(groups) != bitmap.uncompressed_groups:
        raise SimulationError("corrupt WAH stream: group count mismatch")
    bits = np.zeros(len(groups) * GROUP_BITS, dtype=bool)
    for i, group in enumerate(groups):
        for j in range(GROUP_BITS):
            if group >> j & 1:
                bits[i * GROUP_BITS + j] = True
    return bits[: bitmap.nbits]


def _wah_binary(a: WahBitmap, b: WahBitmap, op) -> WahBitmap:
    """Run a group-wise binary op over two compressed streams."""
    if a.nbits != b.nbits:
        raise SimulationError("WAH operands must have equal bit length")
    total_groups = a.uncompressed_groups
    out_bits = np.zeros(total_groups * GROUP_BITS, dtype=bool)
    # Walk both streams run by run, materialising output groups.  For
    # clarity the output is re-encoded at the end; real engines emit
    # runs directly, but the compressed *inputs* are what matters for
    # the traffic accounting this substrate supports.
    ga = _expand_runs(a)
    gb = _expand_runs(b)
    for i in range(total_groups):
        value = op(ga[i], gb[i])
        for j in range(GROUP_BITS):
            if value >> j & 1:
                out_bits[i * GROUP_BITS + j] = True
    result = wah_encode(out_bits[: a.nbits])
    return result


def _expand_runs(bitmap: WahBitmap) -> List[int]:
    all_ones = (1 << GROUP_BITS) - 1
    groups: List[int] = []
    for word in bitmap.words:
        if word & _FILL_FLAG:
            value = all_ones if word & _FILL_VALUE else 0
            groups.extend([value] * (word & _COUNT_MASK))
        else:
            groups.append(word & _PAYLOAD_MASK)
    return groups


def wah_and(a: WahBitmap, b: WahBitmap) -> WahBitmap:
    """Logical AND of two compressed bitmaps."""
    return _wah_binary(a, b, lambda x, y: x & y)


def wah_or(a: WahBitmap, b: WahBitmap) -> WahBitmap:
    """Logical OR of two compressed bitmaps."""
    return _wah_binary(a, b, lambda x, y: x | y)


def ambit_or_wah_decision(
    bitmap: WahBitmap, threshold: float = 4.0
) -> str:
    """Should a query engine run this bitmap on Ambit or stay WAH?

    Dense bitmaps (low compression ratio) are cheapest as uncompressed
    rows in Ambit; very sparse ones compress so well that CPU-side WAH
    touches far less data than a full row scan.  The threshold is the
    compression ratio at which WAH's traffic advantage overtakes
    Ambit's bandwidth advantage (Ambit's row ops beat the CPU by the
    Figure 9 factors only on *uncompressed* traffic).
    """
    return "wah-cpu" if bitmap.compression_ratio > threshold else "ambit"
