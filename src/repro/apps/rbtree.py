"""Red-black tree: the conventional set substrate (Section 8.3).

The paper compares bitvector sets against "the commonly-used
red-black-tree-based implementation" (C++ ``std::set``).  This is a
complete red-black tree -- insert, search, delete, ordered iteration --
with *instrumentation*: every node dereference is counted, so the cost
model can charge pointer-chase latency per visit exactly the way the
tree would behave on the modelled memory hierarchy.

The implementation follows the classic CLRS formulation with a shared
sentinel NIL node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

RED = True
BLACK = False


class _Node:
    __slots__ = ("key", "color", "left", "right", "parent")

    def __init__(self, key, color=RED, nil=None):
        self.key = key
        self.color = color
        self.left = nil
        self.right = nil
        self.parent = nil


@dataclass
class RBTreeStats:
    """Counts of the memory-relevant events."""

    node_visits: int = 0
    rotations: int = 0
    allocations: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.node_visits = 0
        self.rotations = 0
        self.allocations = 0


class RedBlackTree:
    """An ordered set of comparable keys."""

    def __init__(self):
        self.nil = _Node(None, BLACK)
        self.nil.left = self.nil.right = self.nil.parent = self.nil
        self.root = self.nil
        self.size = 0
        self.stats = RBTreeStats()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def search(self, key) -> bool:
        """True iff ``key`` is present (counts node visits)."""
        node = self.root
        while node is not self.nil:
            self.stats.node_visits += 1
            if key == node.key:
                return True
            node = node.left if key < node.key else node.right
        return False

    def __contains__(self, key) -> bool:
        return self.search(key)

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator:
        """In-order (ascending) iteration."""
        stack: List[_Node] = []
        node = self.root
        while stack or node is not self.nil:
            while node is not self.nil:
                stack.append(node)
                node = node.left
            node = stack.pop()
            self.stats.node_visits += 1
            yield node.key
            node = node.right

    def minimum(self):
        """Smallest key in the tree (raises on empty)."""
        if self.root is self.nil:
            raise KeyError("minimum of empty tree")
        return self._minimum(self.root).key

    def _minimum(self, node: _Node) -> _Node:
        while node.left is not self.nil:
            self.stats.node_visits += 1
            node = node.left
        return node

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, key) -> bool:
        """Insert ``key``; returns False if it was already present."""
        parent = self.nil
        node = self.root
        while node is not self.nil:
            self.stats.node_visits += 1
            if key == node.key:
                return False
            parent = node
            node = node.left if key < node.key else node.right
        fresh = _Node(key, RED, self.nil)
        fresh.parent = parent
        self.stats.allocations += 1
        if parent is self.nil:
            self.root = fresh
        elif key < parent.key:
            parent.left = fresh
        else:
            parent.right = fresh
        self.size += 1
        self._insert_fixup(fresh)
        return True

    def _insert_fixup(self, z: _Node) -> None:
        while z.parent.color is RED:
            self.stats.node_visits += 1
            grand = z.parent.parent
            if z.parent is grand.left:
                uncle = grand.right
                if uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    z = grand
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._rotate_left(z)
                    z.parent.color = BLACK
                    grand.color = RED
                    self._rotate_right(grand)
            else:
                uncle = grand.left
                if uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    z = grand
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._rotate_right(z)
                    z.parent.color = BLACK
                    grand.color = RED
                    self._rotate_left(grand)
        self.root.color = BLACK

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def delete(self, key) -> bool:
        """Remove ``key``; returns False if it was absent."""
        z = self.root
        while z is not self.nil and z.key != key:
            self.stats.node_visits += 1
            z = z.left if key < z.key else z.right
        if z is self.nil:
            return False
        self.size -= 1
        y, y_color = z, z.color
        if z.left is self.nil:
            x = z.right
            self._transplant(z, z.right)
        elif z.right is self.nil:
            x = z.left
            self._transplant(z, z.left)
        else:
            y = self._minimum(z.right)
            y_color = y.color
            x = y.right
            if y.parent is z:
                x.parent = y
            else:
                self._transplant(y, y.right)
                y.right = z.right
                y.right.parent = y
            self._transplant(z, y)
            y.left = z.left
            y.left.parent = y
            y.color = z.color
        if y_color is BLACK:
            self._delete_fixup(x)
        return True

    def _transplant(self, u: _Node, v: _Node) -> None:
        if u.parent is self.nil:
            self.root = v
        elif u is u.parent.left:
            u.parent.left = v
        else:
            u.parent.right = v
        v.parent = u.parent

    def _delete_fixup(self, x: _Node) -> None:
        while x is not self.root and x.color is BLACK:
            self.stats.node_visits += 1
            if x is x.parent.left:
                w = x.parent.right
                if w.color is RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_left(x.parent)
                    w = x.parent.right
                if w.left.color is BLACK and w.right.color is BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.right.color is BLACK:
                        w.left.color = BLACK
                        w.color = RED
                        self._rotate_right(w)
                        w = x.parent.right
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.right.color = BLACK
                    self._rotate_left(x.parent)
                    x = self.root
            else:
                w = x.parent.left
                if w.color is RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_right(x.parent)
                    w = x.parent.left
                if w.right.color is BLACK and w.left.color is BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.left.color is BLACK:
                        w.right.color = BLACK
                        w.color = RED
                        self._rotate_left(w)
                        w = x.parent.left
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.left.color = BLACK
                    self._rotate_right(x.parent)
                    x = self.root
        x.color = BLACK

    # ------------------------------------------------------------------
    # Rotations
    # ------------------------------------------------------------------
    def _rotate_left(self, x: _Node) -> None:
        self.stats.rotations += 1
        y = x.right
        x.right = y.left
        if y.left is not self.nil:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is self.nil:
            self.root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y

    def _rotate_right(self, x: _Node) -> None:
        self.stats.rotations += 1
        y = x.left
        x.left = y.right
        if y.right is not self.nil:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is self.nil:
            self.root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y

    # ------------------------------------------------------------------
    # Invariant checking (for property tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise AssertionError if any red-black property is violated."""
        assert self.root.color is BLACK, "root must be black"

        def walk(node: _Node, lo, hi) -> int:
            if node is self.nil:
                return 1
            assert (lo is None or node.key > lo) and (
                hi is None or node.key < hi
            ), "BST ordering violated"
            if node.color is RED:
                assert (
                    node.left.color is BLACK and node.right.color is BLACK
                ), "red node with red child"
            left_black = walk(node.left, lo, node.key)
            right_black = walk(node.right, node.key, hi)
            assert left_black == right_black, "black-height mismatch"
            return left_black + (1 if node.color is BLACK else 0)

        walk(self.root, None, None)
