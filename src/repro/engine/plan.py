"""Microprogram plan cache: compile once, execute many.

Every instance of a bulk bitwise operation with the same local row
addresses compiles to the *same* microprogram, the same per-primitive
latencies, and (per bank/subarray) the same DRAM command stream.  The
driver places co-operating bitvectors at matching local addresses across
stripes, so a vector-wide operation is thousands of executions of a
handful of distinct plans.  :class:`PlanCache` memoises that compilation:

* :class:`RowPlan` -- one compiled bulk operation: the
  :class:`~repro.core.microprograms.Microprogram`, its per-primitive
  latencies under the cache's timing/decoder configuration, and the
  aggregate counts the accounting layer needs.
* :meth:`PlanCache.issued_commands` -- the flat
  :class:`~repro.dram.commands.IssuedCommand` schedule of a plan on one
  ``(bank, subarray)``, byte-identical to what
  :meth:`repro.dram.chip.DramChip.execute` would append to the command
  trace (wordline counts and AAP-overlap flags included), so the batch
  engine can extend the trace without re-executing the state machine.

Cache keys are ``(op, dk, di, dj, dl)`` local addresses under one fixed
``(address map, timing, split_decoder)`` configuration -- the cache is
per-controller, and the controller's configuration is immutable.

Synthesized operations (:class:`repro.compile.ops.CompiledOp`) register
through :meth:`PlanCache.get_compiled`: their keys carry the compiled
op itself plus the bound source/scratch rows, so compiled plans are
memoised, trimmed, and expanded to command schedules exactly like the
paper's fixed nine.  Hit/miss statistics are additionally kept per
operation label (``hits_by_op``/``misses_by_op``), so ``repro profile``
shows each compiled op as its own line instead of folding every
synthesized plan into one catch-all bucket.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.addressing import AmbitAddressMap
from repro.core.microprograms import BulkOp, Microprogram, compile_op
from repro.core.primitives import AAP, AP
from repro.dram.commands import Command, IssuedCommand, Opcode
from repro.dram.timing import TimingParameters

#: Cache key: the operation, its local row addresses, and the DCC route.
PlanKey = Tuple[BulkOp, int, int, Optional[int], Optional[int], int]


@dataclass(frozen=True)
class RowPlan:
    """One compiled bulk operation with pre-computed cost metadata."""

    key: PlanKey
    program: Microprogram
    #: Accounted latency of each primitive, in program order.
    latencies_ns: Tuple[float, ...]
    #: Sum of ``latencies_ns`` -- the per-row latency of the operation.
    total_ns: float
    num_aap: int
    num_ap: int
    #: Bus commands the plan expands to (3 per AAP, 2 per AP).
    num_commands: int

    @property
    def op(self) -> BulkOp:
        return self.program.op


class PlanCache:
    """Memoised compilation of bulk operations to executable plans.

    Parameters
    ----------
    amap:
        The subarray address map (fixed per device).
    timing:
        Speed grade used for the cached per-primitive latencies.
    split_decoder:
        Decoder configuration the latencies assume (Section 5.3).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; hit/miss
        counters mirror into ``ambit_plan_cache_{hits,misses}_total``
        and a collector samples the compiled-plan count at scrape time.
    """

    def __init__(
        self,
        amap: AmbitAddressMap,
        timing: TimingParameters,
        split_decoder: bool = True,
        metrics: Optional[object] = None,
        max_plans: Optional[int] = None,
    ):
        self.amap = amap
        self.timing = timing
        self.split_decoder = split_decoder
        self._plans: "OrderedDict[PlanKey, RowPlan]" = OrderedDict()
        self._commands: Dict[Tuple[PlanKey, int, int], Tuple[IssuedCommand, ...]] = {}
        self._wordline_counts: Optional[Dict[int, int]] = None
        #: Cache statistics; reset with :meth:`reset_counters` (the
        #: compiled plans themselves survive a stats reset).
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Per-operation-label statistics (``op.value`` -> count); the
        #: fix for compiled plans colliding into one profile bucket.
        self.hits_by_op: Dict[str, int] = {}
        self.misses_by_op: Dict[str, int] = {}
        self._max_plans: Optional[int] = None
        self._m_hits = self._m_misses = self._m_evictions = None
        if metrics is not None:
            self._m_hits = metrics.counter(
                "ambit_plan_cache_hits_total", "Plan-cache hits"
            )
            self._m_misses = metrics.counter(
                "ambit_plan_cache_misses_total",
                "Plan-cache misses (microprogram compilations)",
            )
            self._m_evictions = metrics.counter(
                "ambit_plan_cache_evictions_total",
                "Plans evicted by the LRU bound (multi-tenant churn)",
            )
            plans_gauge = metrics.gauge(
                "ambit_plan_cache_plans", "Distinct compiled plans held"
            )
            metrics.register_collector(
                lambda: plans_gauge.set(len(self._plans))
            )
        if max_plans is not None:
            self.max_plans = max_plans

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._plans)

    @property
    def max_plans(self) -> Optional[int]:
        """LRU bound on compiled plans (``None`` = unbounded).

        A single workload compiles a handful of plans and never needs a
        bound; a multi-tenant service allocating and freeing vectors at
        churn compiles an unbounded stream of address combinations, so
        the serving layer installs a bound here.  Setting it trims the
        cache immediately (least recently used first) and counts each
        drop in ``ambit_plan_cache_evictions_total``.
        """
        return self._max_plans

    @max_plans.setter
    def max_plans(self, bound: Optional[int]) -> None:
        if bound is not None and bound < 1:
            raise ValueError(f"max_plans must be >= 1 or None; got {bound}")
        self._max_plans = bound
        self._trim()

    def _trim(self) -> None:
        while self._max_plans is not None and len(self._plans) > self._max_plans:
            key, _ = self._plans.popitem(last=False)
            # The flat command schedules are keyed by plan; drop them
            # with it or the cache bound would not bound memory.
            for ckey in [c for c in self._commands if c[0] == key]:
                del self._commands[ckey]
            self.evictions += 1
            if self._m_evictions is not None:
                self._m_evictions.inc()

    def get(
        self,
        op: BulkOp,
        dk: int,
        di: int,
        dj: Optional[int] = None,
        dl: Optional[int] = None,
        dcc: int = 0,
    ) -> RowPlan:
        """The plan for ``op`` at the given local addresses (compiling on miss).

        ``dcc`` selects the dual-contact row carrying single negations
        (not/nand/nor); it is part of the cache key, so rerouting a
        subarray around a broken DCC never aliases the healthy plans.
        """
        key: PlanKey = (op, dk, di, dj, dl, dcc)
        plan = self._plans.get(key)
        if plan is not None:
            self._record_hit(op, key)
            return plan
        self._record_miss(op)
        program = compile_op(self.amap, op, dk, di, dj, dl, dcc)
        return self._install(key, program)

    def get_compiled(
        self,
        cop,
        dk: int,
        srcs: Tuple[int, ...],
        temps: Tuple[int, ...],
        dcc: int = 0,
    ) -> RowPlan:
        """The plan for a compiled op bound to the given rows.

        ``cop`` is a :class:`repro.compile.ops.CompiledOp`; ``srcs``
        are the operand rows in its input order and ``temps`` its
        reserved scratch rows.  The key carries the compiled op and the
        full row binding, so distinct expressions (and distinct row
        placements) never alias -- and the shared per-op counters keep
        their statistics apart.
        """
        srcs = tuple(srcs)
        temps = tuple(temps)
        key = (cop, dk, srcs, temps, None, dcc)
        plan = self._plans.get(key)
        if plan is not None:
            self._record_hit(cop, key)
            return plan
        self._record_miss(cop)
        program = cop.program(self.amap, dk, srcs, temps, dcc=dcc)
        return self._install(key, program)

    def _record_hit(self, op, key) -> None:
        self.hits += 1
        label = op.value
        self.hits_by_op[label] = self.hits_by_op.get(label, 0) + 1
        if self._m_hits is not None:
            self._m_hits.inc()
        if self._max_plans is not None:
            self._plans.move_to_end(key)

    def _record_miss(self, op) -> None:
        self.misses += 1
        label = op.value
        self.misses_by_op[label] = self.misses_by_op.get(label, 0) + 1
        if self._m_misses is not None:
            self._m_misses.inc()

    def _install(self, key, program: Microprogram) -> RowPlan:
        latencies = tuple(
            p.latency_ns(self.timing, self.amap, self.split_decoder)
            for p in program.primitives
        )
        plan = RowPlan(
            key=key,
            program=program,
            latencies_ns=latencies,
            total_ns=sum(latencies),
            num_aap=program.num_aap,
            num_ap=program.num_ap,
            num_commands=sum(
                3 if isinstance(p, AAP) else 2 for p in program.primitives
            ),
        )
        self._plans[key] = plan
        self._trim()
        return plan

    def reset_counters(self) -> None:
        """Zero the hit/miss counters without dropping compiled plans."""
        self.hits = 0
        self.misses = 0
        self.hits_by_op.clear()
        self.misses_by_op.clear()

    # ------------------------------------------------------------------
    # Flat command schedules
    # ------------------------------------------------------------------
    def issued_commands(
        self, plan: RowPlan, bank: int, subarray: int
    ) -> Tuple[IssuedCommand, ...]:
        """The plan's command stream on one subarray, as the chip would trace it.

        The returned tuple carries the exact ``wordlines_raised`` and
        ``onto_open_row`` annotations the chip's execute path would
        produce: the first ACTIVATE of an AAP (and the ACTIVATE of an AP)
        is a fresh sense, the second ACTIVATE of an AAP lands on the open
        row.  Entries are immutable and shared across executions; the
        energy fold over the trace is order-independent, so repeated
        extension with the same tuple is byte-equivalent to re-execution.
        """
        ckey = (plan.key, bank, subarray)
        cached = self._commands.get(ckey)
        if cached is not None:
            return cached
        issued = []
        for primitive in plan.program.primitives:
            if isinstance(primitive, AAP):
                issued.append(self._activate(primitive.addr1, bank, subarray, False))
                issued.append(self._activate(primitive.addr2, bank, subarray, True))
            else:
                issued.append(self._activate(primitive.addr, bank, subarray, False))
            issued.append(
                IssuedCommand(
                    Command(Opcode.PRECHARGE, bank=bank, subarray=subarray)
                )
            )
        commands = tuple(issued)
        self._commands[ckey] = commands
        return commands

    def _activate(
        self, address: int, bank: int, subarray: int, onto_open: bool
    ) -> IssuedCommand:
        return IssuedCommand(
            Command(Opcode.ACTIVATE, bank=bank, subarray=subarray, row=address),
            wordlines_raised=self._wordlines(address),
            onto_open_row=onto_open,
        )

    def _wordlines(self, address: int) -> int:
        """Wordlines an ACTIVATE to ``address`` raises (Table 1)."""
        if self._wordline_counts is None:
            self._wordline_counts = {
                addr: len(wordlines)
                for addr, wordlines in self.amap.b_group_wordlines().items()
            }
        return self._wordline_counts.get(address, 1)
