"""Bank-interleaved issue of ready command groups.

Ambit's throughput "scales linearly with ... the memory-level
parallelism available inside DRAM (number of banks)" (Section 1): the
per-bank command streams of a bulk operation are independent, so a
controller that round-robins issue across banks keeps every bank busy
while a serialising controller leaves all but one idle.

:class:`BatchScheduler` takes the *command groups* of one batch (one
group per (bank, subarray) slice of a bitvector operation), produces the
bank-interleaved issue order, and quantifies the benefit as a
:class:`ParallelismReport`: the serialized makespan (every group end to
end on one command stream) versus the interleaved makespan (per-bank
streams overlap; the busiest bank bounds completion).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class CommandGroup:
    """A schedulable unit: work bound to one bank, with a known duration.

    ``payload`` is opaque to the scheduler; the batch engine stores the
    (subarray, row indices) slice it will execute when the group is
    issued.
    """

    bank: int
    duration_ns: float
    payload: object = None


@dataclass(frozen=True)
class ParallelismReport:
    """Serialized vs bank-interleaved completion time of one batch."""

    #: Every group end to end on a single command stream.
    serialized_ns: float
    #: Busiest bank's serial time with per-bank streams overlapped.
    makespan_ns: float
    #: Accumulated busy time per bank.
    bank_busy_ns: Dict[int, float] = field(default_factory=dict)

    @property
    def banks(self) -> int:
        return len(self.bank_busy_ns)

    @property
    def parallelism(self) -> float:
        """Effective bank-level overlap: ``serialized / makespan`` (>= 1)."""
        if self.makespan_ns <= 0.0:
            return 1.0
        return self.serialized_ns / self.makespan_ns

    def format(self) -> str:
        """One-line human-readable summary."""
        return (
            f"serialized {self.serialized_ns:.1f} ns -> interleaved "
            f"{self.makespan_ns:.1f} ns across {self.banks} bank(s) "
            f"(parallelism {self.parallelism:.2f}x)"
        )


class BatchScheduler:
    """Round-robin issue of command groups across banks."""

    def order(self, groups: Sequence[CommandGroup]) -> List[CommandGroup]:
        """Bank-interleaved issue order.

        Per-bank FIFO order is preserved (groups targeting one bank
        cannot reorder -- they share the bank's row buffer); banks take
        turns in first-appearance order, so every bank's stream starts
        draining immediately instead of waiting for earlier banks to
        finish.
        """
        queues: "OrderedDict[int, List[CommandGroup]]" = OrderedDict()
        for group in groups:
            queues.setdefault(group.bank, []).append(group)
        for queue in queues.values():
            queue.reverse()  # pop from the tail in O(1)
        issue: List[CommandGroup] = []
        while queues:
            exhausted = []
            for bank, queue in queues.items():
                issue.append(queue.pop())
                if not queue:
                    exhausted.append(bank)
            for bank in exhausted:
                del queues[bank]
        return issue

    def report(self, groups: Sequence[CommandGroup]) -> ParallelismReport:
        """Quantify the bank-level overlap the interleaved issue attains."""
        bank_busy: Dict[int, float] = {}
        serialized = 0.0
        for group in groups:
            serialized += group.duration_ns
            bank_busy[group.bank] = (
                bank_busy.get(group.bank, 0.0) + group.duration_ns
            )
        makespan = max(bank_busy.values()) if bank_busy else 0.0
        return ParallelismReport(
            serialized_ns=serialized,
            makespan_ns=makespan,
            bank_busy_ns=bank_busy,
        )
