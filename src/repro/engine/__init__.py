"""Batched execution engine (plan caching, fused kernels, bank interleave).

The layer between the driver and the chip that makes vector-scale work
fast: microprograms compile once per distinct address tuple
(:class:`~repro.engine.plan.PlanCache`), bitvector operations apply as
fused numpy kernels over row batches with exact per-row accounting
(:class:`~repro.engine.batch.BatchEngine`), and command groups issue
round-robin across banks
(:class:`~repro.engine.scheduler.BatchScheduler`).
"""

from repro.engine.batch import BatchEngine, BatchReport, apply_bulk_op
from repro.engine.plan import PlanCache, RowPlan
from repro.engine.scheduler import (
    BatchScheduler,
    CommandGroup,
    ParallelismReport,
)

__all__ = [
    "BatchEngine",
    "BatchReport",
    "BatchScheduler",
    "CommandGroup",
    "ParallelismReport",
    "PlanCache",
    "RowPlan",
    "apply_bulk_op",
]
