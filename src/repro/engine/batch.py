"""The batched execution engine: fused row-batch kernels over cached plans.

The per-row execution path walks every bulk operation through
``compile -> primitives -> Command objects -> Subarray.activate`` one
row at a time; pure Python dispatch dominates long before the functional
numpy work does.  This engine is the fast path the ROADMAP asks for:

1. **Plan once** -- every row reuses a cached
   :class:`~repro.engine.plan.RowPlan` (microprogram + latencies +
   per-(bank, subarray) command schedule) from the controller's
   :class:`~repro.engine.plan.PlanCache`.
2. **Execute in bulk** -- all rows of a (bank, subarray) group are
   applied as *one* vectorised numpy operation over an
   ``(N x words_per_row)`` view (:meth:`repro.dram.subarray.Subarray.peek_batch`
   / ``poke_batch``), while the accounting (per-row command
   timing/energy, AAP/AP counts, the command trace itself) is charged
   exactly as if every row had walked the per-row path.
3. **Overlap across banks** -- groups are issued round-robin across
   banks (:class:`~repro.engine.scheduler.BatchScheduler`), and every
   batch returns a :class:`~repro.engine.scheduler.ParallelismReport`
   comparing serialized vs bank-interleaved makespan.

The fused kernel only engages when it is *provably* equivalent to the
per-row walk: no tracer attached (a tracer observes per-primitive spans
in execution order; the slow path preserves them byte-for-byte), no
analog charge model (TRA outcomes would depend on cell-level state), no
injected stuck-at faults in the target subarray (faults corrupt the
B-group walk in ways the fused kernel cannot see), and no read/write
hazards between the rows of a group.  Ineligible groups transparently
fall back to the per-row walk -- results are always correct; batching is
purely an optimisation.

Known modelling deltas of the fast path (documented, not observable
through the bulk-op API): B-group designated rows are not rewritten (all
microprograms re-copy their operands into the B-group before using it,
so no later operation can observe the stale values), and
retention-refresh stamps of the rows a group touches are set to the
group's issue time instead of each primitive's individual clock.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.microprograms import BulkOp
from repro.dram.chip import RowLocation
from repro.engine.plan import RowPlan
from repro.engine.scheduler import BatchScheduler, CommandGroup, ParallelismReport
from repro.errors import AddressError, DramProtocolError


@dataclass(frozen=True)
class BatchReport:
    """Outcome of one batched bulk operation."""

    #: Rows executed in total.
    rows: int
    #: Rows that took the fused numpy kernel.
    fused_rows: int
    #: Rows that fell back to the per-row command walk.
    fallback_rows: int
    #: Serialized-vs-interleaved makespan comparison for the batch.
    parallelism: ParallelismReport
    #: Worker processes the batch was sharded across (1 = in-process).
    shards: int = 1


def apply_bulk_op(
    op: BulkOp,
    src1: np.ndarray,
    src2: Optional[np.ndarray] = None,
    src3: Optional[np.ndarray] = None,
) -> np.ndarray:
    """The functional effect of a bulk operation on packed uint64 rows.

    This is the single definition of truth the fused kernels use; the
    property tests pin it against the command-level walk bit for bit.
    """
    if op is BulkOp.NOT:
        return ~src1
    if op is BulkOp.COPY:
        return src1.copy()
    if op is BulkOp.MAJ:
        return (src1 & src2) | (src1 & src3) | (src2 & src3)
    if src2 is None:
        raise AddressError(f"{op.value} needs a second operand")
    if op is BulkOp.AND:
        return src1 & src2
    if op is BulkOp.OR:
        return src1 | src2
    if op is BulkOp.XOR:
        return src1 ^ src2
    if op is BulkOp.NAND:
        return ~(src1 & src2)
    if op is BulkOp.NOR:
        return ~(src1 | src2)
    if op is BulkOp.XNOR:
        return ~(src1 ^ src2)
    raise AddressError(f"unknown bulk operation {op}")


class _Group:
    """All rows of one batch that target one (bank, subarray)."""

    __slots__ = ("bank", "subarray", "indices", "plans")

    def __init__(self, bank: int, subarray: int):
        self.bank = bank
        self.subarray = subarray
        self.indices: List[int] = []
        self.plans: List[RowPlan] = []

    @property
    def duration_ns(self) -> float:
        return sum(plan.total_ns for plan in self.plans)


class BatchEngine:
    """Batched execution of bulk operations on an Ambit device.

    Sits between the driver and the chip: callers hand over *row lists*
    (operand ``i`` of every list lives in the same subarray -- the
    driver's co-location contract) and the engine plans, fuses, and
    issues them with bank-level overlap.
    """

    def __init__(self, device):
        self.device = device
        self.controller = device.controller
        self.chip = device.chip
        self.scheduler = BatchScheduler()
        metrics = getattr(device, "metrics", None)
        self._m_batches = self._m_rows = self._m_makespan = None
        if metrics is not None:
            self._m_batches = metrics.counter(
                "ambit_batches_total", "Batched bulk operations executed"
            )
            self._m_rows = metrics.counter(
                "ambit_batch_rows_total",
                "Rows executed through the batch engine",
                labels=("path",),
            )
            self._m_makespan = metrics.histogram(
                "ambit_batch_makespan_ns",
                "Accounted bank-interleaved makespan per batch (ns)",
            )

    # ------------------------------------------------------------------
    @property
    def plan_cache(self):
        return self.controller.plan_cache

    def run_rows(
        self,
        op: BulkOp,
        dst: Sequence[RowLocation],
        src1: Sequence[RowLocation],
        src2: Optional[Sequence[RowLocation]] = None,
        src3: Optional[Sequence[RowLocation]] = None,
        fuse: bool = True,
    ) -> BatchReport:
        """Execute ``dst[i] = op(src1[i], src2[i], src3[i])`` for every row.

        All operands of row ``i`` must share ``dst[i]``'s (bank,
        subarray); stage strays first (:meth:`repro.core.driver.AmbitDriver.stage_for`).
        Timing, energy, statistics, and the command trace are charged
        exactly as the per-row path would.

        ``fuse=False`` forces every group down the per-row command walk
        -- the dispatch auto-tuner's "serial" tier.  The observable
        outcome is identical either way (that is the engine's core
        parity property); only wall-clock changes.
        """
        n = len(dst)
        for name, rows in (("src1", src1), ("src2", src2), ("src3", src3)):
            if rows is not None and len(rows) != n:
                raise AddressError(
                    f"batch operand lists must align: {name} has "
                    f"{len(rows)} rows, dst has {n}"
                )
        if n == 0:
            return BatchReport(
                rows=0, fused_rows=0, fallback_rows=0,
                parallelism=self.scheduler.report(()),
            )

        # Runtime spare-row remapping happens here, at batch entry, so
        # planning, fusion, and accounting all see the repaired rows.
        dst = self.translate_rows(dst)
        src1 = self.translate_rows(src1)
        src2 = self.translate_rows(src2)
        src3 = self.translate_rows(src3)
        groups = self.plan_groups(op, dst, src1, src2, src3)
        command_groups = [
            CommandGroup(bank=g.bank, duration_ns=g.duration_ns, payload=g)
            for g in groups
        ]
        parallelism = self.scheduler.report(command_groups)

        fused = 0
        for issued in self.scheduler.order(command_groups):
            group: _Group = issued.payload
            if fuse and self._fused_eligible(group, dst, src1, src2, src3):
                self._run_group_fused(op, group, dst, src1, src2, src3)
                fused += len(group.indices)
            else:
                self._run_group_per_row(group)
        if self._m_batches is not None:
            self._m_batches.inc()
            self._m_rows.labels(path="fused").inc(fused)
            self._m_rows.labels(path="fallback").inc(n - fused)
            self._m_makespan.observe(parallelism.makespan_ns)
        return BatchReport(
            rows=n,
            fused_rows=fused,
            fallback_rows=n - fused,
            parallelism=parallelism,
        )

    def run_compiled(
        self,
        cop,
        dst: Sequence[RowLocation],
        operands: Sequence[Sequence[RowLocation]],
        temps: Sequence[Sequence[RowLocation]],
        fuse: bool = True,
    ) -> BatchReport:
        """Execute a compiled op over row batches: one dst row, one row
        per input, and one row per scratch slot, for every index.

        ``operands`` holds one row list per compiled input (in
        ``cop.inputs`` order) and ``temps`` one row list per scratch
        slot; all lists align with ``dst``.  Planning, fusion
        eligibility, bank-interleaved issue, accounting, and the
        metrics/trace surface are shared with :meth:`run_rows`, so
        synthesized ops inherit the whole engine behind one call.
        """
        n = len(dst)
        if len(operands) != cop.arity:
            raise AddressError(
                f"{cop.value} takes {cop.arity} operand columns; "
                f"got {len(operands)}"
            )
        if len(temps) != cop.num_temps:
            raise AddressError(
                f"{cop.value} needs {cop.num_temps} scratch columns; "
                f"got {len(temps)}"
            )
        for name, rows in [
            (f"operand {i}", col) for i, col in enumerate(operands)
        ] + [(f"temp {i}", col) for i, col in enumerate(temps)]:
            if len(rows) != n:
                raise AddressError(
                    f"batch operand lists must align: {name} has "
                    f"{len(rows)} rows, dst has {n}"
                )
        if n == 0:
            return BatchReport(
                rows=0, fused_rows=0, fallback_rows=0,
                parallelism=self.scheduler.report(()),
            )

        dst = self.translate_rows(dst)
        operands = [self.translate_rows(col) for col in operands]
        temps = [self.translate_rows(col) for col in temps]
        groups = self.plan_groups_compiled(cop, dst, operands, temps)
        command_groups = [
            CommandGroup(bank=g.bank, duration_ns=g.duration_ns, payload=g)
            for g in groups
        ]
        parallelism = self.scheduler.report(command_groups)

        fused = 0
        for issued in self.scheduler.order(command_groups):
            group: _Group = issued.payload
            if fuse and self._fused_eligible_compiled(
                group, dst, operands, temps
            ):
                self._run_group_fused_compiled(
                    cop, group, dst, operands, temps
                )
                fused += len(group.indices)
            else:
                self._run_group_per_row(group)
        if self._m_batches is not None:
            self._m_batches.inc()
            self._m_rows.labels(path="fused").inc(fused)
            self._m_rows.labels(path="fallback").inc(n - fused)
            self._m_makespan.observe(parallelism.makespan_ns)
        return BatchReport(
            rows=n,
            fused_rows=fused,
            fallback_rows=n - fused,
            parallelism=parallelism,
        )

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def translate_rows(
        self, rows: Optional[Sequence[RowLocation]]
    ) -> Optional[Sequence[RowLocation]]:
        """Resolve a row list through the controller's runtime repair map.

        Identity (and allocation-free) while no spare rows have been
        assigned, which is the common case.
        """
        repair = self.controller.repair
        if rows is None or not repair:
            return rows
        return [
            RowLocation(
                loc.bank,
                loc.subarray,
                repair.translate(loc.bank, loc.subarray, loc.address),
            )
            for loc in rows
        ]

    def plan_groups(
        self,
        op: BulkOp,
        dst: Sequence[RowLocation],
        src1: Sequence[RowLocation],
        src2: Optional[Sequence[RowLocation]] = None,
        src3: Optional[Sequence[RowLocation]] = None,
    ) -> List[_Group]:
        """Validate co-location and compile the batch into per-(bank,
        subarray) groups of cached plans.

        This is the planning front half of :meth:`run_rows`; the sharded
        device calls it directly so its plan-cache traffic (and thus the
        hit/miss counters) matches the single-process engine exactly.
        """
        cache = self.plan_cache
        groups: "OrderedDict[Tuple[int, int], _Group]" = OrderedDict()
        for i in range(len(dst)):
            d = dst[i]
            sources = [src1[i]]
            if src2 is not None:
                sources.append(src2[i])
            if src3 is not None:
                sources.append(src3[i])
            for loc in sources:
                if (loc.bank, loc.subarray) != (d.bank, d.subarray):
                    raise AddressError(
                        f"batch operands of row {i} must share a subarray: "
                        f"{loc} vs bank {d.bank} subarray {d.subarray} "
                        f"(stage cross-subarray operands first)"
                    )
            plan = cache.get(
                op,
                d.address,
                sources[0].address,
                sources[1].address if len(sources) > 1 else None,
                sources[2].address if len(sources) > 2 else None,
                dcc=self.controller.dcc_route.get((d.bank, d.subarray), 0),
            )
            key = (d.bank, d.subarray)
            group = groups.get(key)
            if group is None:
                group = groups[key] = _Group(d.bank, d.subarray)
            group.indices.append(i)
            group.plans.append(plan)
        return list(groups.values())

    def plan_groups_compiled(
        self,
        cop,
        dst: Sequence[RowLocation],
        operands: Sequence[Sequence[RowLocation]],
        temps: Sequence[Sequence[RowLocation]],
    ) -> List[_Group]:
        """Compiled-op variant of :meth:`plan_groups`.

        Validates the driver's co-location contract over destination,
        operand, *and* scratch rows, then binds one
        :meth:`~repro.engine.plan.PlanCache.get_compiled` plan per row.
        """
        cache = self.plan_cache
        groups: "OrderedDict[Tuple[int, int], _Group]" = OrderedDict()
        for i in range(len(dst)):
            d = dst[i]
            row_srcs = tuple(col[i] for col in operands)
            row_temps = tuple(col[i] for col in temps)
            for loc in row_srcs + row_temps:
                if (loc.bank, loc.subarray) != (d.bank, d.subarray):
                    raise AddressError(
                        f"batch operands of row {i} must share a subarray: "
                        f"{loc} vs bank {d.bank} subarray {d.subarray} "
                        f"(stage cross-subarray operands first)"
                    )
            plan = cache.get_compiled(
                cop,
                d.address,
                tuple(loc.address for loc in row_srcs),
                tuple(loc.address for loc in row_temps),
                dcc=self.controller.dcc_route.get((d.bank, d.subarray), 0),
            )
            key = (d.bank, d.subarray)
            group = groups.get(key)
            if group is None:
                group = groups[key] = _Group(d.bank, d.subarray)
            group.indices.append(i)
            group.plans.append(plan)
        return list(groups.values())

    # ------------------------------------------------------------------
    # Eligibility
    # ------------------------------------------------------------------
    def _fused_eligible(
        self,
        group: _Group,
        dst: Sequence[RowLocation],
        src1: Sequence[RowLocation],
        src2: Optional[Sequence[RowLocation]],
        src3: Optional[Sequence[RowLocation]],
    ) -> bool:
        if self.chip.tracer is not None:
            return False
        subarray = self.chip.bank(group.bank).subarray(group.subarray)
        if subarray.has_faults or subarray.amps.charge_model is not None:
            return False
        # Hazard check: the fused kernel reads every source before any
        # destination is written, so a row whose source is another row's
        # destination (or duplicate destinations) must take the
        # sequential walk.
        dst_addrs = [dst[i].address for i in group.indices]
        if len(set(dst_addrs)) != len(dst_addrs):
            return False
        src_addrs = set()
        for i in group.indices:
            src_addrs.add(src1[i].address)
            if src2 is not None:
                src_addrs.add(src2[i].address)
            if src3 is not None:
                src_addrs.add(src3[i].address)
        return not (set(dst_addrs) & src_addrs)

    def _fused_eligible_compiled(
        self,
        group: _Group,
        dst: Sequence[RowLocation],
        operands: Sequence[Sequence[RowLocation]],
        temps: Sequence[Sequence[RowLocation]],
    ) -> bool:
        if self.chip.tracer is not None:
            return False
        subarray = self.chip.bank(group.bank).subarray(group.subarray)
        if subarray.has_faults or subarray.amps.charge_model is not None:
            return False
        # The fused kernel reads every operand column up front, then
        # writes the destination *and* scratch columns; any write-write
        # aliasing across the group's rows (shared scratch rows, say) or
        # write-read overlap must take the sequential per-row walk.
        write_addrs = [dst[i].address for i in group.indices]
        for col in temps:
            write_addrs.extend(col[i].address for i in group.indices)
        if len(set(write_addrs)) != len(write_addrs):
            return False
        read_addrs = {
            col[i].address for col in operands for i in group.indices
        }
        return not (set(write_addrs) & read_addrs)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _run_group_fused(
        self,
        op: BulkOp,
        group: _Group,
        dst: Sequence[RowLocation],
        src1: Sequence[RowLocation],
        src2: Optional[Sequence[RowLocation]],
        src3: Optional[Sequence[RowLocation]],
    ) -> None:
        bank, sub = group.bank, group.subarray
        if self.chip.bank(bank).open_subarray is not None:
            raise DramProtocolError(
                f"bank {bank} must be precharged before a bulk operation"
            )
        subarray = self.chip.bank(bank).subarray(sub)
        indices = group.indices
        start_ns = self.chip.clock_ns

        # Functional effect: one numpy operation over the whole group.
        a = subarray.peek_batch([src1[i].address for i in indices])
        b = c = None
        if src2 is not None:
            b = subarray.peek_batch([src2[i].address for i in indices])
        if src3 is not None:
            c = subarray.peek_batch([src3[i].address for i in indices])
        result = apply_bulk_op(op, a, b, c)
        dst_addrs = [dst[i].address for i in indices]
        subarray.poke_batch(dst_addrs, result, now_ns=start_ns)
        # Source activations restore (and thereby refresh) their rows.
        touched = list(dst_addrs)
        for i in indices:
            touched.append(src1[i].address)
            if src2 is not None:
                touched.append(src2[i].address)
            if src3 is not None:
                touched.append(src3[i].address)
        subarray.touch_rows(touched, now_ns=start_ns)

        self.account_group(op, group)

    def _run_group_fused_compiled(
        self,
        cop,
        group: _Group,
        dst: Sequence[RowLocation],
        operands: Sequence[Sequence[RowLocation]],
        temps: Sequence[Sequence[RowLocation]],
    ) -> None:
        bank, sub = group.bank, group.subarray
        if self.chip.bank(bank).open_subarray is not None:
            raise DramProtocolError(
                f"bank {bank} must be precharged before a bulk operation"
            )
        subarray = self.chip.bank(bank).subarray(sub)
        indices = group.indices
        start_ns = self.chip.clock_ns

        sources = [
            subarray.peek_batch([col[i].address for i in indices])
            for col in operands
        ]
        result, temp_values = cop.eval_rows(sources)
        dst_addrs = [dst[i].address for i in indices]
        subarray.poke_batch(dst_addrs, result, now_ns=start_ns)
        # Scratch rows end a per-row walk holding their final step
        # values; poke them too so fused and per-row leave identical
        # memory behind (the dispatch-parity property).
        touched = list(dst_addrs)
        for col, values in zip(temps, temp_values):
            temp_addrs = [col[i].address for i in indices]
            subarray.poke_batch(temp_addrs, values, now_ns=start_ns)
            touched.extend(temp_addrs)
        for col in operands:
            touched.extend(col[i].address for i in indices)
        subarray.touch_rows(touched, now_ns=start_ns)

        self.account_group(cop, group)

    def account_group(self, op, group: _Group) -> None:
        """Charge one group's exact per-row command schedule.

        Extends the command trace from the plan cache's immutable
        schedules and folds timing/energy statistics, byte-identical to
        walking every row through the controller.  The fused kernel
        calls this after its numpy work; the sharded device calls it for
        groups whose *functional* effect ran in a worker process --
        accounting always happens in the process that owns the stats, so
        merged counters, energy, and golden traces stay exact.
        """
        bank, sub = group.bank, group.subarray
        cache = self.plan_cache
        stats = self.controller.stats
        trace = self.chip.trace
        ops_metric = self.controller._m_ops
        latency_metric = (
            None
            if ops_metric is None
            else self.controller._m_latency.labels(op=op.value)
        )
        total_ns = 0.0
        for plan in group.plans:
            trace.extend(cache.issued_commands(plan, bank, sub))
            stats.aap_count += plan.num_aap
            stats.ap_count += plan.num_ap
            total_ns += plan.total_ns
            if latency_metric is not None:
                latency_metric.observe(plan.total_ns)
        stats.ops[op] += len(group.indices)
        stats.busy_ns += total_ns
        stats.bank_busy_ns[bank] += total_ns
        if ops_metric is not None:
            ops_metric.labels(op=op.value).inc(len(group.indices))
            self.controller._m_busy.inc(total_ns)
        self.chip.clock_ns += total_ns

    def _run_group_per_row(self, group: _Group) -> None:
        for plan in group.plans:
            self.controller.run_plan(plan, group.bank, group.subarray)
