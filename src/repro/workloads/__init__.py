"""Synthetic workload generators (deterministic, seeded)."""

from repro.workloads.generators import (
    column_values,
    mutate_dna,
    random_dna,
    random_packed_vector,
    random_sets,
    read_windows,
    synthetic_corpus,
)

__all__ = [
    "column_values",
    "mutate_dna",
    "random_dna",
    "random_packed_vector",
    "random_sets",
    "read_windows",
    "synthetic_corpus",
]
