"""Deterministic synthetic workload generators for all experiments.

Every experiment in the paper runs on data we cannot obtain (production
user-activity bitmaps, database tables, web corpora, sequencing reads),
so each generator here synthesises the closest equivalent with the
statistical properties the experiment depends on, seeded for exact
reproducibility.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError


def spawn_shard_rngs(seed: int, shards: int) -> List[np.random.Generator]:
    """Independent per-shard generator streams for parallel workloads.

    Thin alias of :func:`repro.parallel.pmap.spawn_rngs` exposed where
    workloads are built: every parallel generator in this module draws
    from ``SeedSequence(seed).spawn(shards)`` children, so shard ``i``
    sees the same stream whether the shards run serially or across any
    number of worker processes.  Shard *count* is therefore part of the
    workload configuration; job count is not.
    """
    from repro.parallel.pmap import spawn_rngs

    return spawn_rngs(seed, shards)


def packed_vector_shard(
    args: Tuple[int, int, np.random.SeedSequence, float],
) -> np.ndarray:
    """One shard of a packed bitvector (module-level for pickling).

    ``args`` is ``(shard_index, nbits, seed_seq, density)``; the shard
    index is unused for generation (the pre-spawned ``seed_seq`` already
    encodes it) but kept so callers can build the argument list with
    ``enumerate``.  The canonical sharded generator::

        seeds = np.random.SeedSequence(seed).spawn(shards)
        parts = parallel_map(
            packed_vector_shard,
            [(i, nbits_per_shard, ss, 0.5) for i, ss in enumerate(seeds)],
            jobs=jobs,
        )
        vector = np.concatenate(parts)

    yields the identical vector for every ``jobs`` value.
    """
    _, nbits, seed_seq, density = args
    rng = np.random.default_rng(seed_seq)
    return random_packed_vector(nbits, rng, density=density)


def random_packed_vector(
    nbits: int, rng: np.random.Generator, density: float = 0.5
) -> np.ndarray:
    """A packed uint64 bitvector with the given 1-bit density."""
    if nbits <= 0:
        raise SimulationError("nbits must be positive")
    padded = -(-nbits // 64) * 64
    bits = rng.random(padded) < density
    bits[nbits:] = False
    return np.packbits(bits, bitorder="little").view(np.uint64)


def column_values(
    rows: int, bits: int, rng: np.random.Generator, distribution: str = "uniform"
) -> np.ndarray:
    """Integer column for the BitWeaving experiments (Figure 11).

    ``uniform`` draws over the full b-bit domain; ``zipf``-ish skew is
    available for sensitivity studies.
    """
    if rows <= 0 or not 1 <= bits <= 64:
        raise SimulationError(f"bad column shape rows={rows} bits={bits}")
    high = 1 << bits
    if distribution == "uniform":
        return rng.integers(0, high, size=rows, dtype=np.uint64)
    if distribution == "skewed":
        raw = rng.zipf(1.5, size=rows).astype(np.uint64)
        return np.minimum(raw, np.uint64(high - 1))
    raise SimulationError(f"unknown distribution {distribution!r}")


def random_sets(
    m: int, elements_per_set: int, domain: int, rng: np.random.Generator
) -> List[List[int]]:
    """``m`` random sets of ``elements_per_set`` elements from 1..domain
    (Figure 12's workload)."""
    if elements_per_set > domain:
        raise SimulationError("more elements requested than the domain holds")
    return [
        sorted(
            int(x) + 1
            for x in rng.choice(domain, size=elements_per_set, replace=False)
        )
        for _ in range(m)
    ]


_WORDS = [
    "memory", "dram", "bitwise", "accelerator", "bandwidth", "database",
    "index", "bitmap", "search", "query", "document", "filter", "bloom",
    "scan", "column", "vector", "cache", "bank", "subarray", "row",
    "charge", "sense", "amplifier", "wordline", "bitline", "precharge",
    "activate", "energy", "throughput", "latency", "genome", "sequence",
]


def synthetic_corpus(
    num_docs: int, terms_per_doc: int, rng: np.random.Generator
) -> List[List[str]]:
    """Tokenised documents for the BitFunnel experiment (Section 8.4.1)."""
    if num_docs <= 0 or terms_per_doc <= 0:
        raise SimulationError("corpus shape must be positive")
    return [
        [
            _WORDS[int(i)] + str(int(rng.integers(0, 50)))
            for i in rng.integers(0, len(_WORDS), size=terms_per_doc)
        ]
        for _ in range(num_docs)
    ]


def random_dna(length: int, rng: np.random.Generator) -> str:
    """A uniform random DNA sequence."""
    if length <= 0:
        raise SimulationError("sequence length must be positive")
    return "".join("ACGT"[int(i)] for i in rng.integers(0, 4, size=length))


def mutate_dna(
    sequence: str, num_mutations: int, rng: np.random.Generator
) -> Tuple[str, List[int]]:
    """Apply substitutions to a sequence; returns (mutant, positions)."""
    if num_mutations > len(sequence):
        raise SimulationError("more mutations than bases")
    positions = sorted(
        int(p) for p in rng.choice(len(sequence), size=num_mutations, replace=False)
    )
    seq = list(sequence)
    for p in positions:
        alternatives = [b for b in "ACGT" if b != seq[p]]
        seq[p] = alternatives[int(rng.integers(0, 3))]
    return "".join(seq), positions


def read_windows(
    reference: str, read_length: int, count: int, rng: np.random.Generator
) -> List[Tuple[int, str]]:
    """Sample candidate (offset, window) pairs from a reference."""
    if read_length > len(reference):
        raise SimulationError("read longer than the reference")
    offsets = rng.integers(0, len(reference) - read_length + 1, size=count)
    return [(int(o), reference[int(o) : int(o) + read_length]) for o in offsets]
