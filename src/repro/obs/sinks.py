"""Trace sinks: where the tracer's event stream goes.

Sinks are deliberately tiny -- ``emit(event)`` plus ``close()`` -- so a
tracer can fan one command stream out to several consumers at once
(ring buffer for tests, Chrome trace for humans, counters for the
profiler) without the chip model knowing any of them exist.
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, Deque, Iterator, List, Optional, Union

from repro.obs.counters import CounterSet
from repro.obs.events import KIND_COMMAND, TraceEvent


class TraceSink:
    """Base sink: subclasses override :meth:`emit` (and maybe ``close``)."""

    def emit(self, event: TraceEvent) -> None:
        """Consume one event."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources; further emits are undefined."""


class RingBufferSink(TraceSink):
    """Keep the last ``capacity`` events in memory (unbounded if None)."""

    def __init__(self, capacity: Optional[int] = None):
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)

    def emit(self, event: TraceEvent) -> None:
        """Append the event (evicting the oldest when at capacity)."""
        self._events.append(event)

    # ------------------------------------------------------------------
    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def commands(self) -> List[TraceEvent]:
        """Only the bus-command events, in issue order."""
        return [e for e in self._events if e.kind == KIND_COMMAND]

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """Events of one kind, in issue order."""
        return [e for e in self._events if e.kind == kind]

    def clear(self) -> None:
        """Drop all buffered events."""
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)


class CounterSink(TraceSink):
    """Stream events into a :class:`~repro.obs.counters.CounterSet`."""

    def __init__(self):
        self.counters = CounterSet()

    def emit(self, event: TraceEvent) -> None:
        """Fold the event into the running counters."""
        self.counters.observe(event)

    def reset(self) -> None:
        """Start a fresh, empty counter set."""
        self.counters = CounterSet()


class JsonLinesSink(TraceSink):
    """Write one JSON object per event to a file (or file-like object)."""

    def __init__(self, target: Union[str, IO[str]]):
        if isinstance(target, str):
            self._handle: IO[str] = open(target, "w")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False

    def emit(self, event: TraceEvent) -> None:
        """Write the event as one JSON line."""
        self._handle.write(json.dumps(event.to_json(), sort_keys=True))
        self._handle.write("\n")

    def close(self) -> None:
        """Flush, and close the handle if this sink opened it."""
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()


class ChromeTraceSink(TraceSink):
    """Accumulate Chrome ``trace_event`` records; write JSON on close.

    The output loads directly in ``chrome://tracing`` and Perfetto.
    Layout: one process per execution context -- pid 0 ("ambit-device")
    for in-process events, and one process lane per shard-worker OS pid
    ("worker-<pid>") for events collected by the cross-process trace
    merge (:mod:`repro.obs.remote`).  Inside each process: per bank, a
    command lane (tid ``2*bank``) carrying the raw ACT/PRE/RD/WR events
    and an operation lane (tid ``2*bank + 1``) carrying primitive and
    bulk-op spans.  Timestamps convert from model nanoseconds to the
    format's microseconds.
    """

    #: tid used for events with no bank (REF, scheduler-level spans).
    GLOBAL_LANE = 10_000
    #: Chrome pid of in-process (parent) events.
    PARENT_PID = 0

    def __init__(self, target: Union[str, IO[str]]):
        self._target = target
        self._records: List[dict] = []
        self._lanes_seen: set = set()
        self._pids_seen: set = set()
        self._closed = False

    # ------------------------------------------------------------------
    def _lane(self, event: TraceEvent) -> int:
        if event.bank is None:
            return self.GLOBAL_LANE
        return 2 * event.bank + (0 if event.kind == KIND_COMMAND else 1)

    def emit(self, event: TraceEvent) -> None:
        """Buffer the event as a Chrome "complete" ("X") record."""
        pid = self.PARENT_PID if event.pid is None else event.pid
        lane = self._lane(event)
        self._pids_seen.add(pid)
        self._lanes_seen.add((pid, lane, event.bank, event.kind))
        args = {"kind": event.kind, "seq": event.seq}
        for key in ("subarray", "row", "column"):
            value = getattr(event, key)
            if value is not None:
                args[key] = value
        if event.wordlines != 1:
            args["wordlines"] = event.wordlines
        if event.energy_pj:
            args["energy_pj"] = round(event.energy_pj, 3)
        args.update(event.attrs)
        self._records.append(
            {
                "name": event.name,
                "cat": event.kind,
                "ph": "X",  # complete event: ts + dur
                "ts": event.ts_ns / 1000.0,
                "dur": max(event.dur_ns, 0.001) / 1000.0,
                "pid": pid,
                "tid": lane,
                "args": args,
            }
        )

    def _metadata(self) -> List[dict]:
        records = []
        for pid in sorted(self._pids_seen):
            name = "ambit-device" if pid == self.PARENT_PID else f"worker-{pid}"
            records.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "args": {"name": name},
                }
            )
        for pid, lane, bank, kind in sorted(self._lanes_seen):
            if lane == self.GLOBAL_LANE:
                label = "global"
            else:
                label = f"bank{bank}/{'cmds' if lane % 2 == 0 else 'ops'}"
            records.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": lane,
                    "args": {"name": label},
                }
            )
        return records

    def trace_document(self) -> dict:
        """The complete ``trace_event`` JSON document (also written by
        :meth:`close`)."""
        return {
            "traceEvents": self._metadata() + self._records,
            "displayTimeUnit": "ns",
        }

    def close(self) -> None:
        """Write the trace document to the target (idempotent)."""
        if self._closed:
            return
        self._closed = True
        document = self.trace_document()
        if isinstance(self._target, str):
            with open(self._target, "w") as handle:
                json.dump(document, handle)
        else:
            json.dump(document, self._target)
            self._target.flush()
