"""End-to-end request spans: socket to silicon, one trace per request.

The metrics registry says *that* p99 is high; the hardware tracer says
what the DRAM did.  Neither says *why request 4182 took 90 ms*.  This
module closes that gap with request-scoped causality:

* :class:`RequestSpanCtx` -- a per-request builder the serving layer
  carries through its pipeline.  Each stage stamps a monotonic
  checkpoint (``perf_counter_ns`` is comparable across threads within
  one process): admission (``submitted``), drain (``drained``), device
  occupancy (``device_start``/``device_end``), handler completion
  (``result``).  The fault-tolerant session contributes timed recovery
  attempts; the wave runner contributes batch shape.
* :class:`RequestTrace` -- the materialized result: a root ``request``
  span plus child spans (queue / coalesce / device / recovery attempts /
  serialize) and a **stage breakdown that tiles the wall clock
  exactly**.  Stages are differences of ordered checkpoints and the
  remainder is an explicit ``other`` stage, so
  ``sum(stages) == wall_ns`` holds by construction -- the CI sum-check
  verifies instrumentation coverage, not floating-point luck.
* :class:`SpanStore` -- a bounded, thread-safe ring of recent completed
  traces, queryable by trace id, slowest-N, tenant and op (the data
  behind the ``spans`` protocol command and ``repro spans``).
* :class:`FlightRecorder` -- watches completed traces and appends every
  not-yet-dumped trace to a JSONL file when one ends in an unrecovered
  fault, a backpressure rejection, or an SLO breach -- so a chaos soak
  leaves an artifact, not just a counter.

Span ids are ``<trace>`` for the root and ``<trace>.<n>`` for children.
The same ids are stamped onto the hardware tracer's op frames
(:attr:`repro.obs.tracer.Tracer.span_context`), joining the request
tree to the AAP-level command stream.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Stage names of the critical-path breakdown, in pipeline order.
STAGE_QUEUE = "queue"          # admission queue wait (submit -> drain)
STAGE_COALESCE = "coalesce"    # drain -> this request's wave starts
STAGE_DEVICE = "device"        # wave on the device thread, minus recovery
STAGE_RECOVERY = "recovery"    # recovery-ladder attempts inside the wave
STAGE_SERIALIZE = "serialize"  # handler done -> response bytes written
STAGE_OTHER = "other"          # event-loop scheduling, decode, dispatch

STAGES = (
    STAGE_QUEUE,
    STAGE_COALESCE,
    STAGE_DEVICE,
    STAGE_RECOVERY,
    STAGE_SERIALIZE,
    STAGE_OTHER,
)

_trace_counter = itertools.count(1)
_BOOT_TAG = f"{time.time_ns() & 0xFFFFFFFF:08x}"


def new_trace_id() -> str:
    """A process-unique trace id (boot tag + sequence)."""
    return f"{_BOOT_TAG}-{next(_trace_counter):06x}"


# ----------------------------------------------------------------------
# Spans and traces
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Span:
    """One timed node of a request tree.

    ``start_ns`` is a raw ``perf_counter_ns`` value -- meaningful only
    relative to other spans of the same process; exporters rebase.
    """

    trace: str
    span: str
    parent: Optional[str]
    name: str
    start_ns: int
    dur_ns: int
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (``attrs`` omitted when empty)."""
        data: Dict[str, Any] = {
            "trace": self.trace,
            "span": self.span,
            "name": self.name,
            "start_ns": self.start_ns,
            "dur_ns": self.dur_ns,
        }
        if self.parent is not None:
            data["parent"] = self.parent
        if self.attrs:
            data["attrs"] = self.attrs
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        return cls(
            trace=data["trace"],
            span=data["span"],
            parent=data.get("parent"),
            name=data["name"],
            start_ns=int(data["start_ns"]),
            dur_ns=int(data["dur_ns"]),
            attrs=dict(data.get("attrs", {})),
        )


class RequestTrace:
    """One completed request: root span, children, stage breakdown.

    The span tree is **lazy**: the serving hot path finishes thousands
    of traces that are never looked at, so :meth:`RequestSpanCtx.finish`
    stores only the raw checkpoints (marks, recovery attempts, wave
    shape) and the pre-computed stage breakdown; :class:`Span` objects
    materialize on first access to :attr:`spans` -- queries pay, the
    hot path does not (see ``BENCH_spans_overhead.json``).
    """

    __slots__ = (
        "trace", "cmd", "tenant", "op", "status", "start_ns", "wall_ns",
        "stages", "finished_at", "seq", "marks", "attempts", "wave",
        "_spans",
    )

    def __init__(
        self,
        trace: str,
        cmd: str,
        tenant: Optional[str],
        op: Optional[str],
        status: str,            # "ok" or the wire error code
        start_ns: int,
        wall_ns: int,
        stages: Dict[str, int],
        finished_at: float,     # epoch seconds, for humans and dumps
        seq: int = 0,           # assigned by the SpanStore on add
        marks: Optional[Dict[str, int]] = None,
        attempts: Optional[List[Dict[str, Any]]] = None,
        wave: Optional[Dict[str, Any]] = None,
        spans: Optional[List[Span]] = None,
    ):
        self.trace = trace
        self.cmd = cmd
        self.tenant = tenant
        self.op = op
        self.status = status
        self.start_ns = start_ns
        self.wall_ns = wall_ns
        self.stages = stages
        self.finished_at = finished_at
        self.seq = seq
        self.marks = marks if marks is not None else {}
        self.attempts = attempts if attempts is not None else []
        self.wave = wave if wave is not None else {}
        self._spans = spans

    @property
    def spans(self) -> List[Span]:
        if self._spans is None:
            self._spans = _materialize_spans(self)
        return self._spans

    def to_dict(self) -> Dict[str, Any]:
        """The wire/JSONL form: summary fields plus the full span tree."""
        return {
            "trace": self.trace,
            "cmd": self.cmd,
            "tenant": self.tenant,
            "op": self.op,
            "status": self.status,
            "start_ns": self.start_ns,
            "wall_ns": self.wall_ns,
            "stages": dict(self.stages),
            "spans": [span.to_dict() for span in self.spans],
            "finished_at": self.finished_at,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RequestTrace":
        return cls(
            trace=data["trace"],
            cmd=data.get("cmd", "?"),
            tenant=data.get("tenant"),
            op=data.get("op"),
            status=data.get("status", "?"),
            start_ns=int(data.get("start_ns", 0)),
            wall_ns=int(data["wall_ns"]),
            stages={k: int(v) for k, v in data.get("stages", {}).items()},
            spans=[Span.from_dict(s) for s in data.get("spans", [])],
            finished_at=float(data.get("finished_at", 0.0)),
        )

    def chrome_events(
        self, tid: int, base_ns: int, pid: int = 1
    ) -> List[Dict[str, Any]]:
        """Chrome ``trace_event`` objects for this request's lane."""
        events: List[Dict[str, Any]] = [{
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "name": "thread_name",
            "args": {"name": f"{self.trace} ({self.cmd} {self.status})"},
        }]
        for span in self.spans:
            events.append({
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "name": span.name,
                "ts": (span.start_ns - base_ns) / 1e3,   # microseconds
                "dur": max(span.dur_ns, 1) / 1e3,
                "args": dict(span.attrs, trace=self.trace, span=span.span),
            })
        return events


# ----------------------------------------------------------------------
# The per-request builder
# ----------------------------------------------------------------------
class RequestSpanCtx:
    """Mutable collector a request carries from decode to response write.

    The serving layer creates one per request line, stamps checkpoints
    as the request moves through the pipeline, and calls :meth:`finish`
    after the response hits the socket.  ``adopt`` merges checkpoints
    recorded on another thread (the wave runner writes into the
    :class:`~repro.serve.coalescer.OpRequest`'s ``timing`` dict on the
    device thread; the awaiting coroutine adopts them afterwards, so
    the ctx itself is only ever mutated from the event loop).
    """

    __slots__ = (
        "trace", "cmd", "tenant", "op", "t0",
        "marks", "attempts", "wave",
    )

    def __init__(
        self,
        cmd: str,
        tenant: Optional[str] = None,
        op: Optional[str] = None,
        trace: Optional[str] = None,
        start_ns: Optional[int] = None,
    ):
        self.trace = trace if trace is not None else new_trace_id()
        self.cmd = cmd
        self.tenant = tenant
        self.op = op
        self.t0 = (
            start_ns if start_ns is not None else time.perf_counter_ns()
        )
        #: checkpoint name -> perf_counter_ns.
        self.marks: Dict[str, int] = {}
        #: timed recovery-ladder attempts (dicts; see ``adopt``).
        self.attempts: List[Dict[str, Any]] = []
        #: wave shape (index, fused request count, op).
        self.wave: Dict[str, Any] = {}

    def mark(self, name: str, ns: Optional[int] = None) -> None:
        """Stamp a checkpoint (idempotent: first stamp wins)."""
        self.marks.setdefault(
            name, ns if ns is not None else time.perf_counter_ns()
        )

    def adopt(self, timing: Dict[str, Any]) -> None:
        """Merge checkpoints recorded elsewhere (coalescer / wave runner)."""
        for name in ("submitted", "drained", "device_start", "device_end"):
            value = timing.get(name)
            if value is not None:
                self.mark(name, int(value))
        self.attempts.extend(timing.get("attempts", ()))
        wave = timing.get("wave")
        if wave:
            self.wave.update(wave)

    # ------------------------------------------------------------------
    def recovery_ns(self) -> int:
        """Total nanoseconds the adopted recovery attempts consumed."""
        return sum(int(a.get("dur_ns", 0)) for a in self.attempts)

    def breakdown(self, end_ns: int) -> Dict[str, int]:
        """Tile ``[t0, end_ns]`` into the stage dict (sums exactly).

        Checkpoints are monotonic and pipeline-ordered, so every stage
        is a non-negative difference and ``other`` absorbs whatever the
        named stages do not cover (event-loop scheduling, decode,
        response encode).  A negative ``other`` would mean overlapping
        stage accounting -- :func:`validate_trace` treats it as a bug.
        """
        wall = end_ns - self.t0
        if wall < 0:
            wall = 0
        m = self.marks
        sub = m.get("submitted")
        drained = m.get("drained")
        dev_s = m.get("device_start")
        dev_e = m.get("device_end")
        result = m.get("result")
        queue = (
            drained - sub
            if sub is not None and drained is not None and drained > sub
            else 0
        )
        coalesce = (
            dev_s - drained
            if drained is not None and dev_s is not None and dev_s > drained
            else 0
        )
        device_total = (
            dev_e - dev_s
            if dev_s is not None and dev_e is not None and dev_e > dev_s
            else 0
        )
        recovery = (
            min(self.recovery_ns(), device_total) if self.attempts else 0
        )
        serialize = (
            end_ns - result
            if result is not None and end_ns > result
            else 0
        )
        return {
            STAGE_QUEUE: queue,
            STAGE_COALESCE: coalesce,
            STAGE_DEVICE: device_total - recovery,
            STAGE_RECOVERY: recovery,
            STAGE_SERIALIZE: serialize,
            STAGE_OTHER: wall - queue - coalesce - device_total - serialize,
        }

    def finish(
        self, status: str, end_ns: Optional[int] = None
    ) -> RequestTrace:
        """Seal the trace; call once, after the response write.

        Deliberately cheap (the hot path runs it per request): stage
        arithmetic only; the span tree materializes lazily on first
        query (see :class:`RequestTrace`).
        """
        end = end_ns if end_ns is not None else time.perf_counter_ns()
        end = max(end, self.t0)
        return RequestTrace(
            trace=self.trace,
            cmd=self.cmd,
            tenant=self.tenant,
            op=self.op,
            status=status,
            start_ns=self.t0,
            wall_ns=end - self.t0,
            stages=self.breakdown(end),
            finished_at=time.time(),
            marks=self.marks,
            attempts=self.attempts,
            wave=self.wave,
        )


def _materialize_spans(trace: RequestTrace) -> List[Span]:
    """Build the span tree from a trace's raw checkpoints (query path)."""
    m = trace.marks
    t0 = trace.start_ns
    end = t0 + trace.wall_ns
    counter = itertools.count(1)

    def child_id() -> str:
        return f"{trace.trace}.{next(counter)}"

    spans: List[Span] = [Span(
        trace=trace.trace,
        span=trace.trace,
        parent=None,
        name=f"request:{trace.cmd}",
        start_ns=t0,
        dur_ns=trace.wall_ns,
        attrs={
            k: v
            for k, v in (
                ("cmd", trace.cmd),
                ("tenant", trace.tenant),
                ("op", trace.op),
                ("status", trace.status),
            )
            if v is not None
        },
    )]

    def stage_span(name: str, a: str, b: str, **attrs: Any) -> Optional[str]:
        if a not in m or b not in m or m[b] < m[a]:
            return None
        sid = child_id()
        spans.append(Span(
            trace=trace.trace, span=sid, parent=trace.trace,
            name=name, start_ns=m[a], dur_ns=m[b] - m[a], attrs=attrs,
        ))
        return sid

    stage_span(STAGE_QUEUE, "submitted", "drained")
    stage_span(STAGE_COALESCE, "drained", "device_start")
    device_attrs = dict(trace.wave)
    if trace.attempts:
        device_attrs["recovery_ns"] = sum(
            int(a.get("dur_ns", 0)) for a in trace.attempts
        )
    device_id = stage_span(
        STAGE_DEVICE, "device_start", "device_end", **device_attrs
    )
    for attempt in trace.attempts:
        spans.append(Span(
            trace=trace.trace,
            span=child_id(),
            parent=device_id if device_id is not None else trace.trace,
            name=f"recovery:{attempt.get('action', '?')}",
            start_ns=int(attempt.get("start_ns", t0)),
            dur_ns=int(attempt.get("dur_ns", 0)),
            attrs={
                k: attempt[k]
                for k in ("kind", "op", "bank", "subarray",
                          "address", "ok")
                if k in attempt
            },
        ))
    if "result" in m:
        spans.append(Span(
            trace=trace.trace, span=child_id(), parent=trace.trace,
            name=STAGE_SERIALIZE, start_ns=m["result"],
            dur_ns=end - m["result"], attrs={},
        ))
    return spans


# ----------------------------------------------------------------------
# The bounded store
# ----------------------------------------------------------------------
class SpanStore:
    """A thread-safe ring of recent completed request traces."""

    def __init__(self, capacity: int = 512):
        self.capacity = max(1, int(capacity))
        self._lock = threading.Lock()
        self._traces: List[RequestTrace] = []
        self._seq = 0

    def add(self, trace: RequestTrace) -> RequestTrace:
        """Record one completed trace (assigns its store sequence)."""
        with self._lock:
            self._seq += 1
            trace.seq = self._seq
            self._traces.append(trace)
            if len(self._traces) > self.capacity:
                del self._traces[: len(self._traces) - self.capacity]
        return trace

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def get(self, trace_id: str) -> Optional[RequestTrace]:
        """The trace with this id, if it is still in the ring."""
        with self._lock:
            for trace in reversed(self._traces):
                if trace.trace == trace_id:
                    return trace
        return None

    def list(
        self,
        slowest: Optional[int] = None,
        tenant: Optional[str] = None,
        op: Optional[str] = None,
        since_seq: int = 0,
    ) -> List[RequestTrace]:
        """Recent traces, filtered; slowest-N sorts by wall descending."""
        with self._lock:
            traces = [t for t in self._traces if t.seq > since_seq]
        if tenant is not None:
            traces = [t for t in traces if t.tenant == tenant]
        if op is not None:
            traces = [t for t in traces if t.op == op]
        if slowest is not None:
            traces = sorted(
                traces, key=lambda t: t.wall_ns, reverse=True
            )[: max(0, slowest)]
        return traces


# ----------------------------------------------------------------------
# The flight recorder
# ----------------------------------------------------------------------
class FlightRecorder:
    """Dump the recent-span ring to JSONL when a request ends badly.

    Triggers: the request's terminal status is in ``trigger_codes``
    (the server passes the unrecovered-fault and backpressure wire
    codes), or its wall latency breaches ``slo_ms``.  Each dump appends
    only traces not yet written (tracked by store sequence), so
    repeated triggers during a fault storm do not re-dump the whole
    ring every time.
    """

    REASON_SLO = "slo_breach"

    def __init__(
        self,
        store: SpanStore,
        path: Optional[str] = None,
        slo_ms: float = 0.0,
        trigger_codes: Iterable[str] = (),
    ):
        self.store = store
        self.path = path
        self.slo_ms = float(slo_ms)
        self.trigger_codes = frozenset(trigger_codes)
        self.dumps = 0
        self.last_reason: Optional[str] = None
        self._last_dumped_seq = 0
        self._lock = threading.Lock()

    def reason_for(self, trace: RequestTrace) -> Optional[str]:
        """Why this trace should trigger a dump (``None`` = it should not)."""
        if trace.status in self.trigger_codes:
            return trace.status
        if self.slo_ms > 0 and trace.wall_ns > self.slo_ms * 1e6:
            return self.REASON_SLO
        return None

    def observe(self, trace: RequestTrace) -> Optional[str]:
        """Consider one completed trace; dump and return the reason if hit."""
        reason = self.reason_for(trace)
        if reason is not None and self.path is not None:
            self.dump(reason, trace.trace)
        self.last_reason = reason if reason is not None else self.last_reason
        return reason

    def dump(self, reason: str, trigger_trace: str) -> int:
        """Append every not-yet-dumped trace; returns lines written."""
        assert self.path is not None
        with self._lock:
            fresh = self.store.list(since_seq=self._last_dumped_seq)
            if not fresh:
                return 0
            with open(self.path, "a") as handle:
                for trace in fresh:
                    record = dict(
                        trace.to_dict(),
                        flight_reason=reason,
                        flight_trigger=trigger_trace,
                    )
                    handle.write(json.dumps(record, sort_keys=True))
                    handle.write("\n")
            self._last_dumped_seq = fresh[-1].seq
            self.dumps += 1
            return len(fresh)


# ----------------------------------------------------------------------
# Validation (CI sum-check and `repro spans --check`)
# ----------------------------------------------------------------------
def validate_trace(
    data: Dict[str, Any], tolerance: float = 0.05
) -> List[str]:
    """Structural checks on one wire-form trace; returns problem strings.

    * required keys present, wall > 0;
    * every stage non-negative (a negative ``other`` means stages
      overlapped -- an instrumentation bug, not clock noise);
    * the stage breakdown sums to the wall clock within ``tolerance``;
    * the span tree is well-formed: exactly one root, every parent
      resolves, children sit inside the root's interval.
    """
    problems: List[str] = []
    for key in ("trace", "wall_ns", "stages", "spans"):
        if key not in data:
            problems.append(f"missing key {key!r}")
    if problems:
        return problems
    wall = int(data["wall_ns"])
    if wall <= 0:
        problems.append(f"non-positive wall_ns {wall}")
        return problems
    stages = data["stages"]
    for name, value in stages.items():
        if int(value) < 0:
            problems.append(f"negative stage {name}={value}")
    total = sum(int(v) for v in stages.values())
    if abs(total - wall) > tolerance * wall:
        problems.append(
            f"stages sum to {total} ns but wall is {wall} ns "
            f"(off by {abs(total - wall) / wall:.1%}, "
            f"tolerance {tolerance:.0%})"
        )
    spans = data["spans"]
    by_id = {}
    roots = []
    for span in spans:
        for key in ("trace", "span", "name", "start_ns", "dur_ns"):
            if key not in span:
                problems.append(f"span missing key {key!r}: {span}")
                return problems
        by_id[span["span"]] = span
        if span.get("parent") is None:
            roots.append(span)
    if len(roots) != 1:
        problems.append(f"expected exactly one root span; got {len(roots)}")
        return problems
    root = roots[0]
    root_start = int(root["start_ns"])
    root_end = root_start + int(root["dur_ns"])
    for span in spans:
        parent = span.get("parent")
        if parent is not None and parent not in by_id:
            problems.append(
                f"span {span['span']} references unknown parent {parent}"
            )
        if int(span["dur_ns"]) < 0:
            problems.append(f"span {span['span']} has negative duration")
        if span is not root:
            start = int(span["start_ns"])
            if start < root_start or start + int(span["dur_ns"]) > root_end:
                problems.append(
                    f"span {span['span']} ({span['name']}) leaves the "
                    f"root interval"
                )
    return problems


# ----------------------------------------------------------------------
# Rendering (the `repro spans` CLI)
# ----------------------------------------------------------------------
def _ms(ns: Any) -> float:
    return int(ns) / 1e6


def format_spans_table(traces: Sequence[Dict[str, Any]]) -> str:
    """One row per request: wall plus the full stage breakdown."""
    if not traces:
        return "(no spans recorded)"
    lines = [
        f"{'trace':>16} {'cmd':>6} {'tenant':>8} {'op':>5} {'status':>12} "
        f"{'wall ms':>9} {'queue':>7} {'coal':>7} {'device':>7} "
        f"{'recov':>7} {'serl':>7} {'other':>7}"
    ]
    for trace in traces:
        stages = trace.get("stages", {})
        lines.append(
            f"{trace.get('trace', '?'):>16} "
            f"{trace.get('cmd', '?'):>6} "
            f"{str(trace.get('tenant') or '-'):>8} "
            f"{str(trace.get('op') or '-'):>5} "
            f"{trace.get('status', '?'):>12} "
            f"{_ms(trace.get('wall_ns', 0)):>9.3f} "
            f"{_ms(stages.get(STAGE_QUEUE, 0)):>7.3f} "
            f"{_ms(stages.get(STAGE_COALESCE, 0)):>7.3f} "
            f"{_ms(stages.get(STAGE_DEVICE, 0)):>7.3f} "
            f"{_ms(stages.get(STAGE_RECOVERY, 0)):>7.3f} "
            f"{_ms(stages.get(STAGE_SERIALIZE, 0)):>7.3f} "
            f"{_ms(stages.get(STAGE_OTHER, 0)):>7.3f}"
        )
    return "\n".join(lines)


def format_trace_tree(data: Dict[str, Any]) -> str:
    """An indented span tree for one request (``repro spans TRACE``)."""
    spans = [Span.from_dict(s) for s in data.get("spans", [])]
    by_parent: Dict[Optional[str], List[Span]] = {}
    for span in spans:
        by_parent.setdefault(span.parent, []).append(span)
    for children in by_parent.values():
        children.sort(key=lambda s: s.start_ns)

    header = (
        f"trace {data.get('trace', '?')}: {data.get('cmd', '?')}"
        + (f" {data['op']}" if data.get("op") else "")
        + (f" tenant {data['tenant']}" if data.get("tenant") else "")
        + f"  status {data.get('status', '?')}"
        + f"  wall {_ms(data.get('wall_ns', 0)):.3f} ms"
    )
    lines = [header]
    base = int(data.get("start_ns", 0))

    def walk(span: Span, depth: int) -> None:
        attrs = ""
        if span.attrs:
            attrs = "  " + " ".join(
                f"{k}={v}" for k, v in sorted(span.attrs.items())
            )
        lines.append(
            f"  {'  ' * depth}{span.name:<{24 - 2 * depth}} "
            f"+{_ms(span.start_ns - base):>9.3f} ms  "
            f"{_ms(span.dur_ns):>9.3f} ms{attrs}"
        )
        for child in by_parent.get(span.span, []):
            walk(child, depth + 1)

    for root in by_parent.get(None, []):
        walk(root, 0)
    stages = data.get("stages", {})
    if stages:
        lines.append("  breakdown: " + "  ".join(
            f"{name} {_ms(stages.get(name, 0)):.3f}" for name in STAGES
        ) + "  (ms)")
    return "\n".join(lines)


def chrome_trace(traces: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """A Chrome ``trace_event`` payload, one lane (tid) per request."""
    parsed = [RequestTrace.from_dict(t) for t in traces]
    if not parsed:
        return {"traceEvents": []}
    base = min(t.start_ns for t in parsed)
    events: List[Dict[str, Any]] = []
    for tid, trace in enumerate(
        sorted(parsed, key=lambda t: t.start_ns), start=1
    ):
        events.extend(trace.chrome_events(tid=tid, base_ns=base))
    return {"traceEvents": events, "displayTimeUnit": "ms"}
