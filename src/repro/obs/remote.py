"""Cross-process trace collection for the sharded simulator.

The in-process tracer observes events at the chip's command choke
point; a :class:`~repro.parallel.device.ShardedDevice` executes bulk
operations in *worker processes*, whose chips the parent tracer cannot
see.  This module closes that gap without giving up the golden-trace
guarantees:

1. **Spool** -- each traced shard job runs with a real
   :class:`~repro.obs.tracer.Tracer` (built from a shipped
   :class:`TracerConfig`, so per-command costing matches the parent's
   tracer exactly) writing JSON-lines events to a per-(batch, shard)
   spool file.  Workers execute traced rows through the per-row command
   walk, so the events are the genuine article, not a reconstruction.
2. **Segment** -- a worker's event stream is split at each ``kind="op"``
   boundary (:func:`segment_rows`); the k-th segment is exactly the k-th
   row of the shard job, because the traced worker executes rows one at
   a time in job order.
3. **Replay** -- the parent re-emits every segment through
   :meth:`~repro.obs.tracer.Tracer.emit_foreign` in the *canonical
   serial order* (the scheduler's bank-interleaved group order, rows in
   group order) while reconstructing the serial clock primitive by
   primitive (:func:`replay_row`).  Counts, durations, energies, and
   per-op aggregates fold into downstream sinks **bit-identically** to a
   single-process traced run; replayed events additionally carry the
   worker's OS pid, which the Chrome sink renders as per-worker process
   lanes.

The timestamp reconstruction deserves a note: worker clocks start at
the batch's dispatch time and advance only through their own shard, so
raw worker timestamps overlap across shards.  :func:`replay_row`
ignores them and re-derives each event's issue time by folding the
primitive latencies in serial order -- the identical sequence of float
additions the serial controller performs -- so even timestamps are
bit-exact, not merely close.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import IO, List, Optional, Union

from repro.dram.timing import TimingParameters
from repro.energy.power_model import (
    DEFAULT_ENERGY,
    REFERENCE_ROW_BYTES,
    EnergyParameters,
)
from repro.errors import ConcurrencyError
from repro.obs.events import KIND_OP, KIND_PRIMITIVE, TraceEvent
from repro.obs.sinks import JsonLinesSink
from repro.obs.tracer import Tracer


@dataclass(frozen=True)
class TracerConfig:
    """The picklable essence of a tracer, shipped to shard workers.

    Carries exactly the knobs that determine per-event costing
    (durations from the speed grade, energies from the Table 3 model
    scaled to the row size), so a worker-side tracer produces events
    byte-equivalent to what the parent's tracer would have recorded.
    """

    timing: Optional[TimingParameters] = None
    energy: EnergyParameters = DEFAULT_ENERGY
    row_bytes: int = REFERENCE_ROW_BYTES

    @classmethod
    def from_tracer(cls, tracer: Tracer) -> "TracerConfig":
        """Capture a live tracer's costing configuration."""
        return cls(
            timing=tracer.timing,
            energy=tracer.energy,
            row_bytes=tracer.row_bytes,
        )

    def build(self, target: Union[str, IO[str]]) -> Tracer:
        """A worker-side tracer spooling events to ``target``."""
        return Tracer(
            sinks=[JsonLinesSink(target)],
            timing=self.timing,
            energy=self.energy,
            row_bytes=self.row_bytes,
        )


# ----------------------------------------------------------------------
# Spool reading
# ----------------------------------------------------------------------
def read_spool(path: str) -> List[TraceEvent]:
    """Parse one worker spool file back into trace events."""
    events: List[TraceEvent] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(TraceEvent.from_json(json.loads(line)))
    return events


def events_from_bytes(data: bytes) -> List[TraceEvent]:
    """Parse a zero-copy (shared-memory) spool back into trace events.

    Same JSON-lines wire format as :func:`read_spool`, but sourced from
    a worker's spool slot in the shared accounting block instead of a
    fallback file.
    """
    events: List[TraceEvent] = []
    for line in data.decode("utf-8").splitlines():
        line = line.strip()
        if line:
            events.append(TraceEvent.from_json(json.loads(line)))
    return events


def discard_spool(path: str) -> None:
    """Best-effort removal of a consumed spool file."""
    try:
        os.unlink(path)
    except OSError:
        pass


def segment_rows(
    events: List[TraceEvent], expected_rows: int
) -> List[List[TraceEvent]]:
    """Split a worker's event stream into per-row segments.

    A traced worker executes its shard's rows one at a time, and every
    row's event group ends with exactly one ``kind="op"`` event, so the
    stream segments unambiguously.  A count mismatch means the spool is
    truncated or interleaved -- both are merge-corrupting, so it raises
    :class:`~repro.errors.ConcurrencyError` rather than guessing.
    """
    segments: List[List[TraceEvent]] = []
    current: List[TraceEvent] = []
    for event in events:
        current.append(event)
        if event.kind == KIND_OP:
            segments.append(current)
            current = []
    if current:
        raise ConcurrencyError(
            f"worker trace spool ends mid-row ({len(current)} event(s) "
            f"after the last op boundary); the shard job may have died "
            f"mid-batch"
        )
    if len(segments) != expected_rows:
        raise ConcurrencyError(
            f"worker trace spool has {len(segments)} row segment(s); "
            f"the shard job executed {expected_rows}"
        )
    return segments


# ----------------------------------------------------------------------
# Canonical replay
# ----------------------------------------------------------------------
def replay_row(
    tracer: Tracer,
    segment: List[TraceEvent],
    clock_ns: float,
    pid: Optional[int],
) -> float:
    """Re-emit one row's events at the canonical serial clock.

    ``clock_ns`` is the serial model clock at which this row would have
    started; the function walks the segment exactly as the serial
    controller advances its clock (commands of a primitive issue at the
    primitive's start, the clock steps by each primitive's accounted
    latency, the closing op event spans the whole row) and returns the
    clock after the row.
    """
    row_start = clock_ns
    for event in segment:
        if event.kind == KIND_PRIMITIVE:
            tracer.emit_foreign(event, ts_ns=clock_ns, pid=pid)
            clock_ns += event.dur_ns
        elif event.kind == KIND_OP:
            tracer.emit_foreign(event, ts_ns=row_start, pid=pid)
        else:
            tracer.emit_foreign(event, ts_ns=clock_ns, pid=pid)
    return clock_ns


def shard_busy_ns(segments: List[List[TraceEvent]]) -> float:
    """Accounted busy time of one shard: the sum of its rows' op spans."""
    return sum(segment[-1].dur_ns for segment in segments if segment)
