"""Observability: structured command tracing and per-operation profiling.

Everything Ambit claims -- latency, energy, interference -- reduces to a
*command sequence*: the AAP/AP chains of Figure 8 streamed at the Table 1
addresses.  This package makes that stream a first-class, inspectable
artifact instead of a raw ``chip.trace`` list:

* :class:`~repro.obs.tracer.Tracer` -- attached at the chip's command
  choke point (:meth:`repro.dram.chip.DramChip.execute`), it turns every
  ACT/PRE/RD/WR/REF plus every AAP/AP primitive and bulk operation into
  a typed :class:`~repro.obs.events.TraceEvent` carrying the issue
  clock, latency and energy, fanned out to pluggable sinks.
* Sinks (:mod:`repro.obs.sinks`) -- in-memory ring buffer, JSON-lines
  file, and Chrome ``trace_event`` format (load the output in
  ``chrome://tracing`` or https://ui.perfetto.dev), plus a streaming
  :class:`~repro.obs.counters.CounterSink`.
* :class:`~repro.obs.counters.CounterSet` -- per-operation counters
  (AAPs, APs, TRAs, RowClone FPM/PSM copies, busy-ns, pJ) with delta
  arithmetic.
* :func:`~repro.obs.profiler.profile` -- a context manager (exposed as
  :meth:`repro.core.device.AmbitDevice.profile`) aggregating counters
  and per-bulk-op summaries over a region of work.
* :class:`~repro.obs.metrics.MetricsRegistry` -- live counters, gauges
  and fixed-bucket latency histograms threaded through the controller,
  plan cache, batch engine and worker pool, with Prometheus-text /
  JSON / JSON-lines exposition (``repro metrics``, ``repro top``).
* :mod:`repro.obs.remote` -- cross-process trace collection: workers
  trace into per-(batch, shard) JSON-lines spools that the parent
  merges back into one stream, bit-identical to a serial traced run.
* :mod:`repro.obs.spans` -- end-to-end *request* spans for the serving
  layer: per-request critical-path breakdowns that tile the wall clock,
  a bounded ring of recent traces (``repro spans``), and a flight
  recorder that dumps the ring to JSONL when a request ends badly.
* :mod:`repro.obs.regress` -- the benchmark-regression gate behind
  ``repro bench --check``.

The same machinery backs the golden-trace regression suite: the
``command_log`` pytest fixture (``tests/conftest.py``) records exact
command sequences so microprogram drift is a visible diff.
"""

from repro.obs.capture import CommandLog
from repro.obs.counters import CounterSet, OpStats
from repro.obs.events import TraceEvent
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_NS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    MetricsServer,
    format_top,
)
from repro.obs.profiler import ProfileReport, profile
from repro.obs.regress import (
    MetricCheck,
    MetricSpec,
    RegressionReport,
    run_bench_check,
)
from repro.obs.remote import TracerConfig
from repro.obs.spans import (
    STAGES,
    FlightRecorder,
    RequestSpanCtx,
    RequestTrace,
    Span,
    SpanStore,
    chrome_trace,
    format_spans_table,
    format_trace_tree,
    validate_trace,
)
from repro.obs.sinks import (
    ChromeTraceSink,
    CounterSink,
    JsonLinesSink,
    RingBufferSink,
    TraceSink,
)
from repro.obs.tracer import Tracer

__all__ = [
    "ChromeTraceSink",
    "CommandLog",
    "Counter",
    "CounterSet",
    "CounterSink",
    "DEFAULT_LATENCY_BUCKETS_NS",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonLinesSink",
    "MetricCheck",
    "MetricFamily",
    "MetricSpec",
    "MetricsRegistry",
    "MetricsServer",
    "OpStats",
    "ProfileReport",
    "RegressionReport",
    "RequestSpanCtx",
    "RequestTrace",
    "RingBufferSink",
    "STAGES",
    "Span",
    "SpanStore",
    "TraceSink",
    "TraceEvent",
    "Tracer",
    "TracerConfig",
    "chrome_trace",
    "format_spans_table",
    "format_top",
    "format_trace_tree",
    "profile",
    "run_bench_check",
    "validate_trace",
]
