"""The tracer: one choke point, many sinks.

A :class:`Tracer` hangs off :class:`~repro.dram.chip.DramChip` (see
:meth:`repro.core.device.AmbitDevice.attach_tracer`).  The chip reports
every executed bus command; the Ambit controller reports each AAP/AP
primitive with its accounted latency and brackets whole bulk operations
with :meth:`Tracer.begin_op` / :meth:`Tracer.end_op`, so op-level events
carry exact per-instance aggregates (AAPs, APs, commands, energy).

Per-command durations and energies are *nominal*: durations come from
the JEDEC identities of the attached
:class:`~repro.dram.timing.TimingParameters` (an AAP's two ACTIVATEs
overlap in accounted time, so command lanes are illustrative, not a
cycle-accurate pipeline); energies come from the Table 3 energy model,
including the +22 %/extra-wordline activation surcharge.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, List, Optional

from repro.dram.commands import IssuedCommand, Opcode
from repro.energy.power_model import (
    DEFAULT_ENERGY,
    REFERENCE_ROW_BYTES,
    EnergyParameters,
)
from repro.dram.timing import TimingParameters
from repro.obs.events import (
    KIND_COMMAND,
    KIND_OP,
    KIND_PRIMITIVE,
    KIND_SPAN,
    TraceEvent,
)
from repro.obs.sinks import TraceSink

#: Bus-command mnemonics (same vocabulary as :mod:`repro.dram.trace_io`).
MNEMONICS = {
    Opcode.ACTIVATE: "ACT",
    Opcode.PRECHARGE: "PRE",
    Opcode.READ: "RD",
    Opcode.WRITE: "WR",
    Opcode.REFRESH: "REF",
}


class _OpFrame:
    """Book-keeping for one in-flight bulk operation."""

    __slots__ = ("name", "bank", "subarray", "start_ns", "energy_pj",
                 "aaps", "aps", "commands", "span")

    def __init__(
        self,
        name: str,
        bank: int,
        subarray: int,
        start_ns: float,
        span: Optional[tuple] = None,
    ):
        self.name = name
        self.bank = bank
        self.subarray = subarray
        self.start_ns = start_ns
        self.energy_pj = 0.0
        self.aaps = 0
        self.aps = 0
        self.commands = 0
        #: ``(trace_ids, span_id)`` captured from the tracer's ambient
        #: request-span context at ``begin_op`` time (None = untraced).
        self.span = span


class Tracer:
    """Fan the command stream out to pluggable sinks.

    Parameters
    ----------
    sinks:
        Initial sinks; more can be added with :meth:`add_sink`.
    timing:
        Speed grade for nominal per-command durations (``None`` leaves
        command durations at 0; primitive/op spans always carry the
        controller's accounted latency).
    energy:
        Energy constants for per-command energy attribution.
    row_bytes:
        Row size the activation energies scale with.
    """

    def __init__(
        self,
        sinks: Iterable[TraceSink] = (),
        timing: Optional[TimingParameters] = None,
        energy: EnergyParameters = DEFAULT_ENERGY,
        row_bytes: int = REFERENCE_ROW_BYTES,
    ):
        self.sinks: List[TraceSink] = list(sinks)
        self.timing = timing
        self.energy = energy
        self.row_bytes = row_bytes
        self._seq = 0
        self._op_stack: List[_OpFrame] = []
        #: Ambient request-span context: ``(trace_ids_csv, span_id)``.
        #: The serving layer sets this around each wave on the device
        #: thread; ``begin_op`` snapshots it into the op frame so every
        #: emitted op event carries the request trace(s) that caused it
        #: -- the join key between request spans and the command stream.
        self.span_context: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Sink management
    # ------------------------------------------------------------------
    def add_sink(self, sink: TraceSink) -> TraceSink:
        """Attach another sink; returns it for convenience."""
        self.sinks.append(sink)
        return sink

    def remove_sink(self, sink: TraceSink) -> None:
        """Detach a sink (no-op if absent); does not close it."""
        try:
            self.sinks.remove(sink)
        except ValueError:
            pass

    def close(self) -> None:
        """Close every sink (flushes file-backed sinks)."""
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def _emit(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def emit_foreign(
        self,
        event: TraceEvent,
        ts_ns: Optional[float] = None,
        pid: Optional[int] = None,
    ) -> TraceEvent:
        """Re-emit an event recorded by *another* tracer into this one.

        The cross-process trace collector (:mod:`repro.obs.remote`) uses
        this to fold worker-side event streams into the parent's sinks:
        the event keeps its recorded payload (kind, name, duration,
        energy, attrs) but receives this tracer's next sequence number,
        optionally a rebased timestamp, and the worker's pid.  The
        in-flight op stack is untouched -- foreign events are complete.
        """
        replaced = dataclasses.replace(
            event,
            seq=self._next_seq(),
            ts_ns=event.ts_ns if ts_ns is None else ts_ns,
            pid=event.pid if pid is None else pid,
        )
        self._emit(replaced)
        return replaced

    def record_command(self, issued: IssuedCommand, clock_ns: float) -> None:
        """Record one executed bus command (called by the chip)."""
        command = issued.command
        energy_pj = self._command_energy_pj(issued)
        attrs: dict = {}
        if issued.onto_open_row:
            attrs["onto_open_row"] = True
        if issued.write_value is not None:
            attrs["write_value"] = issued.write_value
        self._emit(
            TraceEvent(
                kind=KIND_COMMAND,
                name=MNEMONICS[command.opcode],
                ts_ns=clock_ns,
                dur_ns=self._command_dur_ns(command.opcode),
                seq=self._next_seq(),
                bank=command.bank,
                subarray=command.subarray,
                row=command.row,
                column=command.column,
                wordlines=issued.wordlines_raised,
                energy_pj=energy_pj,
                attrs=attrs,
            )
        )
        if self._op_stack:
            frame = self._op_stack[-1]
            frame.energy_pj += energy_pj
            frame.commands += 1

    def record_primitive(
        self,
        name: str,
        bank: int,
        subarray: int,
        start_ns: float,
        dur_ns: float,
        **attrs: Any,
    ) -> None:
        """Record one accounted primitive (AAP/AP/PSM_COPY span)."""
        self._emit(
            TraceEvent(
                kind=KIND_PRIMITIVE,
                name=name,
                ts_ns=start_ns,
                dur_ns=dur_ns,
                seq=self._next_seq(),
                bank=bank,
                subarray=subarray,
                attrs=attrs,
            )
        )
        if self._op_stack:
            frame = self._op_stack[-1]
            if name == "AAP":
                frame.aaps += 1
            elif name == "AP":
                frame.aps += 1

    def begin_op(self, name: str, bank: int, subarray: int, clock_ns: float) -> None:
        """Open a bulk-operation span (nestable)."""
        self._op_stack.append(
            _OpFrame(name, bank, subarray, clock_ns, span=self.span_context)
        )

    def end_op(self, clock_ns: float) -> None:
        """Close the innermost bulk-operation span and emit it."""
        frame = self._op_stack.pop()
        attrs: dict = {
            "aaps": frame.aaps,
            "aps": frame.aps,
            "commands": frame.commands,
        }
        if frame.span is not None:
            attrs["trace"], attrs["span"] = frame.span
        self._emit(
            TraceEvent(
                kind=KIND_OP,
                name=frame.name,
                ts_ns=frame.start_ns,
                dur_ns=clock_ns - frame.start_ns,
                seq=self._next_seq(),
                bank=frame.bank,
                subarray=frame.subarray,
                energy_pj=frame.energy_pj,
                attrs=attrs,
            )
        )

    def span(
        self,
        name: str,
        start_ns: float,
        dur_ns: float,
        bank: Optional[int] = None,
        **attrs: Any,
    ) -> None:
        """Record a free-form span (scheduler jobs, memory requests)."""
        self._emit(
            TraceEvent(
                kind=KIND_SPAN,
                name=name,
                ts_ns=start_ns,
                dur_ns=dur_ns,
                seq=self._next_seq(),
                bank=bank,
                attrs=attrs,
            )
        )

    # ------------------------------------------------------------------
    # Nominal command costing
    # ------------------------------------------------------------------
    def _command_dur_ns(self, opcode: Opcode) -> float:
        t = self.timing
        if t is None:
            return 0.0
        if opcode is Opcode.ACTIVATE:
            return t.tRCD
        if opcode is Opcode.PRECHARGE:
            return t.tRP
        if opcode in (Opcode.READ, Opcode.WRITE):
            return t.tCL + t.tBL
        return t.trc  # REFRESH: one row cycle per modelled refresh

    def _command_energy_pj(self, issued: IssuedCommand) -> float:
        opcode = issued.command.opcode
        if opcode is Opcode.ACTIVATE:
            nj = self.energy.activate_nj(issued.wordlines_raised, self.row_bytes)
        elif opcode is Opcode.PRECHARGE:
            nj = self.energy.precharge_nj(self.row_bytes)
        elif opcode in (Opcode.READ, Opcode.WRITE):
            nj = self.energy.transfer_nj(8)  # one 64-bit word
        else:
            nj = 0.0
        return nj * 1000.0
