"""Benchmark-regression gate: fresh runs vs committed baselines.

The repository commits benchmark payloads under ``benchmarks/results/``
(``BENCH_engine.json``, ``BENCH_parallel.json``).  This module compares
a *fresh* run of the same benchmark against the committed baseline,
metric by metric, and renders a pass/fail report -- the machinery behind
``repro bench --check`` and the ``bench-regress`` CI job.

Metrics split into two families with very different tolerances:

* **model-deterministic** -- accounted throughput, Monte Carlo failure
  counts, determinism/bit-exactness flags.  These depend only on the
  model and the seed, never on the host, so they are compared (near-)
  exactly: any drift is a real regression (or an intentional model
  change that must update the baseline).
* **wall-clock** -- speedups and rows/s.  These are hostage to the host;
  committed baselines may come from a many-core machine while CI runs
  on one core.  Tolerances are therefore wide (a check fails only on
  order-of-magnitude collapse) and scalable via ``tolerance_scale``.

Metric addresses are dotted paths into the JSON payload, with
``[key=value]`` selecting a dict out of a list, e.g.
``results[banks=8].speedup``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError

#: Comparison directions.
HIGHER = "higher"  # current must not fall below baseline * (1 - tol)
LOWER = "lower"    # current must not rise above baseline * (1 + tol)
EQUAL = "equal"    # current must match baseline (within tol, for floats)


@dataclass(frozen=True)
class MetricSpec:
    """One gated metric: where it lives and how much it may move."""

    path: str
    direction: str = HIGHER
    #: Relative tolerance (fraction of the baseline value).
    tolerance: float = 0.0
    note: str = ""

    def __post_init__(self) -> None:
        if self.direction not in (HIGHER, LOWER, EQUAL):
            raise ConfigError(
                f"unknown direction {self.direction!r} for {self.path}"
            )
        if self.tolerance < 0:
            raise ConfigError(
                f"tolerance must be >= 0 for {self.path}; "
                f"got {self.tolerance}"
            )


@dataclass(frozen=True)
class MetricCheck:
    """Outcome of one spec against one (baseline, current) pair."""

    path: str
    baseline: Any
    current: Any
    ok: bool
    detail: str


@dataclass
class RegressionReport:
    """All checks of one baseline file."""

    name: str
    checks: List[MetricCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def failures(self) -> List[MetricCheck]:
        return [check for check in self.checks if not check.ok]

    def format(self) -> str:
        """Render a one-line verdict plus one ``[ok]``/``[FAIL]`` line per check."""
        lines = [f"{self.name}: {'OK' if self.ok else 'REGRESSION'}"]
        for check in self.checks:
            mark = "ok  " if check.ok else "FAIL"
            lines.append(f"  [{mark}] {check.path}: {check.detail}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Payload addressing
# ----------------------------------------------------------------------
def extract(payload: Any, path: str) -> Any:
    """Resolve a dotted metric path, with ``[key=value]`` list selection."""
    node = payload
    for part in path.split("."):
        selector = None
        if "[" in part:
            if not part.endswith("]"):
                raise ConfigError(f"malformed metric path segment {part!r}")
            part, selector = part[:-1].split("[", 1)
        if part:
            if not isinstance(node, dict) or part not in node:
                raise ConfigError(
                    f"metric path {path!r}: no key {part!r} in payload"
                )
            node = node[part]
        if selector is not None:
            key, _, raw = selector.partition("=")
            if not _:
                raise ConfigError(
                    f"malformed list selector {selector!r} in {path!r}"
                )
            value: Any = raw
            try:
                value = json.loads(raw)
            except ValueError:
                pass
            if not isinstance(node, list):
                raise ConfigError(
                    f"metric path {path!r}: {part or 'payload'} is not a list"
                )
            matches = [
                item
                for item in node
                if isinstance(item, dict) and item.get(key) == value
            ]
            if len(matches) != 1:
                raise ConfigError(
                    f"metric path {path!r}: selector [{selector}] matched "
                    f"{len(matches)} item(s)"
                )
            node = matches[0]
    return node


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
def check_metric(
    spec: MetricSpec,
    baseline: Any,
    current: Any,
    tolerance_scale: float = 1.0,
) -> MetricCheck:
    """Apply one spec; tolerances scale by ``tolerance_scale``."""
    tol = min(spec.tolerance * tolerance_scale, 0.999999)
    if isinstance(baseline, bool) or not isinstance(
        baseline, (int, float)
    ) or not isinstance(current, (int, float)) or isinstance(current, bool):
        ok = baseline == current
        detail = f"{current!r} (baseline {baseline!r}, exact)"
        return MetricCheck(spec.path, baseline, current, ok, detail)

    if math.isnan(baseline) or math.isnan(current):
        return MetricCheck(
            spec.path, baseline, current, False, "NaN is never acceptable"
        )
    if spec.direction == EQUAL:
        bound = abs(baseline) * tol
        ok = abs(current - baseline) <= bound
        detail = (
            f"{current:g} (baseline {baseline:g}, "
            f"allowed +/-{bound:g})"
        )
    elif spec.direction == HIGHER:
        floor = baseline * (1.0 - tol)
        ok = current >= floor
        detail = f"{current:g} (baseline {baseline:g}, floor {floor:g})"
    else:
        ceiling = baseline * (1.0 + tol)
        ok = current <= ceiling
        detail = f"{current:g} (baseline {baseline:g}, ceiling {ceiling:g})"
    return MetricCheck(spec.path, baseline, current, ok, detail)


def compare(
    name: str,
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    specs: Sequence[MetricSpec],
    tolerance_scale: float = 1.0,
) -> RegressionReport:
    """Check every spec of one benchmark payload pair."""
    report = RegressionReport(name=name)
    for spec in specs:
        report.checks.append(
            check_metric(
                spec,
                extract(baseline, spec.path),
                extract(current, spec.path),
                tolerance_scale,
            )
        )
    return report


def load_baseline(path: str) -> Dict[str, Any]:
    """Read a committed ``BENCH_*.json`` payload."""
    with open(path) as handle:
        return json.load(handle)


def waiver_checks(payload: Any, prefix: str = "") -> List[MetricCheck]:
    """Passing checks for every ``speedup_tier: waived-*`` in a payload.

    A waived floor is a *decision* (single-core host, dispatch-bound
    fan-out, ...), and decisions that pass silently rot: nobody notices
    when a benchmark stops gating.  This walks the fresh payload and
    emits one passing :class:`MetricCheck` per waiver so the
    ``repro bench --check`` report prints the reason next to the real
    gates.  The sibling ``waiver_reason`` key, when present, supplies
    the stated reason; otherwise the tier string stands alone.
    """
    checks: List[MetricCheck] = []
    if not isinstance(payload, dict):
        return checks
    for key in sorted(payload):
        value = payload[key]
        path = f"{prefix}{key}"
        if (
            key == "speedup_tier"
            and isinstance(value, str)
            and value.startswith("waived")
        ):
            reason = payload.get("waiver_reason")
            detail = f"waiver: {value}"
            if isinstance(reason, str) and reason:
                detail += f" -- {reason}"
            checks.append(
                MetricCheck(
                    path=path,
                    baseline=value,
                    current=value,
                    ok=True,
                    detail=detail,
                )
            )
        elif isinstance(value, dict):
            checks.extend(waiver_checks(value, prefix=f"{path}."))
    return checks


# ----------------------------------------------------------------------
# The repository's gated benchmarks
# ----------------------------------------------------------------------
#: ``BENCH_parallel.json`` gate.  Failure counts and accounted gops are
#: model-deterministic under the baseline's own config (the check
#: re-runs with it); speedups are wall-clock and get wide tolerance.
PARALLEL_SPECS: Tuple[MetricSpec, ...] = (
    MetricSpec("montecarlo.deterministic", EQUAL,
               note="parallel Monte Carlo must stay bit-deterministic"),
    MetricSpec("bulk_ops.bit_exact", EQUAL,
               note="sharded cells must match the serial engine"),
    MetricSpec("montecarlo.failures", EQUAL,
               note="seeded failure count is model-deterministic"),
    MetricSpec("bulk_ops.accounted_gops", EQUAL, tolerance=1e-9,
               note="accounted throughput is model-deterministic"),
    MetricSpec("montecarlo.speedup", HIGHER, tolerance=0.9,
               note="wall-clock; hosts differ"),
    MetricSpec("bulk_ops.speedup", HIGHER, tolerance=0.9,
               note="wall-clock; hosts differ"),
)

#: ``BENCH_engine.json`` gate.  Parallelism is the modelled makespan
#: ratio (deterministic); throughput/speedup are wall-clock.
ENGINE_SPECS: Tuple[MetricSpec, ...] = (
    MetricSpec("results[banks=8].parallelism", EQUAL, tolerance=1e-9,
               note="modelled bank overlap is deterministic"),
    MetricSpec("results[banks=1].speedup", HIGHER, tolerance=0.95,
               note="wall-clock; hosts differ"),
    MetricSpec("results[banks=8].speedup", HIGHER, tolerance=0.9,
               note="wall-clock; hosts differ"),
    MetricSpec("results[banks=8].batched_rows_per_s", HIGHER, tolerance=0.9,
               note="wall-clock; hosts differ"),
)


#: ``BENCH_serve.json`` gate.  Op counts and the single-arm batch shape
#: are seed-deterministic; throughputs and the coalescing ratio are
#: wall-clock (but also carry an absolute floor, added in
#: :func:`run_bench_check`).
SERVE_SPECS: Tuple[MetricSpec, ...] = (
    MetricSpec("bit_exact", EQUAL,
               note="both arms must verify bit-exact read-back"),
    MetricSpec("coalesced.ops_ok", EQUAL,
               note="every client op must land (quotas are open)"),
    MetricSpec("single.mean_batch_requests", EQUAL, tolerance=1e-9,
               note="the control arm must stay one request per batch"),
    MetricSpec("coalesced.mean_batch_requests", HIGHER, tolerance=0.8,
               note="batch shaping; scheduler-dependent"),
    MetricSpec("speedup", HIGHER, tolerance=0.9,
               note="wall-clock; hosts differ"),
)


#: ``BENCH_spans_overhead.json`` gate.  Bit-exactness and op counts are
#: seed-deterministic; the overhead itself is gated by an *absolute*
#: ceiling added in :func:`run_bench_check` (the claim is "tracing is
#: cheap", not "tracing costs what the baseline host paid").
SPANS_OVERHEAD_SPECS: Tuple[MetricSpec, ...] = (
    MetricSpec("bit_exact", EQUAL,
               note="both arms must verify bit-exact read-back"),
    MetricSpec("traced.ops_ok", EQUAL,
               note="every client op must land with tracing on"),
    MetricSpec("untraced.ops_ok", EQUAL,
               note="every client op must land with tracing off"),
)

#: Absolute ceiling on the traced arm's throughput loss (scaled by
#: ``tolerance_scale`` in :func:`run_bench_check`).
SPANS_MAX_OVERHEAD = 0.10

#: ``BENCH_compile.json`` gate.  Everything is model time or a
#: correctness flag -- deterministic on any host, so tolerances are
#: exact.  The ratio also gets an *absolute* ceiling in
#: :func:`run_bench_check` (the issue's 1.15x bar), independent of the
#: committed baseline.
COMPILE_SPECS: Tuple[MetricSpec, ...] = (
    MetricSpec("bit_exact", EQUAL,
               note="compiled ops and kernels must match their oracles"),
    MetricSpec("parity.and.trace_identical", EQUAL,
               note="compiled AND must emit the native command stream"),
    MetricSpec("parity.xor.trace_identical", EQUAL,
               note="compiled XOR must emit the native command stream"),
    MetricSpec("parity.and.ratio", EQUAL, tolerance=1e-9,
               note="modelled latency ratio is deterministic"),
    MetricSpec("parity.xor.ratio", EQUAL, tolerance=1e-9,
               note="modelled latency ratio is deterministic"),
    MetricSpec("kernels.add_bit_exact", EQUAL,
               note="bit-serial add must match the numpy oracle"),
    MetricSpec("kernels.popcount_bit_exact", EQUAL,
               note="popcount must match the numpy oracle"),
)

#: Absolute ceiling on the compiled/native latency ratio (the issue's
#: acceptance bar; the compiler actually achieves 1.0 by trace identity).
COMPILE_MAX_RATIO = 1.15


def run_bench_check(
    results_dir: str,
    repeats: Optional[int] = None,
    tolerance_scale: float = 1.0,
    skip_engine: bool = False,
    skip_parallel: bool = False,
    skip_serve: bool = False,
    skip_spans: bool = False,
    skip_compile: bool = False,
) -> List[RegressionReport]:
    """Re-run the gated benchmarks and compare against the baselines.

    Each benchmark is re-run *with the committed baseline's own
    configuration* (so the model-deterministic metrics are directly
    comparable), optionally overriding ``repeats`` -- repeats only
    affect timing quality, never the deterministic metrics.
    Baseline files that are absent are skipped with a note.
    """
    import os

    reports: List[RegressionReport] = []

    engine_path = os.path.join(results_dir, "BENCH_engine.json")
    if not skip_engine:
        if os.path.exists(engine_path):
            from repro.perf.enginebench import run_engine_bench

            baseline = load_baseline(engine_path)
            # Best-of-2 at minimum: the first batched run pays one-time
            # plan compilation, and best-of-1 would gate on that warmup.
            fresh = run_engine_bench(
                rows_per_bank=baseline.get("rows_per_bank", 40),
                row_bytes=baseline.get("row_bytes", 1024),
                repeats=max(repeats if repeats is not None else 3, 2),
            )
            reports.append(
                compare("BENCH_engine", baseline, fresh,
                        ENGINE_SPECS, tolerance_scale)
            )
        else:
            reports.append(RegressionReport(name="BENCH_engine (no baseline)"))

    parallel_path = os.path.join(results_dir, "BENCH_parallel.json")
    if not skip_parallel:
        if os.path.exists(parallel_path):
            from repro.core.microprograms import BulkOp
            from repro.parallel.bench import (
                ParallelBenchConfig,
                run_parallel_bench,
            )

            baseline = load_baseline(parallel_path)
            raw = dict(baseline.get("config", {}))
            raw["op"] = BulkOp(raw.get("op", "and"))
            if repeats is not None:
                raw["repeats"] = repeats
            fresh = run_parallel_bench(ParallelBenchConfig(**raw))
            report = compare("BENCH_parallel", baseline, fresh,
                             PARALLEL_SPECS, tolerance_scale)
            # Host-conditional absolute floor, independent of whatever
            # host produced the committed baseline: on any multi-core
            # runner the warmed sharded path must actually beat the
            # serial engine, or the dispatch layer has regressed.  A
            # single-core host records a waived (passing) check rather
            # than silently not gating.
            cores = fresh.get("cpu_count", 1)
            speedup = fresh["bulk_ops"]["speedup"]
            if cores >= 2:
                report.checks.append(MetricCheck(
                    path="bulk_ops.speedup (multi-core floor)",
                    baseline=1.0,
                    current=speedup,
                    ok=speedup > 1.0,
                    detail=(
                        f"{speedup:g}x on a {cores}-core host "
                        f"(must exceed 1x: sharded must beat serial)"
                    ),
                ))
            else:
                report.checks.append(MetricCheck(
                    path="bulk_ops.speedup (multi-core floor)",
                    baseline=1.0,
                    current=speedup,
                    ok=True,
                    detail=f"waived: single-core host ({speedup:g}x recorded)",
                ))
            # Surface every recorded waiver next to the real gates so a
            # benchmark that stopped gating says so out loud.
            report.checks.extend(waiver_checks(fresh))
            reports.append(report)
        else:
            reports.append(
                RegressionReport(name="BENCH_parallel (no baseline)")
            )

    serve_path = os.path.join(results_dir, "BENCH_serve.json")
    if not skip_serve:
        if os.path.exists(serve_path):
            from repro.serve.bench import ServeBenchConfig, run_serve_bench

            baseline = load_baseline(serve_path)
            raw = dict(baseline.get("config", {}))
            if repeats is not None:
                raw["repeats"] = repeats
            fresh = run_serve_bench(ServeBenchConfig(**raw))
            report = compare("BENCH_serve", baseline, fresh,
                             SERVE_SPECS, tolerance_scale)
            # Absolute coalescing floor, independent of the baseline
            # host: 2x on multi-core runners (the acceptance bar), a
            # reduced 1.3x on one core -- coalescing amortizes batch
            # overhead, not core count, so it must win everywhere.
            cores = fresh.get("cpu_count", 1)
            speedup = fresh["speedup"]
            floor = 2.0 if cores >= 2 else 1.3
            report.checks.append(MetricCheck(
                path="speedup (coalescing floor)",
                baseline=floor,
                current=speedup,
                ok=speedup >= floor,
                detail=(
                    f"{speedup:g}x vs the one-op-per-batch server on a "
                    f"{cores}-core host (floor {floor}x"
                    + ("" if cores >= 2
                       else ", reduced single-core floor") + ")"
                ),
            ))
            report.checks.extend(waiver_checks(fresh))
            reports.append(report)
        else:
            reports.append(RegressionReport(name="BENCH_serve (no baseline)"))

    spans_path = os.path.join(results_dir, "BENCH_spans_overhead.json")
    if not skip_spans:
        if os.path.exists(spans_path):
            from repro.serve.bench import (
                ServeBenchConfig,
                run_spans_overhead_bench,
            )

            baseline = load_baseline(spans_path)
            raw = dict(baseline.get("config", {}))
            if repeats is not None:
                raw["repeats"] = repeats
            fresh = run_spans_overhead_bench(ServeBenchConfig(**raw))
            report = compare("BENCH_spans_overhead", baseline, fresh,
                             SPANS_OVERHEAD_SPECS, tolerance_scale)
            overhead = fresh["overhead"]
            ceiling = SPANS_MAX_OVERHEAD * tolerance_scale
            report.checks.append(MetricCheck(
                path="overhead (absolute ceiling)",
                baseline=ceiling,
                current=overhead,
                ok=overhead <= ceiling,
                detail=(
                    f"{overhead * 100:+.1f}% throughput loss with tracing "
                    f"on (ceiling {ceiling * 100:.0f}%)"
                ),
            ))
            report.checks.extend(waiver_checks(fresh))
            reports.append(report)
        else:
            reports.append(
                RegressionReport(name="BENCH_spans_overhead (no baseline)")
            )

    compile_path = os.path.join(results_dir, "BENCH_compile.json")
    if not skip_compile:
        if os.path.exists(compile_path):
            from repro.perf.compilebench import run_compile_bench

            baseline = load_baseline(compile_path)
            raw = dict(baseline.get("config", {}))
            fresh = run_compile_bench(**raw)
            report = compare("BENCH_compile", baseline, fresh,
                             COMPILE_SPECS, tolerance_scale)
            # The issue's absolute bar, independent of the baseline:
            # compiled AND/XOR may cost at most 1.15x the hand-written
            # microprogram.  Model time, so no host scaling applies.
            for op_name in ("and", "xor"):
                ratio = fresh["parity"][op_name]["ratio"]
                report.checks.append(MetricCheck(
                    path=f"parity.{op_name}.ratio (absolute ceiling)",
                    baseline=COMPILE_MAX_RATIO,
                    current=ratio,
                    ok=ratio <= COMPILE_MAX_RATIO,
                    detail=(
                        f"{ratio:.3f}x the native microprogram "
                        f"(ceiling {COMPILE_MAX_RATIO}x)"
                    ),
                ))
            reports.append(report)
        else:
            reports.append(
                RegressionReport(name="BENCH_compile (no baseline)")
            )

    return reports
