"""Region profiling: counters plus per-bulk-op summaries.

``with device.profile() as prof:`` brackets a stretch of work; on exit
``prof`` holds the :class:`~repro.obs.counters.CounterSet` delta of the
region and a per-operation breakdown (count, AAPs, APs, busy-ns, pJ per
AND/OR/NOT/... executed inside it).  If the device already has a tracer
attached (e.g. one writing a Chrome trace), the profiler piggybacks on
it; otherwise it attaches a temporary tracer for the duration of the
region.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs.counters import CounterSet, OpStats
from repro.obs.events import KIND_OP, TraceEvent
from repro.obs.sinks import CounterSink, TraceSink
from repro.obs.tracer import Tracer


class _OpAggregator(TraceSink):
    """Aggregate ``kind="op"`` events into per-op statistics."""

    def __init__(self):
        self.per_op: Dict[str, OpStats] = {}

    def emit(self, event: TraceEvent) -> None:
        if event.kind != KIND_OP:
            return
        self.per_op.setdefault(event.name, OpStats()).observe(event)


class ProfileReport:
    """The result of one profiled region."""

    def __init__(self):
        self.counters = CounterSet()
        self.per_op: Dict[str, OpStats] = {}
        #: Allocator pool pressure at region exit (``None`` when no
        #: :class:`~repro.core.driver.AmbitDriver` serves the device):
        #: ``(rows_in_use, high_water_rows, free_rows)``.
        self.allocator: Optional[Tuple[int, int, int]] = None
        #: The profiled device (set by :func:`repro.perf.profiling.
        #: run_profile_workload` so callers can read its metrics
        #: registry after the run).
        self.device: Optional[object] = None
        #: Plan-cache traffic per operation label within the region:
        #: ``op.value -> (hits, misses)``.  Compiled (synthesized) ops
        #: appear under their own ``c:<name>`` labels instead of
        #: colliding into the aggregate counters.
        self.plan_cache_by_op: Dict[str, Tuple[int, int]] = {}
        self._finalized = False

    def _finalize(
        self,
        counters: CounterSet,
        per_op: Dict[str, OpStats],
        allocator: Optional[Tuple[int, int, int]] = None,
    ) -> None:
        self.counters = counters
        self.per_op = per_op
        self.allocator = allocator
        self._finalized = True

    # ------------------------------------------------------------------
    def rows(self) -> List[Tuple[str, OpStats]]:
        """Per-op rows, sorted by descending busy time."""
        return sorted(
            self.per_op.items(), key=lambda item: -item[1].busy_ns
        )

    def format_table(self) -> str:
        """Render the per-op table plus the counter footer."""
        lines = [
            f"{'op':>10} {'count':>7} {'AAPs':>7} {'APs':>6} {'cmds':>7} "
            f"{'busy ns':>12} {'energy pJ':>12}"
        ]
        for name, stats in self.rows():
            lines.append(
                f"{name:>10} {stats.count:>7} {stats.aaps:>7} "
                f"{stats.aps:>6} {stats.commands:>7} "
                f"{stats.busy_ns:>12.1f} {stats.energy_pj:>12.1f}"
            )
        if not self.per_op:
            lines.append(f"{'(no bulk operations executed)':>40}")
        lines.append("")
        lines.append(self.counters.format())
        c = self.counters
        lookups = c.plan_cache_hits + c.plan_cache_misses
        if lookups:
            rate = 100.0 * c.plan_cache_hits / lookups
            lines.append(
                f"plan cache: {c.plan_cache_hits} hits / "
                f"{c.plan_cache_misses} misses ({rate:.1f}% hit rate)"
            )
            for label in sorted(self.plan_cache_by_op):
                hits, misses = self.plan_cache_by_op[label]
                lines.append(
                    f"  {label:>12}: {hits} hits / {misses} misses"
                )
        if self.allocator is not None:
            in_use, high_water, free = self.allocator
            lines.append(
                f"allocator : {in_use} row(s) in use, "
                f"high water {high_water}, {free} free"
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format_table()


@contextmanager
def profile(
    device: "object", tracer: Optional[Tracer] = None
) -> Iterator[ProfileReport]:
    """Profile a region of work on an Ambit device.

    Parameters
    ----------
    device:
        An :class:`~repro.core.device.AmbitDevice` (anything exposing
        ``attach_tracer``/``detach_tracer``/``tracer``).
    tracer:
        Explicit tracer to aggregate from; defaults to the device's
        attached tracer, or a temporary one for the region.
    """
    active = tracer if tracer is not None else device.tracer
    temporary = active is None
    if temporary:
        active = device.attach_tracer(Tracer(
            timing=device.timing, row_bytes=device.row_bytes
        ))
    counter_sink = CounterSink()
    op_sink = _OpAggregator()
    active.add_sink(counter_sink)
    active.add_sink(op_sink)
    # Plan-cache hits/misses are controller state, not trace events;
    # snapshot-and-delta keeps the region counters reset_stats-safe.
    plan_cache = getattr(
        getattr(device, "controller", None), "plan_cache", None
    )
    hits_before = plan_cache.hits if plan_cache is not None else 0
    misses_before = plan_cache.misses if plan_cache is not None else 0
    hits_by_op_before = (
        dict(plan_cache.hits_by_op) if plan_cache is not None else {}
    )
    misses_by_op_before = (
        dict(plan_cache.misses_by_op) if plan_cache is not None else {}
    )
    report = ProfileReport()
    try:
        yield report
    finally:
        active.remove_sink(counter_sink)
        active.remove_sink(op_sink)
        if temporary:
            device.detach_tracer()
        if plan_cache is not None:
            # max(0, ...): a reset_stats inside the region zeroes the
            # cache counters; never report a negative delta.
            counter_sink.counters.plan_cache_hits += max(
                0, plan_cache.hits - hits_before
            )
            counter_sink.counters.plan_cache_misses += max(
                0, plan_cache.misses - misses_before
            )
            for label in set(plan_cache.hits_by_op) | set(
                plan_cache.misses_by_op
            ):
                hits = max(
                    0,
                    plan_cache.hits_by_op.get(label, 0)
                    - hits_by_op_before.get(label, 0),
                )
                misses = max(
                    0,
                    plan_cache.misses_by_op.get(label, 0)
                    - misses_by_op_before.get(label, 0),
                )
                if hits or misses:
                    report.plan_cache_by_op[label] = (hits, misses)
        driver = getattr(device, "driver", None)
        allocator = None
        if driver is not None:
            allocator = (
                driver.rows_in_use,
                driver.high_water_rows,
                driver.free_rows(),
            )
        report._finalize(counter_sink.counters, op_sink.per_op, allocator)
