"""The metrics registry: counters, gauges, and latency histograms.

The tracer (:mod:`repro.obs.tracer`) answers "what exactly happened";
this module answers "how is the system doing *right now*" -- the
service-style view the ROADMAP's production north star needs.  A
:class:`MetricsRegistry` hangs off every
:class:`~repro.core.device.AmbitDevice` and is threaded through the
whole execution stack:

* the :class:`~repro.core.controller.AmbitController` counts executed
  bulk operations and feeds a per-op accounted-latency histogram,
* the :class:`~repro.engine.plan.PlanCache` counts hits and misses,
* the :class:`~repro.engine.batch.BatchEngine` counts batches and
  fused-vs-fallback rows,
* the :class:`~repro.parallel.pool.WorkerPool` maintains per-worker
  health gauges (heartbeat, batches served, busy-ns, RSS) and crash
  counters fed by shard telemetry.

Exposition is pull-based and dependency-free: Prometheus text format
(:meth:`MetricsRegistry.render_prometheus`), a JSON snapshot
(:meth:`MetricsRegistry.snapshot`), JSON-lines sample dumps
(:meth:`MetricsRegistry.write_jsonl`), and an optional stdlib HTTP
server (:class:`MetricsServer`) serving ``/metrics`` and
``/metrics.json``.  ``repro metrics`` and ``repro top`` front all of
this on the command line.

Histograms use *fixed* bucket boundaries so that merging and resetting
are trivial and exposition is O(buckets); p50/p95/p99 are derived by
linear interpolation inside the owning bucket, the standard
Prometheus-side estimation, computed here so the CLI can print
quantiles without a query engine.
"""

from __future__ import annotations

import json
import math
import threading
import time
from bisect import bisect_left
from typing import (
    IO,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ConfigError

#: Default accounted-latency buckets (nanoseconds).  Bulk operations on
#: the modelled DDR3-1600 device run ~100 ns (NOT) to ~400 ns (XOR), and
#: whole batches reach microseconds; a geometric ladder covers both.
DEFAULT_LATENCY_BUCKETS_NS: Tuple[float, ...] = (
    50.0, 100.0, 200.0, 400.0, 800.0, 1_600.0, 3_200.0,
    6_400.0, 12_800.0, 25_600.0, 102_400.0, 409_600.0,
)

LabelValues = Tuple[str, ...]

#: Exemplar aging window, in exemplar-carrying observations per
#: histogram child.  A bucket's retained exemplar is replaced -- even by
#: a smaller observation -- once this many tagged observations have
#: passed since it was captured, so the advertised trace id stays
#: within reach of the serving layer's 512-entry span ring instead of
#: pointing at a record-holder that aged out long ago.
EXEMPLAR_WINDOW = 256


def _format_value(value: float) -> str:
    """Prometheus-style number rendering (integers without ``.0``)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{n}="{_escape_label(str(v))}"' for n, v in zip(names, values)
    )
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing count (reset only via the registry)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ConfigError(f"counter increments must be >= 0; got {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down (worker RSS, heartbeat, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self.value -= amount

    def set_to_current_time(self) -> None:
        """Stamp the gauge with ``time.time()`` (heartbeats)."""
        self.value = time.time()


class Histogram:
    """Fixed-bucket histogram with quantile derivation.

    ``bounds`` are inclusive upper bounds in ascending order; an
    implicit ``+Inf`` bucket catches the overflow.  ``observe`` is a
    bisect plus two adds, cheap enough for per-row accounting paths.
    """

    __slots__ = (
        "bounds", "bucket_counts", "count", "sum", "exemplars",
        "_exemplar_seq", "_tagged_count",
    )

    def __init__(self, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS_NS):
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ConfigError(
                f"histogram bounds must be non-empty and ascending; got {bounds}"
            )
        self.bounds = bounds
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        #: Per-bucket ``(value, trace_id)`` of the *largest recent*
        #: observation that carried an exemplar (``None`` until one
        #: does).  Kept per bucket, OpenMetrics style, so a single
        #: outlier in the +Inf bucket does not mask exemplars of the
        #: healthy buckets.
        self.exemplars: List[Optional[Tuple[float, str]]] = (
            [None] * (len(bounds) + 1)
        )
        #: Tagged-observation sequence number at which each bucket's
        #: exemplar was captured; drives the :data:`EXEMPLAR_WINDOW`
        #: aging policy.
        self._exemplar_seq: List[int] = [0] * (len(bounds) + 1)
        self._tagged_count = 0

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        """Record one observation, optionally tagged with a trace id.

        The exemplar -- a request trace id -- is retained if it is the
        largest exemplar-carrying observation its bucket has seen
        *within the last* :data:`EXEMPLAR_WINDOW` *tagged observations*,
        turning "p99 is high" into "p99 is high, *look at this trace*".
        The sliding window matters: traces age out of the bounded span
        store, so an all-time record-holder would eventually advertise a
        trace id that no longer resolves.
        """
        index = bisect_left(self.bounds, value)
        self.bucket_counts[index] += 1
        self.count += 1
        self.sum += value
        if exemplar is not None:
            self._tagged_count += 1
            current = self.exemplars[index]
            if (
                current is None
                or value >= current[0]
                or self._tagged_count - self._exemplar_seq[index]
                    > EXEMPLAR_WINDOW
            ):
                self.exemplars[index] = (value, exemplar)
                self._exemplar_seq[index] = self._tagged_count

    def clear(self) -> None:
        """Zero counts, sum, and exemplars in place (bounds survive)."""
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.exemplars = [None] * (len(self.bounds) + 1)
        self._exemplar_seq = [0] * (len(self.bounds) + 1)
        self._tagged_count = 0

    def max_exemplar(self) -> Optional[Tuple[float, str]]:
        """The ``(value, trace_id)`` of the largest retained exemplar."""
        best: Optional[Tuple[float, str]] = None
        for entry in self.exemplars:
            if entry is not None and (best is None or entry[0] > best[0]):
                best = entry
        return best

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 < q <= 1) by linear interpolation.

        The estimate assumes observations are uniform inside their
        bucket (the Prometheus ``histogram_quantile`` convention); the
        overflow bucket reports its lower bound.  Returns ``nan`` when
        the histogram is empty.
        """
        if not 0.0 < q <= 1.0:
            raise ConfigError(f"quantile must be in (0, 1]; got {q}")
        if self.count == 0:
            return math.nan
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lower = 0.0 if i == 0 else self.bounds[i - 1]
                if i == len(self.bounds):  # overflow bucket
                    return lower
                upper = self.bounds[i]
                # Clamp: `lower + (upper - lower)` can exceed `upper` by
                # a float ulp when the whole bucket is consumed, which
                # would break quantile monotonicity against a higher
                # quantile that lands in the overflow bucket.
                return min(
                    upper,
                    lower
                    + (upper - lower) * (rank - cumulative) / bucket_count,
                )
            cumulative += bucket_count
        return self.bounds[-1]  # pragma: no cover - rank <= count always hits

    def percentiles(self) -> Dict[str, float]:
        """The conventional p50/p95/p99 summary of the distribution."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


MetricInstance = Union[Counter, Gauge, Histogram]


class MetricFamily:
    """One named metric and its per-label-value children.

    An unlabeled family has exactly one child (the empty label tuple),
    reachable through the convenience proxies ``inc``/``set``/
    ``observe`` so call sites read like plain metric objects.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: Tuple[str, ...],
        factory: Callable[[], MetricInstance],
        lock: threading.Lock,
    ):
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self._factory = factory
        self._lock = lock
        self._children: Dict[LabelValues, MetricInstance] = {}
        if not label_names:
            self._children[()] = factory()

    # ------------------------------------------------------------------
    def labels(self, **labels: object) -> MetricInstance:
        """The child for one label-value combination (created on first use)."""
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ConfigError(
                f"metric {self.name!r} takes labels {self.label_names}; "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[n]) for n in self.label_names)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._factory())
        return child

    def remove(self, **labels: object) -> None:
        """Drop one child (e.g. a retired worker's gauges); no-op if absent."""
        key = tuple(str(labels[n]) for n in self.label_names)
        with self._lock:
            self._children.pop(key, None)

    @property
    def children(self) -> Dict[LabelValues, MetricInstance]:
        return dict(self._children)

    def _only(self) -> MetricInstance:
        if self.label_names:
            raise ConfigError(
                f"metric {self.name!r} is labeled {self.label_names}; "
                f"use .labels(...)"
            )
        return self._children[()]

    # Convenience proxies for unlabeled families -----------------------
    def inc(self, amount: float = 1.0) -> None:
        """``inc`` on the sole child of an unlabeled family."""
        self._only().inc(amount)  # type: ignore[union-attr]

    def set(self, value: float) -> None:
        """``set`` on the sole child of an unlabeled family."""
        self._only().set(value)  # type: ignore[union-attr]

    def dec(self, amount: float = 1.0) -> None:
        """``dec`` on the sole child of an unlabeled family."""
        self._only().dec(amount)  # type: ignore[union-attr]

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        """``observe`` on the sole child of an unlabeled family."""
        self._only().observe(value, exemplar)  # type: ignore[union-attr, call-arg]

    @property
    def value(self) -> float:
        child = self._only()
        if isinstance(child, Histogram):
            raise ConfigError(f"histogram {self.name!r} has no scalar value")
        return child.value

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero every child in place (registrations survive)."""
        with self._lock:
            for key, child in self._children.items():
                if isinstance(child, Histogram):
                    child.clear()
                else:
                    child.value = 0.0


class MetricsRegistry:
    """A process-local collection of named metrics.

    Get-or-create semantics: asking twice for the same name returns the
    same family, so independently constructed components (controller,
    engine, pool) can share metrics without coordination; re-registering
    a name with a different type or label set raises
    :class:`~repro.errors.ConfigError`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: "Dict[str, MetricFamily]" = {}
        self._collectors: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Tuple[str, ...],
        factory: Callable[[], MetricInstance],
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind or family.label_names != labels:
                raise ConfigError(
                    f"metric {name!r} already registered as {family.kind} "
                    f"with labels {family.label_names}; cannot re-register "
                    f"as {kind} with labels {labels}"
                )
            return family
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, kind, help, labels, factory, self._lock)
                self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", labels: Iterable[str] = ()
    ) -> MetricFamily:
        """Register (or fetch) a counter family."""
        return self._family(name, "counter", help, tuple(labels), Counter)

    def gauge(
        self, name: str, help: str = "", labels: Iterable[str] = ()
    ) -> MetricFamily:
        """Register (or fetch) a gauge family."""
        return self._family(name, "gauge", help, tuple(labels), Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_NS,
    ) -> MetricFamily:
        """Register (or fetch) a fixed-bucket histogram family."""
        bounds = tuple(float(b) for b in buckets)
        return self._family(
            name, "histogram", help, tuple(labels), lambda: Histogram(bounds)
        )

    def register_collector(self, collect: Callable[[], None]) -> None:
        """Add a callback run before every exposition.

        Collectors pull sampled state (plan-cache size, allocator
        high-water marks) into gauges at scrape time, keeping hot paths
        free of bookkeeping they already do elsewhere.
        """
        self._collectors.append(collect)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[MetricFamily]:
        """The family registered under ``name`` (or ``None``)."""
        self.collect()
        return self._families.get(name)

    def collect(self) -> None:
        """Run every registered collector (refreshes sampled gauges)."""
        for collector in self._collectors:
            collector()

    def reset(self) -> None:
        """Zero every metric; registrations and collectors survive.

        This is the metrics half of the device's ``reset_stats``
        protocol -- the sharded facade additionally requires the worker
        pool to be quiesced first so half-merged worker telemetry can
        never survive into the fresh epoch.
        """
        for family in self._families.values():
            family.reset()

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------
    def render_prometheus(self, openmetrics: bool = False) -> str:
        """The registry in the Prometheus text exposition format.

        The default is the classic ``text/plain; version=0.0.4`` format,
        which has no exemplar syntax -- a trailing ``# {...}`` on a
        sample line is a parse error there, and a scraper that rejects
        one line drops the whole scrape.  Pass ``openmetrics=True`` for
        the OpenMetrics variant: bucket lines carry the retained trace-id
        exemplars and the exposition ends with the mandatory ``# EOF``
        terminator.  :class:`MetricsServer` picks the variant from the
        scraper's ``Accept`` header.
        """
        self.collect()
        lines: List[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for values, child in sorted(family.children.items()):
                if isinstance(child, Histogram):
                    cumulative = 0
                    for index, (bound, bucket_count) in enumerate(zip(
                        tuple(child.bounds) + (math.inf,), child.bucket_counts
                    )):
                        cumulative += bucket_count
                        labels = _render_labels(
                            tuple(family.label_names) + ("le",),
                            values + (_format_value(bound),),
                        )
                        line = f"{name}_bucket{labels} {cumulative}"
                        exemplar = (
                            child.exemplars[index] if openmetrics else None
                        )
                        if exemplar is not None:
                            # OpenMetrics exemplar syntax: the trace id
                            # of the bucket's largest tagged observation.
                            value, trace_id = exemplar
                            line += (
                                f' # {{trace_id="{_escape_label(trace_id)}"}}'
                                f" {_format_value(value)}"
                            )
                        lines.append(line)
                    base = _render_labels(family.label_names, values)
                    lines.append(f"{name}_sum{base} {_format_value(child.sum)}")
                    lines.append(f"{name}_count{base} {child.count}")
                else:
                    labels = _render_labels(family.label_names, values)
                    lines.append(f"{name}{labels} {_format_value(child.value)}")
        if openmetrics:
            lines.append("# EOF")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready snapshot of every metric.

        Histogram samples include the fixed buckets *and* the derived
        p50/p95/p99 so downstream consumers never re-implement the
        interpolation.
        """
        self.collect()
        snapshot: Dict[str, Any] = {}
        for name in sorted(self._families):
            family = self._families[name]
            samples = []
            for values, child in sorted(family.children.items()):
                labels = dict(zip(family.label_names, values))
                if isinstance(child, Histogram):
                    pct = child.percentiles()
                    sample = {
                        "labels": labels,
                        "count": child.count,
                        "sum": child.sum,
                        "buckets": {
                            _format_value(b): c
                            for b, c in zip(
                                tuple(child.bounds) + (math.inf,),
                                child.bucket_counts,
                            )
                        },
                        **{
                            k: (None if math.isnan(v) else v)
                            for k, v in pct.items()
                        },
                    }
                    exemplars = {
                        _format_value(b): {"value": e[0], "trace": e[1]}
                        for b, e in zip(
                            tuple(child.bounds) + (math.inf,),
                            child.exemplars,
                        )
                        if e is not None
                    }
                    if exemplars:
                        sample["exemplars"] = exemplars
                    samples.append(sample)
                else:
                    samples.append({"labels": labels, "value": child.value})
            snapshot[name] = {
                "type": family.kind,
                "help": family.help,
                "samples": samples,
            }
        return snapshot

    def write_jsonl(self, target: Union[str, IO[str]]) -> int:
        """Write one JSON line per metric sample; returns the line count.

        Each line is ``{"metric": ..., "type": ..., ...sample}`` --
        flat, appendable, and greppable, the same spirit as the trace
        spool files of :mod:`repro.obs.remote`.
        """
        snapshot = self.snapshot()
        handle: IO[str]
        owns = isinstance(target, str)
        handle = open(target, "w") if isinstance(target, str) else target
        lines = 0
        try:
            for name, family in snapshot.items():
                for sample in family["samples"]:
                    record = {"metric": name, "type": family["type"], **sample}
                    handle.write(json.dumps(record, sort_keys=True))
                    handle.write("\n")
                    lines += 1
            handle.flush()
        finally:
            if owns:
                handle.close()
        return lines


class MetricsServer:
    """A tiny stdlib HTTP endpoint for live exposition.

    Serves ``/metrics`` (Prometheus text) and ``/metrics.json`` (the
    snapshot) from a daemon thread; every request re-collects, so the
    numbers are live.  ``/metrics`` negotiates the exposition format
    from the ``Accept`` header: scrapers that advertise
    ``application/openmetrics-text`` (Prometheus does when exemplar
    ingestion is on) get the OpenMetrics variant with trace-id
    exemplars and the ``# EOF`` terminator; everyone else gets the
    classic ``text/plain; version=0.0.4`` format, where exemplar syntax
    would be a parse error.  Intended for ``repro metrics --serve`` and
    for scraping long benchmark runs -- not a production web server.
    """

    def __init__(self, registry: MetricsRegistry, port: int = 0,
                 host: str = "127.0.0.1"):
        from http.server import BaseHTTPRequestHandler, HTTPServer

        server_registry = registry

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path.split("?")[0] == "/metrics":
                    accept = self.headers.get("Accept", "")
                    openmetrics = "application/openmetrics-text" in accept
                    body = server_registry.render_prometheus(
                        openmetrics=openmetrics
                    ).encode()
                    if openmetrics:
                        ctype = (
                            "application/openmetrics-text; "
                            "version=1.0.0; charset=utf-8"
                        )
                    else:
                        ctype = "text/plain; version=0.0.4; charset=utf-8"
                elif self.path.split("?")[0] == "/metrics.json":
                    body = json.dumps(
                        server_registry.snapshot(), sort_keys=True
                    ).encode()
                    ctype = "application/json"
                else:
                    self.send_error(404, "try /metrics or /metrics.json")
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: object) -> None:
                pass  # keep scrapes out of stderr

        self.registry = registry
        self._server = HTTPServer((host, port), Handler)
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}/metrics"

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Snapshot round-trip (remote "repro top --url")
# ----------------------------------------------------------------------
def registry_from_snapshot(snapshot: Dict[str, Any]) -> MetricsRegistry:
    """Rebuild a registry from a :meth:`MetricsRegistry.snapshot` payload.

    The inverse of exposition, used by ``repro top --url`` to render
    the health view of a *remote* process from its ``/metrics.json``
    endpoint.  Histogram bucket bounds are recovered from the
    snapshot's own keys and re-sorted numerically -- JSON transports
    (and ``sort_keys`` serializers in particular) are free to reorder
    object keys, and "1024" sorts before "16" as a string -- so
    families with non-default buckets, e.g. the serving layer's wide
    request-latency histogram, round-trip exactly.  Families
    snapshotted with no samples carry no label schema to rebuild and
    are skipped; they would render as empty sections anyway.
    """
    registry = MetricsRegistry()
    for name, data in snapshot.items():
        samples = data.get("samples", [])
        if not samples:
            continue
        kind = data.get("type", "gauge")
        help_text = data.get("help", "")
        label_names = tuple(samples[0].get("labels", {}).keys())
        if kind == "histogram":
            bounds = sorted(
                float(key)
                for key in samples[0]["buckets"]
                if key not in ("+Inf", "-Inf")
            )
            family = registry.histogram(
                name, help_text, labels=label_names, buckets=bounds
            )
            for sample in samples:
                child = family.labels(**sample.get("labels", {}))
                by_bound = {
                    (math.inf if key == "+Inf" else float(key)): int(count)
                    for key, count in sample["buckets"].items()
                }
                counts = [by_bound[b] for b in bounds]
                counts.append(by_bound.get(math.inf, 0))
                child.bucket_counts = counts  # type: ignore[union-attr]
                child.count = int(sample.get("count", sum(counts)))  # type: ignore[union-attr]
                child.sum = float(sample.get("sum", 0.0))  # type: ignore[union-attr]
                exemplars = sample.get("exemplars", {})
                if exemplars:
                    by_key = {
                        (math.inf if key == "+Inf" else float(key)):
                            (float(entry["value"]), str(entry["trace"]))
                        for key, entry in exemplars.items()
                    }
                    restored = [by_key.get(b) for b in bounds]
                    restored.append(by_key.get(math.inf))
                    child.exemplars = restored  # type: ignore[union-attr]
        else:
            ctor = registry.counter if kind == "counter" else registry.gauge
            family = ctor(name, help_text, labels=label_names)
            for sample in samples:
                child = family.labels(**sample.get("labels", {}))
                child.value = float(sample.get("value", 0.0))  # type: ignore[union-attr]
    return registry


# ----------------------------------------------------------------------
# The "repro top" view
# ----------------------------------------------------------------------
def format_top(registry: MetricsRegistry, now: Optional[float] = None) -> str:
    """Render a ``top``-style text view of a device registry.

    Four sections: per-op accounted latency (count + p50/p95/p99 from
    the fixed-bucket histograms, sorted by total busy time), the plan
    cache, the serving layer (per-command request counts and latency
    quantiles, coalescing and flow-control totals), and per-worker
    health (batches served, busy-ns, RSS, heartbeat age).  Sections
    with no data are elided.
    """
    registry.collect()
    now = time.time() if now is None else now
    lines: List[str] = []

    latency = registry.get("ambit_op_latency_ns")
    if latency is not None and any(
        c.count for c in latency.children.values()  # type: ignore[union-attr]
    ):
        lines.append(
            f"{'op':>8} {'count':>9} {'p50 ns':>9} {'p95 ns':>9} "
            f"{'p99 ns':>9} {'total ns':>13}"
        )
        rows = []
        for values, child in latency.children.items():
            if not child.count:  # type: ignore[union-attr]
                continue
            pct = child.percentiles()  # type: ignore[union-attr]
            rows.append((child.sum, values[0], child.count, pct))  # type: ignore[union-attr]
        for total, op, count, pct in sorted(rows, reverse=True):
            lines.append(
                f"{op:>8} {count:>9} {pct['p50']:>9.0f} {pct['p95']:>9.0f} "
                f"{pct['p99']:>9.0f} {total:>13.1f}"
            )

    hits = registry.get("ambit_plan_cache_hits_total")
    misses = registry.get("ambit_plan_cache_misses_total")
    plans = registry.get("ambit_plan_cache_plans")
    if hits is not None and misses is not None:
        total = hits.value + misses.value
        rate = 100.0 * hits.value / total if total else 0.0
        size = int(plans.value) if plans is not None else 0
        lines.append("")
        lines.append(
            f"plan cache: {int(hits.value)} hits / {int(misses.value)} "
            f"misses ({rate:.1f}% hit rate), {size} compiled plan(s)"
        )

    serve_requests = registry.get("ambit_serve_requests_total")
    if serve_requests is not None and serve_requests.children:
        latency = registry.get("ambit_serve_request_latency_ns")
        by_cmd: Dict[str, List[int]] = {}
        for (cmd, status), child in serve_requests.children.items():
            bucket = by_cmd.setdefault(cmd, [0, 0])
            bucket[0 if status == "ok" else 1] += int(child.value)  # type: ignore[union-attr]
        lines.append("")
        lines.append(
            f"{'serve cmd':>10} {'ok':>9} {'errors':>8} {'p50 ms':>9} "
            f"{'p95 ms':>9} {'p99 ms':>9}"
        )
        for cmd in sorted(by_cmd):
            ok_count, err_count = by_cmd[cmd]
            pct = {"p50": math.nan, "p95": math.nan, "p99": math.nan}
            if latency is not None:
                child = latency.children.get((cmd,))
                if child is not None and child.count:  # type: ignore[union-attr]
                    pct = child.percentiles()  # type: ignore[union-attr]
            lines.append(
                f"{cmd:>10} {ok_count:>9} {err_count:>8} "
                f"{pct['p50'] / 1e6:>9.2f} {pct['p95'] / 1e6:>9.2f} "
                f"{pct['p99'] / 1e6:>9.2f}"
            )

        def _sum(name: str) -> int:
            family = registry.get(name)
            if family is None:
                return 0
            return int(sum(
                child.value  # type: ignore[union-attr]
                for child in family.children.values()
                if hasattr(child, "value")
            ))

        fused = _sum("ambit_serve_coalesced_batches_total")
        dispatched = _sum("ambit_serve_batches_total")
        lines.append(
            f"serve: {fused}/{dispatched} batches coalesced, "
            f"backpressure {_sum('ambit_serve_backpressure_total')}, "
            f"quota rejections {_sum('ambit_serve_quota_rejections_total')}, "
            f"queue depth {_sum('ambit_serve_queue_depth')}"
        )
        lines.append(
            f"serve: {_sum('ambit_serve_tenants')} tenant(s), "
            f"{_sum('ambit_serve_vectors')} vector(s), "
            f"{_sum('ambit_serve_slots_free')} free slot(s)"
        )
        errors = registry.get("ambit_serve_errors_total")
        if errors is not None and errors.children:
            by_code = sorted(
                ((code, int(child.value))  # type: ignore[union-attr]
                 for (code,), child in errors.children.items()
                 if child.value),  # type: ignore[union-attr]
                key=lambda item: (-item[1], item[0]),
            )
            if by_code:
                lines.append("serve errors: " + "  ".join(
                    f"{code}={count}" for code, count in by_code
                ))
        if latency is not None:
            best = None
            for (cmd,), child in latency.children.items():
                exemplar = child.max_exemplar()  # type: ignore[union-attr]
                if exemplar is not None and (
                    best is None or exemplar[0] > best[0]
                ):
                    best = (exemplar[0], exemplar[1], cmd)
            if best is not None:
                lines.append(
                    f"slowest traced request: {best[0] / 1e6:.2f} ms "
                    f"({best[2]}) trace {best[1]} -- inspect with: "
                    f"repro spans {best[1]} --connect HOST:PORT"
                )

    batches = registry.get("ambit_worker_batches_total")
    if batches is not None and batches.children:
        busy = registry.get("ambit_worker_busy_ns_total")
        rss = registry.get("ambit_worker_rss_bytes")
        beat = registry.get("ambit_worker_heartbeat_ts")
        last = registry.get("ambit_worker_last_batch")
        lines.append("")
        lines.append(
            f"{'worker':>10} {'batches':>8} {'busy ns':>13} {'rss MiB':>9} "
            f"{'beat age s':>11} {'last batch':>11}"
        )
        for (pid,), child in sorted(batches.children.items()):
            def _val(family: Optional[MetricFamily]) -> float:
                if family is None:
                    return 0.0
                inner = family.children.get((pid,))
                return inner.value if inner is not None else 0.0  # type: ignore[union-attr]

            beat_ts = _val(beat)
            age = now - beat_ts if beat_ts else math.nan
            lines.append(
                f"{pid:>10} {int(child.value):>8} {_val(busy):>13.1f} "  # type: ignore[union-attr]
                f"{_val(rss) / 2**20:>9.1f} {age:>11.2f} {int(_val(last)):>11}"
            )
        crashes = registry.get("ambit_worker_crashes_total")
        if crashes is not None and crashes.value:
            lines.append(f"worker crashes: {int(crashes.value)}")

    if not lines:
        lines.append("(no metrics recorded yet)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Fault-lifecycle metric families (see docs/RELIABILITY.md)
# ----------------------------------------------------------------------

#: Fault kinds the injection/recovery layer labels events with.
FAULT_KINDS = (
    "stuck_row",
    "tra_flip",
    "dcc",
    "worker_crash",
    "worker_stall",
)


def fault_counters(registry: MetricsRegistry) -> Dict[str, MetricFamily]:
    """The four ``ambit_faults_*`` counter families, keyed by stage.

    Every layer that observes a fault event (the injector, the
    fault-tolerant session, the sharded device's crash-retry loop)
    registers through this helper so the families always carry the same
    ``kind`` label schema -- the registry rejects mismatched re-
    registration, so a single definition point keeps them coherent.
    """
    return {
        "injected": registry.counter(
            "ambit_faults_injected_total",
            "Faults injected into the device, by kind",
            labels=("kind",),
        ),
        "detected": registry.counter(
            "ambit_faults_detected_total",
            "Faults detected at runtime, by kind",
            labels=("kind",),
        ),
        "recovered": registry.counter(
            "ambit_faults_recovered_total",
            "Detected faults recovered (verified bit-exact), by kind",
            labels=("kind",),
        ),
        "unrecovered": registry.counter(
            "ambit_faults_unrecovered_total",
            "Detected faults that recovery could not repair, by kind",
            labels=("kind",),
        ),
    }
