"""Per-operation counters aggregated from trace events.

:class:`CounterSet` is the quantitative summary of a stretch of command
stream: how many of each bus command, how many AAP/AP primitives, how
many triple-row activations, how much accounted busy time and energy.
It supports delta arithmetic (``after - before``) so profiling regions
compose, and is filled either streamingly (as a
:class:`~repro.obs.sinks.CounterSink`) or from a slice of the chip's
:class:`~repro.dram.commands.CommandTrace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable

from repro.obs.events import (
    KIND_COMMAND,
    KIND_OP,
    KIND_PRIMITIVE,
    TraceEvent,
)

#: Bulk-op span names that are RowClone copies rather than logic ops.
_FPM_COPY_OPS = ("copy", "init0", "init1")
_PSM_COPY_OP = "psm_copy"


@dataclass
class OpStats:
    """Aggregate cost of all executions of one bulk operation."""

    count: int = 0
    aaps: int = 0
    aps: int = 0
    commands: int = 0
    busy_ns: float = 0.0
    energy_pj: float = 0.0

    def observe(self, event: TraceEvent) -> None:
        """Fold one ``kind="op"`` event into the aggregate."""
        self.count += 1
        self.aaps += int(event.attrs.get("aaps", 0))
        self.aps += int(event.attrs.get("aps", 0))
        self.commands += int(event.attrs.get("commands", 0))
        self.busy_ns += event.dur_ns
        self.energy_pj += event.energy_pj


@dataclass
class CounterSet:
    """Counters over a stretch of the command stream.

    ``busy_ns`` is the *serial* accounted time (every primitive end to
    end, the same convention as
    :attr:`repro.core.controller.ControllerStats.busy_ns`); ``energy_pj``
    folds the per-command energy model.
    """

    activates: int = 0
    precharges: int = 0
    reads: int = 0
    writes: int = 0
    refreshes: int = 0
    #: ACTIVATEs that raised two wordlines (DCC rows B4/B5).
    double_row_activations: int = 0
    #: Triple-row activations -- the in-DRAM majority computations.
    tras: int = 0
    aaps: int = 0
    aps: int = 0
    #: Intra-subarray RowClone copies driven as whole bulk ops
    #: (``copy``/``init0``/``init1`` programs; each is one AAP).
    rowclone_fpm: int = 0
    #: Inter-bank RowClone-PSM row transfers.
    rowclone_psm: int = 0
    busy_ns: float = 0.0
    energy_pj: float = 0.0
    #: Microprogram plan-cache hits/misses inside the profiled region
    #: (filled from the controller's :class:`repro.engine.plan.PlanCache`
    #: by the profiler; trace events do not carry them).
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    #: Completed bulk operations by name (``and``, ``xor``, ...).
    ops: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def observe(self, event: TraceEvent) -> None:
        """Fold one trace event into the counters."""
        if event.kind == KIND_COMMAND:
            self._observe_command(event)
        elif event.kind == KIND_PRIMITIVE:
            if event.name == "AAP":
                self.aaps += 1
            elif event.name == "AP":
                self.aps += 1
            elif event.name == "PSM_COPY":
                self.rowclone_psm += 1
            self.busy_ns += event.dur_ns
        elif event.kind == KIND_OP:
            self.ops[event.name] = self.ops.get(event.name, 0) + 1
            if event.name in _FPM_COPY_OPS:
                self.rowclone_fpm += 1

    def _observe_command(self, event: TraceEvent) -> None:
        if event.name == "ACT":
            self.activates += 1
            if event.wordlines == 2:
                self.double_row_activations += 1
            elif event.wordlines >= 3:
                self.tras += 1
        elif event.name == "PRE":
            self.precharges += 1
        elif event.name == "RD":
            self.reads += 1
        elif event.name == "WR":
            self.writes += 1
        elif event.name == "REF":
            self.refreshes += 1
        self.energy_pj += event.energy_pj

    def observe_all(self, events: Iterable[TraceEvent]) -> "CounterSet":
        """Fold many events; returns ``self`` for chaining."""
        for event in events:
            self.observe(event)
        return self

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    @property
    def commands(self) -> int:
        """Total bus commands observed."""
        return (
            self.activates
            + self.precharges
            + self.reads
            + self.writes
            + self.refreshes
        )

    def __sub__(self, other: "CounterSet") -> "CounterSet":
        ops = dict(self.ops)
        for name, count in other.ops.items():
            ops[name] = ops.get(name, 0) - count
        result = CounterSet(ops={k: v for k, v in ops.items() if v})
        for name in _NUMERIC_FIELDS:
            setattr(result, name, getattr(self, name) - getattr(other, name))
        return result

    def __add__(self, other: "CounterSet") -> "CounterSet":
        ops = dict(self.ops)
        for name, count in other.ops.items():
            ops[name] = ops.get(name, 0) + count
        result = CounterSet(ops=ops)
        for name in _NUMERIC_FIELDS:
            setattr(result, name, getattr(self, name) + getattr(other, name))
        return result

    def copy(self) -> "CounterSet":
        """An independent snapshot of the current values."""
        return self + CounterSet()

    @classmethod
    def merge(cls, parts: Iterable["CounterSet"]) -> "CounterSet":
        """Combine per-shard counter sets into one total.

        The deterministic merge rule of the sharded device: every count,
        ``busy_ns``, and ``energy_pj`` is a plain sum (counter addition
        is associative and commutative, so shard order cannot matter).
        Makespan-style quantities are *not* counters and never live in a
        :class:`CounterSet`; elapsed time merges as a max over shards in
        :class:`repro.core.controller.ControllerStats` instead.
        """
        total = cls()
        for part in parts:
            total = total + part
        return total

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """Flatten to a plain dict (for JSON dumps and assertions)."""
        record: Dict[str, Any] = {
            name: getattr(self, name) for name in _NUMERIC_FIELDS
        }
        record["ops"] = dict(self.ops)
        return record

    def format(self) -> str:
        """A compact human-readable summary block."""
        lines = [
            f"commands : {self.commands:>10}  "
            f"(ACT {self.activates}, PRE {self.precharges}, "
            f"RD {self.reads}, WR {self.writes}, REF {self.refreshes})",
            f"TRAs     : {self.tras:>10}  "
            f"(dual-wordline ACTs {self.double_row_activations})",
            f"AAP / AP : {self.aaps:>10} / {self.aps}",
            f"RowClone : {self.rowclone_fpm:>10} FPM, {self.rowclone_psm} PSM",
            f"busy     : {self.busy_ns:>10.1f} ns",
            f"energy   : {self.energy_pj:>10.1f} pJ",
        ]
        if self.plan_cache_hits or self.plan_cache_misses:
            lines.append(
                f"plans    : {self.plan_cache_hits:>10} cache hits, "
                f"{self.plan_cache_misses} misses"
            )
        if self.ops:
            ops = ", ".join(f"{k}={v}" for k, v in sorted(self.ops.items()))
            lines.append(f"bulk ops : {ops}")
        return "\n".join(lines)


_NUMERIC_FIELDS = (
    "activates",
    "precharges",
    "reads",
    "writes",
    "refreshes",
    "double_row_activations",
    "tras",
    "aaps",
    "aps",
    "rowclone_fpm",
    "rowclone_psm",
    "busy_ns",
    "energy_pj",
    "plan_cache_hits",
    "plan_cache_misses",
)
