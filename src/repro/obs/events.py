"""The trace event record every sink consumes.

One event type covers the three altitudes of the command path:

* ``kind="cmd"`` -- a single DRAM bus command (ACT/PRE/RD/WR/REF) as
  executed by :meth:`repro.dram.chip.DramChip.execute`.
* ``kind="primitive"`` -- one AAP/AP (or RowClone-PSM transfer) with its
  accounted latency; emitted by the Ambit controller.
* ``kind="op"`` -- one whole bulk bitwise operation (Figure 8 program)
  with aggregate attributes (AAPs, APs, commands, energy).
* ``kind="span"`` -- anything else with an extent (scheduler jobs,
  foreground memory requests).

Durations are *nominal model time*: the controller's accounted latency
for primitives/ops, per-command JEDEC identities for bus commands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Event kinds, in increasing altitude.
KIND_COMMAND = "cmd"
KIND_PRIMITIVE = "primitive"
KIND_OP = "op"
KIND_SPAN = "span"


@dataclass(frozen=True)
class TraceEvent:
    """One structured observation of the command path."""

    kind: str
    #: Mnemonic (``"ACT"``) for commands, primitive name (``"AAP"``) or
    #: bulk-op name (``"and"``) for spans.
    name: str
    #: Issue time on the model clock, nanoseconds.
    ts_ns: float
    #: Nominal duration, nanoseconds (0 when unknown).
    dur_ns: float = 0.0
    seq: int = 0
    bank: Optional[int] = None
    subarray: Optional[int] = None
    row: Optional[int] = None
    column: Optional[int] = None
    #: Wordlines raised by an ACTIVATE (1, 2 for DCC rows, 3 for a TRA).
    wordlines: int = 1
    energy_pj: float = 0.0
    #: OS pid of the worker process that executed the event, for events
    #: collected from shard workers (``None`` for in-process events).
    #: The Chrome sink renders each pid as its own process lane.
    pid: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        """Flatten to a JSON-serialisable dict (sparse: no ``None``s)."""
        record: Dict[str, Any] = {
            "seq": self.seq,
            "kind": self.kind,
            "name": self.name,
            "ts_ns": self.ts_ns,
            "dur_ns": self.dur_ns,
        }
        for key in ("bank", "subarray", "row", "column", "pid"):
            value = getattr(self, key)
            if value is not None:
                record[key] = value
        if self.wordlines != 1:
            record["wordlines"] = self.wordlines
        if self.energy_pj:
            record["energy_pj"] = self.energy_pj
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record

    @classmethod
    def from_json(cls, record: Dict[str, Any]) -> "TraceEvent":
        """Rebuild an event from a :meth:`to_json` record.

        The inverse used by the cross-process trace collector
        (:mod:`repro.obs.remote`) to read worker spool files; round
        trips are exact because :meth:`to_json` only elides fields at
        their defaults.
        """
        return cls(
            kind=record["kind"],
            name=record["name"],
            ts_ns=record["ts_ns"],
            dur_ns=record.get("dur_ns", 0.0),
            seq=record.get("seq", 0),
            bank=record.get("bank"),
            subarray=record.get("subarray"),
            row=record.get("row"),
            column=record.get("column"),
            wordlines=record.get("wordlines", 1),
            energy_pj=record.get("energy_pj", 0.0),
            pid=record.get("pid"),
            attrs=dict(record.get("attrs", {})),
        )
