"""Command-log capture: the backbone of golden-trace testing.

:class:`CommandLog` attaches a tracer (ring buffer + counters) to a
device and exposes the commands executed since creation (or the last
:meth:`CommandLog.clear`) in the :mod:`repro.dram.trace_io` text format,
plus the counter deltas.  Tests use it through the ``command_log``
pytest fixture (``tests/conftest.py``) to assert *exact* command
sequences -- any change to microprogram sequencing becomes a visible
diff against the checked-in golden traces instead of silent drift.
"""

from __future__ import annotations

from typing import List

from repro.dram.trace_io import dump_trace_with_data
from repro.obs.counters import CounterSet
from repro.obs.events import TraceEvent
from repro.obs.sinks import CounterSink, RingBufferSink
from repro.obs.tracer import Tracer


class CommandLog:
    """Live record of a device's command stream.

    Parameters
    ----------
    device:
        An :class:`~repro.core.device.AmbitDevice`.  The log attaches a
        tracer; call :meth:`detach` (or let the pytest fixture do it)
        when done.
    """

    def __init__(self, device):
        self.device = device
        self.ring = RingBufferSink()
        self._counter_sink = CounterSink()
        self.tracer = device.attach_tracer(
            Tracer(
                sinks=[self.ring, self._counter_sink],
                timing=device.timing,
                row_bytes=device.row_bytes,
            )
        )
        self._trace_start = len(device.chip.trace)

    # ------------------------------------------------------------------
    @property
    def events(self) -> List[TraceEvent]:
        """All structured events since the last clear."""
        return self.ring.events

    def commands(self) -> List[TraceEvent]:
        """Bus-command events since the last clear."""
        return self.ring.commands()

    def lines(self) -> List[str]:
        """Commands since the last clear, one trace-format line each."""
        issued = self.device.chip.trace.entries[self._trace_start:]
        text = dump_trace_with_data(issued)
        return text.splitlines() if text else []

    def text(self) -> str:
        """Commands since the last clear as one trace-format string."""
        return "\n".join(self.lines())

    def counters(self) -> CounterSet:
        """Counter deltas since the last clear (an independent copy)."""
        return self._counter_sink.counters.copy()

    def clear(self) -> None:
        """Forget everything recorded so far."""
        self.ring.clear()
        self._counter_sink.reset()
        self._trace_start = len(self.device.chip.trace)

    def detach(self) -> None:
        """Detach the underlying tracer from the device."""
        if self.device.tracer is self.tracer:
            self.device.detach_tracer()
