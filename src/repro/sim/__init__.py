"""System-level cost simulation (the Gem5 substitute for Section 8)."""

from repro.sim.cache import Cache, CacheStats
from repro.sim.cpu import CpuModel, CpuModelConfig
from repro.sim.system import (
    AmbitContext,
    AmbitMemoryConfig,
    CpuContext,
    ExecutionContext,
)

__all__ = [
    "AmbitContext",
    "AmbitMemoryConfig",
    "Cache",
    "CacheStats",
    "CpuContext",
    "CpuModel",
    "CpuModelConfig",
    "ExecutionContext",
]
