"""Analytical CPU cost model for the application studies (Section 8).

Table 4's Gem5 configuration: x86, 8-wide out-of-order at 4 GHz with a
64-entry instruction queue, 32 KB L1s, a 2 MB L2, and one channel of
DDR4-2400.  Full cycle-accurate simulation is replaced by a calibrated
streaming model: what the cost of a data-parallel kernel is, as a
function of where its working set lives.

Calibration (documented in EXPERIMENTS.md): a single out-of-order
thread with a 64-entry window extracts only a fraction of DDR4-2400's
19.2 GB/s -- the fitted effective rates are

* DRAM streaming: 2.0 GB/s,
* L2-resident streaming: 8.0 GB/s,
* L1-resident streaming: 16.0 GB/s,
* bit-count (scalar popcount over a stream): 0.625 GB/s.

These four rates, combined with each workload's traffic pattern,
reproduce the relative results of Figures 10-12.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class CpuModelConfig:
    """Calibrated effective rates of the Table 4 CPU."""

    frequency_ghz: float = 4.0
    issue_width: int = 8
    l1_bytes: int = 32 * 1024
    l2_bytes: int = 2 * 1024 * 1024
    line_bytes: int = 64
    dram_stream_gbps: float = 2.0
    l2_stream_gbps: float = 8.0
    l1_stream_gbps: float = 16.0
    popcount_gbps: float = 0.625
    #: Latency of one dependent pointer dereference when the structure
    #: is cache-resident (used by the RB-tree baseline of Figure 12).
    pointer_chase_ns: float = 15.0

    def __post_init__(self) -> None:
        rates = (
            self.dram_stream_gbps,
            self.l2_stream_gbps,
            self.l1_stream_gbps,
            self.popcount_gbps,
        )
        if min(rates) <= 0:
            raise ConfigError("all bandwidth rates must be positive")
        if not self.l1_bytes < self.l2_bytes:
            raise ConfigError("L1 must be smaller than L2")


class CpuModel:
    """Charges time for streaming kernels on the modelled CPU."""

    def __init__(self, config: CpuModelConfig = CpuModelConfig()):
        self.config = config

    # ------------------------------------------------------------------
    def stream_gbps(self, working_set_bytes: int) -> float:
        """Effective streaming bandwidth for a given working set."""
        cfg = self.config
        if working_set_bytes <= cfg.l1_bytes:
            return cfg.l1_stream_gbps
        if working_set_bytes <= cfg.l2_bytes:
            return cfg.l2_stream_gbps
        return cfg.dram_stream_gbps

    def stream_ns(self, traffic_bytes: float, working_set_bytes: int) -> float:
        """Time to move ``traffic_bytes`` through the core.

        ``working_set_bytes`` decides which level of the hierarchy the
        stream hits (GB/s == bytes/ns, so the division is direct).
        """
        if traffic_bytes < 0:
            raise ConfigError("traffic must be non-negative")
        return traffic_bytes / self.stream_gbps(int(working_set_bytes))

    def popcount_ns(self, vector_bytes: float, working_set_bytes: int = 0) -> float:
        """Time to bit-count a vector.

        Population count is compute-bound at the calibrated scalar rate
        unless the stream itself is slower (it never is at these rates,
        but the max keeps the model honest for other configs).
        """
        ws = int(working_set_bytes) if working_set_bytes else int(vector_bytes)
        return max(
            vector_bytes / self.config.popcount_gbps,
            self.stream_ns(vector_bytes, ws),
        )

    def pointer_chase_ns(self, dereferences: int) -> float:
        """Time for a chain of dependent pointer dereferences."""
        return dereferences * self.config.pointer_chase_ns

    def alu_ns(self, operations: int) -> float:
        """Time for ``operations`` independent scalar ALU ops."""
        per_cycle = self.config.issue_width
        cycles = -(-operations // per_cycle)
        return cycles / self.config.frequency_ghz
