"""Set-associative LRU cache model.

Table 4's system has 32 KB L1 caches and a 2 MB LRU L2 with 64 B lines.
The cache model is functional: it tracks tags, LRU order, and dirty
bits, and reports hit/miss/writeback events.  The system simulator uses
it for working-set reasoning and for the coherence interactions of
Ambit operations (flush/invalidate, Section 5.4.4).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigError


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    invalidations: int = 0
    flushes: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class Cache:
    """One level of set-associative write-back LRU cache."""

    def __init__(self, size_bytes: int, line_bytes: int = 64, associativity: int = 8):
        if size_bytes <= 0 or line_bytes <= 0 or associativity <= 0:
            raise ConfigError("cache parameters must be positive")
        if size_bytes % (line_bytes * associativity) != 0:
            raise ConfigError(
                f"cache size {size_bytes} is not a multiple of "
                f"line_bytes*associativity ({line_bytes * associativity})"
            )
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.num_sets = size_bytes // (line_bytes * associativity)
        #: Per-set mapping: tag -> dirty flag, in LRU order (oldest first).
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def _locate(self, address: int) -> Tuple[int, int]:
        line = address // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def access(self, address: int, write: bool = False) -> bool:
        """Access one byte address; returns True on hit.

        Misses allocate (write-allocate policy) and may evict; evictions
        of dirty lines count as writebacks.
        """
        set_idx, tag = self._locate(address)
        cache_set = self._sets[set_idx]
        if tag in cache_set:
            self.stats.hits += 1
            dirty = cache_set.pop(tag)
            cache_set[tag] = dirty or write
            return True
        self.stats.misses += 1
        if len(cache_set) >= self.associativity:
            _victim, victim_dirty = cache_set.popitem(last=False)
            if victim_dirty:
                self.stats.writebacks += 1
        cache_set[tag] = write
        return False

    # ------------------------------------------------------------------
    # Coherence operations (what Ambit's controller triggers)
    # ------------------------------------------------------------------
    def flush_range(self, start: int, size: int) -> int:
        """Write back and evict all lines in ``[start, start+size)``.

        Returns the number of dirty lines written back (the quantity the
        coherence cost model charges for).
        """
        written_back = 0
        first_line = start // self.line_bytes
        last_line = (start + size - 1) // self.line_bytes
        for line in range(first_line, last_line + 1):
            set_idx = line % self.num_sets
            tag = line // self.num_sets
            cache_set = self._sets[set_idx]
            if tag in cache_set:
                if cache_set.pop(tag):
                    written_back += 1
                    self.stats.writebacks += 1
                self.stats.flushes += 1
        return written_back

    def invalidate_range(self, start: int, size: int) -> int:
        """Drop all lines in the range without writeback (dead data)."""
        dropped = 0
        first_line = start // self.line_bytes
        last_line = (start + size - 1) // self.line_bytes
        for line in range(first_line, last_line + 1):
            set_idx = line % self.num_sets
            tag = line // self.num_sets
            if self._sets[set_idx].pop(tag, None) is not None:
                dropped += 1
                self.stats.invalidations += 1
        return dropped

    def dirty_lines_in_range(self, start: int, size: int) -> int:
        """Count dirty lines within a byte range."""
        count = 0
        first_line = start // self.line_bytes
        last_line = (start + size - 1) // self.line_bytes
        for line in range(first_line, last_line + 1):
            set_idx = line % self.num_sets
            tag = line // self.num_sets
            if self._sets[set_idx].get(tag, False):
                count += 1
        return count

    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)
