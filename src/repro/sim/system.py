"""Full-system cost simulation for the application studies (Section 8).

The Gem5 substitute.  Applications execute *functionally* (real numpy
bit manipulation, so every accelerated result is checked against the
baseline's) against an :class:`ExecutionContext` that charges time:

* :class:`CpuContext` -- the Table 4 baseline: bulk bitwise operations
  stream operands through the core (SIMD), bit-counts run at the scalar
  popcount rate.
* :class:`AmbitContext` -- bulk bitwise operations run in DRAM via the
  Ambit microprogram timing with bank-level parallelism, preceded by
  the Section 5.4.4 coherence actions; bit-counts still run on the CPU.

Both contexts compute identical results; only the charged time differs,
which is exactly the paper's experimental design ("our simulations take
into account the cost of maintaining coherence, and the overhead of
RowClone to perform copy operations" -- the RowClone copies are inside
the microprogram latency here).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.coherence import CoherenceCost, CoherenceLog, DirtyBlockIndex
from repro.core.microprograms import BulkOp
from repro.dram.timing import TimingParameters, ddr4_2400
from repro.errors import SimulationError
from repro.perf.systems import AmbitSystem, TRAFFIC_PER_OUTPUT_BYTE
from repro.sim.cpu import CpuModel, CpuModelConfig


@dataclass(frozen=True)
class AmbitMemoryConfig:
    """Memory-side configuration of the simulated system (Table 4).

    DDR4-2400, one channel/rank, 16 banks, 8 KB rows, FR-FCFS.
    """

    banks: int = 16
    row_bytes: int = 8192
    timing: TimingParameters = field(default_factory=ddr4_2400)
    #: Per-bbop fixed overhead: instruction issue, controller setup,
    #: and tracking (Section 5.5.2).
    bbop_issue_ns: float = 20.0

    @property
    def row_bits(self) -> int:
        return self.row_bytes * 8


_NUMPY_OPS = {
    BulkOp.NOT: lambda a, b: ~a,
    BulkOp.COPY: lambda a, b: a.copy(),
    BulkOp.AND: lambda a, b: a & b,
    BulkOp.OR: lambda a, b: a | b,
    BulkOp.NAND: lambda a, b: ~(a & b),
    BulkOp.NOR: lambda a, b: ~(a | b),
    BulkOp.XOR: lambda a, b: a ^ b,
    BulkOp.XNOR: lambda a, b: ~(a ^ b),
}


class ExecutionContext:
    """Functional execution plus time accounting.

    Subclasses implement the costing; the functional semantics are
    shared so baseline and accelerated runs produce identical data.
    """

    def __init__(self) -> None:
        self.elapsed_ns: float = 0.0
        self.breakdown: Dict[str, float] = defaultdict(float)

    # -- functional + costed operations --------------------------------
    def bulk_op(
        self,
        op: BulkOp,
        a: np.ndarray,
        b: Optional[np.ndarray] = None,
        label: str = "bitwise",
    ) -> np.ndarray:
        """Compute ``op`` functionally and charge its cost."""
        if (b is None) != (op.arity == 1):
            raise SimulationError(f"{op.value} takes {op.arity} operand(s)")
        if b is not None and a.shape != b.shape:
            raise SimulationError("bulk_op operands must have equal shape")
        result = _NUMPY_OPS[op](a, b)
        self._charge(self._bulk_op_ns(op, a.nbytes), label)
        return result

    def bulk_maj(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray,
        label: str = "bitwise",
    ) -> np.ndarray:
        """3-operand majority -- the raw TRA (see ``BulkOp.MAJ``).

        Costs like AND on Ambit (4 AAPs); on the CPU it streams three
        sources plus the destination.
        """
        if not (a.shape == b.shape == c.shape):
            raise SimulationError("bulk_maj operands must have equal shape")
        result = (a & b) | (b & c) | (a & c)
        self._charge(self._bulk_maj_ns(a.nbytes), label)
        return result

    def _bulk_maj_ns(self, nbytes: int) -> float:
        raise NotImplementedError

    def popcount(self, v: np.ndarray, label: str = "bitcount") -> int:
        """Count set bits (CPU-side) and charge the cost."""
        count = int(
            np.unpackbits(np.ascontiguousarray(v).view(np.uint8)).sum()
        )
        self._charge(self._popcount_ns(v.nbytes), label)
        return count

    def charge_stream(
        self, traffic_bytes: float, working_set_bytes: int, label: str = "stream"
    ) -> None:
        """Charge a custom streaming kernel (apps with fused loops)."""
        self._charge(self._stream_ns(traffic_bytes, working_set_bytes), label)

    def charge_ns(self, ns: float, label: str = "other") -> None:
        """Charge a fixed latency under the given label."""
        self._charge(ns, label)

    # -- costing hooks --------------------------------------------------
    def _bulk_op_ns(self, op: BulkOp, nbytes: int) -> float:
        raise NotImplementedError

    def _popcount_ns(self, nbytes: int) -> float:
        raise NotImplementedError

    def _stream_ns(self, traffic_bytes: float, working_set_bytes: int) -> float:
        raise NotImplementedError

    def _charge(self, ns: float, label: str) -> None:
        self.elapsed_ns += ns
        self.breakdown[label] += ns


class CpuContext(ExecutionContext):
    """The SIMD-optimised CPU baseline of Section 8.

    A materialised bulk bitwise operation reads every source vector and
    writes the destination (TRAFFIC_PER_OUTPUT_BYTE bytes of traffic per
    output byte), at the bandwidth of whichever level holds the working
    set.
    """

    def __init__(self, cpu: Optional[CpuModel] = None):
        super().__init__()
        self.cpu = cpu if cpu is not None else CpuModel(CpuModelConfig())

    def _bulk_op_ns(self, op: BulkOp, nbytes: int) -> float:
        traffic = TRAFFIC_PER_OUTPUT_BYTE[op] * nbytes
        return self.cpu.stream_ns(traffic, traffic)

    def _bulk_maj_ns(self, nbytes: int) -> float:
        traffic = 4 * nbytes  # three source streams plus the result
        return self.cpu.stream_ns(traffic, traffic)

    def _popcount_ns(self, nbytes: int) -> float:
        return self.cpu.popcount_ns(nbytes)

    def _stream_ns(self, traffic_bytes: float, working_set_bytes: int) -> float:
        return self.cpu.stream_ns(traffic_bytes, working_set_bytes)


class AmbitContext(ExecutionContext):
    """The Ambit-accelerated system.

    Bulk operations execute in DRAM: per row-pair, the microprogram
    latency; rows spread across banks.  Before each operation the
    controller performs the coherence actions of Section 5.4.4 against
    the tracked dirty-block index.  Bit-counts (and any custom streamed
    kernel) still run on the CPU.
    """

    def __init__(
        self,
        cpu: Optional[CpuModel] = None,
        memory: Optional[AmbitMemoryConfig] = None,
        coherence: Optional[CoherenceCost] = None,
    ):
        super().__init__()
        self.cpu = cpu if cpu is not None else CpuModel(CpuModelConfig())
        self.memory = memory if memory is not None else AmbitMemoryConfig()
        self.coherence = coherence if coherence is not None else CoherenceCost(
            writeback_bw_gbps=self.memory.timing.io_gbps
        )
        self.dbi = DirtyBlockIndex(self.memory.row_bytes)
        self.coherence_log = CoherenceLog()
        self._ambit_model = AmbitSystem(
            "sim",
            timing=self.memory.timing,
            banks=self.memory.banks,
            row_bytes=self.memory.row_bytes,
        )
        #: Monotone allocator for the flat addresses coherence tracks.
        self._next_row = 0
        #: Rows dirtied by the CPU since the last bulk operation.
        self._pending_dirty_rows: list = []

    # ------------------------------------------------------------------
    def mark_cpu_written(self, nbytes: int) -> None:
        """Record that the CPU dirtied ``nbytes`` of some Ambit operand.

        Workloads call this for data the CPU produced right before
        handing it to Ambit; the next bulk operation pays the writeback.
        """
        lines = -(-nbytes // self.coherence.line_bytes)
        rows = -(-nbytes // self.memory.row_bytes)
        row = self._take_rows(rows)
        for i in range(lines):
            self.dbi.mark_dirty(
                row * self.memory.row_bytes + i * self.coherence.line_bytes
            )
        self._pending_dirty_rows.extend(range(row, row + rows))

    def _take_rows(self, n: int) -> int:
        start = self._next_row
        self._next_row += n
        return start

    def _bulk_op_ns(self, op: BulkOp, nbytes: int) -> float:
        rows = -(-(nbytes * 8) // self.memory.row_bits)
        waves = -(-rows // self.memory.banks)
        op_ns = waves * self._ambit_model.op_latency_ns(op)
        # Coherence: flush sources, invalidate destinations.  Source and
        # destination row lists are synthesised from the tracked space.
        n_src = rows * (1 if op.arity == 1 else 2)
        pending = getattr(self, "_pending_dirty_rows", [])
        dirty = sum(self.dbi.dirty_lines_in_row(r) for r in pending)
        self.dbi.flush_rows(pending)
        self._pending_dirty_rows = []
        flush_ns = self.coherence.flush_ns(dirty, n_src)
        inv_ns = self.coherence.invalidate_ns(rows)
        self.coherence_log.record(flush_ns, dirty, inv_ns)
        self._charge(flush_ns + max(0.0, inv_ns - op_ns), "coherence")
        return op_ns + self.memory.bbop_issue_ns

    def _bulk_maj_ns(self, nbytes: int) -> float:
        """MAJ costs like AND (4 AAPs) plus one extra source-row lookup."""
        rows = -(-(nbytes * 8) // self.memory.row_bits)
        return self._bulk_op_ns(BulkOp.AND, nbytes) + self.coherence.lookup_ns * rows

    def _popcount_ns(self, nbytes: int) -> float:
        return self.cpu.popcount_ns(nbytes)

    def _stream_ns(self, traffic_bytes: float, working_set_bytes: int) -> float:
        return self.cpu.stream_ns(traffic_bytes, working_set_bytes)
