"""DRAM chip (rank) model: banks, command execution, and tracing.

The chip executes :class:`~repro.dram.commands.Command` records against
its banks and appends every executed command to a
:class:`~repro.dram.commands.CommandTrace`.  The timing and energy layers
are pure folds over that trace, so the functional model stays free of
accounting logic.

The chip also owns the mapping from *global data-row numbers* to
``(bank, subarray, local row address)``.  Section 5.1: the D-group
addresses of all subarrays are interleaved so software sees a contiguous
physical address space; the model uses a straightforward
bank-major/subarray-major linearisation, and the subarray-aware driver
(:mod:`repro.core.driver`) is what co-locates operand vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.dram.bank import Bank, build_bank
from repro.dram.commands import Command, CommandTrace, IssuedCommand, Opcode
from repro.dram.geometry import DramGeometry
from repro.errors import AddressError, DramProtocolError


@dataclass(frozen=True)
class RowLocation:
    """A fully resolved row position inside the chip."""

    bank: int
    subarray: int
    #: Local row address inside the subarray's address space.  For data
    #: rows this equals the D-group address (which, for the commodity
    #: decoder and for Ambit's split decoder alike, coincides with the
    #: storage-row index of the data row).
    address: int


class DramChip:
    """A functional DRAM chip/rank.

    Parameters
    ----------
    geometry:
        Static device shape.
    decoder_factory:
        Nullary callable building a row decoder per subarray (``None``
        for the commodity direct decoder).  The Ambit device passes the
        split-decoder factory here.
    charge_model_factory:
        Nullary callable building an analog TRA model per subarray
        (``None`` for ideal behaviour).
    row_store:
        Optional :class:`~repro.parallel.shm.SharedRowStore`; when
        given, all subarray cell state lives in its shared-memory
        segment so other processes can attach to the same address space.
    """

    def __init__(
        self,
        geometry: DramGeometry,
        decoder_factory: Optional[Callable[[], object]] = None,
        charge_model_factory: Optional[Callable[[], object]] = None,
        row_store: Optional[object] = None,
    ):
        self.geometry = geometry
        self.row_store = row_store
        self.banks: List[Bank] = [
            build_bank(i, geometry, decoder_factory, charge_model_factory, row_store)
            for i in range(geometry.banks)
        ]
        self.trace = CommandTrace()
        #: Model time in nanoseconds; advanced by whichever timing engine
        #: drives the chip.  Used only for retention bookkeeping.
        self.clock_ns: float = 0.0
        #: Optional observability hook (a :class:`repro.obs.tracer.Tracer`
        #: or anything exposing ``record_command(issued, clock_ns)``).
        #: Every executed command is reported through it, making
        #: :meth:`execute` the single instrumentation choke point.
        self.tracer: Optional[object] = None

    # ------------------------------------------------------------------
    # Command execution
    # ------------------------------------------------------------------
    def _record(self, issued: IssuedCommand) -> None:
        """Append to the command trace and notify the attached tracer."""
        self.trace.append(issued)
        if self.tracer is not None:
            self.tracer.record_command(issued, self.clock_ns)

    def execute(self, command: Command) -> Optional[int]:
        """Execute one DRAM command; READ returns the word read."""
        if command.opcode is Opcode.ACTIVATE:
            if command.row is None:
                raise DramProtocolError("ACTIVATE requires a row address")
            raised, onto_open = self.bank(command.bank).activate(
                command.subarray, command.row, self.clock_ns
            )
            self._record(
                IssuedCommand(command, wordlines_raised=raised, onto_open_row=onto_open)
            )
            return None
        if command.opcode is Opcode.PRECHARGE:
            self.bank(command.bank).precharge()
            self._record(IssuedCommand(command))
            return None
        if command.opcode is Opcode.READ:
            if command.column is None:
                raise DramProtocolError("READ requires a column")
            value = self.bank(command.bank).read_word(command.column)
            self._record(IssuedCommand(command))
            return value
        if command.opcode is Opcode.WRITE:
            raise DramProtocolError(
                "WRITE commands carry data; use write_word() which traces "
                "the command itself"
            )
        if command.opcode is Opcode.REFRESH:
            for bank in self.banks:
                bank.refresh(self.clock_ns)
            self._record(IssuedCommand(command))
            return None
        raise DramProtocolError(f"unknown opcode {command.opcode}")

    # Convenience wrappers --------------------------------------------------
    def activate(self, bank: int, subarray: int, row: int) -> None:
        """Issue an ACTIVATE command."""
        self.execute(Command(Opcode.ACTIVATE, bank=bank, subarray=subarray, row=row))

    def precharge(self, bank: int) -> None:
        """Issue a PRECHARGE command."""
        self.execute(Command(Opcode.PRECHARGE, bank=bank))

    def read_word(self, bank: int, column: int) -> int:
        """Issue a READ; returns the word."""
        return self.execute(
            Command(Opcode.READ, bank=bank, column=column)
        )  # type: ignore[return-value]

    def write_word(self, bank: int, column: int, value: int) -> None:
        """Issue a WRITE carrying ``value``; the payload is retained in
        the trace so dumps and replays are lossless."""
        self.bank(bank).write_word(column, value, self.clock_ns)
        self._record(
            IssuedCommand(
                Command(Opcode.WRITE, bank=bank, column=column),
                write_value=int(value),
            )
        )

    def refresh(self) -> None:
        """Issue an all-bank REFRESH."""
        self.execute(Command(Opcode.REFRESH))

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def bank(self, index: int) -> Bank:
        """Access a bank by index (bounds-checked)."""
        if not 0 <= index < len(self.banks):
            raise AddressError(
                f"bank {index} out of range [0, {len(self.banks)})"
            )
        return self.banks[index]

    @property
    def data_rows(self) -> int:
        """Total D-group rows exposed by the chip."""
        return self.geometry.banks * self.geometry.data_rows_per_bank

    def locate_data_row(self, global_row: int) -> RowLocation:
        """Map a global data-row number to its physical location."""
        if not 0 <= global_row < self.data_rows:
            raise AddressError(
                f"data row {global_row} out of range [0, {self.data_rows})"
            )
        per_bank = self.geometry.data_rows_per_bank
        per_sub = self.geometry.subarray.data_rows
        bank, rem = divmod(global_row, per_bank)
        subarray, local = divmod(rem, per_sub)
        return RowLocation(bank=bank, subarray=subarray, address=local)

    def global_data_row(self, location: RowLocation) -> int:
        """Inverse of :meth:`locate_data_row`."""
        per_bank = self.geometry.data_rows_per_bank
        per_sub = self.geometry.subarray.data_rows
        if not 0 <= location.address < per_sub:
            raise AddressError(
                f"local data row {location.address} out of range [0, {per_sub})"
            )
        return location.bank * per_bank + location.subarray * per_sub + location.address

    # ------------------------------------------------------------------
    # Backdoor access (functional initialisation, verification)
    # ------------------------------------------------------------------
    def peek_row(self, location: RowLocation) -> np.ndarray:
        """Read a data row's contents without DRAM commands."""
        return (
            self.bank(location.bank)
            .subarray(location.subarray)
            .peek(location.address)
        )

    def poke_row(self, location: RowLocation, value: np.ndarray) -> None:
        """Write a data row's contents without DRAM commands."""
        self.bank(location.bank).subarray(location.subarray).poke(
            location.address, value, self.clock_ns
        )

    def peek_rows(self, bank: int, subarray: int, addresses) -> np.ndarray:
        """Backdoor-read several data rows of one subarray at once.

        Returns an ``(len(addresses), words_per_row)`` array; the batch
        engine's fused kernels read operands through this port.
        """
        return self.bank(bank).subarray(subarray).peek_batch(addresses)

    def poke_rows(self, bank: int, subarray: int, addresses, values: np.ndarray) -> None:
        """Backdoor-write several data rows of one subarray at once."""
        self.bank(bank).subarray(subarray).poke_batch(
            addresses, values, self.clock_ns
        )

    def peek_global(self, global_row: int) -> np.ndarray:
        """Backdoor-read a global data row."""
        return self.peek_row(self.locate_data_row(global_row))

    def poke_global(self, global_row: int, value: np.ndarray) -> None:
        """Backdoor-write a global data row."""
        self.poke_row(self.locate_data_row(global_row), value)
