"""Refresh scheduling and charge-retention accounting.

Issue 4 of Section 3.2: Equation 1 assumes fully charged/empty cells,
but DRAM cells leak.  Ambit's answer is structural -- the operand copies
performed immediately before a TRA restore (refresh) the designated
rows, so a TRA never sees stale cells.  This module provides the
retention bookkeeping that lets tests demonstrate exactly that property,
plus a conventional auto-refresh scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.chip import DramChip
from repro.errors import ConfigError

#: JEDEC nominal retention window.
RETENTION_NS: float = 64e6  # 64 ms

#: JEDEC average refresh command interval.
TREFI_NS: float = 7.8e3  # 7.8 us


@dataclass
class RefreshScheduler:
    """Drives periodic REFRESH commands against a chip.

    The model abstracts per-command row batching: each due refresh event
    restores the whole device (what matters to Ambit is *when* rows were
    last restored, not the per-command batching).

    Parameters
    ----------
    chip: The device to refresh.
    interval_ns: Refresh period; defaults to refreshing the full device
        every retention window.
    """

    chip: DramChip
    interval_ns: float = RETENTION_NS
    _next_due_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.interval_ns <= 0:
            raise ConfigError("refresh interval must be positive")
        self._next_due_ns = self.interval_ns

    def advance_to(self, now_ns: float) -> int:
        """Advance model time, issuing any due refreshes.

        Returns the number of refresh sweeps performed.  The chip clock
        is left at ``now_ns``.
        """
        sweeps = 0
        while self._next_due_ns <= now_ns:
            self.chip.clock_ns = self._next_due_ns
            self.chip.refresh()
            self._next_due_ns += self.interval_ns
            sweeps += 1
        self.chip.clock_ns = now_ns
        return sweeps


def tra_inputs_fresh(
    chip: DramChip,
    bank: int,
    subarray: int,
    storage_rows,
    retention_ns: float = RETENTION_NS,
) -> bool:
    """Check that the given storage rows are within the retention window.

    Ambit's correctness argument (Section 3.3): copies happen "just
    before the TRA", i.e. five to six orders of magnitude more recently
    than the refresh interval, so the cells are effectively fully
    refreshed.  Tests use this predicate to verify the implementation
    actually maintains that invariant.
    """
    sub = chip.bank(bank).subarray(subarray)
    now = chip.clock_ns
    return all(sub.age_ns(row, now) <= retention_ns for row in storage_rows)
