"""DRAM bank model: a set of subarrays with a single open row.

All access-related commands target a bank (Section 2).  A conventional
bank allows one activated subarray at a time; ACTIVATE to a different
subarray requires an intervening PRECHARGE.  The model enforces this, as
Ambit relies only on standard bank behaviour.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.dram.geometry import DramGeometry
from repro.dram.subarray import Subarray
from repro.errors import AddressError, DramProtocolError


class Bank:
    """One DRAM bank.

    Parameters
    ----------
    index:
        Bank index within the chip (for error messages / traces).
    subarrays:
        The subarray models that make up the bank.
    """

    def __init__(self, index: int, subarrays: List[Subarray]):
        if not subarrays:
            raise AddressError(f"bank {index} needs at least one subarray")
        self.index = index
        self.subarrays = subarrays
        self._open: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def open_subarray(self) -> Optional[int]:
        """Index of the activated subarray, or ``None`` when precharged."""
        return self._open

    def subarray(self, index: int) -> Subarray:
        """Access a subarray by index (bounds-checked)."""
        if not 0 <= index < len(self.subarrays):
            raise AddressError(
                f"bank {self.index}: subarray {index} out of range "
                f"[0, {len(self.subarrays)})"
            )
        return self.subarrays[index]

    # ------------------------------------------------------------------
    # Protocol operations
    # ------------------------------------------------------------------
    def activate(
        self, subarray: int, row_address: int, now_ns: float = 0.0
    ) -> Tuple[int, bool]:
        """ACTIVATE ``row_address`` in ``subarray``.

        A second ACTIVATE to the *open* subarray is the AAP overlap path;
        an ACTIVATE to a different subarray while one is open violates
        the protocol.
        """
        target = self.subarray(subarray)
        if self._open is not None and self._open != subarray:
            raise DramProtocolError(
                f"bank {self.index}: subarray {self._open} is open; "
                f"PRECHARGE before activating subarray {subarray}"
            )
        result = target.activate(row_address, now_ns)
        self._open = subarray
        return result

    def precharge(self) -> None:
        """PRECHARGE the bank (idempotent, as on real devices)."""
        if self._open is not None:
            self.subarrays[self._open].precharge()
            self._open = None

    def read_word(self, column: int) -> int:
        """READ one word from the open row."""
        return self._open_subarray_or_raise("READ").read_word(column)

    def write_word(self, column: int, value: int, now_ns: float = 0.0) -> None:
        """WRITE one word to the open row."""
        self._open_subarray_or_raise("WRITE").write_word(column, value, now_ns)

    def read_open_row(self) -> np.ndarray:
        """Read the whole open row (burst of READs)."""
        return self._open_subarray_or_raise("READ").read_open_row()

    def write_open_row(self, value: np.ndarray, now_ns: float = 0.0) -> None:
        """Overwrite the whole open row (burst of WRITEs)."""
        self._open_subarray_or_raise("WRITE").write_open_row(value, now_ns)

    def refresh(self, now_ns: float) -> None:
        """All-row refresh of the bank.

        Real refresh operates on a few rows per REFRESH command; the
        model exposes the aggregate effect, which is what the retention
        analysis needs.  Refresh requires the bank to be precharged.
        """
        if self._open is not None:
            raise DramProtocolError(
                f"bank {self.index}: cannot REFRESH with subarray "
                f"{self._open} open"
            )
        for sub in self.subarrays:
            sub.refresh_all(now_ns)

    # ------------------------------------------------------------------
    def _open_subarray_or_raise(self, what: str) -> Subarray:
        if self._open is None:
            raise DramProtocolError(
                f"bank {self.index}: {what} requires an activated row"
            )
        return self.subarrays[self._open]


def build_bank(
    index: int,
    geometry: DramGeometry,
    decoder_factory=None,
    charge_model_factory=None,
    row_store=None,
) -> Bank:
    """Construct a bank from a device geometry.

    ``decoder_factory``/``charge_model_factory`` are nullary callables
    producing a fresh decoder / analog model per subarray (or ``None``
    for commodity defaults).  ``row_store`` is an optional
    :class:`~repro.parallel.shm.SharedRowStore`; when given, every
    subarray is built over its shared-memory views instead of private
    arrays.
    """
    subarrays = [
        Subarray(
            geometry.subarray,
            decoder=decoder_factory() if decoder_factory is not None else None,
            charge_model=(
                charge_model_factory() if charge_model_factory is not None else None
            ),
            cells=row_store.cells(index, s) if row_store is not None else None,
            last_restore=(
                row_store.restore(index, s) if row_store is not None else None
            ),
        )
        for s in range(geometry.subarrays_per_bank)
    ]
    return Bank(index, subarrays)
