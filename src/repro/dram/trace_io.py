"""Command-trace serialisation and replay (the Ramulator-style frontend).

DRAM-simulator releases live or die by trace interoperability: you want
to dump what a device executed, diff it against a reference, and replay
it onto a fresh device.  This module provides a simple line format::

    ACT <bank> <subarray> <row>
    PRE <bank>
    RD  <bank> <column>
    WR  <bank> <column> <hex-value>
    REF

plus :func:`dump_trace` (from a chip's executed-command log),
:func:`parse_trace`, and :func:`replay_trace` (drive any chip --
commodity or Ambit -- from a trace).  Replaying an Ambit microprogram's
dump onto a fresh Ambit device reproduces the original computation
bit-for-bit, which the tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.dram.chip import DramChip
from repro.dram.commands import Command, IssuedCommand, Opcode
from repro.errors import DramProtocolError

#: Mnemonics used in the text format.
_MNEMONIC = {
    Opcode.ACTIVATE: "ACT",
    Opcode.PRECHARGE: "PRE",
    Opcode.READ: "RD",
    Opcode.WRITE: "WR",
    Opcode.REFRESH: "REF",
}
_BY_MNEMONIC = {v: k for k, v in _MNEMONIC.items()}


@dataclass(frozen=True)
class TraceEntry:
    """One parsed trace line."""

    command: Command
    #: Data payload for WR lines (None otherwise).  The functional WRITE
    #: path carries its word out of band, so dumps record it explicitly.
    write_value: Optional[int] = None

    def format(self) -> str:
        """Render the entry as one trace line."""
        cmd = self.command
        if cmd.opcode is Opcode.ACTIVATE:
            return f"ACT {cmd.bank} {cmd.subarray} {cmd.row}"
        if cmd.opcode is Opcode.PRECHARGE:
            return f"PRE {cmd.bank}"
        if cmd.opcode is Opcode.READ:
            return f"RD {cmd.bank} {cmd.column}"
        if cmd.opcode is Opcode.WRITE:
            value = 0 if self.write_value is None else self.write_value
            return f"WR {cmd.bank} {cmd.column} {value:#x}"
        return "REF"


def dump_trace(issued: Iterable[IssuedCommand]) -> str:
    """Serialise an executed-command log to the text format.

    Equivalent to :func:`dump_trace_with_data`: WRITE payloads are
    retained in :class:`IssuedCommand` by the functional write path, so
    dumps are lossless.  (The alias survives for callers that predate
    payload threading.)
    """
    return dump_trace_with_data(issued)


def dump_trace_with_data(issued: Iterable[IssuedCommand]) -> str:
    """Serialise an executed-command log, including WRITE payloads.

    WR lines carry the 64-bit word recorded at execution time
    (:meth:`repro.dram.chip.DramChip.write_word`), so
    ``replay_trace(parse_trace(dump_trace_with_data(...)))`` reproduces
    the original device state bit-for-bit.  An :class:`IssuedCommand`
    synthesised without a payload dumps as ``0``.
    """
    return "\n".join(
        TraceEntry(e.command, write_value=e.write_value).format()
        for e in issued
    )


def parse_trace(text: str) -> List[TraceEntry]:
    """Parse the text format; blank lines and ``#`` comments are skipped."""
    entries: List[TraceEntry] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        mnemonic = fields[0].upper()
        try:
            opcode = _BY_MNEMONIC[mnemonic]
        except KeyError:
            raise DramProtocolError(
                f"trace line {lineno}: unknown mnemonic {mnemonic!r}"
            ) from None
        try:
            if opcode is Opcode.ACTIVATE:
                bank, subarray, row = (int(f, 0) for f in fields[1:4])
                entries.append(
                    TraceEntry(Command(opcode, bank=bank, subarray=subarray, row=row))
                )
            elif opcode is Opcode.PRECHARGE:
                entries.append(TraceEntry(Command(opcode, bank=int(fields[1], 0))))
            elif opcode is Opcode.READ:
                bank, column = int(fields[1], 0), int(fields[2], 0)
                entries.append(
                    TraceEntry(Command(opcode, bank=bank, column=column))
                )
            elif opcode is Opcode.WRITE:
                bank, column = int(fields[1], 0), int(fields[2], 0)
                value = int(fields[3], 0)
                entries.append(
                    TraceEntry(
                        Command(opcode, bank=bank, column=column),
                        write_value=value,
                    )
                )
            else:  # REFRESH
                entries.append(TraceEntry(Command(opcode)))
        except (IndexError, ValueError):
            raise DramProtocolError(
                f"trace line {lineno}: malformed operands in {line!r}"
            ) from None
    return entries


def replay_trace(chip: DramChip, entries: Iterable[TraceEntry]) -> List[int]:
    """Execute a parsed trace against a chip; returns the RD results."""
    reads: List[int] = []
    for entry in entries:
        cmd = entry.command
        if cmd.opcode is Opcode.WRITE:
            # An explicit None check: a genuine 0x0 payload must be
            # written as zero *because it was recorded*, not because the
            # payload was missing (``entry.write_value or 0`` conflated
            # the two).
            value = entry.write_value if entry.write_value is not None else 0
            chip.write_word(cmd.bank, cmd.column, value)
        elif cmd.opcode is Opcode.READ:
            reads.append(chip.read_word(cmd.bank, cmd.column))
        else:
            chip.execute(cmd)
    return reads


def roundtrip(chip: DramChip) -> List[TraceEntry]:
    """Dump the chip's executed commands and re-parse them."""
    return parse_trace(dump_trace(chip.trace))
