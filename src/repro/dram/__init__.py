"""DRAM substrate: functional, command-accurate model of a DRAM device.

Public surface:

* :class:`~repro.dram.geometry.DramGeometry` /
  :class:`~repro.dram.geometry.SubarrayGeometry` -- device shapes.
* :class:`~repro.dram.chip.DramChip` -- the functional device.
* :class:`~repro.dram.timing.TimingParameters` and presets
  (``ddr3_1600()`` etc.) -- command latencies.
* :mod:`~repro.dram.rowclone` -- in-DRAM copy (RowClone FPM/PSM).
* :class:`~repro.dram.controller.FrFcfsScheduler` -- a conventional
  memory controller substrate.
"""

from repro.dram.cell import DirectRowDecoder, MappingRowDecoder, RowDecoder, Wordline
from repro.dram.chip import DramChip, RowLocation
from repro.dram.commands import (
    Command,
    CommandTrace,
    IssuedCommand,
    Opcode,
    activate,
    precharge,
    read,
    write,
)
from repro.dram.controller import FrFcfsScheduler, MemRequest, RequestType
from repro.dram.geometry import (
    DramGeometry,
    SubarrayGeometry,
    small_test_geometry,
)
from repro.dram.refresh import RETENTION_NS, TREFI_NS, RefreshScheduler
from repro.dram.rowclone import (
    fpm_latency_ns,
    initialize_row,
    psm_latency_ns,
    rowclone_fpm,
    rowclone_psm,
)
from repro.dram.senseamp import SenseAmplifierArray, majority3
from repro.dram.subarray import Subarray
from repro.dram.trace_io import (
    TraceEntry,
    dump_trace,
    dump_trace_with_data,
    parse_trace,
    replay_trace,
)
from repro.dram.timing_checker import (
    TimedCommand,
    TimingChecker,
    TimingViolation,
    schedule_aap_stream,
)
from repro.dram.timing import (
    PRESETS,
    TimingParameters,
    ddr3_1333,
    ddr3_1600,
    ddr3_2133,
    ddr4_2400,
    hmc_like,
    preset,
)

__all__ = [
    "Command",
    "CommandTrace",
    "DirectRowDecoder",
    "DramChip",
    "DramGeometry",
    "FrFcfsScheduler",
    "IssuedCommand",
    "MappingRowDecoder",
    "MemRequest",
    "Opcode",
    "PRESETS",
    "RETENTION_NS",
    "RefreshScheduler",
    "RequestType",
    "RowDecoder",
    "RowLocation",
    "SenseAmplifierArray",
    "Subarray",
    "TimedCommand",
    "TraceEntry",
    "TimingChecker",
    "TimingViolation",
    "SubarrayGeometry",
    "TREFI_NS",
    "TimingParameters",
    "Wordline",
    "activate",
    "ddr3_1333",
    "dump_trace",
    "dump_trace_with_data",
    "ddr3_1600",
    "ddr3_2133",
    "ddr4_2400",
    "fpm_latency_ns",
    "hmc_like",
    "initialize_row",
    "majority3",
    "parse_trace",
    "precharge",
    "preset",
    "psm_latency_ns",
    "read",
    "replay_trace",
    "rowclone_fpm",
    "rowclone_psm",
    "schedule_aap_stream",
    "small_test_geometry",
    "write",
]
