"""Wordlines, cell connectivity, and row decoders.

A DRAM *cell* is a capacitor plus an access transistor gated by a
*wordline* (Figure 2).  Regular cells connect to the bitline; the
dual-contact cells (DCC) that implement Ambit-NOT have a second
transistor connecting the same capacitor to the negated bitline
(Figure 5).  The functional model captures this with a
:class:`Wordline` record: which storage row the wordline exposes, and
whether the connection is to ``bitline`` (d-wordline) or ``bitline-bar``
(n-wordline).

A *row decoder* maps a row address to the set of wordlines it raises.
Commodity DRAM raises exactly one wordline per address
(:class:`DirectRowDecoder`).  Ambit's split decoder additionally maps the
16 reserved B-group addresses onto one, two, or three wordlines
(Table 1); that mapping is constructed in :mod:`repro.core.addressing`
and plugged into the subarray through the :class:`RowDecoder` interface,
keeping the DRAM substrate independent of the accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.errors import AddressError


@dataclass(frozen=True)
class Wordline:
    """One physical wordline.

    Attributes
    ----------
    row:
        Index of the storage row (capacitor row) this wordline exposes.
    negated:
        ``False`` for a regular cell or a DCC *d-wordline* (capacitor on
        the bitline); ``True`` for a DCC *n-wordline* (capacitor on the
        negated bitline).  A negated connection contributes the inverse
        of the stored value during charge sharing and stores the inverse
        of the bitline value during restoration.
    """

    row: int
    negated: bool = False


class RowDecoder:
    """Maps a row address to the wordlines it raises.

    Subclasses implement :meth:`decode`.  The return value is an ordered
    tuple; order does not affect functional behaviour but keeps traces
    deterministic.
    """

    def decode(self, address: int) -> Tuple[Wordline, ...]:
        """Wordlines raised by ``address``."""
        raise NotImplementedError

    def address_space(self) -> int:
        """Number of valid addresses (addresses are ``0..address_space-1``)."""
        raise NotImplementedError


class DirectRowDecoder(RowDecoder):
    """The commodity-DRAM decoder: address ``i`` raises wordline ``i``."""

    def __init__(self, rows: int):
        if rows <= 0:
            raise AddressError(f"decoder needs at least one row; got {rows}")
        self._rows = rows

    def decode(self, address: int) -> Tuple[Wordline, ...]:
        """Identity mapping with bounds checking."""
        if not 0 <= address < self._rows:
            raise AddressError(
                f"row address {address} out of range [0, {self._rows})"
            )
        return (Wordline(row=address),)

    def address_space(self) -> int:
        """Number of direct addresses."""
        return self._rows


class MappingRowDecoder(RowDecoder):
    """A decoder defined by an explicit address -> wordlines table.

    Used by the Ambit split decoder: most addresses behave like a direct
    decoder, while reserved addresses fan out to multiple wordlines.
    """

    def __init__(self, table: Dict[int, Sequence[Wordline]]):
        if not table:
            raise AddressError("decoder mapping table must not be empty")
        self._table: Dict[int, Tuple[Wordline, ...]] = {
            addr: tuple(wls) for addr, wls in table.items()
        }
        for addr, wls in self._table.items():
            if not wls:
                raise AddressError(f"address {addr} maps to no wordlines")

    def decode(self, address: int) -> Tuple[Wordline, ...]:
        """Table lookup; unmapped addresses raise AddressError."""
        try:
            return self._table[address]
        except KeyError:
            raise AddressError(f"row address {address} is not mapped") from None

    def address_space(self) -> int:
        """Highest mapped address plus one."""
        return max(self._table) + 1
