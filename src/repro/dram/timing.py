"""DRAM timing parameters and the latency identities the paper relies on.

The two quantities everything else is built from (Section 5.3):

* A naive AAP (ACTIVATE-ACTIVATE-PRECHARGE) executed serially costs
  ``2*tRAS + tRP`` -- 80 ns for DDR3-1600 (8-8-8).
* With the split row decoder, the second ACTIVATE is overlapped with the
  first (it targets an already-activated subarray, so it needs no sense
  amplification) and the whole AAP costs ``tRAS + tAAP_OVERLAP + tRP``
  where the overlap penalty is ~4 ns from SPICE -- 49 ns for DDR3-1600.
* An AP (ACTIVATE-PRECHARGE) costs ``tRAS + tRP`` (45 ns).
* A RowClone-FPM copy is two back-to-back ACTIVATEs plus a precharge --
  the same event as an AAP; the paper quotes ~80 ns un-optimised.

All times are in nanoseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class TimingParameters:
    """JEDEC-style timing parameters for one DRAM speed grade.

    Only the parameters the Ambit analysis needs are modelled.

    Attributes
    ----------
    name: Speed-grade label (e.g. ``"DDR3-1600"``).
    tCK: Clock period.
    tRCD: ACTIVATE to READ/WRITE delay.
    tRAS: ACTIVATE to PRECHARGE delay (row restoration time).
    tRP: PRECHARGE to next ACTIVATE delay.
    tCL: READ to first data (CAS latency).
    tBL: Burst transfer time for one cache-line burst.
    tAAP_OVERLAP: Extra latency of the second, overlapped ACTIVATE of an
        AAP over plain ``tRAS`` (4 ns per the paper's SPICE estimate).
    io_gbps: Peak channel bandwidth of this interface in GB/s (used by
        the baseline cost models, not by Ambit itself).
    """

    name: str
    tCK: float
    tRCD: float
    tRAS: float
    tRP: float
    tCL: float
    tBL: float
    tAAP_OVERLAP: float = 4.0
    io_gbps: float = 12.8

    def __post_init__(self) -> None:
        for attr in ("tCK", "tRCD", "tRAS", "tRP", "tCL", "tBL"):
            if getattr(self, attr) <= 0:
                raise ConfigError(f"{self.name}: {attr} must be positive")
        if self.tAAP_OVERLAP < 0:
            raise ConfigError(f"{self.name}: tAAP_OVERLAP must be non-negative")

    # ------------------------------------------------------------------
    # Latency identities used throughout the paper.
    # ------------------------------------------------------------------
    @property
    def trc(self) -> float:
        """Row cycle time: back-to-back activations to one bank."""
        return self.tRAS + self.tRP

    def aap_latency(self, split_decoder: bool = True) -> float:
        """Latency of one AAP primitive.

        With the split row decoder (the paper's design) the two
        activations overlap: ``tRAS + 4ns + tRP`` = 49 ns on DDR3-1600.
        Without it they serialise: ``2*tRAS + tRP`` = 80 ns.
        """
        if split_decoder:
            return self.tRAS + self.tAAP_OVERLAP + self.tRP
        return 2.0 * self.tRAS + self.tRP

    def ap_latency(self) -> float:
        """Latency of one AP primitive: ``tRAS + tRP`` (45 ns on DDR3-1600)."""
        return self.tRAS + self.tRP

    def rowclone_fpm_latency(self, split_decoder: bool = False) -> float:
        """Latency of a RowClone-FPM intra-subarray copy.

        RowClone-FPM is two back-to-back ACTIVATEs plus a PRECHARGE --
        operationally identical to an AAP.  The RowClone paper (and
        Section 3.4 here) quotes ~80 ns, i.e. the un-overlapped form.
        Ambit's split decoder accelerates it to the AAP-optimised 49 ns.
        """
        return self.aap_latency(split_decoder=split_decoder)

    def activate_read_row_latency(self, row_bytes: int) -> float:
        """Time to activate a row and stream it out over the channel.

        Used by the DDR-baseline energy/latency comparisons: ``tRCD`` to
        open, then ``row_bytes`` over the channel at ``io_gbps``, then
        precharge.
        """
        transfer_ns = row_bytes / self.io_gbps
        return self.tRCD + transfer_ns + self.tRP


# ----------------------------------------------------------------------
# Speed-grade presets.
# ----------------------------------------------------------------------

def ddr3_1600() -> TimingParameters:
    """DDR3-1600 (8-8-8), the paper's reference for AAP latency.

    tCK = 1.25 ns, so 8-8-8 means tRCD = tRP = tCL = 10 ns; JEDEC
    tRAS = 35 ns.  Channel: 64-bit @ 1600 MT/s = 12.8 GB/s.
    """
    return TimingParameters(
        name="DDR3-1600",
        tCK=1.25,
        tRCD=10.0,
        tRAS=35.0,
        tRP=10.0,
        tCL=10.0,
        tBL=5.0,
        tAAP_OVERLAP=4.0,
        io_gbps=12.8,
    )


def ddr3_1333() -> TimingParameters:
    """DDR3-1333 (9-9-9), the grade used for the Table 3 energy study."""
    return TimingParameters(
        name="DDR3-1333",
        tCK=1.5,
        tRCD=13.5,
        tRAS=36.0,
        tRP=13.5,
        tCL=13.5,
        tBL=6.0,
        tAAP_OVERLAP=4.0,
        io_gbps=10.66,
    )


def ddr3_2133() -> TimingParameters:
    """DDR3-2133, the Skylake baseline's channel speed (Section 7)."""
    return TimingParameters(
        name="DDR3-2133",
        tCK=0.9375,
        tRCD=13.09,
        tRAS=33.0,
        tRP=13.09,
        tCL=13.09,
        tBL=3.75,
        tAAP_OVERLAP=4.0,
        io_gbps=17.06,
    )


def ddr4_2400() -> TimingParameters:
    """DDR4-2400, the Gem5 configuration of Table 4."""
    return TimingParameters(
        name="DDR4-2400",
        tCK=0.833,
        tRCD=13.32,
        tRAS=32.0,
        tRP=13.32,
        tCL=13.32,
        tBL=3.33,
        tAAP_OVERLAP=4.0,
        io_gbps=19.2,
    )


def hmc_like() -> TimingParameters:
    """Timing for one bank of an HMC-style 3D-stacked DRAM layer.

    3D-stacked DRAM uses the same core array timings as DDR DRAM
    (Section 1: "almost all DRAM technologies use the same underlying
    DRAM microarchitecture"), so tRAS/tRP carry over; the per-vault
    channel is 10 GB/s (HMC 2.0, 32 vaults).
    """
    return TimingParameters(
        name="HMC-2.0-bank",
        tCK=0.8,
        tRCD=13.0,
        tRAS=35.0,
        tRP=10.0,
        tCL=13.0,
        tBL=3.2,
        tAAP_OVERLAP=4.0,
        io_gbps=10.0,
    )


PRESETS = {
    "DDR3-1600": ddr3_1600,
    "DDR3-1333": ddr3_1333,
    "DDR3-2133": ddr3_2133,
    "DDR4-2400": ddr4_2400,
    "HMC-2.0-bank": hmc_like,
}


def preset(name: str) -> TimingParameters:
    """Look up a timing preset by name; raises ``ConfigError`` if unknown."""
    try:
        return PRESETS[name]()
    except KeyError:
        raise ConfigError(
            f"unknown timing preset {name!r}; available: {sorted(PRESETS)}"
        ) from None
