"""RowClone: in-DRAM bulk copy and initialisation (Seshadri et al., MICRO 2013).

Ambit depends on RowClone (Section 3.4) for every operand copy into the
designated rows and every result copy out.  Two modes are modelled:

* **RowClone-FPM** (Fast Parallel Mode): two back-to-back ACTIVATEs to
  the source and destination rows *of the same subarray*, then a
  PRECHARGE.  The first activation latches the source into the sense
  amplifiers; the second connects the destination row, which the enabled
  amplifiers overwrite.  ~80 ns un-optimised; with Ambit's split decoder
  the same overlap optimisation as AAP applies.
* **RowClone-PSM** (Pipelined Serial Mode): copies between banks over
  the internal bus, one cache line at a time -- functionally a row of
  READs from the source bank piped into WRITEs to the destination bank.
  Much slower than FPM, which is why Ambit's driver co-locates operands
  in one subarray.
"""

from __future__ import annotations

from repro.dram.chip import DramChip, RowLocation
from repro.dram.timing import TimingParameters
from repro.errors import DramProtocolError


def rowclone_fpm(
    chip: DramChip, bank: int, subarray: int, src_address: int, dst_address: int
) -> None:
    """Copy ``src_address`` -> ``dst_address`` within one subarray (FPM).

    Issues exactly the command sequence of the real mechanism:
    ``ACTIVATE src; ACTIVATE dst; PRECHARGE``.
    """
    if src_address == dst_address:
        raise DramProtocolError("RowClone-FPM source and destination are identical")
    chip.activate(bank, subarray, src_address)
    chip.activate(bank, subarray, dst_address)
    chip.precharge(bank)


def rowclone_psm(chip: DramChip, src: RowLocation, dst: RowLocation) -> None:
    """Copy a row between two different banks (PSM).

    The source row is streamed over the internal bus into the
    destination bank's row buffer.  Both banks end precharged.
    """
    if src.bank == dst.bank:
        raise DramProtocolError(
            "RowClone-PSM copies between banks; use FPM within a bank"
        )
    chip.activate(src.bank, src.subarray, src.address)
    data = chip.bank(src.bank).read_open_row()
    chip.activate(dst.bank, dst.subarray, dst.address)
    words = chip.geometry.subarray.words_per_row
    for column in range(words):
        chip.write_word(dst.bank, column, int(data[column]))
    chip.precharge(src.bank)
    chip.precharge(dst.bank)


def fpm_latency_ns(timing: TimingParameters, split_decoder: bool = False) -> float:
    """Latency of one FPM copy (= the AAP latency; ~80 ns per the paper)."""
    return timing.rowclone_fpm_latency(split_decoder=split_decoder)


def psm_latency_ns(timing: TimingParameters, row_bytes: int) -> float:
    """Latency of one PSM copy.

    Model: open both rows, stream the row over the internal bus at the
    channel rate, close both.  This is deliberately coarse -- the paper
    only needs PSM to be "significantly slower than FPM", which it is.
    """
    transfer = row_bytes / timing.io_gbps  # ns (bytes / (bytes/ns))
    return timing.tRCD + timing.tRCD + transfer + 2 * timing.tRP


def initialize_row(
    chip: DramChip, bank: int, subarray: int, control_address: int, dst_address: int
) -> None:
    """Initialise a row from a pre-set control row (C0 zeros / C1 ones).

    Ambit performs row initialisation as an FPM copy from the C-group
    (Section 3.4), so this is just RowClone-FPM with a control source.
    """
    rowclone_fpm(chip, bank, subarray, control_address, dst_address)
