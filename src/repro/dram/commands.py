"""DRAM command vocabulary.

Ambit's key interface property (Section 5.1) is that it adds **no new
commands**: every Ambit operation is expressed with the standard
``ACTIVATE`` / ``READ`` / ``WRITE`` / ``PRECHARGE`` vocabulary, and the
chip gives reserved row addresses special meaning internally.

This module defines the command records that flow from the (Ambit-aware)
memory controller to the DRAM chip model, plus a tiny trace container
used by the timing and energy layers to account for what was issued.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Tuple


class Opcode(enum.Enum):
    """The standard DRAM command opcodes used by Ambit."""

    ACTIVATE = "ACTIVATE"
    READ = "READ"
    WRITE = "WRITE"
    PRECHARGE = "PRECHARGE"
    REFRESH = "REFRESH"


@dataclass(frozen=True)
class Command:
    """One DRAM command on the bus.

    Parameters
    ----------
    opcode:
        The DRAM command type.
    bank:
        Target bank index.  ``REFRESH`` is all-bank and ignores it.
    subarray:
        Target subarray within the bank (derived from the row address by
        the chip; carried explicitly in the model for convenience).
    row:
        Row address within the subarray's address space.  This is a
        *logical* per-subarray address; reserved addresses select B- or
        C-group wordlines (see :mod:`repro.core.addressing`).  ``None``
        for READ/WRITE/PRECHARGE.
    column:
        Column (64-bit word index) for READ/WRITE.
    """

    opcode: Opcode
    bank: int = 0
    subarray: int = 0
    row: Optional[int] = None
    column: Optional[int] = None

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        loc = f"b{self.bank}.s{self.subarray}"
        if self.opcode is Opcode.ACTIVATE:
            return f"ACT {loc} row={self.row}"
        if self.opcode in (Opcode.READ, Opcode.WRITE):
            return f"{self.opcode.value} {loc} col={self.column}"
        return f"{self.opcode.value} {loc}"


def activate(bank: int, subarray: int, row: int) -> Command:
    """Convenience constructor for an ``ACTIVATE`` command."""
    return Command(Opcode.ACTIVATE, bank=bank, subarray=subarray, row=row)


def precharge(bank: int, subarray: int = 0) -> Command:
    """Convenience constructor for a ``PRECHARGE`` command."""
    return Command(Opcode.PRECHARGE, bank=bank, subarray=subarray)


def read(bank: int, subarray: int, column: int) -> Command:
    """Convenience constructor for a READ command."""
    return Command(Opcode.READ, bank=bank, subarray=subarray, column=column)


def write(bank: int, subarray: int, column: int) -> Command:
    """Convenience constructor for a WRITE command."""
    return Command(Opcode.WRITE, bank=bank, subarray=subarray, column=column)


@dataclass
class IssuedCommand:
    """A command together with the number of wordlines it raised.

    Ambit activations can raise 1, 2 or 3 wordlines (Table 1).  The
    energy model charges +22% activation energy per extra wordline
    (Section 7), so the trace records how many wordlines each ACTIVATE
    actually raised, as reported back by the chip.
    """

    command: Command
    wordlines_raised: int = 1
    #: True when the ACTIVATE hit an already-activated subarray (the
    #: second ACTIVATE of an AAP).  These are the "overlapped"
    #: activations that the split row decoder accelerates (Section 5.3).
    onto_open_row: bool = False
    #: The 64-bit word a WRITE carried (``None`` for every other
    #: command).  The functional model applies writes immediately, so
    #: without this the payload would be lost to trace dumps and replay
    #: (see :func:`repro.dram.trace_io.dump_trace_with_data`).
    write_value: Optional[int] = None


@dataclass
class CommandTrace:
    """An append-only log of issued commands.

    The chip model appends every executed command; the timing and energy
    layers fold over the trace.  Keeping the trace separate from the chip
    keeps the functional model free of accounting concerns.
    """

    entries: List[IssuedCommand] = field(default_factory=list)

    def append(self, issued: IssuedCommand) -> None:
        """Record one executed command."""
        self.entries.append(issued)

    def extend(self, issued: Iterable[IssuedCommand]) -> None:
        """Record several executed commands."""
        self.entries.extend(issued)

    def clear(self) -> None:
        """Drop all recorded commands."""
        self.entries.clear()

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[IssuedCommand]:
        return iter(self.entries)

    def counts(self) -> Tuple[int, int, int, int]:
        """Return ``(activates, precharges, reads, writes)``."""
        acts = sum(1 for e in self.entries if e.command.opcode is Opcode.ACTIVATE)
        pres = sum(1 for e in self.entries if e.command.opcode is Opcode.PRECHARGE)
        rds = sum(1 for e in self.entries if e.command.opcode is Opcode.READ)
        wrs = sum(1 for e in self.entries if e.command.opcode is Opcode.WRITE)
        return acts, pres, rds, wrs

    def weighted_activates(self, extra_wordline_factor: float = 0.22) -> float:
        """Activation count weighted by wordlines raised.

        An ACTIVATE that raises ``w`` wordlines counts as
        ``1 + extra_wordline_factor * (w - 1)`` activations, matching the
        paper's "activation energy increases by 22% for each additional
        wordline raised" (Section 7).
        """
        total = 0.0
        for entry in self.entries:
            if entry.command.opcode is Opcode.ACTIVATE:
                total += 1.0 + extra_wordline_factor * (entry.wordlines_raised - 1)
        return total
