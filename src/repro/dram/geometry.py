"""DRAM geometry description.

The paper's mechanism lives at the *subarray* level (Figure 1): a subarray
is a 2-D grid of DRAM cells, one row of sense amplifiers, and a row
decoder; many subarrays form a bank; many banks form a chip/rank.

This module defines the static geometry.  The dynamic state (cell
contents, sense-amplifier latches, bank state machines) lives in
:mod:`repro.dram.subarray`, :mod:`repro.dram.bank` and
:mod:`repro.dram.chip`.

Ambit reserves a handful of rows per subarray (Section 5.1 / Figure 7):

* **B-group** -- four designated rows ``T0..T3`` used for triple-row
  activation, plus two rows of dual-contact cells ``DCC0/DCC1`` (each of
  which has a *d-wordline* and an *n-wordline*, and costs the area of two
  regular rows).  8 wordline-rows of area total, 16 reserved addresses.
* **C-group** -- two control rows, ``C0`` (all zeros) and ``C1`` (all
  ones).
* **D-group** -- everything else; the only rows exposed to software.

With the paper's default of 1024 rows per subarray this leaves 1006
D-group rows, matching Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError

#: Number of designated TRA rows per subarray (T0..T3).
NUM_DESIGNATED_ROWS = 4

#: Number of dual-contact-cell rows per subarray (DCC0, DCC1).
NUM_DCC_ROWS = 2

#: Number of control rows per subarray (C0, C1).
NUM_CONTROL_ROWS = 2

#: Physical storage rows consumed by the B-group.  Each DCC row costs the
#: area of two regular rows (Section 5.5.1, based on Lu et al.'s layout),
#: so the area overhead is 4 + 2*2 = 8 rows, i.e. < 1% of a 1024-row
#: subarray.  Functionally, however, the B-group stores 6 rows of data.
NUM_BITWISE_STORAGE_ROWS = NUM_DESIGNATED_ROWS + NUM_DCC_ROWS

#: Number of reserved B-group row *addresses* (Table 1).
NUM_BITWISE_ADDRESSES = 16


@dataclass(frozen=True)
class SubarrayGeometry:
    """Static shape of one DRAM subarray.

    Parameters
    ----------
    rows:
        Total wordline-addressable data rows in the subarray *including*
        the reserved B- and C-group rows.  The paper uses 512 or 1024.
    row_bytes:
        Bytes latched by one activation, i.e. the row-buffer size.  The
        paper uses 8 KB across a rank.
    """

    rows: int = 1024
    row_bytes: int = 8192

    def __post_init__(self) -> None:
        if self.rows < NUM_BITWISE_ADDRESSES + NUM_CONTROL_ROWS + 1:
            raise ConfigError(
                f"subarray needs room for the reserved address groups plus "
                f"at least one data row; got rows={self.rows}"
            )
        if self.row_bytes <= 0 or self.row_bytes % 8 != 0:
            raise ConfigError(
                f"row_bytes must be a positive multiple of 8; got {self.row_bytes}"
            )

    @property
    def row_bits(self) -> int:
        """Bits per row (the width of every bulk bitwise operation)."""
        return self.row_bytes * 8

    @property
    def words_per_row(self) -> int:
        """64-bit words backing one row in the functional model."""
        return self.row_bytes // 8

    @property
    def data_rows(self) -> int:
        """Number of D-group row *addresses* exposed to software.

        Section 5.1: the subarray's address space is partitioned into
        D-group, C-group (2 addresses) and B-group (16 addresses), so a
        1024-row subarray exposes 1006 data addresses (Figure 7).  The
        B-group's 16 addresses cover only 8 rows of physical area
        (T0..T3 plus two double-area DCC rows), which is where the
        "< 1 % chip area" overhead comes from.
        """
        return self.rows - NUM_BITWISE_ADDRESSES - NUM_CONTROL_ROWS

    @property
    def storage_rows(self) -> int:
        """Physical storage rows held by the functional model.

        Layout (indices into the backing array)::

            [0 .. data_rows)                     D-group
            [data_rows, data_rows + 2)           C-group (C0, C1)
            [data_rows + 2, data_rows + 6)       T0..T3
            [data_rows + 6, data_rows + 8)       DCC0, DCC1 capacitor rows

        The model allocates ``rows`` storage rows; the couple of rows
        beyond ``data_rows + 8`` stand in for the extra physical area
        the dual-contact cells occupy.
        """
        return self.rows


@dataclass(frozen=True)
class DramGeometry:
    """Static shape of a DRAM device (chip/rank abstraction).

    The functional model does not distinguish the chips of a rank; like
    the paper it treats a rank as one logical array whose row buffer is
    ``row_bytes`` wide.
    """

    banks: int = 8
    subarrays_per_bank: int = 16
    subarray: SubarrayGeometry = field(default_factory=SubarrayGeometry)

    def __post_init__(self) -> None:
        if self.banks <= 0:
            raise ConfigError(f"banks must be positive; got {self.banks}")
        if self.subarrays_per_bank <= 0:
            raise ConfigError(
                f"subarrays_per_bank must be positive; got {self.subarrays_per_bank}"
            )

    @property
    def data_rows_per_bank(self) -> int:
        return self.subarrays_per_bank * self.subarray.data_rows

    @property
    def data_capacity_bytes(self) -> int:
        """Usable (D-group) capacity of the device."""
        return self.banks * self.data_rows_per_bank * self.subarray.row_bytes

    @property
    def row_bytes(self) -> int:
        return self.subarray.row_bytes


def small_test_geometry(
    rows: int = 32, row_bytes: int = 64, banks: int = 2, subarrays_per_bank: int = 2
) -> DramGeometry:
    """A deliberately tiny geometry for fast unit testing.

    Functionally identical to the full geometry -- only the sizes differ.
    """
    return DramGeometry(
        banks=banks,
        subarrays_per_bank=subarrays_per_bank,
        subarray=SubarrayGeometry(rows=rows, row_bytes=row_bytes),
    )
