"""Timing-constraint checker for DRAM command streams.

The functional chip model validates command *legality* (state machine);
this module validates command *timing*: given a stream of timestamped
commands, it checks the JEDEC-style constraints that a real device
would enforce electrically:

* ``tRCD``: ACTIVATE -> READ/WRITE to the same bank,
* ``tRAS``: ACTIVATE -> PRECHARGE to the same bank,
* ``tRP`` : PRECHARGE -> next ACTIVATE to the same bank,
* ``tCCD`` (modelled as ``tBL``): back-to-back column commands,
* the **Ambit exception**: the second ACTIVATE of an AAP may follow the
  first after only ``tAAP_OVERLAP`` (the split decoder's overlapped
  activation, Section 5.3) *provided* it targets the already-open
  subarray -- which the checker verifies via the issued-command flags.

The Ambit controller's schedules are checked against this in the tests,
closing the loop between the latency arithmetic and an actual legal
command timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dram.commands import IssuedCommand, Opcode
from repro.dram.timing import TimingParameters
from repro.errors import DramProtocolError


@dataclass(frozen=True)
class TimedCommand:
    """An issued command stamped with its bus time (ns)."""

    time_ns: float
    issued: IssuedCommand

    @property
    def opcode(self) -> Opcode:
        return self.issued.command.opcode

    @property
    def bank(self) -> int:
        return self.issued.command.bank


@dataclass
class _BankTiming:
    last_activate_ns: Optional[float] = None
    last_precharge_ns: Optional[float] = None
    last_column_ns: Optional[float] = None
    open_since_ns: Optional[float] = None


@dataclass
class TimingViolation:
    """One detected constraint violation."""

    constraint: str
    bank: int
    at_ns: float
    detail: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.constraint} on bank {self.bank} @ {self.at_ns} ns: {self.detail}"


class TimingChecker:
    """Validates a timed command stream against a speed grade."""

    def __init__(self, timing: TimingParameters, strict: bool = True):
        self.timing = timing
        self.strict = strict
        self.violations: List[TimingViolation] = []
        self._banks: Dict[int, _BankTiming] = {}

    def _bank(self, index: int) -> _BankTiming:
        return self._banks.setdefault(index, _BankTiming())

    def _violate(self, constraint: str, bank: int, at: float, detail: str) -> None:
        violation = TimingViolation(constraint, bank, at, detail)
        if self.strict:
            raise DramProtocolError(str(violation))
        self.violations.append(violation)

    # ------------------------------------------------------------------
    def check(self, stream: List[TimedCommand]) -> List[TimingViolation]:
        """Validate a whole stream; returns violations (non-strict mode)."""
        t = self.timing
        for cmd in sorted(stream, key=lambda c: c.time_ns):
            bank = self._bank(cmd.bank)
            now = cmd.time_ns
            if cmd.opcode is Opcode.ACTIVATE:
                self._check_activate(bank, cmd, now)
            elif cmd.opcode is Opcode.PRECHARGE:
                if bank.last_activate_ns is not None and bank.open_since_ns is not None:
                    elapsed = now - bank.open_since_ns
                    if elapsed + 1e-9 < t.tRAS:
                        self._violate(
                            "tRAS", cmd.bank, now,
                            f"precharge {elapsed:.1f} ns after activate "
                            f"(< tRAS {t.tRAS})",
                        )
                bank.last_precharge_ns = now
                bank.open_since_ns = None
            elif cmd.opcode in (Opcode.READ, Opcode.WRITE):
                if bank.open_since_ns is None:
                    self._violate(
                        "open-row", cmd.bank, now,
                        f"{cmd.opcode.value} with no open row",
                    )
                elif now - bank.open_since_ns + 1e-9 < t.tRCD:
                    self._violate(
                        "tRCD", cmd.bank, now,
                        f"column command {now - bank.open_since_ns:.1f} ns "
                        f"after activate (< tRCD {t.tRCD})",
                    )
                if (
                    bank.last_column_ns is not None
                    and now - bank.last_column_ns + 1e-9 < t.tBL
                ):
                    self._violate(
                        "tCCD", cmd.bank, now,
                        f"column commands {now - bank.last_column_ns:.1f} ns "
                        f"apart (< burst {t.tBL})",
                    )
                bank.last_column_ns = now
        return self.violations

    def _check_activate(self, bank: _BankTiming, cmd: TimedCommand, now: float) -> None:
        t = self.timing
        if bank.last_precharge_ns is not None:
            gap = now - bank.last_precharge_ns
            if gap + 1e-9 < t.tRP and bank.open_since_ns is None:
                self._violate(
                    "tRP", cmd.bank, now,
                    f"activate {gap:.1f} ns after precharge (< tRP {t.tRP})",
                )
        if bank.open_since_ns is not None:
            # Second ACTIVATE while open: only legal as the overlapped
            # AAP activation onto the open subarray.
            gap = now - bank.open_since_ns
            if not cmd.issued.onto_open_row:
                self._violate(
                    "bank-open", cmd.bank, now,
                    "fresh activation while a row is open",
                )
            elif gap + 1e-9 < t.tAAP_OVERLAP:
                self._violate(
                    "tAAP", cmd.bank, now,
                    f"overlapped activate {gap:.1f} ns after the first "
                    f"(< {t.tAAP_OVERLAP})",
                )
        else:
            bank.open_since_ns = now
        bank.last_activate_ns = now


def schedule_aap_stream(
    trace: List[IssuedCommand], timing: TimingParameters, split_decoder: bool = True
) -> List[TimedCommand]:
    """Assign bus times to an Ambit command trace.

    Reconstructs the controller's schedule for a single-bank stream of
    AAP/AP groups: fresh ACTIVATE at t; an overlapped second ACTIVATE at
    ``t + tAAP_OVERLAP`` (or after a full ``tRAS`` without the split
    decoder); PRECHARGE ``tRAS`` after the *last* activation's data is
    restored -- matching the 49/80 ns AAP identities.
    """
    t = timing
    out: List[TimedCommand] = []
    now = 0.0
    i = 0
    while i < len(trace):
        cmd = trace[i]
        if cmd.command.opcode is not Opcode.ACTIVATE:
            raise DramProtocolError(
                "AAP stream must start each group with ACTIVATE"
            )
        start = now
        out.append(TimedCommand(start, cmd))
        i += 1
        second_offset = 0.0
        if (
            i < len(trace)
            and trace[i].command.opcode is Opcode.ACTIVATE
            and trace[i].onto_open_row
        ):
            second_offset = t.tAAP_OVERLAP if split_decoder else t.tRAS
            out.append(TimedCommand(start + second_offset, trace[i]))
            i += 1
        if i < len(trace) and trace[i].command.opcode is Opcode.PRECHARGE:
            pre_time = start + second_offset + t.tRAS
            out.append(TimedCommand(pre_time, trace[i]))
            now = pre_time + t.tRP
            i += 1
        else:
            now = start + second_offset + t.tRAS + t.tRP
    return out
