"""Functional model of one DRAM subarray.

A subarray (Figure 1) is the unit at which Ambit operates: a grid of
cells sharing one row of sense amplifiers.  This model is
*command-accurate*: the only ways to change state are the DRAM protocol
operations (``activate``/``read``/``write``/``precharge``) plus an
explicit backdoor used to initialise memory images (the equivalent of a
simulator's functional access port).

Activation semantics (the part that makes Ambit work):

* A **fresh activation** (subarray precharged) charge-shares all raised
  cells with the bitline and senses the result -- the majority function
  for a triple-row activation (Section 3.1).  Sensing *restores* every
  raised cell to the sensed value (state 3 of Figure 4), which is why
  TRA overwrites its sources (issue 3 in Section 3.2).
* A **second activation** while the sense amplifiers are enabled (the
  second ACTIVATE of an AAP, Section 5.2) performs no sensing: the
  amplifiers simply overwrite the newly connected cells with the latched
  value.  This is also exactly RowClone-FPM's copy step.
* Cells behind an **n-wordline** (dual-contact cells, Section 4) see the
  negated bitline: they contribute their complement during charge
  sharing and store the complement of the latch during restoration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.dram.cell import DirectRowDecoder, RowDecoder, Wordline
from repro.dram.geometry import SubarrayGeometry
from repro.dram.senseamp import SenseAmplifierArray
from repro.errors import AddressError, DramProtocolError


class Subarray:
    """One DRAM subarray: cells + sense amplifiers + row decoder.

    Parameters
    ----------
    geometry:
        Static shape (row count, row width).
    decoder:
        Row-address decoder.  Defaults to the commodity one-to-one
        decoder; the Ambit chip installs the split B-group decoder from
        :mod:`repro.core.addressing`.
    charge_model:
        Optional analog TRA resolution model (see
        :mod:`repro.circuit.senseamp_dynamics`).  ``None`` = ideal
        majority behaviour.
    cells / last_restore:
        Optional externally owned backing arrays (e.g. views into a
        :class:`~repro.parallel.shm.SharedRowStore` segment) of shape
        ``(storage_rows, words_per_row)`` uint64 and ``(storage_rows,)``
        float64.  When given, all cell state lives in (and is observed
        through) those buffers; by default the subarray allocates its
        own zero-filled arrays.
    """

    def __init__(
        self,
        geometry: SubarrayGeometry,
        decoder: Optional[RowDecoder] = None,
        charge_model: Optional[object] = None,
        cells: Optional[np.ndarray] = None,
        last_restore: Optional[np.ndarray] = None,
    ):
        self.geometry = geometry
        self.decoder = decoder if decoder is not None else DirectRowDecoder(
            geometry.storage_rows
        )
        self.amps = SenseAmplifierArray(geometry.words_per_row, charge_model)
        #: Packed cell contents, one uint64 row per storage row.  For a
        #: DCC row, the stored value is the one observed through the
        #: d-wordline.
        cells_shape = (geometry.storage_rows, geometry.words_per_row)
        if cells is None:
            cells = np.zeros(cells_shape, dtype=np.uint64)
        elif cells.shape != cells_shape or cells.dtype != np.uint64:
            raise AddressError(
                f"external cell buffer must be uint64 {cells_shape}; "
                f"got {cells.dtype} {cells.shape}"
            )
        self.cells = cells
        #: Wordlines currently raised (empty when precharged).
        self.raised: List[Wordline] = []
        #: Last refresh/restore time per storage row, in nanoseconds.
        #: Any activation that restores a row refreshes it (Section 3.3:
        #: "each copy operation refreshes the cells of the destination
        #: row").
        if last_restore is None:
            last_restore = np.zeros(geometry.storage_rows, dtype=np.float64)
        elif (
            last_restore.shape != (geometry.storage_rows,)
            or last_restore.dtype != np.float64
        ):
            raise AddressError(
                f"external restore buffer must be float64 "
                f"({geometry.storage_rows},); got "
                f"{last_restore.dtype} {last_restore.shape}"
            )
        self.last_restore_ns = last_restore
        #: Injected stuck-at faults: storage row -> the value its cells
        #: are stuck at.  Restores and pokes cannot change a stuck row,
        #: modelling the hard faults the manufacturing test hunts for
        #: (Section 5.5.3).
        self.stuck: Dict[int, np.ndarray] = {}
        #: Storage rows whose n-wordline contact has failed: the cell
        #: behaves like a regular cell (no negation) on both charge
        #: sharing and restore.  Only meaningful for DCC rows; modelled
        #: per storage row so the injector stays decoder-agnostic.
        self.dcc_faults: Set[int] = set()
        #: Optional variation-fault hook, called once per *fresh* triple
        #: row activation with the sensed row; returning a uint64 flip
        #: mask XORs it into the sensed value before restore (a
        #: process-variation TRA failure, Section 5.5.2 / Figure 5).
        #: Returning ``None`` leaves the activation ideal.
        self.tra_fault_hook = None

    # ------------------------------------------------------------------
    # Protocol operations
    # ------------------------------------------------------------------
    @property
    def activated(self) -> bool:
        return self.amps.enabled

    def activate(self, address: int, now_ns: float = 0.0) -> Tuple[int, bool]:
        """Execute an ACTIVATE to ``address``.

        Returns ``(wordlines_raised, onto_open_row)`` for the command
        trace.  ``onto_open_row`` is True for the overlapped second
        activation of an AAP.
        """
        wordlines = self.decoder.decode(address)
        self._check_rows(wordlines)
        if not self.amps.enabled:
            contributions = [
                (self.cells[wl.row], self._negates(wl)) for wl in wordlines
            ]
            sensed = self.amps.sense(contributions)
            if self.tra_fault_hook is not None and len(wordlines) == 3:
                mask = self.tra_fault_hook(sensed)
                if mask is not None:
                    sensed = sensed ^ np.asarray(mask, dtype=np.uint64)
                    self.amps.overwrite(sensed)
                    sensed = self.amps.latch
            self.raised = list(wordlines)
            self._restore(sensed, wordlines, now_ns)
            return len(wordlines), False
        # Second ACTIVATE of an AAP: copy the latch into the new rows.
        latch = self.amps.latch
        self._restore(latch, wordlines, now_ns)
        self.raised.extend(wl for wl in wordlines if wl not in self.raised)
        return len(wordlines), True

    def precharge(self) -> None:
        """Lower all wordlines and equalise the bitlines."""
        self.raised = []
        self.amps.precharge()

    def read_word(self, column: int) -> int:
        """READ one 64-bit word from the open row."""
        self._check_column(column)
        return int(self.amps.latch[column])

    def write_word(self, column: int, value: int, now_ns: float = 0.0) -> None:
        """WRITE one 64-bit word to the open row.

        The write drives the sense amplifiers, which in turn update every
        raised cell (polarity-aware), exactly as on a real device.
        """
        self._check_column(column)
        latch = self.amps.latch.copy()
        latch[column] = np.uint64(value & 0xFFFFFFFFFFFFFFFF)
        self.amps.overwrite(latch)
        self._restore(latch, tuple(self.raised), now_ns)

    def read_open_row(self) -> np.ndarray:
        """Read the entire open row (a burst of READs, packed uint64)."""
        return self.amps.latch.copy()

    def write_open_row(self, value: np.ndarray, now_ns: float = 0.0) -> None:
        """Overwrite the entire open row (a burst of WRITEs)."""
        if value.shape != (self.geometry.words_per_row,):
            raise DramProtocolError(
                f"row write needs shape ({self.geometry.words_per_row},); "
                f"got {value.shape}"
            )
        self.amps.overwrite(value.astype(np.uint64))
        self._restore(self.amps.latch, tuple(self.raised), now_ns)

    # ------------------------------------------------------------------
    # Backdoor (functional/initialisation) access
    # ------------------------------------------------------------------
    def peek(self, storage_row: int) -> np.ndarray:
        """Read a storage row without issuing DRAM commands (debug port)."""
        self._check_storage_row(storage_row)
        return self.cells[storage_row].copy()

    def poke(self, storage_row: int, value: np.ndarray, now_ns: float = 0.0) -> None:
        """Write a storage row without issuing DRAM commands (debug port)."""
        self._check_storage_row(storage_row)
        if value.shape != (self.geometry.words_per_row,):
            raise AddressError(
                f"poke needs shape ({self.geometry.words_per_row},); got {value.shape}"
            )
        if storage_row in self.stuck:
            self.cells[storage_row] = self.stuck[storage_row]
        else:
            self.cells[storage_row] = value.astype(np.uint64)
        self.last_restore_ns[storage_row] = now_ns

    def peek_batch(self, storage_rows) -> np.ndarray:
        """Read several storage rows at once (debug port).

        Returns an ``(len(storage_rows), words_per_row)`` uint64 copy.
        This is the read side of the batch engine's fused kernels: one
        fancy-indexed numpy gather instead of N per-row peeks.
        """
        index = self._batch_index(storage_rows)
        return self.cells[index]  # advanced indexing copies

    def poke_batch(self, storage_rows, values: np.ndarray, now_ns: float = 0.0) -> None:
        """Write several storage rows at once (debug port).

        Stuck-at rows keep their pinned value, exactly as :meth:`poke`;
        every written row counts as restored at ``now_ns``.  Duplicate
        row indices are rejected (assignment order would be ambiguous).
        """
        index = self._batch_index(storage_rows, unique=True)
        values = np.asarray(values, dtype=np.uint64)
        if values.shape != (index.size, self.geometry.words_per_row):
            raise AddressError(
                f"poke_batch needs shape ({index.size}, "
                f"{self.geometry.words_per_row}); got {values.shape}"
            )
        self.cells[index] = values
        if self.stuck:
            for row in np.intersect1d(index, list(self.stuck)):
                self.cells[row] = self.stuck[int(row)]
        self.last_restore_ns[index] = now_ns

    def touch_rows(self, storage_rows, now_ns: float) -> None:
        """Mark rows as restored at ``now_ns`` without changing contents.

        The batch engine uses this for the *source* rows of a fused
        operation: on the command path their activation restores (and
        thereby refreshes) them.
        """
        self.last_restore_ns[self._batch_index(storage_rows)] = now_ns

    def _batch_index(self, storage_rows, unique: bool = False) -> np.ndarray:
        index = np.asarray(storage_rows, dtype=np.intp)
        if index.ndim != 1:
            raise AddressError(
                f"batch row index must be one-dimensional; got shape {index.shape}"
            )
        if index.size:
            if int(index.min()) < 0 or int(index.max()) >= self.geometry.storage_rows:
                raise AddressError(
                    f"batch rows out of range [0, {self.geometry.storage_rows})"
                )
            if unique and np.unique(index).size != index.size:
                raise AddressError("batch write targets duplicate rows")
        return index

    # ------------------------------------------------------------------
    # Retention bookkeeping (issue 4 of Section 3.2)
    # ------------------------------------------------------------------
    def refresh_all(self, now_ns: float) -> None:
        """Model a REFRESH sweep restoring every row at ``now_ns``."""
        self.last_restore_ns[:] = now_ns

    def stale_rows(self, now_ns: float, retention_ns: float) -> np.ndarray:
        """Indices of storage rows whose charge is older than the
        retention window (64 ms nominal)."""
        return np.nonzero(now_ns - self.last_restore_ns > retention_ns)[0]

    def age_ns(self, storage_row: int, now_ns: float) -> float:
        """Time since the given row was last restored."""
        self._check_storage_row(storage_row)
        return float(now_ns - self.last_restore_ns[storage_row])

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def inject_stuck_row(self, storage_row: int, value: np.ndarray) -> None:
        """Pin a storage row to ``value`` (a hard fault for test flows)."""
        self._check_storage_row(storage_row)
        pinned = np.asarray(value, dtype=np.uint64).copy()
        if pinned.shape != (self.geometry.words_per_row,):
            raise AddressError(
                f"stuck value needs shape ({self.geometry.words_per_row},); "
                f"got {pinned.shape}"
            )
        self.stuck[storage_row] = pinned
        self.cells[storage_row] = pinned

    def clear_stuck_row(self, storage_row: int) -> None:
        """Remove an injected fault (the row becomes writable again).

        The row keeps its pinned contents until the next write/restore;
        clearing never resurrects the pre-fault data.
        """
        self._check_storage_row(storage_row)
        self.stuck.pop(storage_row, None)

    def inject_dcc_fault(self, storage_row: int) -> None:
        """Break the n-wordline contact of a dual-contact-cell row.

        The row stops negating: charge sharing and restores through its
        n-wordline behave as if through the d-wordline (Section 4 / the
        'bitline-bar' contact failing open is read as the true value).
        """
        self._check_storage_row(storage_row)
        self.dcc_faults.add(storage_row)

    def clear_dcc_fault(self, storage_row: int) -> None:
        """Repair an injected n-wordline fault."""
        self._check_storage_row(storage_row)
        self.dcc_faults.discard(storage_row)

    @property
    def has_faults(self) -> bool:
        """True when any injected fault state could perturb operations."""
        return bool(self.stuck or self.dcc_faults or self.tra_fault_hook)

    def _negates(self, wl: Wordline) -> bool:
        return wl.negated and wl.row not in self.dcc_faults

    # ------------------------------------------------------------------
    def _restore(
        self, latch: np.ndarray, wordlines: Tuple[Wordline, ...], now_ns: float
    ) -> None:
        for wl in wordlines:
            if wl.row in self.stuck:
                self.cells[wl.row] = self.stuck[wl.row]
            else:
                self.cells[wl.row] = ~latch if self._negates(wl) else latch
            self.last_restore_ns[wl.row] = now_ns

    def _check_rows(self, wordlines: Tuple[Wordline, ...]) -> None:
        for wl in wordlines:
            self._check_storage_row(wl.row)

    def _check_storage_row(self, row: int) -> None:
        if not 0 <= row < self.geometry.storage_rows:
            raise AddressError(
                f"storage row {row} out of range [0, {self.geometry.storage_rows})"
            )

    def _check_column(self, column: int) -> None:
        if not 0 <= column < self.geometry.words_per_row:
            raise AddressError(
                f"column {column} out of range [0, {self.geometry.words_per_row})"
            )
