"""Sense-amplifier array: charge sharing and sensing, vectorised per row.

The sense amplifier (Figure 2) is a pair of cross-coupled inverters.
During activation it resolves the sign of the bitline's deviation from
VDD/2 after charge sharing, then drives the bitline fully to VDD or 0,
restoring every connected cell (Figure 3).

Two resolution modes are supported:

* **Ideal** -- the bitwise majority of the connected cells' effective
  values (a cell behind an n-wordline contributes its complement).  This
  is the paper's Equation 1 with nominal parameters: the deviation is
  positive iff at least ``ceil(k/2)`` of ``k`` connected cells are
  charged, which for k in {1, 3} is exactly the majority function.
* **Analog** -- the deviation is computed from per-cell capacitances and
  voltages drawn from a process-variation model
  (:mod:`repro.circuit`), so triple-row activations can *fail* exactly
  the way Section 6 studies.

Rows are stored as packed ``uint64`` numpy arrays; all operations are
vectorised across the full row width.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import DramProtocolError


def majority3(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Bitwise 3-input majority: ``ab + bc + ca`` (Section 3.1)."""
    return (a & b) | (b & c) | (c & a)


class SenseAmplifierArray:
    """The row of sense amplifiers of one subarray.

    Parameters
    ----------
    words:
        Row width in 64-bit words.
    charge_model:
        Optional analog resolution model.  When provided, fresh
        activations resolve through it instead of the ideal majority;
        the model receives the effective per-bit cell values (unpacked
        to ``uint8``) and returns the sensed bits.  See
        :class:`repro.circuit.senseamp_dynamics.AnalogSenseModel`.
    """

    def __init__(self, words: int, charge_model: Optional[object] = None):
        if words <= 0:
            raise DramProtocolError(f"sense amp array needs width > 0; got {words}")
        self.words = words
        self.charge_model = charge_model
        self._latch: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """True between sensing and the next precharge."""
        return self._latch is not None

    @property
    def latch(self) -> np.ndarray:
        """The sensed row value (bitline side).  Raises if precharged."""
        if self._latch is None:
            raise DramProtocolError("sense amplifiers are not enabled (precharged)")
        return self._latch

    def precharge(self) -> None:
        """Disable the amplifiers and equalise the bitlines (state 1/5, Fig. 3)."""
        self._latch = None

    # ------------------------------------------------------------------
    # Sensing
    # ------------------------------------------------------------------
    def sense(self, contributions: List[Tuple[np.ndarray, bool]]) -> np.ndarray:
        """Charge-share the given cells and amplify.

        Parameters
        ----------
        contributions:
            ``(stored_row, negated)`` pairs for every raised wordline.
            ``stored_row`` is the packed uint64 row; ``negated`` marks an
            n-wordline connection (contributes the complement).

        Returns
        -------
        The sensed row (packed uint64), which is also latched.
        """
        if self._latch is not None:
            raise DramProtocolError(
                "sense() on enabled amplifiers; issue PRECHARGE first "
                "(use overwrite() for the second ACTIVATE of an AAP)"
            )
        effective = [(~row if negated else row) for row, negated in contributions]
        k = len(effective)
        if k == 1:
            sensed = effective[0].copy()
        elif k == 3:
            if self.charge_model is not None:
                sensed = self._sense_analog(effective)
            else:
                sensed = majority3(*effective)
        else:
            raise DramProtocolError(
                f"charge sharing with {k} cells per bitline is unresolvable: "
                f"fresh activations must raise 1 or 3 wordlines"
            )
        self._latch = sensed
        return sensed

    def _sense_analog(self, effective: List[np.ndarray]) -> np.ndarray:
        """Resolve a triple-row activation through the analog model."""
        bits = np.stack(
            [_unpack_bits(row) for row in effective]
        )  # shape (3, row_bits)
        sensed_bits = self.charge_model.resolve_tra(bits)
        return _pack_bits(sensed_bits, self.words)

    def overwrite(self, value: np.ndarray) -> None:
        """Force the latch to ``value`` (WRITE command path)."""
        if self._latch is None:
            raise DramProtocolError("cannot WRITE to precharged sense amplifiers")
        self._latch = value.copy()


def _unpack_bits(packed: np.ndarray) -> np.ndarray:
    """uint64-packed row -> uint8 array of individual bits (LSB-first)."""
    as_bytes = packed.view(np.uint8)
    return np.unpackbits(as_bytes, bitorder="little")


def _pack_bits(bits: np.ndarray, words: int) -> np.ndarray:
    """uint8 bit array -> packed uint64 row of the given word count."""
    packed_bytes = np.packbits(bits, bitorder="little")
    return packed_bytes.view(np.uint64)[:words].copy()
