"""A conventional memory controller with FR-FCFS scheduling.

The application study (Section 8, Table 4) runs on a system whose memory
controller uses FR-FCFS (first-ready, first-come-first-served) request
scheduling.  This module provides that substrate: a request queue, a
per-bank row-buffer state model, and a scheduler that prioritises
row-buffer hits over older requests, computing per-request service times
from the DRAM timing parameters.

The Ambit controller (:mod:`repro.core.controller`) interleaves its AAP
sequences with regular requests through this same machinery
(Section 5.5.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dram.timing import TimingParameters
from repro.errors import SimulationError


class RequestType(enum.Enum):
    """Memory request direction."""
    READ = "READ"
    WRITE = "WRITE"


@dataclass
class MemRequest:
    """One cache-line-granularity memory request."""

    rtype: RequestType
    bank: int
    row: int
    arrival_ns: float = 0.0
    #: Filled by the scheduler.
    start_ns: Optional[float] = None
    finish_ns: Optional[float] = None


@dataclass
class _BankState:
    open_row: Optional[int] = None
    ready_ns: float = 0.0  # earliest time the bank can accept a command


@dataclass
class FrFcfsScheduler:
    """First-Ready FCFS request scheduler over a multi-bank device.

    Service-time model per request:

    * row-buffer hit: ``tCL + tBL``
    * row-buffer miss, bank precharged (empty): ``tRCD + tCL + tBL``
    * row-buffer conflict: ``tRP + tRCD + tCL + tBL`` (and the previous
      activation must have aged past ``tRAS``)

    Banks operate in parallel; the shared data bus serialises the burst
    transfers (``tBL``).
    """

    timing: TimingParameters
    banks: int = 8
    #: Optional :class:`repro.obs.tracer.Tracer`; serviced requests are
    #: emitted as ``mem_request`` spans (bank, row, hit/miss class).
    tracer: Optional[object] = None
    queue: List[MemRequest] = field(default_factory=list)
    _bank_states: Dict[int, _BankState] = field(default_factory=dict)
    _bus_free_ns: float = 0.0
    _act_time: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.banks <= 0:
            raise SimulationError("scheduler needs at least one bank")
        for b in range(self.banks):
            self._bank_states[b] = _BankState()
            self._act_time[b] = -1e18

    # ------------------------------------------------------------------
    def enqueue(self, request: MemRequest) -> None:
        """Add a request to the scheduling queue."""
        if not 0 <= request.bank < self.banks:
            raise SimulationError(
                f"request targets bank {request.bank}, device has {self.banks}"
            )
        self.queue.append(request)

    def _pick(self, now_ns: float) -> Optional[int]:
        """FR-FCFS policy: oldest row-buffer hit, else oldest request."""
        arrived = [
            (i, r) for i, r in enumerate(self.queue) if r.arrival_ns <= now_ns
        ]
        if not arrived:
            return None
        for i, r in arrived:  # queue order == age order
            if self._bank_states[r.bank].open_row == r.row:
                return i
        return arrived[0][0]

    def _service(self, request: MemRequest, now_ns: float) -> float:
        """Issue the request; returns its finish time."""
        t = self.timing
        bank = self._bank_states[request.bank]
        start = max(now_ns, bank.ready_ns, request.arrival_ns)
        access_class = "hit"
        if bank.open_row == request.row:
            latency = t.tCL + t.tBL
        elif bank.open_row is None:
            start = max(start, self._act_time[request.bank] + t.trc)
            latency = t.tRCD + t.tCL + t.tBL
            self._act_time[request.bank] = start
            bank.open_row = request.row
            access_class = "miss"
        else:
            # Conflict: precharge (respecting tRAS), activate, access.
            start = max(start, self._act_time[request.bank] + t.tRAS)
            latency = t.tRP + t.tRCD + t.tCL + t.tBL
            self._act_time[request.bank] = start + t.tRP
            bank.open_row = request.row
            access_class = "conflict"
        # Serialise the burst on the shared data bus.
        data_start = max(start + latency - t.tBL, self._bus_free_ns)
        finish = data_start + t.tBL
        self._bus_free_ns = finish
        bank.ready_ns = finish
        request.start_ns = start
        request.finish_ns = finish
        if self.tracer is not None:
            self.tracer.span(
                "mem_request", start, finish - start,
                bank=request.bank, row=request.row,
                rtype=request.rtype.value, access=access_class,
            )
        return finish

    def run(self) -> Tuple[float, List[MemRequest]]:
        """Drain the queue; returns ``(makespan_ns, completed_requests)``.

        Requests are scheduled one at a time (command-level pipelining is
        folded into the service-time model); the returned makespan is the
        finish time of the last request.
        """
        completed: List[MemRequest] = []
        now = 0.0
        pending = sorted(self.queue, key=lambda r: r.arrival_ns)
        self.queue = pending
        while self.queue:
            idx = self._pick(now)
            if idx is None:
                now = min(r.arrival_ns for r in self.queue)
                continue
            request = self.queue.pop(idx)
            self._service(request, now)
            # The next scheduling decision happens once this request's
            # burst occupies the bus; banks keep operating in parallel
            # through their per-bank ready times.
            now = max(now, (request.start_ns or now) + self.timing.tBL)
            completed.append(request)
        makespan = max((r.finish_ns or 0.0) for r in completed) if completed else 0.0
        return makespan, completed

    # ------------------------------------------------------------------
    def row_hit_rate(self, completed: List[MemRequest]) -> float:
        """Fraction of requests that hit the row buffer (diagnostic)."""
        if not completed:
            return 0.0
        hits = 0
        open_rows: Dict[int, Optional[int]] = {b: None for b in range(self.banks)}
        for r in sorted(completed, key=lambda r: r.start_ns or 0.0):
            if open_rows[r.bank] == r.row:
                hits += 1
            open_rows[r.bank] = r.row
        return hits / len(completed)
