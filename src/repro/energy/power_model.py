"""DRAM + channel energy model (the Rambus-power-model substitute).

Section 7 / Table 3 compare the energy of bulk bitwise operations on the
DDR3 interface against Ambit, for DDR3-1333:

* **DDR3 path**: every operand row crosses the channel (reads for the
  sources, a write for the destination), so energy is dominated by
  per-byte DRAM access + I/O energy, plus an activate/precharge per row
  touched.
* **Ambit path**: nothing crosses the channel; energy is activates and
  precharges only.  "The activation energy increases by 22% for each
  additional wordline raised."

Calibration
-----------
Three constants reproduce Table 3's regime (derivation in
EXPERIMENTS.md):

* ``act_nj = 2.8`` and ``pre_nj = 0.8`` make one AAP cost 6.4 nJ per
  8 KB row.  Table 3's Ambit column is AAP-count arithmetic: not = 2
  AAPs -> 12.8 nJ/row = 1.6 nJ/KB; and/or = 4 -> 3.2 (+ TRA wordline
  surcharge); nand/nor = 5 -> 4.0; xor/xnor = 5 AAP + 2 AP -> 5.5.
* ``channel_nj_per_kb = 46`` makes the DDR3 column work out: not moves
  2 rows -> ~93 nJ/KB; two-operand ops move 3 rows -> ~138 nJ/KB.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.microprograms import BulkOp
from repro.dram.commands import CommandTrace, Opcode
from repro.errors import ConfigError

#: Row size the activation energies are referenced to (the paper's 8 KB).
REFERENCE_ROW_BYTES = 8192


@dataclass(frozen=True)
class EnergyParameters:
    """Energy constants (nanojoules), referenced to an 8 KB row."""

    #: Energy of one single-wordline ACTIVATE (includes restore).
    act_nj: float = 2.8
    #: Energy of one PRECHARGE.
    pre_nj: float = 0.8
    #: Activation surcharge per additional wordline raised (+22 %).
    extra_wordline_factor: float = 0.22
    #: DRAM access + channel I/O energy per kilobyte moved over the
    #: DDR interface.
    channel_nj_per_kb: float = 46.0

    def __post_init__(self) -> None:
        if min(self.act_nj, self.pre_nj, self.channel_nj_per_kb) <= 0:
            raise ConfigError("energy constants must be positive")
        if self.extra_wordline_factor < 0:
            raise ConfigError("extra_wordline_factor must be non-negative")

    # ------------------------------------------------------------------
    def activate_nj(self, wordlines: int, row_bytes: int) -> float:
        """Energy of one ACTIVATE raising ``wordlines`` wordlines."""
        scale = row_bytes / REFERENCE_ROW_BYTES
        return self.act_nj * scale * (
            1.0 + self.extra_wordline_factor * (wordlines - 1)
        )

    def precharge_nj(self, row_bytes: int) -> float:
        """Energy of one PRECHARGE, scaled to the row size."""
        return self.pre_nj * row_bytes / REFERENCE_ROW_BYTES

    def transfer_nj(self, num_bytes: int) -> float:
        """Energy of moving bytes over the DDR channel."""
        return self.channel_nj_per_kb * num_bytes / 1024.0


DEFAULT_ENERGY = EnergyParameters()


def trace_energy_nj(
    trace: CommandTrace,
    row_bytes: int,
    params: EnergyParameters = DEFAULT_ENERGY,
) -> float:
    """Fold a command trace into total energy (Ambit-side accounting).

    READ/WRITE commands move one 64-bit word over the channel each.
    """
    total = 0.0
    for entry in trace:
        opcode = entry.command.opcode
        if opcode is Opcode.ACTIVATE:
            total += params.activate_nj(entry.wordlines_raised, row_bytes)
        elif opcode is Opcode.PRECHARGE:
            total += params.precharge_nj(row_bytes)
        elif opcode in (Opcode.READ, Opcode.WRITE):
            total += params.transfer_nj(8)
    return total


#: Rows moved over the channel by the DDR3 (processor-side) realisation
#: of each op: read every source, write the destination.
_DDR_ROWS_MOVED = {
    BulkOp.NOT: 2,
    BulkOp.COPY: 2,
    BulkOp.AND: 3,
    BulkOp.OR: 3,
    BulkOp.NAND: 3,
    BulkOp.NOR: 3,
    BulkOp.XOR: 3,
    BulkOp.XNOR: 3,
}


def ddr_op_energy_nj(
    op: BulkOp,
    row_bytes: int = REFERENCE_ROW_BYTES,
    params: EnergyParameters = DEFAULT_ENERGY,
) -> float:
    """Energy of one row-sized op executed over the DDR3 interface.

    The processor streams the source rows in and the result out; each
    row touched costs an activate/precharge pair plus its transfer.
    """
    rows = _DDR_ROWS_MOVED[op]
    return rows * (
        params.transfer_nj(row_bytes)
        + params.activate_nj(1, row_bytes)
        + params.precharge_nj(row_bytes)
    )


def ddr_op_energy_nj_per_kb(
    op: BulkOp, params: EnergyParameters = DEFAULT_ENERGY
) -> float:
    """Table 3's unit: nJ per KB of operation (row-size independent)."""
    return ddr_op_energy_nj(op, REFERENCE_ROW_BYTES, params) / (
        REFERENCE_ROW_BYTES / 1024
    )
