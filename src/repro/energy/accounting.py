"""The Table 3 experiment: per-operation energy, DDR3 vs Ambit.

``table3_experiment`` executes each bulk operation on a real (small)
Ambit device, folds the resulting command trace into energy, normalises
to nJ/KB, and compares against the DDR3-interface cost of the same
operation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp
from repro.dram.chip import RowLocation
from repro.dram.geometry import small_test_geometry
from repro.energy.power_model import (
    DEFAULT_ENERGY,
    EnergyParameters,
    ddr_op_energy_nj_per_kb,
    trace_energy_nj,
)

#: Paper's Table 3, nJ/KB (DDR3, Ambit) per operation class.
TABLE3_PAPER: Dict[str, Tuple[float, float]] = {
    "not": (93.7, 1.6),
    "and/or": (137.9, 3.2),
    "nand/nor": (137.9, 4.0),
    "xor/xnor": (137.9, 5.5),
}

#: Operation classes of Table 3 (members share a command structure).
OP_CLASSES: Dict[str, Tuple[BulkOp, ...]] = {
    "not": (BulkOp.NOT,),
    "and/or": (BulkOp.AND, BulkOp.OR),
    "nand/nor": (BulkOp.NAND, BulkOp.NOR),
    "xor/xnor": (BulkOp.XOR, BulkOp.XNOR),
}


@dataclass(frozen=True)
class EnergyRow:
    """One row of the reproduced Table 3."""

    op_class: str
    ddr3_nj_per_kb: float
    ambit_nj_per_kb: float

    @property
    def reduction(self) -> float:
        return self.ddr3_nj_per_kb / self.ambit_nj_per_kb


def ambit_op_energy_nj_per_kb(
    op: BulkOp,
    device: AmbitDevice = None,
    params: EnergyParameters = DEFAULT_ENERGY,
) -> float:
    """Measure one op's Ambit energy by executing it and folding the trace."""
    if device is None:
        device = AmbitDevice(geometry=small_test_geometry())
    device.reset_stats()
    words = device.geometry.subarray.words_per_row
    rng = np.random.default_rng(0)
    loc = lambda a: RowLocation(bank=0, subarray=0, address=a)
    device.write_row(loc(0), rng.integers(0, 2**63, size=words, dtype=np.uint64))
    device.write_row(loc(1), rng.integers(0, 2**63, size=words, dtype=np.uint64))
    device.bbop_row(op, loc(2), loc(0), None if op.arity == 1 else loc(1))
    energy = trace_energy_nj(device.chip.trace, device.row_bytes, params)
    return energy / (device.row_bytes / 1024)


def table3_experiment(
    params: EnergyParameters = DEFAULT_ENERGY,
) -> Dict[str, EnergyRow]:
    """Reproduce Table 3 (energy of bitwise operations, nJ/KB)."""
    device = AmbitDevice(geometry=small_test_geometry())
    rows: Dict[str, EnergyRow] = {}
    for op_class, members in OP_CLASSES.items():
        ambit = float(
            np.mean([ambit_op_energy_nj_per_kb(op, device, params) for op in members])
        )
        ddr3 = float(np.mean([ddr_op_energy_nj_per_kb(op, params) for op in members]))
        rows[op_class] = EnergyRow(op_class, ddr3, ambit)
    return rows


def format_table3(rows: Dict[str, EnergyRow]) -> str:
    """Render the reproduced table next to the paper's numbers."""
    lines = [
        "Table 3: Energy of bulk bitwise operations (nJ/KB)",
        f"{'op':>9} {'DDR3':>8} {'Ambit':>8} {'reduction':>10}"
        f" | {'paper DDR3':>10} {'paper Ambit':>11} {'paper red.':>10}",
    ]
    for op_class in OP_CLASSES:
        r = rows[op_class]
        p_ddr, p_ambit = TABLE3_PAPER[op_class]
        lines.append(
            f"{op_class:>9} {r.ddr3_nj_per_kb:>8.1f} {r.ambit_nj_per_kb:>8.2f} "
            f"{r.reduction:>9.1f}X | {p_ddr:>10.1f} {p_ambit:>11.1f} "
            f"{p_ddr / p_ambit:>9.1f}X"
        )
    return "\n".join(lines)
