"""End-to-end application energy: extending Table 3 to whole workloads.

The paper reports per-operation energy (Table 3) and application
*performance* (Figures 10-12), but not application energy.  This module
closes that gap with the same models: a workload is a bag of bulk
operations plus CPU-side bitcounts, so

* the **DDR3/DDR4 baseline** pays channel+DRAM energy for every byte
  each operation streams (the Table 3 DDR column, op by op), and
* the **Ambit system** pays activation/precharge energy for each
  operation's command sequence (the Table 3 Ambit column) -- while the
  bitcounts cost the same CPU-side energy on both systems and are
  therefore excluded from the ratio, making the reported reduction the
  *memory-system* energy reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.microprograms import BulkOp
from repro.energy.power_model import (
    DEFAULT_ENERGY,
    EnergyParameters,
    ddr_op_energy_nj,
)
from repro.errors import SimulationError

#: AAP/AP counts per operation (Figure 8 + Section 5.2), used to price
#: an Ambit-side operation without executing it.
_PRIMITIVES = {
    BulkOp.NOT: (2, 0),
    BulkOp.COPY: (1, 0),
    BulkOp.AND: (4, 0),
    BulkOp.OR: (4, 0),
    BulkOp.NAND: (5, 0),
    BulkOp.NOR: (5, 0),
    BulkOp.XOR: (5, 2),
    BulkOp.XNOR: (5, 2),
    BulkOp.MAJ: (4, 0),
}

#: Extra-wordline surcharges per op: which ACTIVATEs raise >1 wordline.
#: Expressed as the total *extra* single-wordline-equivalents beyond one
#: per ACTIVATE (0.22 each), from the Table 1 fan-outs each program uses.
_EXTRA_WORDLINE_EQUIV = {
    BulkOp.NOT: 0.0,
    BulkOp.COPY: 0.0,
    BulkOp.AND: 2 * 0.22,            # the B12 TRA
    BulkOp.OR: 2 * 0.22,
    BulkOp.NAND: 2 * 0.22,
    BulkOp.NOR: 2 * 0.22,
    BulkOp.XOR: (1 + 1 + 1 + 2 + 2 + 0 + 2) * 0.22,  # B8,B9,B10,B14,B15,C,B12
    BulkOp.XNOR: (1 + 1 + 1 + 2 + 2 + 0 + 2) * 0.22,
    BulkOp.MAJ: 2 * 0.22,
}


def ambit_op_energy_nj(
    op: BulkOp, row_bytes: int = 8192, params: EnergyParameters = DEFAULT_ENERGY
) -> float:
    """Ambit-side energy of one row-sized bulk operation (closed form)."""
    aaps, aps = _PRIMITIVES[op]
    activates = 2 * aaps + aps + _EXTRA_WORDLINE_EQUIV[op]
    precharges = aaps + aps
    return activates * params.activate_nj(1, row_bytes) + precharges * (
        params.precharge_nj(row_bytes)
    )


@dataclass
class WorkloadEnergy:
    """Accumulates the memory-system energy of a workload's bulk ops."""

    vector_bytes: int
    row_bytes: int = 8192
    params: EnergyParameters = field(default_factory=lambda: DEFAULT_ENERGY)
    ddr_nj: float = 0.0
    ambit_nj: float = 0.0
    operations: int = 0

    def __post_init__(self) -> None:
        if self.vector_bytes <= 0 or self.row_bytes <= 0:
            raise SimulationError("vector and row sizes must be positive")

    @property
    def rows_per_vector(self) -> int:
        return -(-self.vector_bytes // self.row_bytes)

    def add_op(self, op: BulkOp, count: int = 1) -> None:
        """Charge ``count`` vector-wide bulk operations to both systems."""
        if count < 0:
            raise SimulationError("count must be non-negative")
        rows = self.rows_per_vector
        self.ddr_nj += count * rows * ddr_op_energy_nj(
            op, self.row_bytes, self.params
        )
        self.ambit_nj += count * rows * ambit_op_energy_nj(
            op, self.row_bytes, self.params
        )
        self.operations += count

    @property
    def reduction(self) -> float:
        """Memory-system energy reduction of Ambit over the DDR path."""
        if self.ambit_nj == 0:
            raise SimulationError("no operations recorded")
        return self.ddr_nj / self.ambit_nj


def bitmap_index_query_energy(
    users: int, weeks: int, row_bytes: int = 8192
) -> WorkloadEnergy:
    """Memory-system energy of the Figure 10 query (6w OR, 2w-1 AND).

    The w+1 bitcounts stream one vector each on *both* systems and are
    excluded (identical on both sides); the returned reduction is the
    bulk-bitwise memory energy ratio.
    """
    if users <= 0 or weeks <= 0:
        raise SimulationError("users and weeks must be positive")
    energy = WorkloadEnergy(vector_bytes=-(-users // 8), row_bytes=row_bytes)
    energy.add_op(BulkOp.OR, 6 * weeks)
    energy.add_op(BulkOp.AND, 2 * weeks - 1)
    return energy
