"""Energy model: DRAM + channel energy for DDR and Ambit (Table 3)."""

from repro.energy.accounting import (
    OP_CLASSES,
    TABLE3_PAPER,
    EnergyRow,
    ambit_op_energy_nj_per_kb,
    format_table3,
    table3_experiment,
)
from repro.energy.applications import (
    WorkloadEnergy,
    ambit_op_energy_nj,
    bitmap_index_query_energy,
)
from repro.energy.power_model import (
    DEFAULT_ENERGY,
    REFERENCE_ROW_BYTES,
    EnergyParameters,
    ddr_op_energy_nj,
    ddr_op_energy_nj_per_kb,
    trace_energy_nj,
)

__all__ = [
    "DEFAULT_ENERGY",
    "EnergyParameters",
    "EnergyRow",
    "OP_CLASSES",
    "REFERENCE_ROW_BYTES",
    "TABLE3_PAPER",
    "WorkloadEnergy",
    "ambit_op_energy_nj",
    "ambit_op_energy_nj_per_kb",
    "bitmap_index_query_energy",
    "ddr_op_energy_nj",
    "ddr_op_energy_nj_per_kb",
    "format_table3",
    "table3_experiment",
    "trace_energy_nj",
]
