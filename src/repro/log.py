"""Structured logging for the long-running surfaces (serve, chaos).

The batch/engine layers stay silent by design (they are libraries), but
the *services* -- ``repro serve`` and the chaos soak -- previously had
no logger at all: server-side errors beyond the typed NDJSON response
simply vanished.  This module is the one place logging is configured:

* :func:`get_logger` -- namespaced child loggers under ``repro.*``;
  safe to call at import time (no handlers are installed until
  :func:`configure_logging` runs, and stdlib propagation means library
  users can route ``repro`` logs however they like).
* :func:`configure_logging` -- installs exactly one stderr handler on
  the ``repro`` root logger, plain text by default or one JSON object
  per line with ``json_format=True`` (greppable, ships into any log
  pipeline without a parser).  Called by the CLI's ``--log-level`` /
  ``--log-json`` flags; idempotent, so tests can call it repeatedly.

No third-party dependency: stdlib :mod:`logging` only.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Any, Dict, Optional

ROOT_LOGGER = "repro"

#: Accepted ``--log-level`` values (case-insensitive).
LOG_LEVELS = ("debug", "info", "warning", "error", "critical")


class JsonFormatter(logging.Formatter):
    """One JSON object per log line: ts, level, logger, msg, extras."""

    def format(self, record: logging.LogRecord) -> str:
        """Render the record as one compact JSON object."""
        payload: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = self.formatException(record.exc_info)
        for key, value in record.__dict__.items():
            if key.startswith("ctx_"):
                payload[key[4:]] = value
        return json.dumps(payload, sort_keys=True, default=str)


def get_logger(name: str = ROOT_LOGGER) -> logging.Logger:
    """A logger under the ``repro`` namespace (prefix added if absent)."""
    if name != ROOT_LOGGER and not name.startswith(ROOT_LOGGER + "."):
        name = f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(name)


def configure_logging(
    level: str = "warning",
    json_format: bool = False,
    stream: Optional[Any] = None,
) -> logging.Logger:
    """Install (or replace) the single ``repro`` stderr handler.

    Returns the configured root ``repro`` logger.  Raises
    :class:`ValueError` on an unknown level name so the CLI can report
    a usage error instead of silently logging nothing.
    """
    if level.lower() not in LOG_LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; expected one of "
            f"{', '.join(LOG_LEVELS)}"
        )
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(getattr(logging, level.upper()))
    handler = logging.StreamHandler(
        stream if stream is not None else sys.stderr
    )
    if json_format:
        handler.setFormatter(JsonFormatter())
    else:
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(levelname)-8s %(name)s: %(message)s"
        ))
    # Replace, never stack: calling twice must not double every line.
    for existing in list(logger.handlers):
        logger.removeHandler(existing)
    logger.addHandler(handler)
    logger.propagate = False
    return logger
