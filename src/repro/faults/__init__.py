"""Runtime fault injection, detection, and recovery (Section 5.5).

The paper argues Ambit is deployable on commodity DRAM because the
usual reliability machinery still applies: post-manufacturing testing
finds rows whose cells cannot survive triple-row activation
(Section 5.5.2, modelled in :mod:`repro.core.testing`), spare rows
within the same subarray repair them (Section 5.5.3, modelled in
:mod:`repro.core.repair`), and process variation bounds the residual
TRA failure rate (Section 6, modelled in :mod:`repro.circuit`).

This package closes the loop at *runtime*:

* :class:`FaultPlan` / :class:`FaultInjector` -- a deterministic,
  seed-driven schedule of faults (stuck rows, variation-induced TRA bit
  flips sampled from :mod:`repro.circuit.montecarlo`, DCC n-wordline
  failures, worker crashes/stalls) injected into live devices;
* :mod:`repro.faults.detect` -- paper-style verify-row checks and
  command-path probes that localise a fault after a result mismatch;
* :class:`FaultTolerantSession` -- per-op result verification against a
  host-side shadow (the numpy reference), with a recovery ladder of
  retry, spare-row remap (:class:`~repro.core.repair.RowRepairMap`),
  and DCC rerouting;
* :func:`run_chaos` / ``repro chaos`` -- a soak harness that runs N
  bulk operations under a fault plan and fails loudly on any
  unrecovered fault or bit mismatch.

Every fault event is counted in the ``ambit_faults_{injected,detected,
recovered,unrecovered}`` metric families (see docs/RELIABILITY.md).
"""

from repro.faults.chaos import ChaosConfig, ChaosReport, format_chaos, run_chaos
from repro.faults.detect import probe_dcc, probe_row, probe_rows, verify_designated_rows
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan
from repro.faults.recover import FaultTolerantSession, RecoveryPolicy

__all__ = [
    "ChaosConfig",
    "ChaosReport",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultTolerantSession",
    "RecoveryPolicy",
    "format_chaos",
    "probe_dcc",
    "probe_row",
    "probe_rows",
    "run_chaos",
    "verify_designated_rows",
]
