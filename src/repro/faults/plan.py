"""Deterministic, seed-driven fault schedules.

A :class:`FaultPlan` is a frozen list of :class:`FaultEvent`\\ s keyed
by operation index: "before op 17, pin row 3 of bank 1 subarray 0 to a
seeded random value".  Plans are pure data -- generating one touches no
device -- so the same ``(seed, geometry, rate)`` triple always yields
the same schedule, which is what makes chaos soaks and the CI smoke
job reproducible.

TRA bit-flip events are grounded in the paper's process-variation
analysis: the number of bits an event flips is drawn from the
per-bitline failure probability that :func:`repro.circuit.montecarlo.
tra_failure_rate` measures at the plan's variation level (Section 6 /
Table 2), floored at one bit so every scheduled flip is observable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.montecarlo import tra_failure_rate
from repro.errors import ConfigError

#: Fault kinds a plan can schedule against a plain device.
DEVICE_KINDS = ("stuck_row", "tra_flip", "dcc")

#: Additional kinds that need a live worker pool (sharded devices).
POOL_KINDS = ("worker_crash", "worker_stall")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault, applied just before ``op_index`` executes."""

    op_index: int
    kind: str
    bank: int
    subarray: int
    #: Local D-group address (``stuck_row`` events).
    row: Optional[int] = None
    #: Seed for the pinned row image (``stuck_row`` events).
    value_seed: int = 0
    #: Bit positions the TRA flip corrupts (``tra_flip`` events).
    flip_bits: Tuple[int, ...] = ()
    #: Which dual-contact row breaks (``dcc`` events).
    dcc: int = 0
    #: Sleep injected into a worker (``worker_stall`` events), seconds.
    stall_s: float = 0.0


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible schedule of fault events for one soak run."""

    seed: int
    ops: int
    fault_rate: float
    variation_level: float
    events: Tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.events)

    def kinds(self) -> Dict[str, int]:
        """Event count per kind (for reports)."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    @classmethod
    def generate(
        cls,
        ops: int,
        seed: int,
        fault_rate: float,
        rows: Mapping[Tuple[int, int], Sequence[int]],
        row_bits: int,
        kinds: Sequence[str] = DEVICE_KINDS,
        variation_level: float = 0.15,
        mc_trials: int = 2048,
        stall_s: float = 0.1,
    ) -> "FaultPlan":
        """Draw a schedule of ``~ops * fault_rate * len(rows)`` events.

        Parameters
        ----------
        rows:
            ``(bank, subarray) -> candidate local addresses`` -- the
            working set faults should land in, so every injected fault
            is *observable* by the workload (a fault in a row nothing
            ever touches validates nothing).
        row_bits:
            Row width in bits (bounds TRA flip positions).
        kinds:
            Fault kinds to draw from; include :data:`POOL_KINDS` only
            for sharded runs.

        The event count is drawn from a Poisson of the expected rate
        but floored at **one**: a soak whose plan happens to contain
        zero faults exercises nothing, so the floor keeps small
        ``--fault-rate`` acceptance runs meaningful while staying fully
        seed-deterministic.  Event indices are capped at 80% of ``ops``
        so late faults still have operations left to surface in.
        """
        if ops <= 0:
            raise ConfigError(f"a fault plan needs ops > 0; got {ops}")
        if not rows:
            raise ConfigError("a fault plan needs at least one target subarray")
        if not kinds:
            raise ConfigError("a fault plan needs at least one fault kind")
        unknown = set(kinds) - set(DEVICE_KINDS) - set(POOL_KINDS)
        if unknown:
            raise ConfigError(f"unknown fault kinds: {sorted(unknown)}")
        rng = np.random.default_rng(seed)
        targets = sorted(rows)
        expected = ops * fault_rate * len(targets)
        count = max(1, int(rng.poisson(expected)))

        # Per-bit flip probability at this variation level; the marginal
        # deck gives the conservative (k in {1,2} patterns) rate the
        # paper's Section 6.1 analysis uses.  Floor the draw at one bit.
        flip_p = tra_failure_rate(
            variation_level, trials=mc_trials, rng=rng, patterns="marginal"
        ).failure_rate

        events = []
        dcc_taken = set()
        horizon = max(1, int(ops * 0.8))
        for _ in range(count):
            op_index = int(rng.integers(0, horizon))
            kind = str(rng.choice(list(kinds)))
            bank, subarray = targets[int(rng.integers(0, len(targets)))]
            if kind == "dcc" and (bank, subarray) in dcc_taken:
                # One broken DCC per subarray: with both n-wordlines
                # gone there is no healthy route left to recover with.
                kind = "stuck_row"
            if kind == "stuck_row":
                candidates = rows[(bank, subarray)]
                events.append(
                    FaultEvent(
                        op_index=op_index,
                        kind=kind,
                        bank=bank,
                        subarray=subarray,
                        row=int(candidates[int(rng.integers(0, len(candidates)))]),
                        value_seed=int(rng.integers(0, 2**63)),
                    )
                )
            elif kind == "tra_flip":
                n_bits = max(1, int(rng.binomial(row_bits, min(1.0, flip_p))))
                bits = np.unique(rng.integers(0, row_bits, size=n_bits))
                events.append(
                    FaultEvent(
                        op_index=op_index,
                        kind=kind,
                        bank=bank,
                        subarray=subarray,
                        flip_bits=tuple(int(b) for b in bits),
                    )
                )
            elif kind == "dcc":
                dcc_taken.add((bank, subarray))
                events.append(
                    FaultEvent(
                        op_index=op_index,
                        kind=kind,
                        bank=bank,
                        subarray=subarray,
                        dcc=int(rng.integers(0, 2)),
                    )
                )
            elif kind == "worker_crash":
                events.append(
                    FaultEvent(
                        op_index=op_index, kind=kind, bank=bank, subarray=subarray
                    )
                )
            else:  # worker_stall
                events.append(
                    FaultEvent(
                        op_index=op_index,
                        kind=kind,
                        bank=bank,
                        subarray=subarray,
                        stall_s=stall_s,
                    )
                )
        events.sort(key=lambda e: e.op_index)
        return cls(
            seed=seed,
            ops=ops,
            fault_rate=fault_rate,
            variation_level=variation_level,
            events=tuple(events),
        )
