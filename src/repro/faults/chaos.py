"""The chaos soak: N bulk operations under a deterministic fault plan.

``repro chaos`` runs this harness: a small device (serial or sharded),
a seed-driven random workload over all nine bulk operations, a
:class:`~repro.faults.plan.FaultPlan` injected alongside it, and a
:class:`~repro.faults.recover.FaultTolerantSession` verifying every
destination row against the numpy shadow.  The soak passes only if

* every detected fault was recovered (``ambit_faults_unrecovered_total``
  stayed zero), and
* the final patrol scrub leaves every row bit-exact against the shadow.

With ``recovery=False`` the session only *detects*: any injected fault
that perturbs a result is counted unrecovered and the soak fails --
which is how the acceptance criteria prove the detection path is live
rather than vacuously green.

Everything is derived from ``(seed, ops, fault_rate)``: the same
configuration replays the same workload, the same fault schedule, and
the same recovery decisions, which is what makes the CI chaos-smoke job
a regression test rather than a dice roll.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.microprograms import BulkOp
from repro.dram.chip import RowLocation
from repro.dram.geometry import small_test_geometry
from repro.errors import ConcurrencyError, ConfigError
from repro.faults.injector import FaultInjector
from repro.faults.plan import DEVICE_KINDS, POOL_KINDS, FaultPlan
from repro.faults.recover import FaultTolerantSession, RecoveryPolicy
from repro.log import get_logger

log = get_logger("chaos")

#: The full operation mix the soak draws from.
ALL_OPS: Tuple[BulkOp, ...] = (
    BulkOp.NOT,
    BulkOp.AND,
    BulkOp.OR,
    BulkOp.NAND,
    BulkOp.NOR,
    BulkOp.XOR,
    BulkOp.XNOR,
    BulkOp.COPY,
    BulkOp.MAJ,
)


@dataclass(frozen=True)
class ChaosConfig:
    """Shape of one soak run (the ``repro chaos`` flags)."""

    ops: int = 500
    seed: int = 0
    fault_rate: float = 1e-3
    #: Worker processes; >= 2 runs on a ShardedDevice and adds the
    #: worker crash/stall fault kinds to the plan.
    jobs: int = 1
    banks: int = 2
    rows: int = 48
    row_bytes: int = 64
    recovery: bool = True
    variation_level: float = 0.15
    #: Rows of the per-(bank, subarray) working set faults land in.
    work_rows: int = 8
    #: Spare rows donated to each subarray's repair pool.
    spare_rows: int = 8
    stall_timeout_s: float = 0.05
    crash_retries: int = 3

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ConfigError` on impossible shapes."""
        if self.ops <= 0:
            raise ConfigError(f"chaos needs ops > 0; got {self.ops}")
        if self.jobs < 1:
            raise ConfigError(f"chaos needs jobs >= 1; got {self.jobs}")
        if self.banks < 1:
            raise ConfigError(f"chaos needs banks >= 1; got {self.banks}")
        if not 0 < self.fault_rate <= 1:
            raise ConfigError(
                f"fault rate must be in (0, 1]; got {self.fault_rate}"
            )
        if self.work_rows < 4:
            raise ConfigError(
                f"the soak draws 4 distinct rows per op; work_rows must "
                f"be >= 4, got {self.work_rows}"
            )
        geometry = small_test_geometry(
            rows=self.rows, row_bytes=self.row_bytes,
            banks=self.banks, subarrays_per_bank=1,
        )
        needed = self.work_rows + 2 + self.spare_rows
        if geometry.subarray.data_rows < needed:
            raise ConfigError(
                f"geometry exposes {geometry.subarray.data_rows} data "
                f"rows but the soak needs {needed} (work + scratch + "
                f"spares); raise rows or shrink the working set"
            )


@dataclass
class ChaosReport:
    """Outcome of one soak, ready for the CLI and for assertions."""

    config: ChaosConfig
    plan_events: int
    plan_kinds: Dict[str, int]
    applied: int
    skipped: int
    unreached: int
    #: Per-kind totals of the four ``ambit_faults_*`` families.
    injected: Dict[str, float] = field(default_factory=dict)
    detected: Dict[str, float] = field(default_factory=dict)
    recovered: Dict[str, float] = field(default_factory=dict)
    unrecovered: Dict[str, float] = field(default_factory=dict)
    #: Ops whose sharded execution failed outright (retries exhausted).
    failed_ops: int = 0
    #: Shadow keys still mismatching after the final patrol scrub.
    mismatches: List[Tuple[int, int, int]] = field(default_factory=list)
    #: Filtered Prometheus exposition of the fault families.
    scrape: str = ""

    @property
    def unrecovered_total(self) -> float:
        return sum(self.unrecovered.values())

    @property
    def recovered_total(self) -> float:
        return sum(self.recovered.values())

    @property
    def ok(self) -> bool:
        return (
            self.unrecovered_total == 0
            and not self.mismatches
            and self.failed_ops == 0
        )

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1


def _family_totals(registry, name: str) -> Dict[str, float]:
    family = registry.get(name)
    if family is None:
        return {}
    return {
        values[0]: child.value
        for values, child in sorted(family.children.items())
        if child.value
    }


def _build_device(config: ChaosConfig, geometry):
    if config.jobs >= 2:
        from repro.parallel.device import ShardedDevice

        return ShardedDevice(
            geometry=geometry,
            max_workers=config.jobs,
            crash_retries=config.crash_retries,
            stall_timeout_s=config.stall_timeout_s,
        )
    from repro.core.device import AmbitDevice

    return AmbitDevice(geometry=geometry)


def run_chaos(config: Optional[ChaosConfig] = None) -> ChaosReport:
    """Execute one soak; never raises on faults, only on bad config."""
    config = config if config is not None else ChaosConfig()
    config.validate()
    geometry = small_test_geometry(
        rows=config.rows, row_bytes=config.row_bytes,
        banks=config.banks, subarrays_per_bank=1,
    )
    sharded = config.jobs >= 2
    work = list(range(config.work_rows))
    scratch = (config.work_rows, config.work_rows + 1)
    spares = list(
        range(config.work_rows + 2, config.work_rows + 2 + config.spare_rows)
    )
    kinds = DEVICE_KINDS + POOL_KINDS if sharded else DEVICE_KINDS

    plan = FaultPlan.generate(
        ops=config.ops,
        seed=config.seed,
        fault_rate=config.fault_rate,
        rows={(bank, 0): work for bank in range(config.banks)},
        row_bits=geometry.subarray.row_bits,
        kinds=kinds,
        variation_level=config.variation_level,
    )

    device = _build_device(config, geometry)
    try:
        session = FaultTolerantSession(
            device, RecoveryPolicy(enabled=config.recovery)
        )
        for bank in range(config.banks):
            session.set_scratch(bank, 0, scratch)
            session.add_spares(bank, 0, spares)

        # Deterministic workload stream, decoupled from the plan's rng.
        rng = np.random.default_rng(config.seed + 1)
        words = geometry.subarray.words_per_row
        for bank in range(config.banks):
            for row in work:
                session.write_row(
                    RowLocation(bank, 0, row),
                    rng.integers(0, 2**64, size=words, dtype=np.uint64),
                )

        injector = FaultInjector(device, plan)
        failed_ops = 0
        for i in range(config.ops):
            injector.before_op(i)
            op = ALL_OPS[int(rng.integers(0, len(ALL_OPS)))]
            dst, src1, src2, src3 = [], [], [], []
            for bank in range(config.banks):
                picks = rng.choice(work, size=4, replace=False)
                dst.append(RowLocation(bank, 0, int(picks[0])))
                src1.append(RowLocation(bank, 0, int(picks[1])))
                src2.append(RowLocation(bank, 0, int(picks[2])))
                src3.append(RowLocation(bank, 0, int(picks[3])))
            try:
                session.run_rows(
                    op,
                    dst,
                    src1,
                    src2 if op.arity >= 2 else None,
                    src3 if op.arity >= 3 else None,
                )
            except ConcurrencyError as exc:
                # Crash retries exhausted; the sharded device already
                # counted the unrecovered worker_crash.  The next batch
                # rebuilds the pool, so the soak can keep going.
                failed_ops += 1
                log.warning(
                    "op %d (%s) lost to exhausted crash retries: %s",
                    i, op.value, exc,
                    extra={"ctx_op_index": i, "ctx_op": op.value},
                )

        unreached = len(injector.drain())
        mismatches = session.scrub()
        log.info(
            "soak done: %d ops, %d applied fault(s), %d failed op(s), "
            "%d scrub mismatch(es)",
            config.ops, len(injector.applied), failed_ops, len(mismatches),
        )

        registry = device.metrics
        scrape = "\n".join(
            line
            for line in registry.render_prometheus().splitlines()
            if "ambit_faults_" in line
        )
        return ChaosReport(
            config=config,
            plan_events=len(plan),
            plan_kinds=plan.kinds(),
            applied=len(injector.applied),
            skipped=len(injector.skipped),
            unreached=unreached,
            injected=_family_totals(registry, "ambit_faults_injected_total"),
            detected=_family_totals(registry, "ambit_faults_detected_total"),
            recovered=_family_totals(registry, "ambit_faults_recovered_total"),
            unrecovered=_family_totals(
                registry, "ambit_faults_unrecovered_total"
            ),
            failed_ops=failed_ops,
            mismatches=mismatches,
            scrape=scrape,
        )
    finally:
        device.close()


def format_chaos(report: ChaosReport) -> str:
    """Human-readable soak summary for the CLI."""
    config = report.config
    mode = (
        f"sharded ({config.jobs} jobs)" if config.jobs >= 2 else "serial"
    )
    lines = [
        f"chaos soak: {config.ops} ops, seed {config.seed}, fault rate "
        f"{config.fault_rate:g}, {mode}, recovery "
        f"{'on' if config.recovery else 'off'}",
        f"fault plan: {report.plan_events} event(s) "
        f"({_kinds(report.plan_kinds)}); applied {report.applied}, "
        f"skipped {report.skipped}, unreached {report.unreached}",
        f"injected:    {_kinds(report.injected) or '-'}",
        f"detected:    {_kinds(report.detected) or '-'}",
        f"recovered:   {_kinds(report.recovered) or '-'}",
        f"unrecovered: {_kinds(report.unrecovered) or '-'}",
    ]
    if report.failed_ops:
        lines.append(f"failed ops: {report.failed_ops}")
    if report.mismatches:
        rows = ", ".join(
            f"bank {b} sub {s} row {r}" for b, s, r in report.mismatches[:8]
        )
        more = len(report.mismatches) - 8
        lines.append(
            f"bit mismatches after scrub: {len(report.mismatches)} "
            f"({rows}{f', +{more} more' if more > 0 else ''})"
        )
    else:
        lines.append("final verification: bit-exact against the numpy shadow")
    lines.append("PASS" if report.ok else "FAIL")
    return "\n".join(lines)


def _kinds(counts: Dict[str, float]) -> str:
    return ", ".join(
        f"{kind}={int(count)}" for kind, count in sorted(counts.items())
    )
