"""Applies a :class:`~repro.faults.plan.FaultPlan` to a live device.

The injector is the only component that mutates device fault state; the
detection and recovery layers treat the device as an opaque (possibly
faulty) machine.  Each applied event increments the
``ambit_faults_injected_total{kind=...}`` counter.

Injection mechanics per kind:

* ``stuck_row`` -- :meth:`Subarray.inject_stuck_row` with a seeded
  random image (hard fault; writes and restores cannot change it).
* ``tra_flip`` -- arms the subarray's one-shot ``tra_fault_hook``: the
  *next* fresh triple-row activation XORs the event's flip mask into
  the sensed value, then the hook disarms (transient variation fault,
  Section 6).
* ``dcc`` -- :meth:`Subarray.inject_dcc_fault` on the chosen
  dual-contact row's storage row (its n-wordline stops negating).
* ``worker_crash`` / ``worker_stall`` -- submits a
  :func:`~repro.parallel.worker.crash` / ``stall`` job to the sharded
  device's pool (ignored, with a note, on plain devices).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

import numpy as np

from repro.core.addressing import AmbitAddressMap
from repro.faults.plan import FaultEvent, FaultPlan
from repro.obs.metrics import fault_counters


def flip_mask(flip_bits, words: int) -> np.ndarray:
    """Packed uint64 mask with the given bit positions set."""
    mask = np.zeros(words, dtype=np.uint64)
    for bit in flip_bits:
        mask[bit // 64] |= np.uint64(1) << np.uint64(bit % 64)
    return mask


class FaultInjector:
    """Walks a plan alongside a workload, injecting before each op.

    Usage::

        injector = FaultInjector(device, plan)
        for i in range(plan.ops):
            injector.before_op(i)
            ...execute op i...
    """

    def __init__(self, device, plan: FaultPlan, metrics: Optional[object] = None):
        self.device = device
        self.plan = plan
        self.amap: AmbitAddressMap = device.amap
        self._by_op: Dict[int, List[FaultEvent]] = defaultdict(list)
        for event in plan.events:
            self._by_op[event.op_index].append(event)
        self._counters = fault_counters(
            metrics if metrics is not None else device.metrics
        )
        #: Events actually applied, in application order.
        self.applied: List[FaultEvent] = []
        #: Pool events skipped because the device has no worker pool.
        self.skipped: List[FaultEvent] = []

    # ------------------------------------------------------------------
    def before_op(self, op_index: int) -> List[FaultEvent]:
        """Apply every event scheduled for ``op_index``; returns them."""
        events = self._by_op.pop(op_index, [])
        applied = []
        for event in events:
            if self._apply(event):
                self._counters["injected"].labels(kind=event.kind).inc()
                self.applied.append(event)
                applied.append(event)
            else:
                self.skipped.append(event)
        return applied

    def drain(self) -> List[FaultEvent]:
        """Events whose op index was never reached (for reports)."""
        remaining = [e for events in self._by_op.values() for e in events]
        self._by_op.clear()
        return remaining

    # ------------------------------------------------------------------
    def _subarray(self, event: FaultEvent):
        return self.device.chip.bank(event.bank).subarray(event.subarray)

    def _apply(self, event: FaultEvent) -> bool:
        if event.kind == "stuck_row":
            sub = self._subarray(event)
            words = sub.geometry.words_per_row
            value = np.random.default_rng(event.value_seed).integers(
                0, 2**64, size=words, dtype=np.uint64
            )
            # Inject at the *current physical* row of the address, so a
            # previously repaired address can lose its spare too.
            repair = self.device.controller.repair
            physical = repair.translate(event.bank, event.subarray, event.row)
            sub.inject_stuck_row(physical, value)
            return True
        if event.kind == "tra_flip":
            sub = self._subarray(event)
            mask = flip_mask(event.flip_bits, sub.geometry.words_per_row)

            def hook(sensed, _sub=sub, _mask=mask):
                _sub.tra_fault_hook = None  # one-shot
                return _mask

            sub.tra_fault_hook = hook
            return True
        if event.kind == "dcc":
            self._subarray(event).inject_dcc_fault(self.amap.row_dcc(event.dcc))
            return True
        if event.kind in ("worker_crash", "worker_stall"):
            ensure_pool = getattr(self.device, "_ensure_pool", None)
            if ensure_pool is None:
                return False
            from repro.parallel.worker import crash, stall

            pool = ensure_pool()
            if event.kind == "worker_crash":
                pool.submit(crash, 1)
            else:
                pool.submit(stall, event.stall_s)
            return True
        raise ValueError(f"unknown fault kind {event.kind!r}")
