"""Verified execution with a recovery ladder (Sections 5.5.3 / 6).

:class:`FaultTolerantSession` wraps a device (plain or sharded) and
maintains a host-side *shadow*: a numpy image of every row the workload
owns, advanced by :func:`~repro.engine.batch.apply_bulk_op` -- the same
single source of functional truth the fused kernels and property tests
use.  Every bulk operation is verified against the shadow by reading
the destination back; a mismatch walks the recovery ladder:

1. **retry** -- restore the source rows from the shadow and re-execute.
   A transient variation-induced TRA failure (Section 6) does not
   recur, so a clean retry both recovers and diagnoses it.  Sources are
   restored *first* because a failed in-place op has already clobbered
   its destination-aliased operand.
2. **probe + remap** -- command-path march probes
   (:mod:`repro.faults.detect`) over the operand rows; rows that fail
   are remapped to spare rows in the same subarray through the
   controller's :class:`~repro.core.repair.RowRepairMap`
   (Section 5.5.3), their contents rewritten from the shadow, and the
   operation re-executed.
3. **DCC reroute** -- probe the dual-contact row the program used; if
   its n-wordline is dead, flip the subarray's
   :attr:`~repro.core.controller.AmbitController.dcc_route` to the
   healthy DCC (not/nand/nor) or degrade to the minimal-B-group xor
   composition of :func:`~repro.core.microprograms.compile_xor_minimal`
   (xor/xnor need both DCCs; one broken leaves no 8-AAP path).  The
   broken route is memoised so later xor/xnor on that subarray skip the
   ladder and take the degraded path directly.
4. **unrecovered** -- counted, recorded, and (in strict mode) raised as
   :class:`~repro.errors.FaultError`.

Every step feeds the ``ambit_faults_{detected,recovered,unrecovered}``
counters with the *diagnosed* kind, so a scrape distinguishes "rode out
a TRA glitch" from "burned a spare row".
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from itertools import islice
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.microprograms import BulkOp, compile_xor_minimal
from repro.dram.chip import RowLocation
from repro.engine.batch import apply_bulk_op
from repro.errors import AddressError, FaultError
from repro.faults.detect import probe_dcc, probe_row
from repro.obs.metrics import fault_counters

#: Operations whose microprogram routes through a single DCC.
SINGLE_DCC_OPS = (BulkOp.NOT, BulkOp.NAND, BulkOp.NOR)

#: Operations whose 8-AAP program needs *both* DCC rows.
DUAL_DCC_OPS = (BulkOp.XOR, BulkOp.XNOR)

#: How many timed ladder rungs a session retains.  The serving layer
#: only ever reads the rungs appended during the current wave (via
#: :meth:`FaultTolerantSession.attempts_since`), so a bounded ring
#: keeps long chaos soaks from leaking memory while staying far larger
#: than any single wave's ladder walk.
ATTEMPT_HISTORY = 4096


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs of the recovery ladder.

    ``enabled=False`` turns the session into a detector only: every
    mismatch is counted as an unrecovered ``op_mismatch`` (the mode the
    ``repro chaos --no-recovery`` acceptance run uses to prove faults
    are actually being caught).  ``strict`` raises
    :class:`~repro.errors.FaultError` on the first unrecovered fault
    instead of recording it and continuing.
    """

    enabled: bool = True
    max_retries: int = 1
    strict: bool = False


@dataclass(frozen=True)
class RecoveryRecord:
    """One ladder outcome, for reports and tests."""

    op: str
    bank: int
    subarray: int
    address: int
    kind: str
    action: str  # "retried" | "remapped" | "rerouted" | "unrecovered"


@dataclass(frozen=True)
class RecoveryAttempt:
    """One *timed* rung of the ladder, for request-span attribution.

    Distinct from :class:`RecoveryRecord`: the log records diagnosed
    *outcomes* (and golden tests compare it), while attempts record
    every rung the ladder climbed -- including failed ones -- with
    wall-clock timestamps (``perf_counter_ns``) so the serving layer
    can carve recovery time out of device time per request.
    """

    op: str
    bank: int
    subarray: int
    address: int
    action: str  # "retry" | "remap" | "dcc_reroute"
    ok: bool
    start_ns: int
    dur_ns: int

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form, as embedded in request-span timing dicts."""
        return {
            "op": self.op,
            "bank": self.bank,
            "subarray": self.subarray,
            "address": self.address,
            "action": self.action,
            "ok": self.ok,
            "start_ns": self.start_ns,
            "dur_ns": self.dur_ns,
        }


class FaultTolerantSession:
    """Shadow-verified bulk execution over a (possibly faulty) device.

    Usage::

        session = FaultTolerantSession(device)
        session.set_scratch(bank, sub, (8, 9))
        session.add_spares(bank, sub, range(10, 16))
        session.write_row(loc, data)          # verified store
        session.run_rows(BulkOp.AND, dsts, srcs1, srcs2)
        assert session.unrecovered_count == 0

    Works identically over :class:`~repro.core.device.AmbitDevice` and
    :class:`~repro.parallel.device.ShardedDevice` (recovery itself runs
    in the parent process either way; only the healthy fast path
    shards).
    """

    def __init__(self, device, policy: Optional[RecoveryPolicy] = None):
        self.device = device
        self.policy = policy if policy is not None else RecoveryPolicy()
        self.controller = device.controller
        self.amap = device.amap
        #: (bank, subarray, logical address) -> pristine numpy row image.
        self.shadow: Dict[Tuple[int, int, int], np.ndarray] = {}
        #: (bank, subarray) -> two reserved scratch D-group rows the
        #: ladder may destroy (DCC probes, degraded xor).
        self.scratch: Dict[Tuple[int, int], Tuple[int, int]] = {}
        #: (bank, subarray) -> DCC route diagnosed dead; xor/xnor on
        #: these subarrays take the degraded path without a mismatch.
        self.bad_dcc: Dict[Tuple[int, int], int] = {}
        self.log: List[RecoveryRecord] = []
        #: Timed ladder rungs (see :class:`RecoveryAttempt`), the most
        #: recent :data:`ATTEMPT_HISTORY` of them.  The serving layer
        #: marks :attr:`attempts_total` around each wave and reads the
        #: new rungs back via :meth:`attempts_since` to attribute
        #: recovery time to the requests it delayed; the ring bound
        #: keeps week-long chaos soaks from growing without limit.
        self.attempts: Deque[RecoveryAttempt] = deque(maxlen=ATTEMPT_HISTORY)
        #: Monotonic count of every rung ever climbed (never trimmed).
        self.attempts_total: int = 0
        self._counters = fault_counters(device.metrics)

    # ------------------------------------------------------------------
    # Provisioning
    # ------------------------------------------------------------------
    def set_scratch(self, bank: int, subarray: int, rows: Sequence[int]) -> None:
        """Reserve two D-group rows the recovery ladder may clobber."""
        if len(rows) < 2:
            raise AddressError("recovery scratch needs two rows")
        self.scratch[(bank, subarray)] = (int(rows[0]), int(rows[1]))

    def add_spares(self, bank: int, subarray: int, rows: Sequence[int]) -> None:
        """Donate D-group rows to the subarray's spare pool."""
        self.controller.repair.add_spares(bank, subarray, rows)

    # ------------------------------------------------------------------
    # Verified row I/O
    # ------------------------------------------------------------------
    def write_row(self, loc: RowLocation, data: np.ndarray) -> None:
        """Store a row, verify the store, remap on a stuck cell.

        The shadow keeps the intended image; a row whose readback
        differs (a hard stuck-at fault swallows writes) is remapped to
        spares until a healthy one takes the data.
        """
        data = np.array(data, dtype=np.uint64)
        self.shadow[self._key(loc)] = data.copy()
        self.device.write_row(loc, data)
        if np.array_equal(self.device.read_row(loc), data):
            return
        self._counters["detected"].labels(kind="stuck_row").inc()
        if not self.policy.enabled:
            self._unrecovered("write", loc, "stuck_row")
            return
        started = time.perf_counter_ns()
        rewritten = self._rewrite_with_remap(loc, data)
        self._attempt("write", loc, "remap", rewritten, started)
        if not rewritten:
            self._unrecovered("write", loc, "stuck_row")

    def read_row(self, loc: RowLocation) -> np.ndarray:
        """Read one row through the device's (repair-aware) address path."""
        return self.device.read_row(loc)

    def scrub(self) -> List[Tuple[int, int, int]]:
        """Patrol scrub: re-read every shadowed row, repair mismatches.

        A stuck-at fault in a row the workload has not touched since
        injection only shows up on a read; the scrub remaps such rows to
        spares and rewrites them from the shadow, so a soak's final
        verification exercises recovery instead of merely reporting
        corruption.  Returns the keys that could not be repaired.
        """
        bad = []
        for key in self.verify_all():
            loc = RowLocation(*key)
            self._counters["detected"].labels(kind="stuck_row").inc()
            if not self.policy.enabled:
                self._unrecovered("scrub", loc, "stuck_row")
                bad.append(key)
                continue
            started = time.perf_counter_ns()
            rewritten = self._rewrite_with_remap(loc, self.shadow[key])
            self._attempt("scrub", loc, "remap", rewritten, started)
            if not rewritten:
                self._unrecovered("scrub", loc, "stuck_row")
                bad.append(key)
        return bad

    def _rewrite_with_remap(self, loc: RowLocation, data: np.ndarray) -> bool:
        """Remap ``loc`` to spares until one verifiably holds ``data``."""
        repair = self.controller.repair
        subarray = self.device.chip.bank(loc.bank).subarray(loc.subarray)
        while repair.spares_free(loc.bank, loc.subarray):
            retired = repair.translate(loc.bank, loc.subarray, loc.address)
            repair.assign(loc.bank, loc.subarray, loc.address)
            # The retired physical row is unreachable from here on, so
            # lifting its fault flag is observationally safe -- and
            # ``has_faults`` stops gating fused/sharded execution.
            subarray.clear_stuck_row(retired)
            self.device.write_row(loc, data)
            if np.array_equal(self.device.read_row(loc), data):
                self._counters["recovered"].labels(kind="stuck_row").inc()
                self._record("write", loc, "stuck_row", "remapped")
                return True
        return False

    # ------------------------------------------------------------------
    # Verified bulk execution
    # ------------------------------------------------------------------
    def run_rows(
        self,
        op: BulkOp,
        dst: Sequence[RowLocation],
        src1: Sequence[RowLocation],
        src2: Optional[Sequence[RowLocation]] = None,
        src3: Optional[Sequence[RowLocation]] = None,
    ) -> None:
        """Execute, verify each destination, recover on mismatch."""
        n = len(dst)
        sources = [
            self._row_sources(src1, src2, src3, i) for i in range(n)
        ]
        expected = [
            apply_bulk_op(op, *[self._shadow_value(s) for s in srcs])
            for srcs in sources
        ]

        # Rows on subarrays with a known-dead DCC cannot take the
        # standard xor/xnor program; send them down the degraded path
        # up front instead of rediscovering the fault every op.
        degraded = [
            i
            for i in range(n)
            if op in DUAL_DCC_OPS
            and (dst[i].bank, dst[i].subarray) in self.bad_dcc
        ]
        normal = [i for i in range(n) if i not in set(degraded)]
        if normal:
            self._execute(
                op,
                [dst[i] for i in normal],
                [src1[i] for i in normal],
                None if src2 is None else [src2[i] for i in normal],
                None if src3 is None else [src3[i] for i in normal],
            )
        for i in degraded:
            self._run_xor_minimal(op, dst[i], sources[i])

        for i in range(n):
            got = self.device.read_row(dst[i])
            if np.array_equal(got, expected[i]):
                self.shadow[self._key(dst[i])] = expected[i].copy()
            else:
                self._recover(op, dst[i], sources[i], expected[i])

    def bbop_row(
        self,
        op: BulkOp,
        dst: RowLocation,
        src1: RowLocation,
        src2: Optional[RowLocation] = None,
        src3: Optional[RowLocation] = None,
    ) -> None:
        """Single-row convenience wrapper over :meth:`run_rows`."""
        self.run_rows(
            op,
            [dst],
            [src1],
            None if src2 is None else [src2],
            None if src3 is None else [src3],
        )

    def run_compiled(
        self,
        cop,
        dst: Sequence[RowLocation],
        operands: Sequence[Sequence[RowLocation]],
        temps: Sequence[Sequence[RowLocation]],
    ) -> None:
        """Verified execution of a compiled op; recover on mismatch.

        The expected image comes from
        :meth:`~repro.compile.ops.CompiledOp.eval_rows` -- the same
        functional oracle the fused kernels use -- so synthesized
        operations get the identical shadow-verify-recover contract as
        the fixed ops.  Scratch rows are clobbered by construction;
        their shadow entries (when something else made them
        interesting) are re-synced to the op's final temp values.
        """
        n = len(dst)
        sources = [[column[i] for column in operands] for i in range(n)]
        row_temps = [[column[i] for column in temps] for i in range(n)]
        expected: List[np.ndarray] = []
        expected_temps: List[List[np.ndarray]] = []
        for srcs in sources:
            result, temp_values = cop.eval_rows(
                [self._shadow_value(s) for s in srcs]
            )
            expected.append(result)
            expected_temps.append(temp_values)

        self._execute_compiled(cop, dst, operands, temps)

        for i in range(n):
            got = self.device.read_row(dst[i])
            if np.array_equal(got, expected[i]):
                self.shadow[self._key(dst[i])] = expected[i].copy()
                self._sync_temps(row_temps[i], expected_temps[i])
            else:
                self._recover_compiled(
                    cop, dst[i], sources[i], row_temps[i],
                    expected[i], expected_temps[i],
                )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def unrecovered_count(self) -> int:
        return sum(1 for r in self.log if r.action == "unrecovered")

    @property
    def recovered_count(self) -> int:
        return sum(1 for r in self.log if r.action != "unrecovered")

    def verify_all(self) -> List[Tuple[int, int, int]]:
        """Re-read every shadowed row; returns keys that mismatch."""
        return [
            key
            for key, value in sorted(self.shadow.items())
            if not np.array_equal(
                self.device.read_row(RowLocation(*key)), value
            )
        ]

    # ------------------------------------------------------------------
    # The recovery ladder
    # ------------------------------------------------------------------
    def _recover(
        self,
        op: BulkOp,
        dst: RowLocation,
        sources: List[RowLocation],
        expected: np.ndarray,
    ) -> None:
        if not self.policy.enabled:
            self._counters["detected"].labels(kind="op_mismatch").inc()
            self._unrecovered(op.value, dst, "op_mismatch")
            return

        # Rung 1: restore sources and retry -- a transient TRA glitch
        # (the armed one-shot variation fault) does not recur.
        for _ in range(max(0, self.policy.max_retries)):
            started = time.perf_counter_ns()
            recovered = self._reexecute(op, dst, sources, expected)
            self._attempt(op.value, dst, "retry", recovered, started)
            if recovered:
                self._counters["detected"].labels(kind="tra_flip").inc()
                self._counters["recovered"].labels(kind="tra_flip").inc()
                self._record(op.value, dst, "tra_flip", "retried")
                return

        # Rung 2: march-probe the operand rows; remap the dead ones to
        # spares and rewrite their contents from the shadow.
        started = time.perf_counter_ns()
        recovered = self._remap_stuck_rows(
            op, dst, sources
        ) and self._reexecute(op, dst, sources, expected)
        self._attempt(op.value, dst, "remap", recovered, started)
        if recovered:
            return

        # Rung 3: probe the DCC route the program used; reroute or
        # degrade around a dead n-wordline.
        started = time.perf_counter_ns()
        recovered = self._reroute_dcc(op, dst, sources, expected)
        self._attempt(op.value, dst, "dcc_reroute", recovered, started)
        if recovered:
            return

        self._unrecovered(op.value, dst, "op_mismatch")

    def _reexecute(
        self,
        op: BulkOp,
        dst: RowLocation,
        sources: List[RowLocation],
        expected: np.ndarray,
    ) -> bool:
        """Restore sources from the shadow, re-run, verify.

        Restoring first matters for in-place operations: after a failed
        attempt the destination holds garbage, and the destination may
        alias a source.
        """
        self._restore_sources(sources)
        if (
            op in DUAL_DCC_OPS
            and (dst.bank, dst.subarray) in self.bad_dcc
        ):
            self._run_xor_minimal(op, dst, sources)
        else:
            self._execute_one(op, dst, sources)
        if np.array_equal(self.device.read_row(dst), expected):
            self.shadow[self._key(dst)] = expected.copy()
            return True
        return False

    def _remap_stuck_rows(
        self, op, dst: RowLocation, sources: List[RowLocation]
    ) -> bool:
        """Probe operands; remap+rewrite failures.  True if any remapped.

        ``op`` is a :class:`BulkOp` or a compiled op (only ``op.value``
        is read, for the recovery record).
        """
        repair = self.controller.repair
        remapped = False
        seen = set()
        for loc in [dst] + list(sources):
            key = self._key(loc)
            if key in seen or not self.amap.is_d_group(loc.address):
                continue  # control rows cannot be remapped
            seen.add(key)
            physical = repair.translate(loc.bank, loc.subarray, loc.address)
            if probe_row(self.device, loc.bank, loc.subarray, physical):
                # Probe destroyed the row's contents; put them back.
                self._restore_sources([loc])
                continue
            self._counters["detected"].labels(kind="stuck_row").inc()
            subarray = self.device.chip.bank(loc.bank).subarray(loc.subarray)
            healthy = False
            while True:
                retired = repair.translate(loc.bank, loc.subarray, loc.address)
                try:
                    repair.assign(loc.bank, loc.subarray, loc.address)
                except AddressError:
                    break  # out of spares; let the ladder continue
                # The retired physical row is unreachable from here on,
                # so lifting its fault flag is observationally safe --
                # and ``has_faults`` stops gating fused/sharded
                # execution for the whole subarray.
                subarray.clear_stuck_row(retired)
                fresh = repair.translate(loc.bank, loc.subarray, loc.address)
                if probe_row(self.device, loc.bank, loc.subarray, fresh):
                    healthy = True  # a spare can be stuck too: keep going
                    break
            if not healthy:
                return remapped
            value = self.shadow.get(key)
            if value is not None:
                self.device.write_row(loc, value)
            self._counters["recovered"].labels(kind="stuck_row").inc()
            self._record(op.value, loc, "stuck_row", "remapped")
            remapped = True
        return remapped

    def _reroute_dcc(
        self,
        op: BulkOp,
        dst: RowLocation,
        sources: List[RowLocation],
        expected: np.ndarray,
    ) -> bool:
        bank, sub = dst.bank, dst.subarray
        scratch = self.scratch.get((bank, sub))
        if scratch is None:
            return False
        if op in SINGLE_DCC_OPS:
            route = self.controller.dcc_route.get((bank, sub), 0)
            if probe_dcc(self.device, bank, sub, route, scratch):
                return False
            self._counters["detected"].labels(kind="dcc").inc()
            other = 1 - route
            if not probe_dcc(self.device, bank, sub, other, scratch):
                return False  # both routes dead; unrecoverable here
            self.controller.dcc_route[(bank, sub)] = other
            if self._reexecute(op, dst, sources, expected):
                self._counters["recovered"].labels(kind="dcc").inc()
                self._record(op.value, dst, "dcc", "rerouted")
                return True
            return False
        if op in DUAL_DCC_OPS:
            broken = [
                r
                for r in (0, 1)
                if not probe_dcc(self.device, bank, sub, r, scratch)
            ]
            if not broken:
                return False
            self._counters["detected"].labels(kind="dcc").inc(len(broken))
            if len(broken) == 2:
                return False
            self.bad_dcc[(bank, sub)] = broken[0]
            if self._reexecute(op, dst, sources, expected):
                self._counters["recovered"].labels(kind="dcc").inc()
                self._record(op.value, dst, "dcc", "rerouted")
                return True
            return False
        return False

    # ------------------------------------------------------------------
    # The compiled-op recovery ladder
    # ------------------------------------------------------------------
    def _recover_compiled(
        self,
        cop,
        dst: RowLocation,
        sources: List[RowLocation],
        temps: List[RowLocation],
        expected: np.ndarray,
        expected_temps: List[np.ndarray],
    ) -> None:
        """:meth:`_recover`, generalized to synthesized microprograms.

        Same rungs in the same order; the differences are that scratch
        rows join the remap probe set (a stuck temp corrupts the result
        just as a stuck operand does) and that the DCC rung keys off the
        op's step profile (``uses_single_dcc``/``uses_dual_dcc``)
        instead of the fixed-op tables.
        """
        if not self.policy.enabled:
            self._counters["detected"].labels(kind="op_mismatch").inc()
            self._unrecovered(cop.value, dst, "op_mismatch")
            return

        for _ in range(max(0, self.policy.max_retries)):
            started = time.perf_counter_ns()
            recovered = self._reexecute_compiled(
                cop, dst, sources, temps, expected, expected_temps
            )
            self._attempt(cop.value, dst, "retry", recovered, started)
            if recovered:
                self._counters["detected"].labels(kind="tra_flip").inc()
                self._counters["recovered"].labels(kind="tra_flip").inc()
                self._record(cop.value, dst, "tra_flip", "retried")
                return

        started = time.perf_counter_ns()
        recovered = self._remap_stuck_rows(
            cop, dst, sources + temps
        ) and self._reexecute_compiled(
            cop, dst, sources, temps, expected, expected_temps
        )
        self._attempt(cop.value, dst, "remap", recovered, started)
        if recovered:
            return

        started = time.perf_counter_ns()
        recovered = self._reroute_dcc_compiled(
            cop, dst, sources, temps, expected, expected_temps
        )
        self._attempt(cop.value, dst, "dcc_reroute", recovered, started)
        if recovered:
            return

        self._unrecovered(cop.value, dst, "op_mismatch")

    def _reexecute_compiled(
        self,
        cop,
        dst: RowLocation,
        sources: List[RowLocation],
        temps: List[RowLocation],
        expected: np.ndarray,
        expected_temps: List[np.ndarray],
    ) -> bool:
        """Restore sources from the shadow, re-run one row, verify.

        Temps need no restore: every compiled step writes a scratch row
        before any step reads it (SSA construction), so their entry
        contents are irrelevant.
        """
        self._restore_sources(sources)
        self._execute_compiled(
            cop, [dst], [[s] for s in sources], [[t] for t in temps]
        )
        if np.array_equal(self.device.read_row(dst), expected):
            self.shadow[self._key(dst)] = expected.copy()
            self._sync_temps(temps, expected_temps)
            return True
        return False

    def _reroute_dcc_compiled(
        self,
        cop,
        dst: RowLocation,
        sources: List[RowLocation],
        temps: List[RowLocation],
        expected: np.ndarray,
        expected_temps: List[np.ndarray],
    ) -> bool:
        bank, sub = dst.bank, dst.subarray
        scratch = self.scratch.get((bank, sub))
        if scratch is None:
            return False
        if cop.uses_dual_dcc:
            # xor/xnor steps need both DCC rows and compiled programs
            # carry no degraded composition; diagnose (so the counters
            # tell the story) but let the rung fail.
            broken = [
                r
                for r in (0, 1)
                if not probe_dcc(self.device, bank, sub, r, scratch)
            ]
            if broken:
                self._counters["detected"].labels(kind="dcc").inc(
                    len(broken)
                )
            return False
        if not cop.uses_single_dcc:
            return False
        route = self.controller.dcc_route.get((bank, sub), 0)
        if probe_dcc(self.device, bank, sub, route, scratch):
            return False
        self._counters["detected"].labels(kind="dcc").inc()
        other = 1 - route
        if not probe_dcc(self.device, bank, sub, other, scratch):
            return False  # both routes dead; unrecoverable here
        self.controller.dcc_route[(bank, sub)] = other
        if self._reexecute_compiled(
            cop, dst, sources, temps, expected, expected_temps
        ):
            self._counters["recovered"].labels(kind="dcc").inc()
            self._record(cop.value, dst, "dcc", "rerouted")
            return True
        return False

    def _sync_temps(
        self, temps: List[RowLocation], values: List[np.ndarray]
    ) -> None:
        # Scratch rows enter the shadow only through an explicit
        # verified write; fresh driver leases stay out of it so
        # verify_all()/scrub() never chase recycled scratch garbage.
        for loc, value in zip(temps, values):
            key = self._key(loc)
            if key in self.shadow:
                self.shadow[key] = value.copy()

    # ------------------------------------------------------------------
    # Execution plumbing
    # ------------------------------------------------------------------
    def _execute_compiled(self, cop, dst, operands, temps) -> None:
        # Mirrors _execute: a ShardedDevice exposes run_compiled
        # directly; a plain AmbitDevice goes through its batch engine.
        runner = getattr(self.device, "run_compiled", None)
        if runner is None:
            runner = self.device.engine.run_compiled
        runner(cop, dst, operands, temps)

    def _execute(self, op, dst, src1, src2, src3) -> None:
        # ShardedDevice exposes run_rows directly; a plain AmbitDevice
        # goes through its batch engine.  Identical contracts.
        runner = getattr(self.device, "run_rows", None)
        if runner is None:
            runner = self.device.engine.run_rows
        runner(op, dst, src1, src2, src3)

    def _execute_one(
        self, op: BulkOp, dst: RowLocation, sources: List[RowLocation]
    ) -> None:
        self._execute(
            op,
            [dst],
            [sources[0]],
            [sources[1]] if len(sources) > 1 else None,
            [sources[2]] if len(sources) > 2 else None,
        )

    def _run_xor_minimal(
        self, op: BulkOp, dst: RowLocation, sources: List[RowLocation]
    ) -> None:
        """Degraded xor/xnor through one healthy DCC (Section 5.1 path).

        ``run_program`` does not consult the repair map, so addresses
        are translated here first.
        """
        bank, sub = dst.bank, dst.subarray
        scratch = self.scratch.get((bank, sub))
        if scratch is None:
            raise FaultError(
                f"degraded {op.value} on bank {bank} subarray {sub} needs "
                f"session scratch rows; call set_scratch first"
            )
        bad = self.bad_dcc.get((bank, sub), 1)
        repair = self.controller.repair
        t = lambda a: repair.translate(bank, sub, a)  # noqa: E731
        programs = compile_xor_minimal(
            self.amap,
            t(sources[0].address),
            t(sources[1].address),
            t(dst.address),
            scratch=(t(scratch[0]), t(scratch[1])),
            dcc=1 - bad,
            op=op,
        )
        for program in programs:
            self.controller.run_program(program, bank, sub)

    def _restore_sources(self, sources: Sequence[RowLocation]) -> None:
        for loc in sources:
            value = self.shadow.get(self._key(loc))
            if value is not None:
                self.device.write_row(loc, value)

    def _row_sources(self, src1, src2, src3, i) -> List[RowLocation]:
        sources = [src1[i]]
        if src2 is not None:
            sources.append(src2[i])
        if src3 is not None:
            sources.append(src3[i])
        return sources

    def _shadow_value(self, loc: RowLocation) -> np.ndarray:
        key = self._key(loc)
        value = self.shadow.get(key)
        if value is None:
            # First sight of this row: trust the device's current cells.
            value = self.device.read_row(loc)
            self.shadow[key] = value.copy()
        return value

    @staticmethod
    def _key(loc: RowLocation) -> Tuple[int, int, int]:
        return (loc.bank, loc.subarray, loc.address)

    def attempts_since(self, mark: int) -> List[RecoveryAttempt]:
        """The rungs appended after ``attempts_total`` was ``mark``.

        The wave runner snapshots :attr:`attempts_total` before
        executing and calls this afterwards; indexing through the
        monotonic counter (rather than ``len(attempts)``) stays correct
        after the bounded ring has started discarding old rungs.
        Rungs that have already been pushed out of the ring are gone --
        acceptable, since the caller always reads back within one wave.
        """
        dropped = self.attempts_total - len(self.attempts)
        start = max(0, mark - dropped)
        if start == 0:
            return list(self.attempts)
        return list(islice(self.attempts, start, None))

    def _attempt(
        self, op: str, loc: RowLocation, action: str, ok: bool, start_ns: int
    ) -> None:
        self.attempts.append(RecoveryAttempt(
            op, loc.bank, loc.subarray, loc.address, action, ok,
            start_ns, time.perf_counter_ns() - start_ns,
        ))
        self.attempts_total += 1

    def _record(self, op: str, loc: RowLocation, kind: str, action: str) -> None:
        self.log.append(
            RecoveryRecord(op, loc.bank, loc.subarray, loc.address, kind, action)
        )

    def _unrecovered(self, op: str, loc: RowLocation, kind: str) -> None:
        self._counters["unrecovered"].labels(kind=kind).inc()
        self._record(op, loc, kind, "unrecovered")
        # Re-sync the shadow with reality so one unrecovered fault does
        # not cascade into a mismatch storm on every downstream op; the
        # unrecovered count (not the shadow) is the failure signal.
        self.shadow[self._key(loc)] = self.device.read_row(loc).copy()
        if self.policy.strict:
            raise FaultError(
                f"unrecovered {kind} fault: {op} at bank {loc.bank} "
                f"subarray {loc.subarray} row {loc.address} (see "
                f"docs/RELIABILITY.md for the recovery ladder)"
            )
