"""Fault detection: command-path probes and paper-style verify rows.

All detection here drives the *command* path (ACTIVATE / WRITE / READ /
PRECHARGE through :class:`~repro.dram.chip.DramChip`), never the
functional backdoor: a stuck cell, a dead n-wordline, or a marginal TRA
only misbehave on the command path, and probing the way the hardware
would is what makes the probe command streams pinnable as golden traces.

The manufacturing-time analogue of these checks lives in
:mod:`repro.core.testing` (Section 5.5.2's test flow); this module is
the *runtime* half the recovery ladder calls after a result mismatch.

Probes are destructive: a probed row leaves holding the last probe
pattern.  Callers own restoring contents afterwards (the recovery
session rewrites from its shadow copy).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.core.microprograms import BulkOp, Microprogram, compile_not
from repro.core.primitives import AAP


def probe_patterns(words: int) -> Tuple[np.ndarray, ...]:
    """The four classic march patterns: zeros, ones, 0x55.., 0xAA.. ."""
    return (
        np.zeros(words, dtype=np.uint64),
        np.full(words, np.uint64(0xFFFFFFFFFFFFFFFF)),
        np.full(words, np.uint64(0x5555555555555555)),
        np.full(words, np.uint64(0xAAAAAAAAAAAAAAAA)),
    )


def write_row_commands(device, bank: int, subarray: int, address: int,
                       value: np.ndarray) -> None:
    """Store a full row through ACTIVATE + WRITE burst + PRECHARGE."""
    chip = device.chip
    chip.activate(bank, subarray, address)
    for column, word in enumerate(value):
        chip.write_word(bank, column, int(word))
    chip.precharge(bank)


def read_row_commands(device, bank: int, subarray: int, address: int) -> np.ndarray:
    """Fetch a full row through ACTIVATE + READ burst + PRECHARGE."""
    chip = device.chip
    chip.activate(bank, subarray, address)
    value = np.array(
        [chip.read_word(bank, column)
         for column in range(device.geometry.subarray.words_per_row)],
        dtype=np.uint64,
    )
    chip.precharge(bank)
    return value


def probe_row(device, bank: int, subarray: int, address: int) -> bool:
    """True when the row faithfully holds every probe pattern.

    Write-then-read through the command path, with a precharge between
    (so the read is a fresh sense of the cells, not the open latch).  A
    stuck row fails because its restore is pinned; destructive.
    """
    for pattern in probe_patterns(device.geometry.subarray.words_per_row):
        write_row_commands(device, bank, subarray, address, pattern)
        got = read_row_commands(device, bank, subarray, address)
        if not np.array_equal(got, pattern):
            return False
    return True


def probe_rows(
    device, bank: int, subarray: int, addresses: Sequence[int]
) -> List[int]:
    """The subset of ``addresses`` that fail :func:`probe_row`."""
    return [
        address
        for address in addresses
        if not probe_row(device, bank, subarray, address)
    ]


def probe_dcc(
    device, bank: int, subarray: int, dcc: int, scratch: Tuple[int, int]
) -> bool:
    """True when the chosen dual-contact row still negates.

    Runs a NOT microprogram routed through DCC ``dcc`` over two scratch
    data rows and checks the complement came out.  A broken n-wordline
    fails: the capture AAP stores the *true* value, so the round trip
    returns the input uninverted.  Destroys both scratch rows.
    """
    s_in, s_out = scratch
    words = device.geometry.subarray.words_per_row
    pattern = np.full(words, np.uint64(0x5A5A5A5A5A5A5A5A))
    write_row_commands(device, bank, subarray, s_in, pattern)
    program = compile_not(device.amap, s_in, s_out, dcc=dcc)
    device.controller.run_program(program, bank, subarray)
    got = read_row_commands(device, bank, subarray, s_out)
    return np.array_equal(got, ~pattern)


def verify_designated_rows(
    device, bank: int, subarray: int, verify_address: int
) -> List[int]:
    """Paper-style verify-row check of the four designated rows.

    Copies a known pattern from a reserved verify row into each of
    T0..T3 (the AAP every bulk operation opens with), activates the
    designated row alone, and reads the pattern back.  Returns the
    indices of designated rows that failed -- a non-empty result means
    the subarray cannot host TRAs and its operations must be steered
    elsewhere.  Destroys the verify row's neighbours in the B-group
    only (T0..T3 are scratch by contract).
    """
    amap = device.amap
    words = device.geometry.subarray.words_per_row
    pattern = np.full(words, np.uint64(0xC3C3C3C3C3C3C3C3))
    write_row_commands(device, bank, subarray, verify_address, pattern)
    failed = []
    for i in range(4):
        program = Microprogram(
            BulkOp.COPY, (AAP(verify_address, amap.b(i)),)
        )
        device.controller.run_program(program, bank, subarray)
        got = read_row_commands(device, bank, subarray, amap.b(i))
        if not np.array_equal(got, pattern):
            failed.append(i)
    return failed
