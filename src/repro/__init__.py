"""repro: a full reproduction of *Ambit: In-Memory Accelerator for Bulk
Bitwise Operations Using Commodity DRAM Technology* (Seshadri et al.,
MICRO-50, 2017).

Layer map (bottom to top):

* :mod:`repro.dram` -- command-accurate functional DRAM (subarrays,
  sense amplifiers, banks, RowClone, FR-FCFS controller).
* :mod:`repro.circuit` -- charge-sharing physics and the TRA
  reliability study (Table 2, the +/-6 % corner).
* :mod:`repro.core` -- Ambit itself: Table 1 addressing, AAP/AP,
  Figure 8 microprograms, controller, device, driver, bbop ISA,
  coherence, TMR ECC.
* :mod:`repro.energy` -- the Table 3 energy model.
* :mod:`repro.perf` -- the Figure 9 throughput models.
* :mod:`repro.sim` -- the Gem5-substitute system cost model (Table 4).
* :mod:`repro.apps` -- bitmap indices, BitWeaving, sets, BitFunnel,
  masked init, XOR crypto, DNA filtering (Figures 10-12, Section 8.4).
* :mod:`repro.workloads` -- deterministic synthetic data generators.

Quickstart::

    from repro import AmbitBitSystem
    import numpy as np

    system = AmbitBitSystem()
    a = system.from_bits(np.random.default_rng(0).random(100_000) < 0.5)
    b = system.from_bits(np.random.default_rng(1).random(100_000) < 0.5,
                         like=a)
    c = a & b            # executes triple-row activations in DRAM
    print(c.popcount(), system.elapsed_ns, "ns")
"""

from repro.apps.bitvector import AmbitBitSystem, BitVector
from repro.core.device import AmbitDevice
from repro.core.driver import AmbitDriver
from repro.core.microprograms import BulkOp
from repro.dram.geometry import DramGeometry, SubarrayGeometry, small_test_geometry
from repro.errors import (
    AddressError,
    AlignmentError,
    AllocationError,
    ConfigError,
    DramProtocolError,
    EccError,
    ReproError,
    SimulationError,
)

__version__ = "1.0.0"

__all__ = [
    "AddressError",
    "AlignmentError",
    "AllocationError",
    "AmbitBitSystem",
    "AmbitDevice",
    "AmbitDriver",
    "BitVector",
    "BulkOp",
    "ConfigError",
    "DramGeometry",
    "DramProtocolError",
    "EccError",
    "ReproError",
    "SimulationError",
    "SubarrayGeometry",
    "small_test_geometry",
    "__version__",
]
