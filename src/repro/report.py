"""One-shot reproduction report: every experiment, one markdown file.

``python -m repro report [--fast] [--output FILE]`` regenerates all of
the paper's evaluation tables/figures at full (or reduced, ``--fast``)
scale and writes a self-contained markdown report with the
paper-vs-measured comparison -- the programmatic counterpart of
EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass
class ReportConfig:
    """Scale knobs for the report run."""

    fast: bool = False

    @property
    def mc_trials(self) -> int:
        return 20_000 if self.fast else 100_000

    @property
    def fig10_users(self) -> tuple:
        return (2_000_000,) if self.fast else (8_000_000, 16_000_000)

    @property
    def fig11_rows(self) -> tuple:
        return (500_000,) if self.fast else (1_000_000, 8_000_000)

    @property
    def fig12_elements(self) -> tuple:
        return (16, 256) if self.fast else (4, 16, 64, 256, 1024)


def _section_table2(cfg: ReportConfig) -> List[str]:
    from repro.circuit import (
        format_table2,
        max_tolerable_variation,
        table2_experiment,
    )

    lines = ["## Table 2 — TRA reliability", "```"]
    lines.append(format_table2(table2_experiment(trials=cfg.mc_trials)))
    lines.append(
        f"adversarial corner tolerance: "
        f"+/-{max_tolerable_variation() * 100:.2f}% (paper: ~6%)"
    )
    lines.append("```")
    return lines


def _section_table3(cfg: ReportConfig) -> List[str]:
    from repro.energy import format_table3, table3_experiment

    return ["## Table 3 — energy", "```", format_table3(table3_experiment()), "```"]


def _section_fig9(cfg: ReportConfig) -> List[str]:
    from repro.perf import figure9_experiment, format_figure9

    return [
        "## Figure 9 — throughput",
        "```",
        format_figure9(figure9_experiment()),
        "```",
    ]


def _section_fig10(cfg: ReportConfig) -> List[str]:
    from repro.apps import bitmap_index as bi
    from repro.sim import AmbitContext, CpuContext

    lines = [
        "## Figure 10 — bitmap indices",
        "",
        "| users | weeks | baseline ms | ambit ms | speedup |",
        "|---|---|---|---|---|",
    ]
    for users in cfg.fig10_users:
        workload = bi.generate_workload(users, 4, seed=10)
        for weeks in (2, 3, 4):
            base = bi.run_query(CpuContext(), workload, weeks)
            accel = bi.run_query(AmbitContext(), workload, weeks)
            lines.append(
                f"| {users:,} | {weeks} | {base.elapsed_ns / 1e6:.2f} | "
                f"{accel.elapsed_ns / 1e6:.2f} | "
                f"{base.elapsed_ns / accel.elapsed_ns:.1f}x |"
            )
    lines.append("")
    lines.append("Paper: 5.4x-6.6x, average ~6x.")
    return lines


def _section_fig11(cfg: ReportConfig) -> List[str]:
    from repro.apps.bitweaving import (
        BitWeavingColumn,
        scan_range_ambit,
        scan_range_baseline,
    )
    from repro.sim import AmbitContext, CpuContext
    from repro.workloads import column_values

    rng = np.random.default_rng(20)
    lines = [
        "## Figure 11 — BitWeaving",
        "",
        "| rows | bits | speedup |",
        "|---|---|---|",
    ]
    for rows in cfg.fig11_rows:
        for bits in (4, 16, 32):
            values = column_values(rows, bits, rng)
            column = BitWeavingColumn.encode(values, bits)
            c1, c2 = (1 << bits) // 4, (3 << bits) // 4
            base_ctx, ambit_ctx = CpuContext(), AmbitContext()
            scan_range_baseline(base_ctx, column, c1, c2)
            scan_range_ambit(ambit_ctx, column, c1, c2)
            lines.append(
                f"| {rows:,} | {bits} | "
                f"{base_ctx.elapsed_ns / ambit_ctx.elapsed_ns:.1f}x |"
            )
    lines.append("")
    lines.append("Paper: 1.8x-11.8x, average 7x, growing with bits/value.")
    return lines


def _section_fig12(cfg: ReportConfig) -> List[str]:
    from repro.apps.sets import AmbitSetOps, BitsetSetOps, RBTreeSetOps
    from repro.sim.cpu import CpuModel
    from repro.workloads import random_sets

    domain, m = 512 * 1024, 15
    cpu = CpuModel()
    impls = {
        "rbtree": RBTreeSetOps(cpu),
        "bitset": BitsetSetOps(domain, cpu),
        "ambit": AmbitSetOps(domain, cpu),
    }
    lines = [
        "## Figure 12 — set operations (normalised to RB-tree)",
        "",
        "| e | op | bitset | ambit |",
        "|---|---|---|---|",
    ]
    for e in cfg.fig12_elements:
        sets = random_sets(m, e, domain, np.random.default_rng(e))
        for op in ("union", "intersection", "difference"):
            times = {
                name: getattr(impl, op)(sets).elapsed_ns
                for name, impl in impls.items()
            }
            rb = times["rbtree"]
            lines.append(
                f"| {e} | {op} | {times['bitset'] / rb:.2f} | "
                f"{times['ambit'] / rb:.2f} |"
            )
    lines.append("")
    lines.append(
        "Paper: Ambit ~3x better than Bitset; RB-trees win only for "
        "very small sets."
    )
    return lines


def _section_profile(cfg: ReportConfig) -> List[str]:
    from repro.perf.profiling import run_profile_workload

    report = run_profile_workload("all", repeats=2 if cfg.fast else 4)
    return [
        "## Command-stream profile — all seven bulk ops",
        "",
        "Per-operation command counts, accounted busy time and energy,",
        "measured by the `repro.obs` tracer over a bit-exact run",
        "(regenerate interactively with `python -m repro profile`).",
        "",
        "```",
        report.format_table(),
        "```",
    ]


def generate_report(cfg: ReportConfig) -> str:
    """Run every experiment and return the markdown report."""
    started = time.time()
    sections = [
        "# Ambit reproduction report",
        "",
        f"Scale: {'fast (reduced sizes)' if cfg.fast else 'full (paper sizes)'}.",
        "",
    ]
    for builder in (
        _section_table2,
        _section_table3,
        _section_fig9,
        _section_fig10,
        _section_fig11,
        _section_fig12,
        _section_profile,
    ):
        sections.extend(builder(cfg))
        sections.append("")
    sections.append(f"_Generated in {time.time() - started:.1f} s._")
    return "\n".join(sections)
