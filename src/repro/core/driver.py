"""Subarray-aware memory driver (Section 5.4.2).

Ambit is only fast when the rows of a bulk operation sit in the *same
subarray*, so every copy is a RowClone-FPM.  The paper therefore expects
"a driver that is aware of the internal mapping of DRAM rows to
subarrays and maps the bitvectors involved in bulk bitwise operations to
the same DRAM subarray".  Large bitvectors are *interleaved*: chunk ``i``
of every co-operating bitvector lands in the same subarray, while
different chunks spread across banks for memory-level parallelism.

This module is that driver: a row allocator over the device's D-group
rows with

* **striped allocation** -- consecutive row-sized chunks of one vector
  round-robin across (bank, subarray) stripes,
* **group co-location** -- ``allocate(nbits, like=handle)`` places chunk
  ``i`` in the same subarray as ``handle``'s chunk ``i``,
* **per-subarray scratch rows** -- two reserved rows per subarray used
  to stage the odd cross-subarray operand via RowClone-PSM.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.core.device import AmbitDevice
from repro.dram.chip import RowLocation
from repro.errors import AllocationError

#: Scratch rows reserved per subarray for cross-subarray staging.
SCRATCH_ROWS_PER_SUBARRAY = 2

StripeKey = Tuple[int, int]  # (bank, subarray)


def scratch_row_location(
    device: AmbitDevice, bank: int, subarray: int, index: int = 0
) -> RowLocation:
    """The ``index``-th reserved scratch row of a subarray."""
    if not 0 <= index < SCRATCH_ROWS_PER_SUBARRAY:
        raise AllocationError(
            f"scratch index must be < {SCRATCH_ROWS_PER_SUBARRAY}; got {index}"
        )
    data_rows = device.geometry.subarray.data_rows
    return RowLocation(
        bank=bank,
        subarray=subarray,
        address=data_rows - SCRATCH_ROWS_PER_SUBARRAY + index,
    )


def stage_row(
    device: AmbitDevice,
    operand: RowLocation,
    target: RowLocation,
    scratch_index: int = 0,
) -> RowLocation:
    """Copy ``operand`` into a scratch row of ``target``'s subarray.

    Cross-bank strays use RowClone-PSM; same-bank/different-subarray
    strays pay an equivalent internal-bus copy (LISA would accelerate
    this; the paper leaves it as future work, Section 3.4 footnote).
    Co-located operands are returned unchanged at zero cost.
    """
    if (operand.bank, operand.subarray) == (target.bank, target.subarray):
        return operand
    scratch = scratch_row_location(device, target.bank, target.subarray, scratch_index)
    if operand.bank != target.bank:
        device.psm_copy(operand, scratch)
    else:
        from repro.dram.rowclone import psm_latency_ns

        device.write_row(scratch, device.read_row(operand))
        latency = psm_latency_ns(device.timing, device.row_bytes)
        stats = device.controller.stats
        stats.busy_ns += latency
        stats.bank_busy_ns[target.bank] += latency
        device.chip.clock_ns += latency
    return scratch


@dataclass
class BitVectorHandle:
    """An allocated bitvector: an ordered list of row locations.

    ``rows[i]`` holds bits ``[i*row_bits, (i+1)*row_bits)``.  The final
    row is padded with zeros when ``nbits`` is not row-aligned
    (Section 5.4.1: applications pad to row granularity).
    """

    nbits: int
    rows: List[RowLocation]

    @property
    def num_rows(self) -> int:
        return len(self.rows)


class AmbitDriver:
    """Allocates D-group rows with subarray awareness."""

    def __init__(self, device: AmbitDevice):
        self.device = device
        geo = device.geometry
        data_rows = geo.subarray.data_rows
        if data_rows <= SCRATCH_ROWS_PER_SUBARRAY:
            raise AllocationError(
                f"subarray has only {data_rows} data rows; cannot reserve "
                f"{SCRATCH_ROWS_PER_SUBARRAY} scratch rows"
            )
        #: Pool pressure diagnostics: rows currently allocated and the
        #: most rows ever simultaneously allocated (high-water mark).
        #: Surfaced by the profiler and the metrics registry.
        self.rows_in_use = 0
        self.high_water_rows = 0
        # Back-reference so observability layers reached through the
        # device (profiler, metrics, CLI) can report allocator pressure.
        device.driver = self
        metrics = getattr(device, "metrics", None)
        if metrics is not None:
            in_use = metrics.gauge(
                "ambit_allocator_rows_in_use", "D-group rows allocated now"
            )
            high_water = metrics.gauge(
                "ambit_allocator_high_water_rows",
                "Most D-group rows ever simultaneously allocated",
            )
            free_rows = metrics.gauge(
                "ambit_allocator_free_rows", "Unallocated D-group rows"
            )

            def _collect() -> None:
                in_use.set(self.rows_in_use)
                high_water.set(self.high_water_rows)
                free_rows.set(self.free_rows())

            metrics.register_collector(_collect)
        #: Free local row addresses per stripe, lowest-first.  The top
        #: SCRATCH_ROWS_PER_SUBARRAY addresses are reserved as scratch.
        #: A deque (O(1) popleft) with a mirror set (O(1) double-free
        #: detection) -- with list.pop(0) + linear membership scans the
        #: allocator dominated large runs (see
        #: ``benchmarks/test_bench_allocator.py``).
        self._free: Dict[StripeKey, Deque[int]] = {}
        self._free_sets: Dict[StripeKey, Set[int]] = {}
        self._stripes: List[StripeKey] = []
        for bank in range(geo.banks):
            for sub in range(geo.subarrays_per_bank):
                key = (bank, sub)
                self._stripes.append(key)
                addresses = range(data_rows - SCRATCH_ROWS_PER_SUBARRAY)
                self._free[key] = deque(addresses)
                self._free_sets[key] = set(addresses)
        # Interleave stripes bank-major so consecutive chunks of one
        # vector hit different banks (maximising bank-level parallelism).
        self._stripes.sort(key=lambda k: (k[1], k[0]))
        #: Rotating queue of stripes believed to have free rows.  A
        #: stripe found empty is dropped (lazily -- ``_take_from`` via
        #: ``like=`` can drain a stripe without touching the queue) and
        #: re-queued when a row is freed back to it, so round-robin
        #: allocation is amortized O(1) even when most stripes are full
        #: (the old implementation rescanned every full stripe on each
        #: allocation).
        self._live: Deque[StripeKey] = deque(self._stripes)
        self._live_set: Set[StripeKey] = set(self._stripes)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def rows_needed(self, nbits: int) -> int:
        """DRAM rows required to hold ``nbits``."""
        if nbits <= 0:
            raise AllocationError(f"bitvector size must be positive; got {nbits}")
        row_bits = self.device.row_bits
        return -(-nbits // row_bits)  # ceil division

    def allocate(
        self, nbits: int, like: Optional[BitVectorHandle] = None
    ) -> BitVectorHandle:
        """Allocate a bitvector of ``nbits``.

        With ``like``, chunk ``i`` is placed in the same subarray as
        ``like.rows[i]`` so that later bulk operations between the two
        vectors are pure RowClone-FPM (this is the co-location contract
        of Section 5.4.2).
        """
        n = self.rows_needed(nbits)
        if like is not None and like.num_rows != n:
            raise AllocationError(
                f"co-location template has {like.num_rows} rows; need {n}"
            )
        rows: List[RowLocation] = []
        try:
            for i in range(n):
                if like is not None:
                    key = (like.rows[i].bank, like.rows[i].subarray)
                    rows.append(self._take_from(key))
                else:
                    rows.append(self._take_round_robin())
        except AllocationError:
            for loc in rows:  # roll back the partial allocation
                self._release(loc)
            raise
        return BitVectorHandle(nbits=nbits, rows=rows)

    def free(self, handle: BitVectorHandle) -> None:
        """Return a bitvector's rows to the free pool."""
        for loc in handle.rows:
            if loc.address in self._free_sets[(loc.bank, loc.subarray)]:
                raise AllocationError(f"double free of row {loc}")
            self._release(loc)
        handle.rows = []

    def _release(self, loc: RowLocation) -> None:
        key = (loc.bank, loc.subarray)
        self._free[key].append(loc.address)
        self._free_sets[key].add(loc.address)
        self.rows_in_use -= 1
        if key not in self._live_set:
            self._live_set.add(key)
            self._live.append(key)

    def scratch_row(self, bank: int, subarray: int, index: int = 0) -> RowLocation:
        """A reserved staging row in the given subarray."""
        return scratch_row_location(self.device, bank, subarray, index)

    @contextmanager
    def temp_rows(self, like: BitVectorHandle, count: int):
        """Lease ``count`` scratch vectors co-located with ``like``.

        The operation compiler's synthesized microprograms clobber
        ``CompiledOp.num_temps`` scratch rows per chunk; this context
        manager allocates them chunk-aligned with the destination (so
        every step stays RowClone-FPM) and returns them to the pool on
        exit, however the compiled batch finishes.  Contents are
        undefined on entry and garbage on exit -- compiled steps write
        every scratch row before reading it.
        """
        handles: List[BitVectorHandle] = []
        try:
            for _ in range(count):
                handles.append(self.allocate(like.nbits, like=like))
            yield handles
        finally:
            for handle in handles:
                if handle.rows:
                    self.free(handle)

    # ------------------------------------------------------------------
    # Cross-subarray staging
    # ------------------------------------------------------------------
    def stage_for(
        self, operand: RowLocation, target: RowLocation, scratch_index: int = 0
    ) -> RowLocation:
        """Make ``operand`` usable in ``target``'s subarray.

        Co-located operands are returned unchanged; strays are staged
        into a scratch row (see :func:`stage_row`).  This is the slow
        path the driver exists to avoid.
        """
        return stage_row(self.device, operand, target, scratch_index)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def free_rows(self) -> int:
        """Total unallocated D-group rows across the device."""
        return sum(len(v) for v in self._free.values())

    def colocated(self, a: BitVectorHandle, b: BitVectorHandle) -> bool:
        """True when every chunk pair shares a subarray."""
        if a.num_rows != b.num_rows:
            return False
        return all(
            (ra.bank, ra.subarray) == (rb.bank, rb.subarray)
            for ra, rb in zip(a.rows, b.rows)
        )

    # ------------------------------------------------------------------
    def _take_from(self, key: StripeKey) -> RowLocation:
        free_list = self._free[key]
        if not free_list:
            raise AllocationError(
                f"subarray bank={key[0]} sub={key[1]} is full; cannot "
                f"co-locate (free elsewhere or use a fresh group)"
            )
        address = free_list.popleft()
        self._free_sets[key].discard(address)
        self.rows_in_use += 1
        if self.rows_in_use > self.high_water_rows:
            self.high_water_rows = self.rows_in_use
        return RowLocation(bank=key[0], subarray=key[1], address=address)

    def _take_round_robin(self) -> RowLocation:
        live = self._live
        while live:
            key = live[0]
            if not self._free[key]:
                # Stale entry (drained directly or via co-location).
                live.popleft()
                self._live_set.discard(key)
                continue
            location = self._take_from(key)
            live.rotate(-1)
            return location
        raise AllocationError("device is out of D-group rows")
