"""The assembled Ambit device: chip + split decoder + controller.

This is the main entry point of the library's hardware model.  An
:class:`AmbitDevice` is a DRAM device whose subarrays carry the B-/C-
group rows and the split row decoder, fronted by an Ambit-aware
controller.  On top of it sit the driver (:mod:`repro.core.driver`) and
the application-facing :class:`~repro.apps.bitvector.BitVector`.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.addressing import AmbitAddressMap
from repro.core.controller import AmbitController
from repro.core.microprograms import BulkOp
from repro.dram.chip import DramChip, RowLocation
from repro.dram.geometry import DramGeometry
from repro.dram.rowclone import psm_latency_ns, rowclone_psm
from repro.dram.timing import TimingParameters, ddr3_1600
from repro.errors import AddressError


class AmbitDevice:
    """A complete Ambit DRAM device.

    Parameters
    ----------
    geometry:
        Device shape; defaults to the paper's configuration (8 banks,
        1024-row subarrays, 8 KB rows).
    timing:
        Speed grade for latency accounting; defaults to DDR3-1600, the
        paper's reference.
    split_decoder:
        Disable to model the naive 80 ns AAP (Section 5.3 ablation).
    charge_model_factory:
        Optional nullary factory of analog TRA models, one per subarray,
        to run the device with process variation (Section 6).
    row_store:
        Optional :class:`~repro.parallel.shm.SharedRowStore` backing all
        cell state with a shared-memory segment (the multi-process
        simulator's zero-copy substrate).  The device that *creates* the
        store owns it: :meth:`close` unlinks the segment.
    initialize_control_rows:
        Set False when attaching to an already-initialized shared store
        (a worker process must not re-stamp C0/C1).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` to record
        into; by default every device owns a fresh registry.  The
        controller, plan cache, batch engine, driver, and (for sharded
        devices) the worker pool all feed it.
    """

    def __init__(
        self,
        geometry: Optional[DramGeometry] = None,
        timing: Optional[TimingParameters] = None,
        split_decoder: bool = True,
        charge_model_factory: Optional[Callable[[], object]] = None,
        row_store: Optional[object] = None,
        initialize_control_rows: bool = True,
        metrics: Optional[object] = None,
    ):
        from repro.obs.metrics import MetricsRegistry

        self.geometry = geometry if geometry is not None else DramGeometry()
        self.timing = timing if timing is not None else ddr3_1600()
        self.amap = AmbitAddressMap(self.geometry.subarray)
        self.row_store = row_store
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.chip = DramChip(
            self.geometry,
            decoder_factory=lambda: self.amap.build_decoder(),
            charge_model_factory=charge_model_factory,
            row_store=row_store,
        )
        self.controller = AmbitController(
            self.chip,
            self.timing,
            split_decoder=split_decoder,
            metrics=self.metrics,
        )
        self._engine = None
        if initialize_control_rows:
            self._initialize_control_rows()

    # ------------------------------------------------------------------
    # Manufacturer initialisation
    # ------------------------------------------------------------------
    def _initialize_control_rows(self) -> None:
        """Pre-set C0 to zeros and C1 to ones in every subarray.

        Section 3.4: "we reserve two control rows in each subarray, C0
        and C1.  C0 is initialized to all zeros and C1 is initialized to
        all ones."
        """
        words = self.geometry.subarray.words_per_row
        zeros = np.zeros(words, dtype=np.uint64)
        ones = np.full(words, np.uint64(0xFFFFFFFFFFFFFFFF))
        for bank in self.chip.banks:
            for sub in bank.subarrays:
                sub.poke(self.amap.row_c0, zeros)
                sub.poke(self.amap.row_c1, ones)

    # ------------------------------------------------------------------
    # Row-level operations
    # ------------------------------------------------------------------
    def bbop_row(
        self,
        op: BulkOp,
        dst: RowLocation,
        src1: RowLocation,
        src2: Optional[RowLocation] = None,
        src3: Optional[RowLocation] = None,
    ) -> None:
        """Execute one bulk bitwise operation on row-sized operands.

        All operands must live in the same subarray (the driver's job,
        Section 5.4.2); cross-subarray operands need explicit staging
        via :meth:`psm_copy` first.
        """
        locs = [dst, src1] + [s for s in (src2, src3) if s is not None]
        bank, sub = dst.bank, dst.subarray
        for loc in locs:
            if (loc.bank, loc.subarray) != (bank, sub):
                raise AddressError(
                    f"bbop operands must share a subarray: {loc} vs "
                    f"bank {bank} subarray {sub} "
                    f"(stage cross-subarray operands with psm_copy)"
                )
        self.controller.bbop(
            op,
            bank,
            sub,
            dk=dst.address,
            di=src1.address,
            dj=None if src2 is None else src2.address,
            dl=None if src3 is None else src3.address,
        )

    def bbop_compiled_row(
        self,
        cop,
        dst: RowLocation,
        srcs: Sequence[RowLocation],
        temps: Sequence[RowLocation],
    ) -> None:
        """Execute one compiled (synthesized) operation on row operands.

        ``cop`` is a :class:`repro.compile.ops.CompiledOp`; ``srcs``
        bind its inputs in order and ``temps`` are the scratch rows its
        steps clobber.  Like :meth:`bbop_row`, every row must live in
        the destination's subarray.
        """
        locs = [dst, *srcs, *temps]
        bank, sub = dst.bank, dst.subarray
        for loc in locs:
            if (loc.bank, loc.subarray) != (bank, sub):
                raise AddressError(
                    f"bbop operands must share a subarray: {loc} vs "
                    f"bank {bank} subarray {sub} "
                    f"(stage cross-subarray operands with psm_copy)"
                )
        self.controller.bbop_compiled(
            cop,
            bank,
            sub,
            dk=dst.address,
            srcs=tuple(loc.address for loc in srcs),
            temps=tuple(loc.address for loc in temps),
        )

    @property
    def engine(self):
        """The device's :class:`~repro.engine.batch.BatchEngine`.

        Built lazily; use it to execute whole row batches with plan
        caching, fused kernels, and bank-interleaved issue::

            report = device.engine.run_rows(BulkOp.AND, dsts, srcs1, srcs2)
            print(report.parallelism.format())
        """
        if self._engine is None:
            from repro.engine.batch import BatchEngine

            self._engine = BatchEngine(self)
        return self._engine

    def psm_copy(self, src: RowLocation, dst: RowLocation) -> None:
        """RowClone-PSM copy between banks, with latency accounting."""
        tracer = self.chip.tracer
        start_ns = self.chip.clock_ns
        if tracer is not None:
            tracer.begin_op("psm_copy", dst.bank, dst.subarray, start_ns)
        rowclone_psm(self.chip, src, dst)
        latency = psm_latency_ns(self.timing, self.geometry.row_bytes)
        stats = self.controller.stats
        stats.busy_ns += latency
        stats.bank_busy_ns[src.bank] += latency
        stats.bank_busy_ns[dst.bank] += latency
        self.chip.clock_ns += latency
        if tracer is not None:
            tracer.record_primitive(
                "PSM_COPY", dst.bank, dst.subarray, start_ns, latency,
                src_bank=src.bank, src_subarray=src.subarray,
            )
            tracer.end_op(self.chip.clock_ns)

    # ------------------------------------------------------------------
    # Host (functional) access
    # ------------------------------------------------------------------
    def _repaired(self, loc: RowLocation) -> RowLocation:
        """Resolve a location through the runtime spare-row map, so the
        host's functional view follows the same remapping the command
        path applies (identity while no repairs are assigned)."""
        repair = self.controller.repair
        if not repair:
            return loc
        return RowLocation(
            loc.bank,
            loc.subarray,
            repair.translate(loc.bank, loc.subarray, loc.address),
        )

    def write_row(self, loc: RowLocation, data: np.ndarray) -> None:
        """Functionally store a packed uint64 row image at ``loc``."""
        self.chip.poke_row(self._repaired(loc), data)

    def read_row(self, loc: RowLocation) -> np.ndarray:
        """Functionally read the packed uint64 row image at ``loc``."""
        return self.chip.peek_row(self._repaired(loc))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def row_bytes(self) -> int:
        return self.geometry.row_bytes

    @property
    def row_bits(self) -> int:
        return self.geometry.subarray.row_bits

    @property
    def elapsed_ns(self) -> float:
        """Bank-parallel completion time of all work so far."""
        return self.controller.stats.makespan_ns()

    @property
    def busy_ns(self) -> float:
        """Serial (single-bank-equivalent) time of all work so far."""
        return self.controller.stats.busy_ns

    def reset_stats(self) -> None:
        """Clear controller statistics and the command trace.

        Quiesce-then-reset protocol: when this device's cells back a
        multi-process :class:`~repro.parallel.device.ShardedDevice`,
        resetting while shard jobs are in flight would tear counters out
        from under the deterministic merge.  The sharded facade enforces
        the protocol (its ``reset_stats`` raises
        :class:`~repro.errors.ConcurrencyError` until ``quiesce()``
        drains the pool); call reset only through it.

        The metrics registry resets with the statistics: counters,
        per-op histograms, and worker gauges all restart from zero in
        the same call, so metrics and counters can never describe
        different epochs.
        """
        self.controller.reset_stats()
        self.metrics.reset()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release external resources (idempotent).

        A device over a :class:`~repro.parallel.shm.SharedRowStore`
        unlinks the shared-memory segment it owns; a GC finalizer on the
        store covers devices that are dropped without closing.  Plain
        in-process devices need no cleanup.
        """
        if self.row_store is not None:
            self.row_store.release()

    def __enter__(self) -> "AmbitDevice":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def tracer(self):
        """The attached :class:`repro.obs.tracer.Tracer` (or ``None``)."""
        return self.chip.tracer

    def attach_tracer(self, tracer=None):
        """Attach a tracer to the command path; returns it.

        With no argument, builds a :class:`repro.obs.tracer.Tracer`
        configured with this device's timing and row size (but no sinks
        -- add a ring buffer / Chrome sink as needed).
        """
        if tracer is None:
            from repro.obs.tracer import Tracer

            tracer = Tracer(timing=self.timing, row_bytes=self.row_bytes)
        self.chip.tracer = tracer
        return tracer

    def detach_tracer(self):
        """Detach and return the current tracer (without closing it)."""
        tracer, self.chip.tracer = self.chip.tracer, None
        return tracer

    def profile(self):
        """Profile a region of work: counters + per-bulk-op summaries.

        Usage::

            with device.profile() as prof:
                device.bbop_row(BulkOp.AND, dk, di, dj)
            print(prof.format_table())

        See :func:`repro.obs.profiler.profile`.
        """
        from repro.obs.profiler import profile as _profile

        return _profile(self)
