"""The Ambit controller (Section 5.5.2).

Sits where the memory controller sits: it knows the address groups, the
timing of the ACTIVATE variants, and the command sequences of the bulk
bitwise operations.  Executing a bulk operation means compiling it to a
microprogram (:mod:`repro.core.microprograms`), streaming the resulting
DRAM commands to the chip, and advancing the model clock by the
primitive latencies.

The controller is deliberately *per-device but subarray-agnostic*: a
bulk operation may be issued to any (bank, subarray) pair, and
operations to different banks can overlap in time (bank-level
parallelism), which :meth:`AmbitController.elapsed_parallel_ns` models.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.addressing import AmbitAddressMap
from repro.core.microprograms import BulkOp, Microprogram
from repro.core.primitives import AAP, AP
from repro.core.repair import RowRepairMap
from repro.dram.chip import DramChip
from repro.dram.timing import TimingParameters
from repro.engine.plan import PlanCache, RowPlan
from repro.errors import DramProtocolError


@dataclass
class ControllerStats:
    """Cumulative accounting of executed work."""

    ops: Dict[BulkOp, int] = field(default_factory=lambda: defaultdict(int))
    aap_count: int = 0
    ap_count: int = 0
    #: Serial time: every primitive on every bank, end to end.
    busy_ns: float = 0.0
    #: Per-bank busy time, for the bank-parallel makespan.
    bank_busy_ns: Dict[int, float] = field(default_factory=lambda: defaultdict(float))

    def makespan_ns(self) -> float:
        """Completion time with perfect bank-level overlap.

        Ambit's throughput "scales linearly with ... the memory-level
        parallelism available inside DRAM (number of banks)" (Section 1);
        independent per-bank command streams proceed concurrently, so the
        makespan is the busiest bank's serial time.
        """
        if not self.bank_busy_ns:
            return 0.0
        return max(self.bank_busy_ns.values())


class AmbitController:
    """Executes bulk bitwise operations on an Ambit-enabled DRAM chip.

    Parameters
    ----------
    chip:
        A :class:`~repro.dram.chip.DramChip` built with the Ambit split
        decoder (see :class:`repro.core.device.AmbitDevice`).
    timing:
        DRAM speed grade used for latency accounting.
    split_decoder:
        When False, every AAP pays the serial ``2*tRAS + tRP`` latency
        (the Section 5.3 ablation).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; when given,
        the controller counts completed bulk operations and feeds the
        per-op accounted-latency histogram (the batch engine feeds the
        same families for fused rows, so both execution paths expose one
        coherent view).
    """

    def __init__(
        self,
        chip: DramChip,
        timing: TimingParameters,
        split_decoder: bool = True,
        metrics: Optional[object] = None,
    ):
        self.chip = chip
        self.timing = timing
        self.split_decoder = split_decoder
        self.amap = AmbitAddressMap(chip.geometry.subarray)
        self.stats = ControllerStats()
        #: Memoised microprogram compilation (shared with the batch
        #: engine).  Survives :meth:`reset_stats` -- only its hit/miss
        #: counters are statistics.
        self.plan_cache = PlanCache(
            self.amap, timing, split_decoder, metrics=metrics
        )
        #: Runtime spare-row remapping (Section 5.5.3), consulted on the
        #: address path of every bulk operation and backdoor row access.
        #: Empty by default; the fault-recovery layer populates it.
        self.repair = RowRepairMap()
        #: Per-(bank, subarray) DCC route for single-negation programs:
        #: 0 (DCC0, the default) or 1 (DCC1).  The fault-recovery layer
        #: flips a subarray's route when its DCC0 n-wordline breaks.
        self.dcc_route: Dict[Tuple[int, int], int] = {}
        self.metrics = metrics
        self._m_ops = self._m_latency = self._m_busy = None
        if metrics is not None:
            self._m_ops = metrics.counter(
                "ambit_ops_total",
                "Completed bulk bitwise operations",
                labels=("op",),
            )
            self._m_latency = metrics.histogram(
                "ambit_op_latency_ns",
                "Accounted per-row latency of bulk operations (ns)",
                labels=("op",),
            )
            self._m_busy = metrics.counter(
                "ambit_busy_ns_total",
                "Serial accounted busy time across all banks (ns)",
            )

    # ------------------------------------------------------------------
    # Bulk operations
    # ------------------------------------------------------------------
    def bbop(
        self,
        op: BulkOp,
        bank: int,
        subarray: int,
        dk: int,
        di: int,
        dj: Optional[int] = None,
        dl: Optional[int] = None,
    ) -> Microprogram:
        """Execute one bulk bitwise operation on one subarray.

        ``dk``/``di``/``dj`` are local row addresses (D-group for data,
        C-group sources are allowed so tests can use constant rows).
        Returns the microprogram that was executed.

        The compiled plan is memoised in :attr:`plan_cache`: repeated
        operations at the same local addresses (every row of a striped
        bitvector) reuse the microprogram and its latencies.

        Addresses first pass through :attr:`repair` (runtime spare-row
        remapping) and the program through :attr:`dcc_route`, so callers
        never see repaired rows or rerouted negations.
        """
        if self.repair:
            dk = self.repair.translate(bank, subarray, dk)
            di = self.repair.translate(bank, subarray, di)
            if dj is not None:
                dj = self.repair.translate(bank, subarray, dj)
            if dl is not None:
                dl = self.repair.translate(bank, subarray, dl)
        dcc = self.dcc_route.get((bank, subarray), 0)
        plan = self.plan_cache.get(op, dk, di, dj, dl, dcc)
        self.run_plan(plan, bank, subarray)
        return plan.program

    def bbop_compiled(
        self,
        cop,
        bank: int,
        subarray: int,
        dk: int,
        srcs: Tuple[int, ...],
        temps: Tuple[int, ...],
    ) -> Microprogram:
        """Execute one compiled (synthesized) operation on one subarray.

        ``cop`` is a :class:`repro.compile.ops.CompiledOp`; ``srcs`` are
        the operand rows in its input order and ``temps`` the reserved
        scratch rows its steps clobber.  Same address path as
        :meth:`bbop`: spare-row repair translates every row, the
        subarray's DCC route picks the dual-contact cell for single
        negations, and the bound plan memoises in :attr:`plan_cache`.
        """
        if self.repair:
            dk = self.repair.translate(bank, subarray, dk)
            srcs = tuple(
                self.repair.translate(bank, subarray, r) for r in srcs
            )
            temps = tuple(
                self.repair.translate(bank, subarray, r) for r in temps
            )
        dcc = self.dcc_route.get((bank, subarray), 0)
        plan = self.plan_cache.get_compiled(
            cop, dk, tuple(srcs), tuple(temps), dcc
        )
        self.run_plan(plan, bank, subarray)
        return plan.program

    def run_program(self, program: Microprogram, bank: int, subarray: int) -> None:
        """Stream an already-compiled microprogram to the chip.

        When a tracer is attached to the chip, each primitive is emitted
        as a span with its accounted latency, and the whole program as a
        bulk-op span carrying aggregate attributes.
        """
        latencies = tuple(
            p.latency_ns(self.timing, self.amap, self.split_decoder)
            for p in program.primitives
        )
        self._run(program, latencies, bank, subarray)

    def run_plan(self, plan: RowPlan, bank: int, subarray: int) -> None:
        """Stream a cached plan to the chip (latencies pre-computed)."""
        self._run(plan.program, plan.latencies_ns, bank, subarray)

    def _run(
        self,
        program: Microprogram,
        latencies: Tuple[float, ...],
        bank: int,
        subarray: int,
    ) -> None:
        if self.chip.bank(bank).open_subarray is not None:
            raise DramProtocolError(
                f"bank {bank} must be precharged before a bulk operation"
            )
        tracer = self.chip.tracer
        if tracer is not None:
            tracer.begin_op(program.op.value, bank, subarray, self.chip.clock_ns)
        total_ns = 0.0
        for primitive, latency in zip(program.primitives, latencies):
            start_ns = self.chip.clock_ns
            for command in primitive.commands(bank, subarray):
                self.chip.execute(command)
            self._account(primitive, bank, latency)
            total_ns += latency
            if tracer is not None:
                tracer.record_primitive(
                    type(primitive).__name__, bank, subarray, start_ns, latency
                )
        self.stats.ops[program.op] += 1
        if self._m_ops is not None:
            self._m_ops.labels(op=program.op.value).inc()
            self._m_latency.labels(op=program.op.value).observe(total_ns)
            self._m_busy.inc(total_ns)
        if tracer is not None:
            tracer.end_op(self.chip.clock_ns)

    def copy(self, bank: int, subarray: int, src: int, dst: int) -> None:
        """RowClone-FPM copy through the AAP machinery."""
        self.bbop(BulkOp.COPY, bank, subarray, dst, src)

    # ------------------------------------------------------------------
    # Latency queries (no execution)
    # ------------------------------------------------------------------
    def op_latency_ns(self, op: BulkOp) -> float:
        """Latency of one bulk operation on one subarray (one row pair).

        Uses representative D-group addresses; every instance of an op
        has the same primitive structure, so the latency is uniform.
        The compiled plan is cached, so repeated queries are O(1).
        """
        plan = self.plan_cache.get(
            op, 3, 0,
            None if op.arity == 1 else 1,
            2 if op.arity == 3 else None,
        )
        return plan.total_ns

    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Clear accumulated statistics and the command trace.

        The plan cache's compiled programs survive (they are derived
        state, not statistics); only its hit/miss counters are zeroed.
        """
        self.stats = ControllerStats()
        self.chip.trace.clear()
        self.plan_cache.reset_counters()

    def _account(self, primitive, bank: int, latency: float) -> None:
        if isinstance(primitive, AAP):
            self.stats.aap_count += 1
        elif isinstance(primitive, AP):
            self.stats.ap_count += 1
        self.stats.busy_ns += latency
        self.stats.bank_busy_ns[bank] += latency
        self.chip.clock_ns += latency
