"""Manufacturing test and binning for Ambit chips (Section 5.5.3).

"In addition to the regular DRAM rows, the manufacturer must test if
the TRA operations and the DCC rows work as expected. ... an Ambit chip
that fails during testing can still be shipped as a regular DRAM chip."

This module implements that flow:

* :func:`test_data_rows` -- the regular march-style data-row test
  (write/readback of complementary patterns through real commands),
* :func:`test_tra_operations` -- exercises every triple-row-activation
  address (B12..B15) against all eight input patterns in every
  subarray,
* :func:`test_dcc_rows` -- exercises both DCC rows' d-/n-wordlines
  (NOT-copy round trips),
* :func:`bin_chip` -- the binning decision: AMBIT, REGULAR_DRAM (data
  rows fine, B-group faulty -- still sellable, per the paper), or
  REJECT.

Against the ideal functional model everything passes; plugging an
analog TRA model with high variation in (or poking faults into the
designated rows) produces the realistic failure/binning behaviour the
tests exercise.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.core.device import AmbitDevice
from repro.dram.chip import RowLocation


class ChipBin(enum.Enum):
    """Binning outcome of one chip."""

    AMBIT = "ambit"
    REGULAR_DRAM = "regular-dram"
    REJECT = "reject"


@dataclass
class SubarrayReport:
    """Test outcome of one subarray."""

    bank: int
    subarray: int
    data_rows_ok: bool = True
    tra_ok: bool = True
    dcc_ok: bool = True
    failures: List[str] = field(default_factory=list)
    #: Local storage-row indices of data rows that failed the march
    #: test (input to the spare-row repair flow).
    failed_data_rows: List[int] = field(default_factory=list)


@dataclass
class ChipReport:
    """Full-chip test outcome."""

    subarrays: List[SubarrayReport]

    @property
    def data_rows_ok(self) -> bool:
        return all(s.data_rows_ok for s in self.subarrays)

    @property
    def ambit_ok(self) -> bool:
        return all(s.tra_ok and s.dcc_ok for s in self.subarrays)


def _patterns(words: int) -> List[np.ndarray]:
    """Classic march patterns: zeros, ones, 0x55.., 0xAA.. ."""
    return [
        np.zeros(words, dtype=np.uint64),
        np.full(words, np.uint64(0xFFFFFFFFFFFFFFFF)),
        np.full(words, np.uint64(0x5555555555555555)),
        np.full(words, np.uint64(0xAAAAAAAAAAAAAAAA)),
    ]


def test_data_rows(
    device: AmbitDevice, report: SubarrayReport, sample_rows: int = 4
) -> None:
    """Write/readback march test of (a sample of) the data rows.

    Both the write and the readback go through the command path
    (ACTIVATE / WRITE burst / PRECHARGE / ACTIVATE / READ), so the test
    observes exactly what software would -- including the effect of any
    spare-row repair installed in the decoder.
    """
    geo = device.geometry.subarray
    rows = np.linspace(0, geo.data_rows - 1, num=sample_rows, dtype=int)
    bank = device.chip.bank(report.bank)
    for row in rows:
        for pattern in _patterns(geo.words_per_row):
            device.chip.activate(report.bank, report.subarray, int(row))
            bank.write_open_row(pattern)
            device.chip.precharge(report.bank)
            device.chip.activate(report.bank, report.subarray, int(row))
            readback = bank.read_open_row()
            device.chip.precharge(report.bank)
            if not np.array_equal(readback, pattern):
                report.data_rows_ok = False
                report.failures.append(f"data row {row} pattern readback")
                report.failed_data_rows.append(int(row))
                break  # keep testing the remaining sampled rows


def test_tra_operations(device: AmbitDevice, report: SubarrayReport) -> None:
    """Exercise all eight input patterns through a B12 TRA.

    The designated rows are loaded via backdoor pokes (the tester
    controls the array directly), then a single ACTIVATE to the
    triple-row address must produce the majority in all three rows.
    """
    amap = device.amap
    sub = device.chip.bank(report.bank).subarray(report.subarray)
    words = device.geometry.subarray.words_per_row
    ones = np.full(words, np.uint64(0xFFFFFFFFFFFFFFFF))
    zeros = np.zeros(words, dtype=np.uint64)
    for bits in range(8):
        values = [ones if bits >> i & 1 else zeros for i in range(3)]
        for i, value in enumerate(values):
            sub.poke(amap.row_t(i), value)
        device.chip.activate(report.bank, report.subarray, amap.b(12))
        result = device.chip.bank(report.bank).read_open_row()
        device.chip.precharge(report.bank)
        expected = ones if bin(bits).count("1") >= 2 else zeros
        if not np.array_equal(result, expected):
            report.tra_ok = False
            report.failures.append(f"TRA pattern {bits:03b} via B12")
            return


def test_dcc_rows(device: AmbitDevice, report: SubarrayReport) -> None:
    """NOT round trips through both DCC rows.

    For DCC0: ``AAP(data, B5); AAP(B4, data2)`` must deliver the
    complement; analogously B7/B6 for DCC1.
    """
    amap = device.amap
    words = device.geometry.subarray.words_per_row
    probe = np.full(words, np.uint64(0x0123456789ABCDEF))
    bank = device.chip.bank(report.bank)
    for dcc, (n_addr, d_addr) in enumerate(((5, 4), (7, 6))):
        # Probe in, result out, both through the command path so any
        # installed spare-row repair is honoured.
        device.chip.activate(report.bank, report.subarray, amap.d(0))
        bank.write_open_row(probe)
        device.chip.precharge(report.bank)
        device.controller.run_program(
            _not_via(amap, n_addr, d_addr), report.bank, report.subarray
        )
        device.chip.activate(report.bank, report.subarray, amap.d(1))
        result = bank.read_open_row()
        device.chip.precharge(report.bank)
        if not np.array_equal(result, ~probe):
            report.dcc_ok = False
            report.failures.append(f"DCC{dcc} NOT round trip")
            return


def _not_via(amap, n_index: int, d_index: int):
    """A NOT program routed through a specific DCC row."""
    from repro.core.microprograms import BulkOp, Microprogram
    from repro.core.primitives import AAP

    return Microprogram(
        BulkOp.NOT,
        (AAP(amap.d(0), amap.b(n_index)), AAP(amap.b(d_index), amap.d(1))),
    )


def run_chip_test(device: AmbitDevice, sample_rows: int = 4) -> ChipReport:
    """Run the full manufacturing test over every subarray."""
    reports = []
    for bank in range(device.geometry.banks):
        for sub in range(device.geometry.subarrays_per_bank):
            report = SubarrayReport(bank=bank, subarray=sub)
            test_data_rows(device, report, sample_rows=sample_rows)
            if report.data_rows_ok:
                test_tra_operations(device, report)
                test_dcc_rows(device, report)
            reports.append(report)
    return ChipReport(subarrays=reports)


def inject_stuck_row(
    device: AmbitDevice, bank: int, subarray: int, storage_row: int, value=None
) -> None:
    """Inject a stuck-at fault into one storage row (test harness aid)."""
    words = device.geometry.subarray.words_per_row
    pinned = (
        np.full(words, np.uint64(0xDEADDEADDEADDEAD)) if value is None else value
    )
    device.chip.bank(bank).subarray(subarray).inject_stuck_row(
        storage_row, pinned
    )


def repair_chip(device: AmbitDevice, report: ChipReport) -> int:
    """Map every failed data row to a spare within its subarray.

    Section 5.5.3: "Ambit requires faulty rows to be mapped to spare
    rows within the same subarray."  The spares are the storage rows
    beyond the reserved groups (the model's stand-in for a real chip's
    spare-row area); each failing subarray gets its decoder wrapped in a
    :class:`~repro.core.repair.RepairedRowDecoder`.

    Returns the number of rows repaired.  Re-running
    :func:`run_chip_test` afterwards should come back clean (provided
    the subarray had enough spares).
    """
    from repro.core.repair import RepairMap, RepairedRowDecoder

    geo = device.geometry.subarray
    first_spare = geo.data_rows + 8  # after C-group + B-group storage
    spares = tuple(range(first_spare, geo.storage_rows))
    repaired = 0
    for sub_report in report.subarrays:
        if not sub_report.failed_data_rows:
            continue
        sub = device.chip.bank(sub_report.bank).subarray(sub_report.subarray)
        repair_map = RepairMap(spares=spares)
        for row in sub_report.failed_data_rows:
            repair_map.assign(row)
            repaired += 1
        sub.decoder = RepairedRowDecoder(sub.decoder, repair_map)
    return repaired


def bin_chip(report: ChipReport) -> ChipBin:
    """The Section 5.5.3 binning decision.

    Ambit-specific failures do not scrap the chip: it ships as regular
    DRAM, "significantly reducing the impact of Ambit-specific failures
    on overall DRAM yield".
    """
    if not report.data_rows_ok:
        return ChipBin.REJECT
    if not report.ambit_ok:
        return ChipBin.REGULAR_DRAM
    return ChipBin.AMBIT
