"""Row address grouping and the split row decoder (Section 5.1, Table 1).

Each subarray's row-address space is divided into three groups:

* **D-group** -- the data rows software sees.  For a 1024-row subarray
  these are addresses ``D0..D1005``.
* **C-group** -- two control rows: ``C0`` (all zeros), ``C1`` (all
  ones), used to steer TRAs between AND and OR (Section 3.4).
* **B-group** -- 16 reserved addresses ``B0..B15`` that the small
  B-group decoder maps onto one, two, or three wordlines of the six
  bitwise rows (T0..T3, DCC0, DCC1).  Table 1:

  ====  =================   ====  =================
  Addr  Wordline(s)         Addr  Wordline(s)
  ====  =================   ====  =================
  B0    T0                  B8    DCC0-n, T0
  B1    T1                  B9    DCC1-n, T1
  B2    T2                  B10   T2, T3
  B3    T3                  B11   T0, T3
  B4    DCC0 (d)            B12   T0, T1, T2
  B5    DCC0-n              B13   T1, T2, T3
  B6    DCC1 (d)            B14   DCC0, T1, T2
  B7    DCC1-n              B15   DCC1, T0, T3
  ====  =================   ====  =================

  (A ``-n`` suffix marks the *negation* wordline of a dual-contact
  cell row; B14/B15 raise the *data* wordlines, so a TRA reads the
  stored -- already negated -- value.)

Physical storage layout used by the model (indices into the subarray's
backing array)::

    [0, data_rows)          D-group rows
    data_rows + 0, +1       C0, C1
    data_rows + 2 .. +5     T0..T3
    data_rows + 6, +7       DCC0, DCC1   (capacitor rows)

The address space mirrors that layout, with the B-group's 16 addresses
appended after the C-group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.dram.cell import MappingRowDecoder, Wordline
from repro.dram.geometry import (
    NUM_BITWISE_ADDRESSES,
    NUM_CONTROL_ROWS,
    SubarrayGeometry,
)
from repro.errors import AddressError


@dataclass(frozen=True)
class AmbitAddressMap:
    """Address arithmetic for one Ambit subarray.

    All methods deal in *local* (per-subarray) row addresses; the device
    layer composes them with bank/subarray coordinates.
    """

    geometry: SubarrayGeometry

    # ------------------------------------------------------------------
    # Storage-row indices (where the bits physically live)
    # ------------------------------------------------------------------
    @property
    def data_rows(self) -> int:
        return self.geometry.data_rows

    @property
    def row_c0(self) -> int:
        return self.data_rows

    @property
    def row_c1(self) -> int:
        return self.data_rows + 1

    def row_t(self, i: int) -> int:
        """Storage row of designated row ``Ti`` (i in 0..3)."""
        if not 0 <= i < 4:
            raise AddressError(f"designated row index must be 0..3; got {i}")
        return self.data_rows + NUM_CONTROL_ROWS + i

    def row_dcc(self, i: int) -> int:
        """Storage row of dual-contact-cell row ``DCCi`` (i in 0..1)."""
        if not 0 <= i < 2:
            raise AddressError(f"DCC row index must be 0 or 1; got {i}")
        return self.data_rows + NUM_CONTROL_ROWS + 4 + i

    # ------------------------------------------------------------------
    # Row addresses (what the controller puts on the bus)
    # ------------------------------------------------------------------
    def d(self, i: int) -> int:
        """Address of data row ``Di``."""
        if not 0 <= i < self.data_rows:
            raise AddressError(
                f"data row {i} out of range [0, {self.data_rows})"
            )
        return i

    def c(self, i: int) -> int:
        """Address of control row ``Ci`` (0 -> zeros, 1 -> ones)."""
        if i not in (0, 1):
            raise AddressError(f"control row index must be 0 or 1; got {i}")
        return self.data_rows + i

    def b(self, i: int) -> int:
        """Address ``Bi`` of the bitwise group (0..15)."""
        if not 0 <= i < NUM_BITWISE_ADDRESSES:
            raise AddressError(f"B-group address index must be 0..15; got {i}")
        return self.data_rows + NUM_CONTROL_ROWS + i

    @property
    def address_space(self) -> int:
        return self.data_rows + NUM_CONTROL_ROWS + NUM_BITWISE_ADDRESSES

    # Group predicates ----------------------------------------------------
    def is_d_group(self, address: int) -> bool:
        """True for data-row addresses."""
        return 0 <= address < self.data_rows

    def is_c_group(self, address: int) -> bool:
        """True for the two control-row addresses."""
        return self.data_rows <= address < self.data_rows + NUM_CONTROL_ROWS

    def is_b_group(self, address: int) -> bool:
        """True for the 16 reserved bitwise addresses."""
        return (
            self.data_rows + NUM_CONTROL_ROWS
            <= address
            < self.address_space
        )

    def group_of(self, address: int) -> str:
        """Return ``"B"``, ``"C"`` or ``"D"`` for a valid address."""
        if self.is_d_group(address):
            return "D"
        if self.is_c_group(address):
            return "C"
        if self.is_b_group(address):
            return "B"
        raise AddressError(
            f"address {address} outside the subarray address space "
            f"[0, {self.address_space})"
        )

    # ------------------------------------------------------------------
    # Table 1: the B-group wordline mapping
    # ------------------------------------------------------------------
    def b_group_wordlines(self) -> Dict[int, Tuple[Wordline, ...]]:
        """The Table 1 mapping, in terms of storage rows."""
        t = [Wordline(self.row_t(i)) for i in range(4)]
        dcc_d = [Wordline(self.row_dcc(i)) for i in range(2)]
        dcc_n = [Wordline(self.row_dcc(i), negated=True) for i in range(2)]
        table: Dict[int, Tuple[Wordline, ...]] = {
            self.b(0): (t[0],),
            self.b(1): (t[1],),
            self.b(2): (t[2],),
            self.b(3): (t[3],),
            self.b(4): (dcc_d[0],),
            self.b(5): (dcc_n[0],),
            self.b(6): (dcc_d[1],),
            self.b(7): (dcc_n[1],),
            self.b(8): (dcc_n[0], t[0]),
            self.b(9): (dcc_n[1], t[1]),
            self.b(10): (t[2], t[3]),
            self.b(11): (t[0], t[3]),
            self.b(12): (t[0], t[1], t[2]),
            self.b(13): (t[1], t[2], t[3]),
            self.b(14): (dcc_d[0], t[1], t[2]),
            self.b(15): (dcc_d[1], t[0], t[3]),
        }
        return table

    def build_decoder(self) -> MappingRowDecoder:
        """Construct the full split decoder for one subarray.

        The regular decoder part covers D- and C-group addresses
        one-to-one; the small B-group decoder implements Table 1.
        """
        table: Dict[int, Tuple[Wordline, ...]] = {}
        for i in range(self.data_rows):
            table[i] = (Wordline(i),)
        table[self.c(0)] = (Wordline(self.row_c0),)
        table[self.c(1)] = (Wordline(self.row_c1),)
        table.update(self.b_group_wordlines())
        return MappingRowDecoder(table)


def split_decoder_factory(geometry: SubarrayGeometry):
    """Nullary factory suitable for :class:`repro.dram.chip.DramChip`."""
    amap = AmbitAddressMap(geometry)

    def build():
        return amap.build_decoder()

    return build
