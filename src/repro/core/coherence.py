"""On-chip cache coherence for Ambit operations (Section 5.4.4).

Because both the CPU and Ambit touch the same DRAM, before any Ambit
operation the memory controller must (1) flush dirty cache lines
belonging to the *source* rows and (2) invalidate cache lines of the
*destination* rows.  The paper notes this is the same requirement DMA
imposes, that row-wide granularity lets structures like the Dirty-Block
Index (DBI) accelerate the dirty-line lookup, and that destination
invalidation overlaps with the Ambit operation itself.

This module provides:

* :class:`DirtyBlockIndex` -- a functional DBI: per-DRAM-row bitmap of
  dirty cache lines, supporting O(1) "any dirty lines in this row?"
  queries and row-granular flush enumeration.
* :class:`CoherenceCost` -- the latency model the system simulator
  charges per Ambit operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set

from repro.errors import SimulationError


class DirtyBlockIndex:
    """Tracks dirty cache lines grouped by DRAM row.

    The DBI (Seshadri et al., ISCA 2014) reorganises dirty bits
    row-first so that "flush all dirty lines of DRAM row R" is a single
    lookup instead of a full cache-tag walk.  The functional model keeps
    a set of dirty line indices per row.
    """

    def __init__(self, row_bytes: int, line_bytes: int = 64):
        if row_bytes <= 0 or line_bytes <= 0 or row_bytes % line_bytes:
            raise SimulationError(
                f"row_bytes ({row_bytes}) must be a positive multiple of "
                f"line_bytes ({line_bytes})"
            )
        self.row_bytes = row_bytes
        self.line_bytes = line_bytes
        self._dirty: Dict[int, Set[int]] = {}

    @property
    def lines_per_row(self) -> int:
        return self.row_bytes // self.line_bytes

    def mark_dirty(self, byte_address: int) -> None:
        """Record a dirtied cache line by byte address."""
        row, offset = divmod(byte_address, self.row_bytes)
        self._dirty.setdefault(row, set()).add(offset // self.line_bytes)

    def mark_clean(self, byte_address: int) -> None:
        """Drop a line's dirty bit (writeback completed)."""
        row, offset = divmod(byte_address, self.row_bytes)
        lines = self._dirty.get(row)
        if lines is not None:
            lines.discard(offset // self.line_bytes)
            if not lines:
                del self._dirty[row]

    def dirty_lines_in_row(self, row: int) -> int:
        """Number of dirty lines belonging to a DRAM row."""
        return len(self._dirty.get(row, ()))

    def any_dirty(self, rows: Iterable[int]) -> bool:
        """True if any of the rows has dirty lines."""
        return any(row in self._dirty for row in rows)

    def flush_rows(self, rows: Iterable[int]) -> int:
        """Flush all dirty lines of the given rows; returns lines written back."""
        flushed = 0
        for row in rows:
            flushed += len(self._dirty.pop(row, ()))
        return flushed


@dataclass(frozen=True)
class CoherenceCost:
    """Latency model for the pre-Ambit coherence actions.

    Parameters
    ----------
    line_bytes: Cache line size.
    lookup_ns: DBI lookup per source/destination row (near-zero; the
        DBI makes the *query* cheap).
    writeback_bw_gbps: Bandwidth at which dirty lines drain to DRAM
        (bounded by the memory channel).
    invalidate_ns_per_row: Tag-invalidate cost per destination row;
        performed in parallel with the Ambit operation (Section 5.4.4),
        so the simulator only charges it when it exceeds the op latency.
    """

    line_bytes: int = 64
    lookup_ns: float = 2.0
    writeback_bw_gbps: float = 19.2
    invalidate_ns_per_row: float = 10.0

    def flush_ns(self, dirty_lines: int, rows_looked_up: int) -> float:
        """Time to flush ``dirty_lines`` across ``rows_looked_up`` rows."""
        writeback = dirty_lines * self.line_bytes / self.writeback_bw_gbps
        return self.lookup_ns * rows_looked_up + writeback

    def invalidate_ns(self, rows: int) -> float:
        """Destination invalidation (overlappable with the operation)."""
        return self.invalidate_ns_per_row * rows


@dataclass
class CoherenceLog:
    """Accounting of coherence actions for one workload run."""

    flushes: int = 0
    lines_written_back: int = 0
    total_flush_ns: float = 0.0
    total_invalidate_ns: float = 0.0

    def record(self, flush_ns: float, lines: int, invalidate_ns: float) -> None:
        """Accumulate one operation's coherence costs."""
        self.flushes += 1
        self.lines_written_back += lines
        self.total_flush_ns += flush_ns
        self.total_invalidate_ns += invalidate_ns


def coherence_for_bbop(
    dbi: DirtyBlockIndex,
    cost: CoherenceCost,
    source_rows: List[int],
    dest_rows: List[int],
    log: CoherenceLog,
    op_latency_ns: float,
) -> float:
    """Perform and price the coherence work for one bulk operation.

    Returns the latency the operation must additionally wait for: the
    source flush is serial; the destination invalidation only costs time
    beyond the operation latency it overlaps with.
    """
    dirty = sum(dbi.dirty_lines_in_row(r) for r in source_rows)
    dbi.flush_rows(source_rows)
    dbi.flush_rows(dest_rows)  # dirty destination data is dead; drop it
    flush_ns = cost.flush_ns(dirty, len(source_rows))
    inv_ns = cost.invalidate_ns(len(dest_rows))
    log.record(flush_ns, dirty, inv_ns)
    return flush_ns + max(0.0, inv_ns - op_latency_ns)
