"""Ambit core: the paper's primary contribution.

* :mod:`~repro.core.addressing` -- B/C/D row-address groups, Table 1,
  the split row decoder (Section 5.1).
* :mod:`~repro.core.primitives` -- AAP/AP and their latencies
  (Sections 5.2-5.3).
* :mod:`~repro.core.microprograms` -- Figure 8 command sequences for
  all seven bulk bitwise operations plus copy.
* :mod:`~repro.core.controller` -- the Ambit controller.
* :mod:`~repro.core.device` -- the assembled device.
* :mod:`~repro.core.driver` -- subarray-aware allocation
  (Section 5.4.2).
* :mod:`~repro.core.isa` -- the ``bbop`` instructions and the
  offload/fallback microarchitecture check (Sections 5.4.1, 5.4.3).
* :mod:`~repro.core.coherence` -- DBI-accelerated cache coherence
  (Section 5.4.4).
* :mod:`~repro.core.ecc` -- TMR homomorphic ECC (Section 5.4.5).
"""

from repro.core.addressing import AmbitAddressMap, split_decoder_factory
from repro.core.coherence import (
    CoherenceCost,
    CoherenceLog,
    DirtyBlockIndex,
    coherence_for_bbop,
)
from repro.core.controller import AmbitController, ControllerStats
from repro.core.device import AmbitDevice
from repro.core.driver import (
    SCRATCH_ROWS_PER_SUBARRAY,
    AmbitDriver,
    BitVectorHandle,
    scratch_row_location,
    stage_row,
)
from repro.core.ecc import (
    TMR_COPIES,
    TmrDecodeResult,
    TmrMemory,
    TmrRow,
    tmr_decode,
    tmr_encode,
)
from repro.core.isa import (
    BbopInstruction,
    BbopOutcome,
    execute_bbop,
    is_offloadable,
    read_bytes,
    write_bytes,
)
from repro.core.microprograms import (
    COMPILERS,
    BulkOp,
    compile_maj,
    compile_reduction,
    compile_xor_minimal,
    Microprogram,
    compile_and,
    compile_copy,
    compile_nand,
    compile_nor,
    compile_not,
    compile_op,
    compile_or,
    compile_xnor,
    compile_xor,
)
from repro.core.primitives import AAP, AP, Primitive, sequence_latency_ns
from repro.core.repair import RepairMap, RepairedRowDecoder
from repro.core.scheduler import AmbitJob, InterleavedStats, InterleavingController
from repro.core.testing import (
    ChipBin,
    ChipReport,
    SubarrayReport,
    bin_chip,
    inject_stuck_row,
    repair_chip,
    run_chip_test,
)

__all__ = [
    "AAP",
    "AP",
    "AmbitAddressMap",
    "AmbitController",
    "AmbitJob",
    "AmbitDevice",
    "AmbitDriver",
    "BbopInstruction",
    "BbopOutcome",
    "BitVectorHandle",
    "BulkOp",
    "COMPILERS",
    "CoherenceCost",
    "CoherenceLog",
    "ControllerStats",
    "DirtyBlockIndex",
    "InterleavedStats",
    "InterleavingController",
    "ChipBin",
    "ChipReport",
    "Microprogram",
    "RepairMap",
    "RepairedRowDecoder",
    "SubarrayReport",
    "Primitive",
    "SCRATCH_ROWS_PER_SUBARRAY",
    "TMR_COPIES",
    "TmrDecodeResult",
    "TmrMemory",
    "TmrRow",
    "coherence_for_bbop",
    "compile_and",
    "compile_copy",
    "compile_maj",
    "compile_nand",
    "compile_nor",
    "compile_not",
    "compile_op",
    "compile_or",
    "compile_reduction",
    "compile_xnor",
    "compile_xor_minimal",
    "compile_xor",
    "execute_bbop",
    "is_offloadable",
    "read_bytes",
    "scratch_row_location",
    "sequence_latency_ns",
    "split_decoder_factory",
    "stage_row",
    "tmr_decode",
    "tmr_encode",
    "bin_chip",
    "inject_stuck_row",
    "repair_chip",
    "run_chip_test",
    "write_bytes",
]
