"""The ``bbop`` ISA extension (Sections 5.4.1 and 5.4.3).

Applications communicate bulk bitwise operations with instructions of
the form::

    bbop dst, src1, [src2], size

where the addresses are byte addresses in the physical address space and
``size`` is the operation length in bytes.  The microarchitecture checks
each instance: if the operands are row-aligned and the size is a
multiple of the DRAM row size, the operation is sent to the (Ambit)
memory controller; otherwise the CPU executes it itself.

The model exposes that exact contract: :func:`execute_bbop` returns
whether the instruction was offloaded, and performs the operation either
through the Ambit controller or through the CPU-fallback path (a plain
numpy computation over the memory image), so results are identical
either way -- only cost differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp
from repro.errors import AlignmentError


@dataclass(frozen=True)
class BbopInstruction:
    """One ``bbop`` instruction instance.

    Addresses index the device's flat data space: global data row ``r``
    occupies bytes ``[r*row_bytes, (r+1)*row_bytes)``.
    """

    op: BulkOp
    dst: int
    src1: int
    src2: Optional[int] = None
    size: int = 0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise AlignmentError(f"bbop size must be positive; got {self.size}")
        if (self.src2 is None) != (self.op.arity == 1):
            raise AlignmentError(
                f"bbop {self.op.value} takes {self.op.arity} source operand(s)"
            )


@dataclass(frozen=True)
class BbopOutcome:
    """What the microarchitecture did with one instruction."""

    offloaded: bool
    rows_processed: int
    #: True when some operand pair needed cross-subarray staging.
    staged: bool = False


def is_offloadable(instr: BbopInstruction, row_bytes: int) -> bool:
    """The Section 5.4.3 check: row alignment and row-multiple size."""
    addresses = [instr.dst, instr.src1] + (
        [] if instr.src2 is None else [instr.src2]
    )
    if any(a % row_bytes != 0 for a in addresses):
        return False
    return instr.size % row_bytes == 0


def execute_bbop(device: AmbitDevice, instr: BbopInstruction) -> BbopOutcome:
    """Execute one bbop instruction the way the hardware would.

    Offloadable instructions run row-by-row on the Ambit controller
    (using the flat row mapping of
    :meth:`repro.dram.chip.DramChip.locate_data_row`); the rest take the
    CPU-fallback path.
    """
    row_bytes = device.row_bytes
    if not is_offloadable(instr, row_bytes):
        _cpu_fallback(device, instr)
        return BbopOutcome(offloaded=False, rows_processed=0)

    chip = device.chip
    n_rows = instr.size // row_bytes
    staged = False
    for i in range(n_rows):
        dst = chip.locate_data_row(instr.dst // row_bytes + i)
        src1 = chip.locate_data_row(instr.src1 // row_bytes + i)
        src2 = (
            None
            if instr.src2 is None
            else chip.locate_data_row(instr.src2 // row_bytes + i)
        )
        # The flat physical map does not guarantee co-location; the
        # hardware stages strays through scratch-row PSM copies.  The
        # driver-based BitVector API avoids this; the raw ISA pays it.
        from repro.core.driver import stage_row  # local import: no cycle at load

        if (src1.bank, src1.subarray) != (dst.bank, dst.subarray) or (
            src2 is not None
            and (src2.bank, src2.subarray) != (dst.bank, dst.subarray)
        ):
            staged = True
            src1 = stage_row(device, src1, dst, scratch_index=0)
            if src2 is not None:
                src2 = stage_row(device, src2, dst, scratch_index=1)
        device.bbop_row(instr.op, dst, src1, src2)
    return BbopOutcome(offloaded=True, rows_processed=n_rows, staged=staged)


# ----------------------------------------------------------------------
# CPU fallback path
# ----------------------------------------------------------------------

def read_bytes(device: AmbitDevice, address: int, size: int) -> np.ndarray:
    """Read ``size`` bytes from the flat data space (functional access)."""
    row_bytes = device.row_bytes
    out = np.empty(size, dtype=np.uint8)
    done = 0
    while done < size:
        row, offset = divmod(address + done, row_bytes)
        take = min(size - done, row_bytes - offset)
        row_img = device.chip.peek_global(row).view(np.uint8)
        out[done : done + take] = row_img[offset : offset + take]
        done += take
    return out


def write_bytes(device: AmbitDevice, address: int, data: np.ndarray) -> None:
    """Write bytes into the flat data space (functional access)."""
    row_bytes = device.row_bytes
    data = np.asarray(data, dtype=np.uint8)
    done = 0
    while done < data.size:
        row, offset = divmod(address + done, row_bytes)
        take = min(data.size - done, row_bytes - offset)
        row_img = device.chip.peek_global(row).view(np.uint8).copy()
        row_img[offset : offset + take] = data[done : done + take]
        device.chip.poke_global(row, row_img.view(np.uint64))
        done += take


_NUMPY_OPS = {
    BulkOp.NOT: lambda a, b: ~a,
    BulkOp.COPY: lambda a, b: a,
    BulkOp.AND: lambda a, b: a & b,
    BulkOp.OR: lambda a, b: a | b,
    BulkOp.NAND: lambda a, b: ~(a & b),
    BulkOp.NOR: lambda a, b: ~(a | b),
    BulkOp.XOR: lambda a, b: a ^ b,
    BulkOp.XNOR: lambda a, b: ~(a ^ b),
}


def _cpu_fallback(device: AmbitDevice, instr: BbopInstruction) -> None:
    a = read_bytes(device, instr.src1, instr.size)
    b = (
        read_bytes(device, instr.src2, instr.size)
        if instr.src2 is not None
        else None
    )
    result = _NUMPY_OPS[instr.op](a, b)
    write_bytes(device, instr.dst, result)
