"""Spare-row repair (Section 5.5.3).

"DRAM manufacturers use a number of techniques to improve the overall
yield; the most prominent among them is using spare rows to replace
faulty DRAM rows.  Similar to some prior works, Ambit requires faulty
rows to be mapped to spare rows *within the same subarray*."

The constraint matters: RowClone-FPM and TRA only work between rows
sharing a set of sense amplifiers, so a remap that crossed subarrays
would silently break every bulk operation touching the row.  This
module implements the repair layer as a decorator over the subarray's
row decoder: a remap table rewrites faulty storage rows to spares
transparently, before wordline fan-out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.dram.cell import RowDecoder, Wordline
from repro.errors import AddressError


@dataclass
class RepairMap:
    """Faulty-row -> spare-row assignments for one subarray."""

    #: Spare storage rows available for repair, in assignment order.
    spares: Tuple[int, ...]
    _assigned: Dict[int, int] = field(default_factory=dict)

    def assign(self, faulty_row: int) -> int:
        """Map a faulty storage row to the next free spare."""
        if faulty_row in self._assigned:
            return self._assigned[faulty_row]
        if faulty_row in self.spares:
            raise AddressError(f"cannot repair spare row {faulty_row} with itself")
        used = set(self._assigned.values())
        for spare in self.spares:
            if spare not in used:
                self._assigned[faulty_row] = spare
                return spare
        raise AddressError(
            f"subarray out of spare rows (have {len(self.spares)}, "
            f"all assigned)"
        )

    def translate(self, row: int) -> int:
        """Resolve a storage row through the repair table."""
        return self._assigned.get(row, row)

    @property
    def repairs(self) -> Dict[int, int]:
        return dict(self._assigned)


class RepairedRowDecoder(RowDecoder):
    """A row decoder with post-decode spare-row remapping.

    Wraps any decoder (commodity direct or the Ambit split decoder);
    every decoded wordline's storage row passes through the repair map,
    so B-group fan-out addresses are repaired consistently with the
    single-wordline addresses of the same physical row.
    """

    def __init__(self, inner: RowDecoder, repair_map: RepairMap):
        self.inner = inner
        self.repair_map = repair_map

    def decode(self, address: int) -> Tuple[Wordline, ...]:
        """Decode, then remap every wordline through the repair table."""
        return tuple(
            Wordline(self.repair_map.translate(wl.row), negated=wl.negated)
            for wl in self.inner.decode(address)
        )

    def address_space(self) -> int:
        """Delegates to the wrapped decoder."""
        return self.inner.address_space()


class RowRepairMap:
    """Device-wide runtime spare-row remapping, consulted by the address
    path of :class:`~repro.core.controller.AmbitController`.

    :class:`RepairMap`/:class:`RepairedRowDecoder` model the *factory*
    repair flow (remap inside the decoder after manufacturing test).
    This class is the *runtime* counterpart for faults that surface in
    the field: the controller rewrites D-group addresses before
    compiling or issuing anything, so every layer below (plan cache,
    batch engine, sharded workers) sees only healthy rows.  Spares live
    in the same subarray, per Section 5.5.3 -- RowClone/TRA cannot cross
    sense-amplifier stripes.

    Unlike the factory map, :meth:`assign` on an already-remapped row
    *re*-assigns it to the next free spare (the previously assigned
    spare turned out faulty too and is abandoned).
    """

    def __init__(self) -> None:
        #: (bank, subarray) -> spare local addresses still unassigned.
        self._free: Dict[Tuple[int, int], List[int]] = {}
        #: (bank, subarray) -> {faulty local address -> spare address}.
        self._maps: Dict[Tuple[int, int], Dict[int, int]] = {}
        self._count = 0

    def add_spares(
        self, bank: int, subarray: int, addresses: Sequence[int]
    ) -> None:
        """Donate D-group addresses of one subarray as spares."""
        pool = self._free.setdefault((bank, subarray), [])
        for addr in addresses:
            if addr not in pool:
                pool.append(int(addr))

    def spares_free(self, bank: int, subarray: int) -> int:
        """Number of unassigned spares left in one subarray's pool."""
        return len(self._free.get((bank, subarray), ()))

    def assign(self, bank: int, subarray: int, faulty_addr: int) -> int:
        """Map a faulty address to the next free spare of its subarray.

        Re-assigning an already-mapped address burns its current spare
        and moves to the next one; mapping a spare address itself is
        refused (callers must re-assign the original faulty row).
        """
        key = (bank, subarray)
        pool = self._free.get(key, [])
        table = self._maps.setdefault(key, {})
        if faulty_addr in table.values():
            raise AddressError(
                f"address {faulty_addr} is an in-use spare; re-assign the "
                f"original faulty row instead"
            )
        if not pool:
            raise AddressError(
                f"bank {bank} subarray {subarray} is out of spare rows"
            )
        spare = pool.pop(0)
        if faulty_addr not in table:
            self._count += 1
        table[faulty_addr] = spare
        return spare

    def translate(self, bank: int, subarray: int, address: int) -> int:
        """Resolve one local address through the repair table (identity
        when the subarray has no assignments)."""
        table = self._maps.get((bank, subarray))
        if not table:
            return address
        return table.get(address, address)

    def repairs(self, bank: int, subarray: int) -> Dict[int, int]:
        """Copy of one subarray's {faulty address -> spare} table."""
        return dict(self._maps.get((bank, subarray), {}))

    def clear(self) -> None:
        """Forget every assignment and spare (test/reset support)."""
        self._free.clear()
        self._maps.clear()
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        """True when any assignment exists -- the hot-path fast check."""
        return self._count > 0
