"""Spare-row repair (Section 5.5.3).

"DRAM manufacturers use a number of techniques to improve the overall
yield; the most prominent among them is using spare rows to replace
faulty DRAM rows.  Similar to some prior works, Ambit requires faulty
rows to be mapped to spare rows *within the same subarray*."

The constraint matters: RowClone-FPM and TRA only work between rows
sharing a set of sense amplifiers, so a remap that crossed subarrays
would silently break every bulk operation touching the row.  This
module implements the repair layer as a decorator over the subarray's
row decoder: a remap table rewrites faulty storage rows to spares
transparently, before wordline fan-out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.dram.cell import RowDecoder, Wordline
from repro.errors import AddressError


@dataclass
class RepairMap:
    """Faulty-row -> spare-row assignments for one subarray."""

    #: Spare storage rows available for repair, in assignment order.
    spares: Tuple[int, ...]
    _assigned: Dict[int, int] = field(default_factory=dict)

    def assign(self, faulty_row: int) -> int:
        """Map a faulty storage row to the next free spare."""
        if faulty_row in self._assigned:
            return self._assigned[faulty_row]
        if faulty_row in self.spares:
            raise AddressError(f"cannot repair spare row {faulty_row} with itself")
        used = set(self._assigned.values())
        for spare in self.spares:
            if spare not in used:
                self._assigned[faulty_row] = spare
                return spare
        raise AddressError(
            f"subarray out of spare rows (have {len(self.spares)}, "
            f"all assigned)"
        )

    def translate(self, row: int) -> int:
        """Resolve a storage row through the repair table."""
        return self._assigned.get(row, row)

    @property
    def repairs(self) -> Dict[int, int]:
        return dict(self._assigned)


class RepairedRowDecoder(RowDecoder):
    """A row decoder with post-decode spare-row remapping.

    Wraps any decoder (commodity direct or the Ambit split decoder);
    every decoded wordline's storage row passes through the repair map,
    so B-group fan-out addresses are repaired consistently with the
    single-wordline addresses of the same physical row.
    """

    def __init__(self, inner: RowDecoder, repair_map: RepairMap):
        self.inner = inner
        self.repair_map = repair_map

    def decode(self, address: int) -> Tuple[Wordline, ...]:
        """Decode, then remap every wordline through the repair table."""
        return tuple(
            Wordline(self.repair_map.translate(wl.row), negated=wl.negated)
            for wl in self.inner.decode(address)
        )

    def address_space(self) -> int:
        """Delegates to the wrapped decoder."""
        return self.inner.address_space()
