"""Homomorphic ECC for Ambit: triple modular redundancy (Section 5.4.5).

Conventional SECDED ECC breaks under in-memory computation: the
controller can no longer read-verify-write, and ``SECDED(A and B) !=
SECDED(A) and SECDED(B)``.  The only scheme the paper identifies that is
homomorphic over *all* bitwise operations is triple modular redundancy
(TMR): store each row three times and majority-vote on read.  Because
every copy undergoes the same bulk operation, correctness is preserved:
``TMR(A op B) = TMR(A) op TMR(B)`` by construction.

This module implements a TMR codec over packed rows plus a device-level
wrapper that stores each logical row as three co-located physical rows
and runs every bulk operation on all three.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp
from repro.dram.chip import RowLocation
from repro.dram.senseamp import majority3
from repro.errors import EccError

#: Replication factor of TMR.
TMR_COPIES = 3


@dataclass(frozen=True)
class TmrDecodeResult:
    """Outcome of a majority decode."""

    data: np.ndarray
    #: Bits where at least one replica disagreed (corrected by majority).
    corrected_bits: int
    #: True when all three replicas agreed everywhere.
    clean: bool


def tmr_encode(row: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Encode one row: three identical replicas."""
    return row.copy(), row.copy(), row.copy()


def tmr_decode(
    r0: np.ndarray, r1: np.ndarray, r2: np.ndarray, strict: bool = False
) -> TmrDecodeResult:
    """Majority-decode three replicas.

    ``strict=True`` raises :class:`~repro.errors.EccError` on any
    disagreement instead of silently correcting (useful for tests and
    scrubbing policies).
    """
    data = majority3(r0, r1, r2)
    disagree = (r0 ^ r1) | (r1 ^ r2)
    corrected = int(
        sum(int(x).bit_count() for x in np.asarray(disagree, dtype=np.uint64))
    )
    if corrected and strict:
        raise EccError(f"TMR decode found {corrected} disagreeing bit(s)")
    return TmrDecodeResult(data=data, corrected_bits=corrected, clean=corrected == 0)


class TmrRow:
    """A logical row stored as three physical replicas."""

    def __init__(self, replicas: List[RowLocation]):
        if len(replicas) != TMR_COPIES:
            raise EccError(f"TMR needs {TMR_COPIES} replicas; got {len(replicas)}")
        bank_sub = {(r.bank, r.subarray) for r in replicas}
        if len(bank_sub) != 1:
            raise EccError("TMR replicas must be co-located in one subarray")
        self.replicas = replicas


class TmrMemory:
    """Device wrapper that applies TMR to every row and operation.

    Storage overhead is 3x -- the paper presents TMR as the *existence
    proof* of an Ambit-compatible ECC and leaves cheaper schemes open.
    """

    def __init__(self, device: AmbitDevice, driver) -> None:
        self.device = device
        self.driver = driver

    def allocate_row(self, like: Optional[TmrRow] = None) -> TmrRow:
        """Allocate a TMR-protected row (three co-located rows)."""
        template = None
        if like is not None:
            from repro.core.driver import BitVectorHandle

            template = BitVectorHandle(
                nbits=self.device.row_bits * TMR_COPIES,
                rows=list(like.replicas),
            )
        handle = self.driver.allocate(
            self.device.row_bits * TMR_COPIES, like=template
        )
        bank_sub = {(r.bank, r.subarray) for r in handle.rows}
        if len(bank_sub) != 1:
            # Striped allocation spread the replicas; re-pin them by
            # allocating co-located with the first row.
            first = handle.rows[0]
            from repro.core.driver import BitVectorHandle

            self.driver.free(handle)
            template = BitVectorHandle(
                nbits=self.device.row_bits * TMR_COPIES,
                rows=[first, first, first],
            )
            handle = self.driver.allocate(
                self.device.row_bits * TMR_COPIES, like=template
            )
        return TmrRow(handle.rows)

    def write(self, row: TmrRow, data: np.ndarray) -> None:
        """Store data into all three replicas."""
        for replica, image in zip(row.replicas, tmr_encode(data)):
            self.device.write_row(replica, image)

    def read(self, row: TmrRow, strict: bool = False) -> TmrDecodeResult:
        """Majority-decode the row's replicas."""
        images = [self.device.read_row(r) for r in row.replicas]
        return tmr_decode(*images, strict=strict)

    def bbop(
        self,
        op: BulkOp,
        dst: TmrRow,
        src1: TmrRow,
        src2: Optional[TmrRow] = None,
    ) -> None:
        """Run a bulk operation on all three replicas.

        Homomorphism makes this sound: replica ``i`` of the result is
        the operation applied to replica ``i`` of the sources.
        """
        for i in range(TMR_COPIES):
            self.device.bbop_row(
                op,
                dst.replicas[i],
                src1.replicas[i],
                None if src2 is None else src2.replicas[i],
            )

    def scrub(self, row: TmrRow) -> int:
        """Majority-correct a row in place; returns corrected bit count."""
        result = self.read(row)
        if not result.clean:
            self.write(row, result.data)
        return result.corrected_bits
