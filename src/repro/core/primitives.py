"""The AAP and AP primitives (Section 5.2) and their timing (Section 5.3).

Every Ambit bulk bitwise operation is a short sequence of two
primitives:

* ``AAP (addr1, addr2)`` = ``ACTIVATE addr1; ACTIVATE addr2;
  PRECHARGE`` -- logically, copy the result of activating ``addr1``
  into the row(s) mapped to ``addr2``.
* ``AP (addr)`` = ``ACTIVATE addr; PRECHARGE`` -- used when a TRA's
  in-place result is consumed by a later step.

Timing (Section 5.3): serially, an AAP costs ``2*tRAS + tRP`` (80 ns on
DDR3-1600).  The split row decoder lets the second ACTIVATE overlap with
the first whenever the two addresses decode through *different* decoder
halves -- which is the case for every AAP in every microprogram except
nand/nor's ``AAP(B12, B5)``, whose addresses are both B-group.  The
overlapped AAP costs ``tRAS + 4ns + tRP`` (49 ns).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple, Union

from repro.core.addressing import AmbitAddressMap
from repro.dram.commands import Command, Opcode
from repro.dram.timing import TimingParameters


@dataclass(frozen=True)
class AAP:
    """ACTIVATE-ACTIVATE-PRECHARGE on two local row addresses."""

    addr1: int
    addr2: int

    def commands(self, bank: int, subarray: int) -> Iterator[Command]:
        """Expand to ACTIVATE, ACTIVATE, PRECHARGE."""
        yield Command(Opcode.ACTIVATE, bank=bank, subarray=subarray, row=self.addr1)
        yield Command(Opcode.ACTIVATE, bank=bank, subarray=subarray, row=self.addr2)
        yield Command(Opcode.PRECHARGE, bank=bank, subarray=subarray)

    def latency_ns(
        self,
        timing: TimingParameters,
        amap: AmbitAddressMap,
        split_decoder: bool = True,
    ) -> float:
        """Latency of this AAP under the given decoder configuration.

        The overlap optimisation applies when the split decoder can
        decode the two addresses concurrently: one address in the
        B-group (small decoder) and the other in the C/D-group (regular
        decoder).
        """
        if split_decoder and self._overlappable(amap):
            return timing.aap_latency(split_decoder=True)
        return timing.aap_latency(split_decoder=False)

    def _overlappable(self, amap: AmbitAddressMap) -> bool:
        return amap.is_b_group(self.addr1) != amap.is_b_group(self.addr2)


@dataclass(frozen=True)
class AP:
    """ACTIVATE-PRECHARGE on one local row address."""

    addr: int

    def commands(self, bank: int, subarray: int) -> Iterator[Command]:
        """Expand to ACTIVATE, PRECHARGE."""
        yield Command(Opcode.ACTIVATE, bank=bank, subarray=subarray, row=self.addr)
        yield Command(Opcode.PRECHARGE, bank=bank, subarray=subarray)

    def latency_ns(
        self,
        timing: TimingParameters,
        amap: AmbitAddressMap,
        split_decoder: bool = True,
    ) -> float:
        """AP latency: ``tRAS + tRP`` regardless of decoder configuration."""
        return timing.ap_latency()


Primitive = Union[AAP, AP]


def sequence_latency_ns(
    primitives: Tuple[Primitive, ...],
    timing: TimingParameters,
    amap: AmbitAddressMap,
    split_decoder: bool = True,
) -> float:
    """Total latency of a primitive sequence on one subarray."""
    return sum(
        p.latency_ns(timing, amap, split_decoder) for p in primitives
    )
