"""Interleaving Ambit operations with regular memory traffic (S 5.5.2).

"When Ambit is plugged onto the system memory bus, the controller can
interleave the various AAP operations in the bitwise operations with
other regular memory requests from different applications.  For this
purpose, the Ambit controller must also track the status of on-going
bitwise operations."

This module provides that controller: a bank-level arbiter that mixes

* **regular requests** (reads/writes, FR-FCFS priority rules), and
* **Ambit jobs** -- compiled microprograms whose AAP/AP primitives each
  occupy one bank for their primitive latency,

and reports both sides' completion times, so the interference between
acceleration and foreground traffic is measurable (the
``bench_ablation_interleaving`` benchmark quantifies it).

Scheduling policy: per bank, primitives of an in-flight Ambit job and
pending regular requests alternate by arrival order, except that a
regular row-buffer hit may not preempt mid-operation primitives (a bulk
operation's designated-row state must not be disturbed between its
ACTIVATE...PRECHARGE groups -- each primitive is atomic, but whole jobs
are preemptible at primitive boundaries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.addressing import AmbitAddressMap
from repro.core.microprograms import Microprogram
from repro.dram.controller import MemRequest
from repro.dram.timing import TimingParameters
from repro.errors import SimulationError


@dataclass
class AmbitJob:
    """One bulk bitwise operation queued at the controller."""

    program: Microprogram
    bank: int
    arrival_ns: float = 0.0
    #: Filled by the scheduler.
    start_ns: Optional[float] = None
    finish_ns: Optional[float] = None


@dataclass
class InterleavedStats:
    """Outcome of one scheduling run."""

    makespan_ns: float
    request_latencies: List[float]
    job_latencies: List[float]

    @property
    def mean_request_latency(self) -> float:
        if not self.request_latencies:
            return 0.0
        return sum(self.request_latencies) / len(self.request_latencies)

    @property
    def mean_job_latency(self) -> float:
        if not self.job_latencies:
            return 0.0
        return sum(self.job_latencies) / len(self.job_latencies)


class InterleavingController:
    """Arbitrates regular requests and Ambit jobs over shared banks.

    The model is bank-occupancy based: a regular request occupies its
    bank for a closed-row access time (``tRCD + tCL + tBL`` after any
    needed precharge), an Ambit primitive for its AAP/AP latency.  Banks
    proceed in parallel; each bank serves its own queue in arrival
    order, with job primitives interleaved between requests.

    Parameters
    ----------
    timing: Speed grade for both request and primitive latencies.
    amap: Address map (decides AAP overlap eligibility).
    banks: Number of banks.
    split_decoder: Disable for the naive-AAP ablation.
    """

    def __init__(
        self,
        timing: TimingParameters,
        amap: AmbitAddressMap,
        banks: int = 8,
        split_decoder: bool = True,
        tracer=None,
    ):
        if banks <= 0:
            raise SimulationError("need at least one bank")
        self.timing = timing
        self.amap = amap
        self.banks = banks
        self.split_decoder = split_decoder
        #: Optional :class:`repro.obs.tracer.Tracer`: completed requests
        #: and jobs are emitted as spans, so interference between
        #: foreground traffic and Ambit jobs is visible in a Chrome
        #: trace.
        self.tracer = tracer
        self.requests: List[MemRequest] = []
        self.jobs: List[AmbitJob] = []

    # ------------------------------------------------------------------
    def enqueue_request(self, request: MemRequest) -> None:
        """Queue a regular memory request."""
        self._check_bank(request.bank)
        self.requests.append(request)

    def enqueue_job(self, job: AmbitJob) -> None:
        """Queue an Ambit bulk operation."""
        self._check_bank(job.bank)
        self.jobs.append(job)

    def _check_bank(self, bank: int) -> None:
        if not 0 <= bank < self.banks:
            raise SimulationError(
                f"bank {bank} out of range [0, {self.banks})"
            )

    # ------------------------------------------------------------------
    def _request_latency(self) -> float:
        """Closed-row access latency for one regular request.

        A conservative row-miss access: the bank was (or will be)
        precharged around Ambit primitives, so requests pay
        ``tRCD + tCL + tBL``.
        """
        t = self.timing
        return t.tRCD + t.tCL + t.tBL

    def run(self) -> InterleavedStats:
        """Schedule everything; returns completion statistics."""
        # Build per-bank work lists: (arrival, kind, payload).
        per_bank: Dict[int, List[Tuple[float, int, object]]] = {
            b: [] for b in range(self.banks)
        }
        for req in self.requests:
            per_bank[req.bank].append((req.arrival_ns, 0, req))
        for job in self.jobs:
            per_bank[job.bank].append((job.arrival_ns, 1, job))

        request_latencies: List[float] = []
        job_latencies: List[float] = []
        makespan = 0.0
        for bank, work in per_bank.items():
            work.sort(key=lambda item: (item[0], item[1]))
            now = 0.0
            # Round-robin between the request stream and job primitives:
            # pending job primitives are emitted one at a time so
            # requests slip in between them.
            pending_requests = [w for w in work if w[1] == 0]
            pending_jobs = [w for w in work if w[1] == 1]
            primitive_queue: List[Tuple[AmbitJob, int]] = []
            while pending_requests or pending_jobs or primitive_queue:
                # Admit any job that has arrived.
                while pending_jobs and pending_jobs[0][0] <= now:
                    _, _, job = pending_jobs.pop(0)
                    job.start_ns = None
                    primitive_queue.extend(
                        (job, i) for i in range(len(job.program.primitives))
                    )
                next_req = pending_requests[0] if pending_requests else None
                if next_req is not None and (
                    next_req[0] <= now or not primitive_queue
                ):
                    arrival, _, req = pending_requests.pop(0)
                    start = max(now, arrival)
                    finish = start + self._request_latency()
                    req.start_ns, req.finish_ns = start, finish
                    request_latencies.append(finish - arrival)
                    if self.tracer is not None:
                        self.tracer.span(
                            "mem_request", start, finish - start,
                            bank=bank, queue_ns=start - arrival,
                        )
                    now = finish
                elif primitive_queue:
                    job, index = primitive_queue.pop(0)
                    primitive = job.program.primitives[index]
                    if job.start_ns is None:
                        job.start_ns = now
                    now += primitive.latency_ns(
                        self.timing, self.amap, self.split_decoder
                    )
                    if index == len(job.program.primitives) - 1:
                        job.finish_ns = now
                        job_latencies.append(now - job.arrival_ns)
                        if self.tracer is not None:
                            self.tracer.span(
                                f"job:{job.program.op.value}",
                                job.start_ns or now,
                                now - (job.start_ns or now),
                                bank=bank,
                                queue_ns=(job.start_ns or now) - job.arrival_ns,
                            )
                elif pending_jobs:
                    now = pending_jobs[0][0]
            makespan = max(makespan, now)
        return InterleavedStats(
            makespan_ns=makespan,
            request_latencies=request_latencies,
            job_latencies=job_latencies,
        )
