"""Command microprograms for every bulk bitwise operation (Figure 8).

Each operation compiles to a short sequence of AAP/AP primitives over
the B-, C- and D-group addresses of one subarray.  The and/nand/xor
sequences are verbatim from Figure 8; or/nor/xnor follow the paper's
remark that they are obtained "by appropriately modifying the control
rows":

* ``or``  = ``and``  with the C1 (all-ones) control row,
* ``nor`` = ``nand`` with C1,
* ``xnor``= ``xor``  with C0/C1 swapped (the intermediate TRAs compute
  ``!Di | Dj`` and ``Di | !Dj`` instead of the AND forms, and the final
  TRA combines them with AND instead of OR).

``copy`` (one AAP) and ``init0``/``init1`` (an AAP from a control row)
are included because RowClone-style copies are first-class citizens of
the Ambit controller (Section 3.4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.core.addressing import AmbitAddressMap
from repro.core.primitives import AAP, AP, Primitive
from repro.errors import AddressError


class BulkOp(enum.Enum):
    """The bulk bitwise operations Ambit supports.

    ``MAJ`` is the natural extension the paper's conclusion invites:
    triple-row activation *is* a majority gate, so exposing the raw
    3-operand majority costs the same 4 AAPs as AND/OR (the control-row
    copy is replaced by a third operand copy).  Majority is the carry
    function of a full adder, which is what makes bit-serial arithmetic
    (:mod:`repro.apps.arithmetic`) possible.
    """

    NOT = "not"
    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    COPY = "copy"
    MAJ = "maj"

    @property
    def arity(self) -> int:
        """Number of source operands."""
        if self in (BulkOp.NOT, BulkOp.COPY):
            return 1
        if self is BulkOp.MAJ:
            return 3
        return 2


@dataclass(frozen=True)
class Microprogram:
    """A compiled bulk operation: the primitive sequence plus metadata."""

    op: BulkOp
    primitives: Tuple[Primitive, ...]

    @property
    def num_aap(self) -> int:
        return sum(1 for p in self.primitives if isinstance(p, AAP))

    @property
    def num_ap(self) -> int:
        return sum(1 for p in self.primitives if isinstance(p, AP))


def _two_source(
    amap: AmbitAddressMap, di: int, dj: int, dk: int, op: BulkOp
) -> None:
    for name, addr in (("src1", di), ("src2", dj)):
        if not (amap.is_d_group(addr) or amap.is_c_group(addr)):
            raise AddressError(f"{op.value}: {name} address {addr} is not a data row")
    if not amap.is_d_group(dk):
        raise AddressError(f"{op.value}: destination {dk} is not a D-group row")


def _dcc_addresses(amap: AmbitAddressMap, dcc: int) -> Tuple[int, int]:
    """(n-wordline, d-wordline) addresses of the chosen DCC row.

    DCC0 is addressed through B4 (d) / B5 (n); DCC1 through B6 (d) /
    B7 (n) (Table 1).  Both rows are functionally interchangeable for
    single-negation programs, which is what makes runtime rerouting
    around a broken n-wordline possible (see :mod:`repro.faults`).
    """
    if dcc == 0:
        return amap.b(5), amap.b(4)
    if dcc == 1:
        return amap.b(7), amap.b(6)
    raise AddressError(f"dcc route must be 0 or 1; got {dcc}")


def compile_not(
    amap: AmbitAddressMap, di: int, dk: int, dcc: int = 0
) -> Microprogram:
    """``Dk = not Di`` (Section 5.2): capture !Di in a DCC, copy it out.

    ``dcc`` selects which dual-contact row carries the negation (0 =
    DCC0, the paper's Figure 8 choice; 1 = DCC1, the spare route used
    when DCC0's n-wordline is faulty).
    """
    if not (amap.is_d_group(di) or amap.is_c_group(di)):
        raise AddressError(f"not: source address {di} is not a data row")
    if not amap.is_d_group(dk):
        raise AddressError(f"not: destination {dk} is not a D-group row")
    n_addr, d_addr = _dcc_addresses(amap, dcc)
    return Microprogram(
        BulkOp.NOT,
        (
            AAP(di, n_addr),   # DCC = !Di (via the n-wordline)
            AAP(d_addr, dk),   # Dk = DCC
        ),
    )


def compile_copy(amap: AmbitAddressMap, di: int, dk: int) -> Microprogram:
    """``Dk = Di``: a single AAP (RowClone-FPM through the controller)."""
    if di == dk:
        raise AddressError("copy: source and destination are the same row")
    return Microprogram(BulkOp.COPY, (AAP(di, dk),))


def _and_or(
    amap: AmbitAddressMap, di: int, dj: int, dk: int, op: BulkOp
) -> Microprogram:
    control = amap.c(0) if op is BulkOp.AND else amap.c(1)
    _two_source(amap, di, dj, dk, op)
    return Microprogram(
        op,
        (
            AAP(di, amap.b(0)),        # T0 = Di
            AAP(dj, amap.b(1)),        # T1 = Dj
            AAP(control, amap.b(2)),   # T2 = 0 (and) / 1 (or)
            AAP(amap.b(12), dk),       # Dk = TRA(T0, T1, T2)
        ),
    )


def compile_and(amap: AmbitAddressMap, di: int, dj: int, dk: int) -> Microprogram:
    """``Dk = Di and Dj`` (Figure 8a)."""
    return _and_or(amap, di, dj, dk, BulkOp.AND)


def compile_or(amap: AmbitAddressMap, di: int, dj: int, dk: int) -> Microprogram:
    """``Dk = Di or Dj``: the AND program with the C1 control row."""
    return _and_or(amap, di, dj, dk, BulkOp.OR)


def _nand_nor(
    amap: AmbitAddressMap, di: int, dj: int, dk: int, op: BulkOp, dcc: int = 0
) -> Microprogram:
    control = amap.c(0) if op is BulkOp.NAND else amap.c(1)
    _two_source(amap, di, dj, dk, op)
    n_addr, d_addr = _dcc_addresses(amap, dcc)
    return Microprogram(
        op,
        (
            AAP(di, amap.b(0)),            # T0 = Di
            AAP(dj, amap.b(1)),            # T1 = Dj
            AAP(control, amap.b(2)),       # T2 = 0 / 1
            AAP(amap.b(12), n_addr),       # DCC = !TRA(T0, T1, T2)
            AAP(d_addr, dk),               # Dk = DCC
        ),
    )


def compile_nand(
    amap: AmbitAddressMap, di: int, dj: int, dk: int, dcc: int = 0
) -> Microprogram:
    """``Dk = Di nand Dj`` (Figure 8b)."""
    return _nand_nor(amap, di, dj, dk, BulkOp.NAND, dcc)


def compile_nor(
    amap: AmbitAddressMap, di: int, dj: int, dk: int, dcc: int = 0
) -> Microprogram:
    """``Dk = Di nor Dj``: the NAND program with the C1 control row."""
    return _nand_nor(amap, di, dj, dk, BulkOp.NOR, dcc)


def _xor_xnor(
    amap: AmbitAddressMap, di: int, dj: int, dk: int, op: BulkOp
) -> Microprogram:
    _two_source(amap, di, dj, dk, op)
    if op is BulkOp.XOR:
        fill, final = amap.c(0), amap.c(1)   # T2=T3=0; final TRA is an OR
    else:
        fill, final = amap.c(1), amap.c(0)   # T2=T3=1; final TRA is an AND
    return Microprogram(
        op,
        (
            AAP(di, amap.b(8)),        # DCC0 = !Di, T0 = Di
            AAP(dj, amap.b(9)),        # DCC1 = !Dj, T1 = Dj
            AAP(fill, amap.b(10)),     # T2 = T3 = fill
            AP(amap.b(14)),            # T1 = TRA(DCC0, T1, T2)
            AP(amap.b(15)),            # T0 = TRA(DCC1, T0, T3)
            AAP(final, amap.b(2)),     # T2 = !fill
            AAP(amap.b(12), dk),       # Dk = TRA(T0, T1, T2)
        ),
    )


def compile_xor(amap: AmbitAddressMap, di: int, dj: int, dk: int) -> Microprogram:
    """``Dk = Di xor Dj`` (Figure 8c): (Di & !Dj) | (!Di & Dj)."""
    return _xor_xnor(amap, di, dj, dk, BulkOp.XOR)


def compile_xnor(amap: AmbitAddressMap, di: int, dj: int, dk: int) -> Microprogram:
    """``Dk = Di xnor Dj``: (Di | !Dj) & (!Di | Dj)."""
    return _xor_xnor(amap, di, dj, dk, BulkOp.XNOR)


def compile_maj(
    amap: AmbitAddressMap, di: int, dj: int, dl: int, dk: int
) -> Microprogram:
    """``Dk = MAJ(Di, Dj, Dl)``: the raw triple-row activation.

    Same structure as AND/OR (Figure 8a) with the control-row copy
    replaced by a third operand copy -- majority is what the TRA
    computes natively (Section 3.1).
    """
    for name, addr in (("src1", di), ("src2", dj), ("src3", dl)):
        if not (amap.is_d_group(addr) or amap.is_c_group(addr)):
            raise AddressError(f"maj: {name} address {addr} is not a data row")
    if not amap.is_d_group(dk):
        raise AddressError(f"maj: destination {dk} is not a D-group row")
    return Microprogram(
        BulkOp.MAJ,
        (
            AAP(di, amap.b(0)),    # T0 = Di
            AAP(dj, amap.b(1)),    # T1 = Dj
            AAP(dl, amap.b(2)),    # T2 = Dl
            AAP(amap.b(12), dk),   # Dk = MAJ(T0, T1, T2)
        ),
    )


#: Compiler dispatch: op -> callable(amap, *addresses) -> Microprogram.
COMPILERS: Dict[BulkOp, Callable[..., Microprogram]] = {
    BulkOp.NOT: compile_not,
    BulkOp.COPY: compile_copy,
    BulkOp.AND: compile_and,
    BulkOp.OR: compile_or,
    BulkOp.NAND: compile_nand,
    BulkOp.NOR: compile_nor,
    BulkOp.XOR: compile_xor,
    BulkOp.XNOR: compile_xnor,
    BulkOp.MAJ: compile_maj,
}


def compile_op(
    amap: AmbitAddressMap,
    op: BulkOp,
    dk: int,
    di: int,
    dj: Optional[int] = None,
    dl: Optional[int] = None,
    dcc: int = 0,
) -> Microprogram:
    """Compile any bulk operation to its microprogram.

    Argument order follows the ISA (Section 5.4.1): destination first.
    ``dcc`` routes single-negation programs (not/nand/nor) through the
    chosen dual-contact row; operations that use no DCC, or both
    (xor/xnor), ignore it.
    """
    if op.arity == 1:
        if dj is not None or dl is not None:
            raise AddressError(f"{op.value} takes one source operand")
        if op is BulkOp.NOT:
            return compile_not(amap, di, dk, dcc)
        return COMPILERS[op](amap, di, dk)
    if op.arity == 3:
        if dj is None or dl is None:
            raise AddressError(f"{op.value} takes three source operands")
        return compile_maj(amap, di, dj, dl, dk)
    if dj is None or dl is not None:
        raise AddressError(f"{op.value} takes two source operands")
    if op in (BulkOp.NAND, BulkOp.NOR):
        return _nand_nor(amap, di, dj, dk, op, dcc)
    return COMPILERS[op](amap, di, dj, dk)


def compile_reduction(
    amap: AmbitAddressMap,
    op: BulkOp,
    sources: Tuple[int, ...],
    dk: int,
    optimize: bool = True,
) -> Microprogram:
    """AND/OR-reduce several rows into ``dk``.

    ``optimize=True`` applies the dead-store elimination Section 5.2
    alludes to: the running accumulator stays in the designated row T0
    across steps (a TRA's restore already leaves the result in T0), so
    each additional source costs 2 AAPs + 1 AP instead of a full 4-AAP
    operation plus accumulator re-copy.  ``optimize=False`` emits the
    naive chain (each step a full Figure 8a/or program through a scratch
    accumulator in ``dk``), which is what the ablation benchmark
    compares against.
    """
    if op not in (BulkOp.AND, BulkOp.OR):
        raise AddressError(f"reductions support and/or; got {op.value}")
    if len(sources) < 2:
        raise AddressError("a reduction needs at least two sources")
    if not amap.is_d_group(dk):
        raise AddressError(f"reduction destination {dk} is not a D-group row")
    control = amap.c(0) if op is BulkOp.AND else amap.c(1)
    primitives: list = []
    if optimize:
        primitives.append(AAP(sources[0], amap.b(0)))      # T0 = acc
        for i, src in enumerate(sources[1:]):
            last = i == len(sources) - 2
            primitives.append(AAP(src, amap.b(1)))         # T1 = src
            primitives.append(AAP(control, amap.b(2)))     # T2 = ctl
            if last:
                primitives.append(AAP(amap.b(12), dk))     # Dk = TRA
            else:
                primitives.append(AP(amap.b(12)))          # T0 = TRA
    else:
        acc = sources[0]
        for src in sources[1:]:
            step = COMPILERS[op](amap, acc, src, dk)
            primitives.extend(step.primitives)
            acc = dk
    return Microprogram(op, tuple(primitives))


def compile_xor_minimal(
    amap: AmbitAddressMap,
    di: int,
    dj: int,
    dk: int,
    scratch: Tuple[int, int] = None,
    dcc: int = 0,
    op: BulkOp = None,
) -> Tuple[Microprogram, ...]:
    """XOR on a *minimal* Ambit B-group (the ablation of Section 5.1).

    The paper's B-group spends extra area (4 designated rows, 2 DCC
    rows, dual-fanout addresses B8-B11) specifically so xor/xnor need
    few copies.  A minimal Ambit -- 3 designated rows, 1 DCC row, no
    fanout addresses -- must compose xor as
    ``(Di and not Dj) or (not Di and Dj)`` from whole not/and/or
    operations through two scratch data rows.  Returns the program
    sequence; the ablation benchmark compares its cost against
    :func:`compile_xor`.

    ``dcc`` routes the NOT steps through the chosen dual-contact row --
    the fault layer uses this as the degraded xor/xnor path when one of
    the two DCC n-wordlines is broken (the paper's 8-AAP xor needs both).
    ``op=BulkOp.XNOR`` composes xnor instead (an extra trailing NOT
    through a scratch row): ``Dk = !(Di ^ Dj)``.
    """
    if scratch is None:
        scratch = (amap.d(amap.data_rows - 1), amap.d(amap.data_rows - 2))
    s0, s1 = scratch
    if len({di, dj, dk, s0, s1}) != 5:
        raise AddressError("xor_minimal needs five distinct rows")
    programs = [
        compile_not(amap, dj, s0, dcc),        # s0 = !Dj
        compile_and(amap, di, s0, s0),         # s0 = Di & !Dj
        compile_not(amap, di, s1, dcc),        # s1 = !Di
        compile_and(amap, dj, s1, s1),         # s1 = !Di & Dj
    ]
    if op is BulkOp.XNOR:
        programs.append(compile_or(amap, s0, s1, s0))   # s0 = Di ^ Dj
        programs.append(compile_not(amap, s0, dk, dcc))  # Dk = !(Di ^ Dj)
    else:
        programs.append(compile_or(amap, s0, s1, dk))   # Dk = s0 | s1
    return tuple(programs)
