"""Wall-clock benchmark of the multi-process simulation paths.

Two workloads, each timed serial-versus-parallel on the same inputs:

* **Monte Carlo** -- :func:`repro.circuit.montecarlo.
  tra_failure_rate_parallel` with a fixed chunk count, run at ``jobs=1``
  and ``jobs=N``; the failure counts must match bit-for-bit (chunk count
  is experiment configuration, job count is not).
* **Bulk operations** -- :func:`repro.perf.throughput.
  measure_ambit_batched` on a plain device versus
  :func:`repro.perf.throughput.measure_ambit_sharded` on a
  :class:`~repro.parallel.device.ShardedDevice`; the result cells and
  the accounted ``elapsed_ns`` must match bit-for-bit.

:func:`run_parallel_bench` returns a JSON-ready payload (written to
``benchmarks/results/BENCH_parallel.json`` by the benchmark test and by
``repro bench``); speedups are computed from the *best* of ``repeats``
timings, the standard defence against scheduler noise.  On boxes with
fewer cores than ``jobs`` the speedup simply reflects what the host can
give -- correctness checks run regardless.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.circuit.montecarlo import tra_failure_rate_parallel
from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp
from repro.dram.geometry import DramGeometry, SubarrayGeometry
from repro.errors import ConfigError
from repro.parallel.device import ShardedDevice
from repro.parallel.pmap import default_jobs
from repro.perf.throughput import measure_ambit_batched, measure_ambit_sharded


@dataclass(frozen=True)
class ParallelBenchConfig:
    """Shape of one benchmark run (the default mirrors an 8-bank chip)."""

    #: Worker processes for the parallel arms.
    jobs: int = 8
    #: Chip geometry for the bulk-op arm.  Large rows make the numpy
    #: kernel (not Python dispatch) the dominant cost, which is the
    #: regime sharding accelerates.
    banks: int = 8
    subarrays_per_bank: int = 2
    rows: int = 64
    row_bytes: int = 8192
    #: Destination rows per bank in the bulk-op arm.
    rows_per_bank: int = 40
    op: BulkOp = BulkOp.AND
    #: Monte Carlo arm: trials at one Table 2 variation level.  Sized so
    #: per-chunk compute dwarfs worker-pool startup; smaller counts
    #: understate the parallel arm on every host.
    mc_level: float = 0.15
    mc_trials: int = 8_000_000
    mc_chunks: int = 32
    mc_seed: int = 42
    #: Timings per arm; the best is kept.
    repeats: int = 3

    def geometry(self) -> DramGeometry:
        """The chip geometry of the bulk-op arm."""
        return DramGeometry(
            banks=self.banks,
            subarrays_per_bank=self.subarrays_per_bank,
            subarray=SubarrayGeometry(
                rows=self.rows, row_bytes=self.row_bytes
            ),
        )


def _best_of(repeats: int, fn: Callable[[], Any]) -> tuple[float, Any]:
    """(best wall-clock seconds, last result) over ``repeats`` calls."""
    best = float("inf")
    result: Any = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _bench_montecarlo(config: ParallelBenchConfig) -> Dict[str, Any]:
    kwargs = dict(
        trials=config.mc_trials,
        chunks=config.mc_chunks,
        seed=config.mc_seed,
    )
    serial_s, serial = _best_of(
        config.repeats,
        lambda: tra_failure_rate_parallel(config.mc_level, jobs=1, **kwargs),
    )
    parallel_s, parallel = _best_of(
        config.repeats,
        lambda: tra_failure_rate_parallel(
            config.mc_level, jobs=config.jobs, **kwargs
        ),
    )
    if serial.failures != parallel.failures:
        raise ConfigError(
            f"parallel Monte Carlo diverged: {serial.failures} failures "
            f"serial vs {parallel.failures} with jobs={config.jobs} "
            f"(chunks={config.mc_chunks}, seed={config.mc_seed})"
        )
    return {
        "trials": config.mc_trials,
        "chunks": config.mc_chunks,
        "level": config.mc_level,
        "failures": serial.failures,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else float("inf"),
        "deterministic": True,
    }


def _bench_bulk_ops(config: ParallelBenchConfig) -> Dict[str, Any]:
    geometry = config.geometry()

    def serial_run() -> Dict[str, Any]:
        device = AmbitDevice(geometry=geometry)
        gops, report = measure_ambit_batched(
            device, config.op, rows_per_bank=config.rows_per_bank
        )
        return {"device": device, "gops": gops, "report": report}

    def sharded_run() -> Dict[str, Any]:
        with ShardedDevice(
            geometry=geometry, max_workers=config.jobs
        ) as device:
            gops, report = measure_ambit_sharded(
                device, config.op, rows_per_bank=config.rows_per_bank
            )
            cells = [
                np.array(device.read_row(loc), copy=True)
                for loc in _dst_rows(device, config)
            ]
        return {"gops": gops, "report": report, "cells": cells}

    serial_s, serial = _best_of(config.repeats, serial_run)
    parallel_s, parallel = _best_of(config.repeats, sharded_run)

    expected = [
        serial["device"].read_row(loc)
        for loc in _dst_rows(serial["device"], config)
    ]
    exact = all(
        np.array_equal(a, b) for a, b in zip(expected, parallel["cells"])
    ) and serial["gops"] == parallel["gops"]
    if not exact:
        raise ConfigError(
            "sharded bulk-op run diverged from the serial engine "
            "(cells or accounted throughput differ)"
        )
    return {
        "op": config.op.value,
        "rows": config.banks * config.rows_per_bank,
        "row_bytes": config.row_bytes,
        "shards": parallel["report"].shards,
        "accounted_gops": serial["gops"],
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else float("inf"),
        "bit_exact": True,
    }


def _dst_rows(device, config: ParallelBenchConfig) -> List:
    from repro.dram.chip import RowLocation

    return [
        RowLocation(bank, 0, 2 + i)
        for bank in range(config.banks)
        for i in range(config.rows_per_bank)
    ]


def run_parallel_bench(config: Optional[ParallelBenchConfig] = None) -> Dict[str, Any]:
    """Run both arms; returns the ``BENCH_parallel.json`` payload."""
    config = config if config is not None else ParallelBenchConfig()
    montecarlo = _bench_montecarlo(config)
    bulk = _bench_bulk_ops(config)
    speedups = [montecarlo["speedup"], bulk["speedup"]]
    payload = {
        "bench": "parallel",
        "cpu_count": default_jobs(),
        "jobs": config.jobs,
        "repeats": config.repeats,
        "config": {
            k: (v.value if isinstance(v, BulkOp) else v)
            for k, v in asdict(config).items()
        },
        "montecarlo": montecarlo,
        "bulk_ops": bulk,
        "best_speedup": max(speedups),
    }
    return payload


def format_parallel_bench(payload: Dict[str, Any]) -> str:
    """Render the payload as a small table."""
    mc, bulk = payload["montecarlo"], payload["bulk_ops"]
    lines = [
        f"Parallel bench: jobs={payload['jobs']} on "
        f"{payload['cpu_count']} schedulable core(s), "
        f"best of {payload['repeats']}",
        f"{'workload':>12} {'serial s':>10} {'parallel s':>12} {'speedup':>9}",
        f"{'montecarlo':>12} {mc['serial_s']:>10.3f} "
        f"{mc['parallel_s']:>12.3f} {mc['speedup']:>8.2f}x",
        f"{'bulk ops':>12} {bulk['serial_s']:>10.3f} "
        f"{bulk['parallel_s']:>12.3f} {bulk['speedup']:>8.2f}x",
        f"montecarlo deterministic: {mc['deterministic']}; "
        f"bulk ops bit-exact: {bulk['bit_exact']} "
        f"({bulk['shards']} shard(s))",
    ]
    return "\n".join(lines)
