"""Wall-clock benchmark of the multi-process simulation paths.

Two workloads, each timed serial-versus-parallel on the same inputs:

* **Monte Carlo** -- :func:`repro.circuit.montecarlo.
  tra_failure_rate_parallel` with a fixed chunk count, run at ``jobs=1``
  and ``jobs=N``; the failure counts must match bit-for-bit (chunk count
  is experiment configuration, job count is not).
* **Bulk operations** -- :func:`repro.perf.throughput.
  measure_ambit_batched` on a plain device versus
  :func:`repro.perf.throughput.measure_ambit_sharded` on a
  :class:`~repro.parallel.device.ShardedDevice`; the result cells and
  the accounted ``elapsed_ns`` must match bit-for-bit.

:func:`run_parallel_bench` returns a JSON-ready payload (written to
``benchmarks/results/BENCH_parallel.json`` by the benchmark test and by
``repro bench``); speedups are computed from the *best* of ``repeats``
timings, the standard defence against scheduler noise.  On boxes with
fewer cores than ``jobs`` the speedup simply reflects what the host can
give -- correctness checks run regardless.

The bulk-op arm measures the *steady state*: both devices are built --
and the sharded one's worker pool, resident plan, and worker-side plan
caches warmed by one untimed batch -- before the timed repeats.  That
is the regime the accelerator paper's batched pipeline targets
(one-time setup amortized over bulk work), and it is what the
dispatch-budget tests gate: after warm-up a batch costs O(1) pickled
bytes per shard, which the payload's ``bulk_ops.io`` section records.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.circuit.montecarlo import tra_failure_rate_parallel
from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp
from repro.dram.geometry import DramGeometry, SubarrayGeometry
from repro.errors import ConfigError
from repro.parallel.device import ShardedDevice
from repro.parallel.pmap import default_jobs
from repro.perf.throughput import measure_ambit_batched, measure_ambit_sharded


@dataclass(frozen=True)
class ParallelBenchConfig:
    """Shape of one benchmark run (the default mirrors an 8-bank chip)."""

    #: Worker processes for the parallel arms.
    jobs: int = 8
    #: Chip geometry for the bulk-op arm.  Large rows make the numpy
    #: kernel (not Python dispatch) the dominant cost, which is the
    #: regime sharding accelerates: at 128 KiB rows the per-batch byte
    #: work is ~8 MiB and the warm dispatch overhead is a few percent
    #: of the serial arm, so every extra core shows through.
    banks: int = 8
    subarrays_per_bank: int = 2
    rows: int = 32
    row_bytes: int = 131072
    #: Destination rows per bank in the bulk-op arm.
    rows_per_bank: int = 8
    op: BulkOp = BulkOp.AND
    #: Dispatch mode of the sharded arm (``sharded``/``auto``/``fused``/
    #: ``serial``) -- ``auto`` also reports the tuner's decisions.
    dispatch: str = "sharded"
    #: Monte Carlo arm: trials at one Table 2 variation level.  Sized so
    #: per-chunk compute dwarfs worker-pool startup; smaller counts
    #: understate the parallel arm on every host.
    mc_level: float = 0.15
    mc_trials: int = 8_000_000
    mc_chunks: int = 32
    mc_seed: int = 42
    #: Timings per arm; the best is kept.
    repeats: int = 3

    def geometry(self) -> DramGeometry:
        """The chip geometry of the bulk-op arm."""
        return DramGeometry(
            banks=self.banks,
            subarrays_per_bank=self.subarrays_per_bank,
            subarray=SubarrayGeometry(
                rows=self.rows, row_bytes=self.row_bytes
            ),
        )


def _best_of(repeats: int, fn: Callable[[], Any]) -> tuple[float, Any]:
    """(best wall-clock seconds, last result) over ``repeats`` calls."""
    best = float("inf")
    result: Any = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _bench_montecarlo(config: ParallelBenchConfig) -> Dict[str, Any]:
    from repro.parallel.tuner import plan_mc_dispatch

    kwargs = dict(
        trials=config.mc_trials,
        chunks=config.mc_chunks,
        seed=config.mc_seed,
    )
    # Chunk count is experiment configuration (it pins the RNG streams
    # and therefore the failure count); the tuner only decides how many
    # workers share those chunks -- and whether fanning out is worth the
    # pool spin-up at all.  A declined fan-out runs the "parallel" arm
    # in-process and records an explicit waiver instead of publishing a
    # sub-1x speedup that is really a dispatch tax.
    decision = plan_mc_dispatch(
        trials=config.mc_trials, chunks=config.mc_chunks, jobs=config.jobs
    )
    serial_s, serial = _best_of(
        config.repeats,
        lambda: tra_failure_rate_parallel(config.mc_level, jobs=1, **kwargs),
    )
    parallel_s, parallel = _best_of(
        config.repeats,
        lambda: tra_failure_rate_parallel(
            config.mc_level, jobs=decision.jobs, **kwargs
        ),
    )
    if serial.failures != parallel.failures:
        raise ConfigError(
            f"parallel Monte Carlo diverged: {serial.failures} failures "
            f"serial vs {parallel.failures} with jobs={decision.jobs} "
            f"(chunks={config.mc_chunks}, seed={config.mc_seed})"
        )
    result = {
        "trials": config.mc_trials,
        "chunks": config.mc_chunks,
        "level": config.mc_level,
        "failures": serial.failures,
        "jobs_requested": config.jobs,
        "jobs_effective": decision.jobs,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else float("inf"),
        "deterministic": True,
        "speedup_tier": "tuned" if decision.worthwhile else (
            "waived-single-core"
            if min(config.jobs, decision.cores) < 2
            else "waived-dispatch-bound"
        ),
    }
    if decision.reason:
        result["waiver_reason"] = decision.reason
    return result


def _dispatch_stats(device: ShardedDevice) -> Dict[str, Any]:
    """The dispatch-path accounting of the sharded arm's timed repeats.

    ``tier`` comes from the ``ambit_dispatch_total`` counter, which the
    per-repeat ``reset_stats`` leaves holding exactly the last batch's
    decision; the tuner's cumulative decision counts survive resets on
    the tuner object itself.
    """
    stats: Dict[str, Any] = {
        "mode": device.dispatch,
        "resident_plans": device.resident_plans,
    }
    family = device.metrics.get("ambit_dispatch_total")
    if family is not None:
        executed = [
            labels[0]
            for labels, child in family.children.items()
            if child.value > 0
        ]
        if executed:
            stats["tier"] = executed[-1]
    if device.dispatch == "auto":
        stats["tuner_decisions"] = dict(device.tuner.decisions)
        stats["cost_model"] = device.tuner.model.describe()
    return stats


def _bench_bulk_ops(config: ParallelBenchConfig) -> Dict[str, Any]:
    geometry = config.geometry()
    serial_device = AmbitDevice(geometry=geometry)
    with ShardedDevice(
        geometry=geometry, max_workers=config.jobs, dispatch=config.dispatch
    ) as device:
        # Warm both arms before the clock starts: plan caches, the
        # worker pool, the plan-board entry, and the workers' own
        # engines all populate on the first batch.  Timing the cold
        # batch would measure process startup, not the dispatch path.
        measure_ambit_batched(
            serial_device, config.op, rows_per_bank=config.rows_per_bank
        )
        measure_ambit_sharded(
            device, config.op, rows_per_bank=config.rows_per_bank
        )
        device.quiesce()
        io_before = device.pool.io.snapshot() if device.pool else None

        serial_s, serial = _best_of(
            config.repeats,
            lambda: measure_ambit_batched(
                serial_device, config.op, rows_per_bank=config.rows_per_bank
            ),
        )
        parallel_s, parallel = _best_of(
            config.repeats,
            lambda: measure_ambit_sharded(
                device, config.op, rows_per_bank=config.rows_per_bank
            ),
        )
        device.quiesce()

        dispatch = _dispatch_stats(device)
        if device.pool is not None and io_before is not None:
            io = device.pool.io.delta(io_before)
            dispatch["io"] = {
                "batches": config.repeats,
                "submitted_jobs": io.submitted_jobs,
                "submitted_bytes": io.submitted_bytes,
                "max_submission_bytes": io.max_submission_bytes,
                "received_bytes": io.received_bytes,
            }

        serial_gops, serial_report = serial
        parallel_gops, parallel_report = parallel
        expected = [
            serial_device.read_row(loc)
            for loc in _dst_rows(serial_device, config)
        ]
        cells = [device.read_row(loc) for loc in _dst_rows(device, config)]
        exact = all(
            np.array_equal(a, b) for a, b in zip(expected, cells)
        ) and serial_gops == parallel_gops
    if not exact:
        raise ConfigError(
            "sharded bulk-op run diverged from the serial engine "
            "(cells or accounted throughput differ)"
        )
    return {
        "op": config.op.value,
        "rows": config.banks * config.rows_per_bank,
        "row_bytes": config.row_bytes,
        "shards": parallel_report.shards,
        "accounted_gops": serial_gops,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else float("inf"),
        "bit_exact": True,
        "dispatch": dispatch,
    }


def _dst_rows(device, config: ParallelBenchConfig) -> List:
    from repro.dram.chip import RowLocation

    return [
        RowLocation(bank, 0, 2 + i)
        for bank in range(config.banks)
        for i in range(config.rows_per_bank)
    ]


def run_parallel_bench(config: Optional[ParallelBenchConfig] = None) -> Dict[str, Any]:
    """Run both arms; returns the ``BENCH_parallel.json`` payload."""
    config = config if config is not None else ParallelBenchConfig()
    montecarlo = _bench_montecarlo(config)
    bulk = _bench_bulk_ops(config)
    speedups = [montecarlo["speedup"], bulk["speedup"]]
    payload = {
        "bench": "parallel",
        "cpu_count": default_jobs(),
        "jobs": config.jobs,
        "repeats": config.repeats,
        "config": {
            k: (v.value if isinstance(v, BulkOp) else v)
            for k, v in asdict(config).items()
        },
        "montecarlo": montecarlo,
        "bulk_ops": bulk,
        "best_speedup": max(speedups),
    }
    return payload


def format_parallel_bench(payload: Dict[str, Any]) -> str:
    """Render the payload as a small table."""
    mc, bulk = payload["montecarlo"], payload["bulk_ops"]
    lines = [
        f"Parallel bench: jobs={payload['jobs']} on "
        f"{payload['cpu_count']} schedulable core(s), "
        f"best of {payload['repeats']}",
        f"{'workload':>12} {'serial s':>10} {'parallel s':>12} {'speedup':>9}",
        f"{'montecarlo':>12} {mc['serial_s']:>10.3f} "
        f"{mc['parallel_s']:>12.3f} {mc['speedup']:>8.2f}x",
        f"{'bulk ops':>12} {bulk['serial_s']:>10.3f} "
        f"{bulk['parallel_s']:>12.3f} {bulk['speedup']:>8.2f}x",
        f"montecarlo deterministic: {mc['deterministic']}; "
        f"bulk ops bit-exact: {bulk['bit_exact']} "
        f"({bulk['shards']} shard(s))",
    ]
    mc_tier = mc.get("speedup_tier", "")
    if mc_tier.startswith("waived"):
        lines.append(
            f"montecarlo fan-out waived ({mc_tier}): "
            f"{mc.get('waiver_reason', 'no reason recorded')}"
        )
    dispatch = bulk.get("dispatch", {})
    if dispatch:
        line = (
            f"dispatch: mode={dispatch.get('mode')} "
            f"tier={dispatch.get('tier', 'n/a')} "
            f"resident plans={dispatch.get('resident_plans')}"
        )
        io = dispatch.get("io")
        if io and io["submitted_jobs"]:
            line += (
                f"; {io['submitted_bytes'] / io['submitted_jobs']:.0f} B/job "
                f"over {io['submitted_jobs']} jobs "
                f"(max {io['max_submission_bytes']} B)"
            )
        lines.append(line)
    return "\n".join(lines)
