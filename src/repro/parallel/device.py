"""The sharded device: bank-partitioned, multi-process bulk execution.

:class:`ShardedDevice` is an :class:`~repro.core.device.AmbitDevice`-
compatible facade whose bulk operations run across a pool of worker
processes.  The cells of the whole chip live in one
:class:`~repro.parallel.shm.SharedRowStore` segment; a batch is
partitioned *by bank* into at most ``max_workers`` shards, each worker
executes its shard's rows through its own batch engine directly against
the shared cells, and the parent merges deterministically:

* **cells** -- written in place by the workers (disjoint banks, no
  merge needed);
* **counters / trace / energy** -- re-derived in the parent from its
  plan cache via
  :meth:`repro.engine.batch.BatchEngine.account_group`, in the exact
  bank-interleaved order the single-process engine uses, so statistics
  and golden traces are byte-identical to a serial run;
* **clock** -- elapsed (makespan) time is the busiest bank's serial
  time, identical to the single-process convention; per-shard busy
  times sum into ``busy_ns``;
* **trace events** -- with a tracer attached, workers run their rows
  under real spooling tracers and the parent replays every worker event
  through its own tracer in canonical serial order
  (:mod:`repro.obs.remote`), bit-identical to a single-process traced
  run.

The dispatch path is engineered for throughput (see
``docs/SCALING.md``):

* **Resident plans** -- a batch's shard row-lists are *published once*
  to the plan board of the shared
  :class:`~repro.parallel.accounting.SharedAccountingBlock`; repeat
  batches of the same shape reuse the entry, so the per-batch message
  to each worker is a fingerprint id plus a few integers, never a row
  list or a plan object.
* **Zero-copy results** -- workers write counters, health telemetry,
  and trace spools into fixed-layout slots of the same block and
  return a bare shard index; the parent pickles nothing per batch, and
  the worker-health metric folding happens at *quiesce time* (or when
  statistics are observed), not per batch.
* **Auto-tuned tiers** -- ``dispatch="auto"`` consults
  :class:`~repro.parallel.tuner.AutoTuner` per request to pick the
  serial per-row walk, the in-process fused engine, or the sharded
  pool from per-tier cost models; ``dispatch`` can also force any
  tier.  Every tier is bit-exact; the choice moves wall-clock only.

Fallback: when a target subarray carries injected stuck-at faults
(worker processes cannot see the fault dictionaries), or when the batch
touches fewer than two banks, the batch transparently runs on the
in-process engine instead -- results are always correct; sharding is
purely a wall-clock optimisation.

Quiesce-then-reset protocol: ``reset_stats`` refuses (with
:class:`~repro.errors.ConcurrencyError`) while shard jobs are in
flight; call :meth:`quiesce` first.  See ``docs/SCALING.md``.
"""

from __future__ import annotations

import pickle
import shutil
import tempfile
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp
from repro.dram.chip import RowLocation
from repro.dram.geometry import DramGeometry
from repro.dram.timing import TimingParameters
from repro.engine.batch import BatchReport
from repro.engine.scheduler import CommandGroup
from repro.errors import ConcurrencyError, ConfigError, DramProtocolError
from repro.obs.events import KIND_SPAN, TraceEvent
from repro.obs.remote import (
    TracerConfig,
    discard_spool,
    events_from_bytes,
    read_spool,
    replay_row,
    segment_rows,
    shard_busy_ns,
)
from repro.parallel.accounting import (
    DEFAULT_BOARD_CAPACITY,
    DEFAULT_BOARD_SLOTS,
    DEFAULT_SPOOL_CAPACITY,
    SPOOL_IN_FILE,
    SharedAccountingBlock,
)
from repro.parallel.pmap import default_jobs
from repro.parallel.pool import WorkerPool
from repro.parallel.shm import SharedRowStore
from repro.parallel.tuner import AutoTuner, DispatchTier
from repro.parallel.worker import (
    COMPILED_OP,
    ShardJob,
    ShardResult,
    WorkerConfig,
    run_shard,
    spool_file_path,
)

#: Valid ``dispatch`` modes: the three forced tiers plus the tuner.
DISPATCH_MODES = ("sharded", "fused", "serial", "auto")


class ShardedDevice:
    """A multi-process Ambit device over a shared-memory row store.

    Parameters
    ----------
    geometry / timing / split_decoder:
        As :class:`~repro.core.device.AmbitDevice`.  Analog charge
        models are not supported here -- their cell-level state is
        inherently sequential; use a plain device for Section 6 studies.
    max_workers:
        Shard parallelism; defaults to the scheduler-visible CPU count.
        With fewer than 2 workers every batch runs in-process.
    dispatch:
        ``"sharded"`` (default) fans every eligible batch across the
        pool; ``"fused"`` / ``"serial"`` force the in-process engine
        (fused kernels / per-row walk); ``"auto"`` asks the
        :class:`~repro.parallel.tuner.AutoTuner` per request.
    tuner:
        The cost-model tuner ``dispatch="auto"`` consults (a default
        one is built otherwise); see :meth:`AutoTuner.calibrate`.
    start_method:
        Multiprocessing start method (default: fork where available).
    crash_retries:
        Bounded retry-with-backoff on a worker crash: a batch whose pool
        dies is resubmitted (against a fresh pool) up to this many times
        before the :class:`~repro.errors.ConcurrencyError` propagates.
        Resubmission is safe: cells are only read back after a batch
        fully succeeds, microprograms re-copy their operands into the
        B-group, and accounting/trace merging happen strictly after the
        results arrive -- so a half-executed crashed batch leaves no
        observable state behind.  Set 0 to fail fast.
    crash_backoff_s:
        Base backoff before the first resubmission; doubles per attempt.
    stall_timeout_s:
        When set, a batch whose shards have not all answered within this
        many seconds counts a ``worker_stall`` detection (and, once the
        stragglers answer, a recovery) in the fault metrics.
    spool_capacity / board_slots / board_capacity:
        Sizing knobs of the shared accounting block (per-shard trace
        spool bytes; plan-board entries and data bytes).  Overflow is
        always safe: spools fall back to files, plans to inline
        shipment.

    Everything not overridden here (``bbop_row``, ``write_row``,
    ``profile``, ``elapsed_ns``, ...) delegates to the inner device,
    which shares the same cells, so mixed usage is always coherent.
    Observing the device through that delegation also folds any staged
    worker telemetry first, so metrics reads are never stale.
    """

    def __init__(
        self,
        geometry: Optional[DramGeometry] = None,
        timing: Optional[TimingParameters] = None,
        split_decoder: bool = True,
        max_workers: Optional[int] = None,
        dispatch: str = "sharded",
        tuner: Optional[AutoTuner] = None,
        start_method: Optional[str] = None,
        crash_retries: int = 2,
        crash_backoff_s: float = 0.05,
        stall_timeout_s: Optional[float] = None,
        spool_capacity: int = DEFAULT_SPOOL_CAPACITY,
        board_slots: int = DEFAULT_BOARD_SLOTS,
        board_capacity: int = DEFAULT_BOARD_CAPACITY,
    ):
        from repro.obs.metrics import fault_counters

        if dispatch not in DISPATCH_MODES:
            raise ConfigError(
                f"dispatch must be one of {DISPATCH_MODES}; got {dispatch!r}"
            )
        geometry = geometry if geometry is not None else DramGeometry()
        self.store = SharedRowStore.create(geometry)
        self.device = AmbitDevice(
            geometry=geometry,
            timing=timing,
            split_decoder=split_decoder,
            row_store=self.store,
        )
        self.max_workers = (
            max_workers if max_workers is not None else default_jobs()
        )
        self.dispatch = dispatch
        self.tuner = tuner if tuner is not None else AutoTuner()
        self.crash_retries = crash_retries
        self.crash_backoff_s = crash_backoff_s
        self.stall_timeout_s = stall_timeout_s
        self.block = SharedAccountingBlock.create(
            slots=max(1, self.max_workers),
            spool_capacity=spool_capacity,
            board_slots=board_slots,
            board_capacity=board_capacity,
        )
        self._faults = fault_counters(self.device.metrics)
        self._m_dispatch = self.device.metrics.counter(
            "ambit_dispatch_total",
            "Bulk batches executed, by dispatch tier",
            labels=("tier",),
        )
        self._m_resident = self.device.metrics.counter(
            "ambit_resident_plans_total",
            "Resident-plan protocol traffic",
            labels=("event",),
        )
        self._stalled_jobs = 0
        self._start_method = start_method
        self._pool: Optional[WorkerPool] = None
        self._closed = False
        #: Monotonic batch identity: stamps shard jobs, spool files,
        #: crash context, and the linking spans of merged traces.
        self._batch_seq = 0
        self._spool_dir: Optional[str] = None
        #: Published shard row-lists: nested rows tuple -> board entry
        #: id (``None`` = board full, ship inline forever).
        self._resident: Dict[Tuple, Optional[int]] = {}
        #: Published (TracerConfig, spool_dir) pairs: payload -> id.
        self._tracer_resident: Dict[bytes, Optional[int]] = {}
        #: Published compiled ops: CompiledOp -> board entry id
        #: (``None`` = board full, pickle the op inline with each job).
        self._op_resident: Dict[object, Optional[int]] = {}

    # ------------------------------------------------------------------
    # Delegation
    # ------------------------------------------------------------------
    def __getattr__(self, name: str):
        # Only called for attributes not found on ShardedDevice itself;
        # forwards the full AmbitDevice API (bbop_row, write_row,
        # profile, elapsed_ns, tracer, ...).  Any such observation first
        # folds staged worker telemetry, so delegated statistics are
        # consistent without per-batch metric traffic.
        device = self.__dict__.get("device")
        if device is None:
            raise AttributeError(name)
        pool = self.__dict__.get("_pool")
        if pool is not None:
            pool.fold_telemetry()
        return getattr(device, name)

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    @property
    def pool(self) -> Optional[WorkerPool]:
        """The live worker pool (``None`` until first parallel batch)."""
        return self._pool

    @property
    def resident_plans(self) -> int:
        """Batch shapes published to (or pinned inline by) the plan board."""
        return len(self._resident)

    def _ensure_pool(self) -> WorkerPool:
        if self._pool is None or self._pool.broken:
            if self._pool is not None:
                self._pool.shutdown()
            self._pool = WorkerPool(
                WorkerConfig(
                    shm_name=self.store.name,
                    geometry=self.device.geometry,
                    timing=self.device.timing,
                    split_decoder=self.device.controller.split_decoder,
                    block_name=self.block.name,
                ),
                max_workers=self.max_workers,
                start_method=self._start_method,
                metrics=self.device.metrics,
            )
        return self._pool

    def _ensure_spool_dir(self) -> str:
        if self._spool_dir is None:
            self._spool_dir = tempfile.mkdtemp(prefix="repro-trace-spool-")
        return self._spool_dir

    def quiesce(self) -> None:
        """Block until no shard jobs are in flight, then fold telemetry."""
        if self._pool is not None:
            self._pool.quiesce()

    def reset_stats(self) -> None:
        """Clear statistics -- only when the pool is quiet.

        Enforces the quiesce-then-reset protocol: resetting while a
        shard job is in flight would interleave half-merged counters
        with fresh ones, silently corrupting every later ``profile()``.
        Telemetry staged but not yet folded belongs to the epoch being
        zeroed, so it is dropped, not folded into the fresh one.
        """
        if self._pool is not None and self._pool.inflight:
            raise ConcurrencyError(
                f"reset_stats with {self._pool.inflight} shard job(s) in "
                f"flight; call quiesce() first (quiesce-then-reset "
                f"protocol, see docs/SCALING.md)"
            )
        if self._pool is not None:
            self._pool.drop_staged_telemetry()
        self.device.reset_stats()

    def close(self) -> None:
        """Shut down the pool and unlink the shared segments (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._spool_dir is not None:
            shutil.rmtree(self._spool_dir, ignore_errors=True)
            self._spool_dir = None
        self.block.release()
        self.device.close()

    def __enter__(self) -> "ShardedDevice":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Dispatch tier selection
    # ------------------------------------------------------------------
    def _select_tier(
        self, rows: int, row_bytes: int, sharded_ok: bool, shards: int
    ) -> DispatchTier:
        mode = self.dispatch
        if mode == "serial":
            return DispatchTier.SERIAL
        if mode == "fused":
            return DispatchTier.FUSED
        if mode == "sharded":
            return DispatchTier.SHARDED if sharded_ok else DispatchTier.FUSED
        tier = self.tuner.choose(
            rows=rows,
            row_bytes=row_bytes,
            shards=shards if sharded_ok else 1,
            jobs=self.max_workers,
        )
        if tier is DispatchTier.SHARDED and not sharded_ok:
            tier = DispatchTier.FUSED  # pragma: no cover - tuner prices it out
        return tier

    # ------------------------------------------------------------------
    # Sharded bulk execution
    # ------------------------------------------------------------------
    def run_rows(
        self,
        op: BulkOp,
        dst: Sequence[RowLocation],
        src1: Sequence[RowLocation],
        src2: Optional[Sequence[RowLocation]] = None,
        src3: Optional[Sequence[RowLocation]] = None,
    ) -> BatchReport:
        """Execute ``dst[i] = op(...)`` for every row on the chosen tier.

        Same contract and same observable outcome (cells, counters,
        elapsed time, energy, command trace, tracer-sink aggregates) as
        :meth:`repro.engine.batch.BatchEngine.run_rows`; only the
        wall-clock time and the ``shards`` field of the report differ.
        """
        engine = self.device.engine
        # Runtime spare-row remapping resolves here, before sharding, so
        # worker processes only ever see healthy (post-repair) rows and
        # need no view of the parent's repair table.
        dst = engine.translate_rows(dst)
        src1 = engine.translate_rows(src1)
        src2 = engine.translate_rows(src2)
        src3 = engine.translate_rows(src3)
        banks = list(dict.fromkeys(loc.bank for loc in dst))
        shards = min(self.max_workers, len(banks))
        sharded_ok = (
            len(dst) > 0
            and shards >= 2
            and self._parallel_eligible()
            and not self._faulty_subarrays(dst)
        )
        tier = self._select_tier(
            len(dst), self.device.row_bytes, sharded_ok, shards
        )
        self._m_dispatch.labels(tier=tier.value).inc()
        if tier is DispatchTier.SERIAL:
            return engine.run_rows(op, dst, src1, src2, src3, fuse=False)
        if tier is DispatchTier.FUSED or not sharded_ok:
            # In-process fallback: plan-cache traffic, counters, trace,
            # and cells are those of the plain engine by construction.
            return engine.run_rows(op, dst, src1, src2, src3)

        groups = engine.plan_groups(op, dst, src1, src2, src3)
        self._check_precharged(banks)

        assignment = {bank: i % shards for i, bank in enumerate(banks)}
        shard_rows: List[List] = [[] for _ in range(shards)]
        #: Row index -> (shard, position in shard job); the merge walks
        #: this to replay worker event segments in canonical order.
        placement: Dict[int, Tuple[int, int]] = {}
        for group in groups:
            shard = assignment[group.bank]
            rows = shard_rows[shard]
            for i in group.indices:
                placement[i] = (shard, len(rows))
                rows.append(
                    (
                        group.bank,
                        group.subarray,
                        dst[i].address,
                        src1[i].address,
                        src2[i].address if src2 is not None else None,
                        src3[i].address if src3 is not None else None,
                    )
                )

        return self._run_sharded(
            op, op.value, engine, groups, len(dst), shards, shard_rows,
            placement,
        )

    def run_compiled(
        self,
        cop,
        dst: Sequence[RowLocation],
        operands: Sequence[Sequence[RowLocation]],
        temps: Sequence[Sequence[RowLocation]],
    ) -> BatchReport:
        """Execute a compiled-op batch on the chosen dispatch tier.

        Same contract and observable outcome as
        :meth:`repro.engine.batch.BatchEngine.run_compiled` -- synthesized
        operations inherit sharded dispatch exactly as the fixed ops do.
        The :class:`~repro.compile.ops.CompiledOp` itself is published
        through the plan board once per op (its steps never travel with
        a warm batch); workers resolve it by entry id, and the parent
        re-derives accounting and traces from its own plan cache under
        the op's ``c:<name>`` label.
        """
        engine = self.device.engine
        dst = engine.translate_rows(dst)
        operands = [engine.translate_rows(column) for column in operands]
        temps = [engine.translate_rows(column) for column in temps]
        banks = list(dict.fromkeys(loc.bank for loc in dst))
        shards = min(self.max_workers, len(banks))
        sharded_ok = (
            len(dst) > 0
            and shards >= 2
            and self._parallel_eligible()
            and not self._faulty_subarrays(dst)
        )
        tier = self._select_tier(
            len(dst), self.device.row_bytes, sharded_ok, shards
        )
        self._m_dispatch.labels(tier=tier.value).inc()
        if tier is DispatchTier.SERIAL:
            return engine.run_compiled(cop, dst, operands, temps, fuse=False)
        if tier is DispatchTier.FUSED or not sharded_ok:
            return engine.run_compiled(cop, dst, operands, temps)

        groups = engine.plan_groups_compiled(cop, dst, operands, temps)
        self._check_precharged(banks)

        assignment = {bank: i % shards for i, bank in enumerate(banks)}
        shard_rows: List[List] = [[] for _ in range(shards)]
        placement: Dict[int, Tuple[int, int]] = {}
        for group in groups:
            shard = assignment[group.bank]
            rows = shard_rows[shard]
            for i in group.indices:
                placement[i] = (shard, len(rows))
                rows.append(
                    (
                        group.bank,
                        group.subarray,
                        dst[i].address,
                        tuple(column[i].address for column in operands),
                        tuple(column[i].address for column in temps),
                    )
                )

        op_ref, op_inline = self._publish_op(cop)
        return self._run_sharded(
            cop, COMPILED_OP, engine, groups, len(dst), shards, shard_rows,
            placement, op_ref=op_ref, op_inline=op_inline,
        )

    def _check_precharged(self, banks) -> None:
        # Fail before any worker mutates cells: the serial engine raises
        # on an un-precharged bank, and so must we.
        chip = self.device.chip
        for bank in banks:
            if chip.bank(bank).open_subarray is not None:
                raise DramProtocolError(
                    f"bank {bank} must be precharged before a bulk operation"
                )

    def _run_sharded(
        self,
        op,
        op_value: str,
        engine,
        groups,
        total_rows: int,
        shards: int,
        shard_rows: List[List],
        placement: Dict[int, Tuple[int, int]],
        op_ref: Optional[int] = None,
        op_inline: Optional[object] = None,
    ) -> BatchReport:
        """Common sharded tail: publish, submit (with crash retry), merge.

        ``op`` is a :class:`BulkOp` or a compiled op (anything with
        ``.value``); ``op_value`` is what rides the job -- the enum value
        for fixed ops, :data:`~repro.parallel.worker.COMPILED_OP` plus
        ``op_ref``/``op_inline`` for synthesized ones.
        """
        chip = self.device.chip
        tracer = chip.tracer
        self._batch_seq += 1
        batch_id = self._batch_seq

        resident = self._publish_rows(shard_rows)
        tracer_ref, tracer_inline, spool_dir_inline = (
            self._publish_tracer(tracer) if tracer is not None
            else (None, None, None)
        )

        start_ns = chip.clock_ns
        attempt = 0
        self._stalled_jobs = 0
        while True:
            try:
                pool = self._ensure_pool()
                self.block.clear_slots(shards)
                futures = [
                    pool.submit(
                        run_shard,
                        ShardJob(
                            op_value,
                            resident=resident,
                            rows=(
                                tuple(rows) if resident is None else None
                            ),
                            start_ns=start_ns,
                            batch_id=batch_id,
                            shard=shard,
                            tracer_resident=tracer_ref,
                            tracer=tracer_inline,
                            spool_dir=spool_dir_inline,
                            op_resident=op_ref,
                            op_inline=op_inline,
                        ),
                        batch_id=batch_id,
                    )
                    for shard, rows in enumerate(shard_rows)
                ]
                pool.results(
                    futures,
                    stall_timeout_s=self.stall_timeout_s,
                    on_stall=self._note_stall,
                )
                break
            except ConcurrencyError:
                # Bounded retry-with-backoff: a crashed batch left no
                # observable state (accounting, traces, and readbacks
                # all happen after success), so resubmitting the whole
                # batch -- under a fresh batch id, against a rebuilt
                # pool -- is deterministic and safe.
                self._faults["detected"].labels(kind="worker_crash").inc()
                if attempt >= self.crash_retries:
                    self._faults["unrecovered"].labels(
                        kind="worker_crash"
                    ).inc()
                    raise
                attempt += 1
                time.sleep(self.crash_backoff_s * (2 ** (attempt - 1)))
                self._batch_seq += 1
                batch_id = self._batch_seq
        if attempt:
            self._faults["recovered"].labels(kind="worker_crash").inc()
        if self._stalled_jobs:
            self._faults["recovered"].labels(kind="worker_stall").inc(
                self._stalled_jobs
            )
            self._stalled_jobs = 0
        # Zero-copy result read-back: every shard's counters, health
        # telemetry, and trace spool live in the accounting block; the
        # result pipe carried only shard indices.
        results = self._shard_results(shards, batch_id)
        pool.note_results(results, batch_id)

        if tracer is not None:
            self._merge_traces(
                op, tracer, engine, groups, placement, shard_rows,
                results, start_ns, batch_id,
            )

        # Deterministic merge: accounting in the parent, in the exact
        # bank-interleaved order of the single-process engine.
        self._account(op, engine, groups)
        fused = sum(result.fused_rows for result in results)
        return self._report(engine, groups, total_rows, fused, shards)

    # ------------------------------------------------------------------
    # Resident-plan publication
    # ------------------------------------------------------------------
    def _publish_rows(self, shard_rows: List[List]) -> Optional[int]:
        """Publish (or reuse) this batch shape's plan-board entry.

        The fingerprint is the nested row tuple itself -- independent of
        the operation, so e.g. an AND and an XOR over the same operand
        layout share one entry.  Returns ``None`` when the board is
        full; the batch then ships rows inline (correct, just slower),
        and the ``inline`` counter records the downgrade instead of
        failing silently.
        """
        key = tuple(tuple(rows) for rows in shard_rows)
        if key in self._resident:
            rid = self._resident[key]
            self._m_resident.labels(
                event="reused" if rid is not None else "inline"
            ).inc()
            return rid
        payload = pickle.dumps(key, protocol=pickle.HIGHEST_PROTOCOL)
        rid = self.block.publish(payload)
        self._resident[key] = rid
        self._m_resident.labels(
            event="published" if rid is not None else "inline"
        ).inc()
        return rid

    def _publish_op(self, cop) -> Tuple[Optional[int], Optional[object]]:
        """Publish (or reuse) a compiled op's plan-board entry.

        Compiled ops are frozen and hashable, so each distinct op's
        steps cross the pool once; warm batches reference the entry id.
        Returns ``(entry id, inline op)`` -- exactly one is non-``None``;
        a full board downgrades to pickling the op with every job
        (correct, just heavier), counted like any inline downgrade.
        """
        if cop in self._op_resident:
            rid = self._op_resident[cop]
            self._m_resident.labels(
                event="reused" if rid is not None else "inline"
            ).inc()
            return rid, (None if rid is not None else cop)
        payload = pickle.dumps(cop, protocol=pickle.HIGHEST_PROTOCOL)
        rid = self.block.publish(payload)
        self._op_resident[cop] = rid
        self._m_resident.labels(
            event="published" if rid is not None else "inline"
        ).inc()
        return rid, (None if rid is not None else cop)

    def _publish_tracer(self, tracer):
        """Publish the tracer config + spool dir; inline on a full board."""
        config = TracerConfig.from_tracer(tracer)
        spool_dir = self._ensure_spool_dir()
        payload = pickle.dumps(
            (config, spool_dir), protocol=pickle.HIGHEST_PROTOCOL
        )
        if payload in self._tracer_resident:
            return self._tracer_resident[payload], None, None
        rid = self.block.publish(payload)
        self._tracer_resident[payload] = rid
        if rid is None:
            return None, config, spool_dir
        return rid, None, None

    def _shard_results(self, shards: int, batch_id: int) -> List[ShardResult]:
        """Rebuild the batch's :class:`ShardResult` views from the block."""
        results = []
        for shard in range(shards):
            t = self.block.read_telemetry(shard)
            spool_path = (
                spool_file_path(self._ensure_spool_dir(), batch_id, shard)
                if t.spool_flags & SPOOL_IN_FILE
                else None
            )
            results.append(
                ShardResult(
                    rows=t.rows,
                    fused_rows=t.fused_rows,
                    fallback_rows=t.fallback_rows,
                    pid=t.pid,
                    busy_ns=t.busy_ns,
                    rss_bytes=t.rss_bytes,
                    heartbeat_ts=t.heartbeat_ts,
                    batches_served=t.batches_served,
                    spool_path=spool_path,
                    spool_len=t.spool_len,
                )
            )
        return results

    # ------------------------------------------------------------------
    def _merge_traces(
        self,
        op,
        tracer,
        engine,
        groups,
        placement: Dict[int, Tuple[int, int]],
        shard_rows: List[List],
        results: List[ShardResult],
        start_ns: float,
        batch_id: int,
    ) -> None:
        """Replay worker spools through the parent tracer, serially ordered.

        Rows re-emit in the exact order the single-process engine would
        have executed them (scheduler's bank-interleaved group order,
        rows in group order) with serially reconstructed clocks, so sink
        aggregations are bit-identical to a serial traced run; each
        event carries its worker's pid for per-worker Chrome lanes.
        Linking spans (one per shard, plus a parent batch span) share
        the batch id so the lanes can be correlated in the viewer.

        Spools normally arrive zero-copy through the accounting block;
        a spool that overflowed its slot is read from the fallback file
        instead (and the file discarded).
        """
        segments = []
        for shard, result in enumerate(results):
            if result.spool_len:
                events = events_from_bytes(self.block.read_spool(shard))
            elif result.spool_path is not None:
                events = read_spool(result.spool_path)
                discard_spool(result.spool_path)
            else:
                raise ConcurrencyError(
                    f"shard {shard} of traced batch {batch_id} returned "
                    f"no trace spool; worker-side tracing failed"
                )
            segments.append(segment_rows(events, len(shard_rows[shard])))

        clock = start_ns
        for issued in engine.scheduler.order(self._command_groups(groups)):
            for i in issued.payload.indices:
                shard, pos = placement[i]
                clock = replay_row(
                    tracer, segments[shard][pos], clock, results[shard].pid
                )

        for shard, result in enumerate(results):
            tracer.emit_foreign(
                TraceEvent(
                    kind=KIND_SPAN,
                    name="shard",
                    ts_ns=start_ns,
                    dur_ns=shard_busy_ns(segments[shard]),
                    attrs={
                        "batch": batch_id,
                        "shard": shard,
                        "rows": len(shard_rows[shard]),
                    },
                ),
                pid=result.pid,
            )
        tracer.span(
            "batch",
            start_ns,
            clock - start_ns,
            op=op.value,
            batch=batch_id,
            rows=sum(len(rows) for rows in shard_rows),
            shards=len(shard_rows),
        )

    # ------------------------------------------------------------------
    def _parallel_eligible(self) -> bool:
        # A tracer is no bar to sharding: traced jobs spool real events
        # worker-side and the parent merges them in canonical order.
        return self.max_workers >= 2 and not self._closed

    def _faulty_subarrays(self, dst: Sequence[RowLocation]) -> bool:
        # Worker processes cannot see the parent's injected fault state
        # (stuck dictionaries, DCC faults, armed TRA hooks, or rerouted
        # negations -- none live in the shared segment), so any of it in
        # a target subarray forces the in-process path.
        chip = self.device.chip
        dcc_route = self.device.controller.dcc_route
        return any(
            chip.bank(bank).subarray(sub).has_faults
            or dcc_route.get((bank, sub), 0)
            for bank, sub in dict.fromkeys((d.bank, d.subarray) for d in dst)
        )

    def _note_stall(self, pending: int) -> None:
        # Called by WorkerPool.results when shards exceed the stall
        # timeout; results keeps blocking afterwards, and the batch loop
        # counts the recovery once the stragglers actually answer.
        self._stalled_jobs += pending
        self._faults["detected"].labels(kind="worker_stall").inc(pending)

    def _command_groups(self, groups) -> List[CommandGroup]:
        return [
            CommandGroup(bank=g.bank, duration_ns=g.duration_ns, payload=g)
            for g in groups
        ]

    def _account(self, op, engine, groups) -> None:
        for issued in engine.scheduler.order(self._command_groups(groups)):
            engine.account_group(op, issued.payload)

    def _report(self, engine, groups, rows, fused, shards) -> BatchReport:
        return BatchReport(
            rows=rows,
            fused_rows=fused,
            fallback_rows=rows - fused,
            parallelism=engine.scheduler.report(self._command_groups(groups)),
            shards=shards,
        )
