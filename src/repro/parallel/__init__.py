"""Multi-process sharded simulation (the ``repro.parallel`` package).

Ambit's headline property is bank-level parallelism; this package makes
the *simulator* parallel too:

* :class:`~repro.parallel.shm.SharedRowStore` -- every subarray's cell
  arrays in one ``multiprocessing.shared_memory`` segment (zero-copy
  across processes);
* :class:`~repro.parallel.device.ShardedDevice` -- an
  ``AmbitDevice``-compatible facade that shards bulk operations by bank
  across a persistent :class:`~repro.parallel.pool.WorkerPool` and
  merges counters/clock/energy deterministically;
* :func:`~repro.parallel.pmap.parallel_map` +
  :func:`~repro.parallel.pmap.spawn_rngs` -- the deterministic
  experiment harness (Monte Carlo trials, figure sweeps);
* :func:`~repro.parallel.bench.run_parallel_bench` -- the wall-clock
  benchmark behind ``repro bench`` and ``BENCH_parallel.json``.

See ``docs/SCALING.md`` for the shard model, worker lifecycle, and
determinism guarantees.
"""

from repro.parallel.accounting import SharedAccountingBlock
from repro.parallel.device import ShardedDevice
from repro.parallel.pmap import default_jobs, parallel_map, spawn_rngs, spawn_seeds
from repro.parallel.pool import PoolIOStats, WorkerPool
from repro.parallel.shm import SharedRowStore
from repro.parallel.tuner import AutoTuner, CostModel, DispatchTier

__all__ = [
    "AutoTuner",
    "CostModel",
    "DispatchTier",
    "PoolIOStats",
    "ShardedDevice",
    "SharedAccountingBlock",
    "SharedRowStore",
    "WorkerPool",
    "default_jobs",
    "parallel_map",
    "spawn_rngs",
    "spawn_seeds",
]
