"""Shared-memory backing for the chip's cell arrays.

The functional state of a :class:`~repro.dram.chip.DramChip` is two
numpy arrays per subarray: the packed ``uint64`` cell contents and the
``float64`` per-row restore timestamps.  :class:`SharedRowStore` places
*all* of them in one ``multiprocessing.shared_memory`` segment, laid out
as::

    cells   : uint64 [banks, subarrays, storage_rows, words_per_row]
    restore : float64[banks, subarrays, storage_rows]

Each :class:`~repro.dram.subarray.Subarray` is then constructed over a
*view* into the segment, so a worker process that attaches to the same
segment by name shares the parent's address space with zero copies:
``peek_batch``/``poke_batch`` gathers and scatters land straight in the
shared buffer, and the only data that crosses the process boundary is
the (tiny) description of which rows to operate on.

Shard safety comes from *partitioning*, not locking: the
:class:`~repro.parallel.device.ShardedDevice` hands each worker a
disjoint set of banks, so no two processes ever write the same
(bank, subarray) slice concurrently.

Lifecycle
---------
The creating process **owns** the segment: :meth:`release` (called by
:meth:`AmbitDevice.close() <repro.core.device.AmbitDevice.close>`)
closes *and unlinks* it, and a GC/interpreter-exit finalizer does the
same if the owner forgets.  Attached (worker-side) stores only detach.
The finalizer is pid-guarded so a forked worker exiting cannot unlink a
segment it merely inherited.  Workers share the owner's
``resource_tracker`` (fork and spawn both hand its fd down), so
attach-side tracking is a harmless idempotent set-add that the owner's
single unlink balances.

:func:`live_segment_names` / :func:`system_segments` power the test
suite's leak-check fixture: after every test, no segment created by this
process may remain.
"""

from __future__ import annotations

import os
import secrets
import weakref
from multiprocessing import shared_memory
from typing import Dict, List, Set, Tuple

import numpy as np

from repro.dram.geometry import DramGeometry
from repro.errors import ConfigError

#: Segment-name prefix; includes the creating pid so concurrent test
#: runs (and the leak checker) never collide with another process.
NAME_PREFIX = f"ambit-shm-{os.getpid()}"

#: Names of segments created *and not yet unlinked* by this process.
_LIVE: Set[str] = set()


def _layout(geometry: DramGeometry) -> Tuple[Tuple[int, ...], Tuple[int, ...], int, int]:
    """(cells shape, restore shape, restore byte offset, total bytes)."""
    sub = geometry.subarray
    cells_shape = (
        geometry.banks,
        geometry.subarrays_per_bank,
        sub.storage_rows,
        sub.words_per_row,
    )
    restore_shape = cells_shape[:3]
    cells_bytes = int(np.prod(cells_shape)) * 8
    restore_bytes = int(np.prod(restore_shape)) * 8
    return cells_shape, restore_shape, cells_bytes, cells_bytes + restore_bytes


def _cleanup(segment: shared_memory.SharedMemory, name: str, owner: bool, pid: int) -> None:
    """Unlink (owner) and detach a segment.

    Runs from :meth:`SharedRowStore.release`, GC, or interpreter exit.
    The pid guard matters with the ``fork`` start method: a worker that
    inherited the owner's store object must not unlink the real segment
    when *its* interpreter exits.  Unlink happens *first* -- POSIX keeps
    the memory alive until the last mapping dies, so the ``/dev/shm``
    entry disappears immediately even if live numpy views (which make
    ``close()`` raise :class:`BufferError`) pin the mapping for a while.
    """
    if owner and os.getpid() == pid:
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        _LIVE.discard(name)
    try:
        segment.close()
    except (OSError, BufferError):
        # Subarray views may still reference the buffer; the mapping is
        # reclaimed when they are garbage collected.
        pass




class SharedRowStore:
    """All cell state of one device geometry in one shared segment.

    Build with :meth:`create` (owner) or :meth:`attach` (worker); use as
    the ``row_store`` argument of :class:`~repro.core.device.AmbitDevice`.
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        geometry: DramGeometry,
        owner: bool,
    ):
        cells_shape, restore_shape, restore_offset, nbytes = _layout(geometry)
        if segment.size < nbytes:
            raise ConfigError(
                f"segment {segment.name!r} holds {segment.size} bytes; "
                f"geometry needs {nbytes}"
            )
        self.geometry = geometry
        self.owner = owner
        self._segment = segment
        self._cells = np.ndarray(
            cells_shape, dtype=np.uint64, buffer=segment.buf
        )
        self._restore = np.ndarray(
            restore_shape, dtype=np.float64, buffer=segment.buf,
            offset=restore_offset,
        )
        self._finalizer = weakref.finalize(
            self, _cleanup, segment, segment.name, owner, os.getpid()
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, geometry: DramGeometry) -> "SharedRowStore":
        """Allocate a zero-filled segment sized for ``geometry``."""
        *_, nbytes = _layout(geometry)
        name = f"{NAME_PREFIX}-{secrets.token_hex(4)}"
        segment = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        _LIVE.add(name)
        return cls(segment, geometry, owner=True)

    @classmethod
    def attach(cls, name: str, geometry: DramGeometry) -> "SharedRowStore":
        """Map an existing segment (worker side; never unlinks).

        Pre-3.13 CPython registers attachments with the resource
        tracker too; because every worker inherits the *owner's*
        tracker (fork and spawn both pass its fd down), the
        registration is an idempotent set-add there and the owner's
        single ``unlink`` balances it -- no per-attach unregister is
        needed, and attempting one would double-remove the name.
        """
        segment = shared_memory.SharedMemory(name=name)
        return cls(segment, geometry, owner=False)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The segment name workers attach by."""
        return self._segment.name

    def cells(self, bank: int, subarray: int) -> np.ndarray:
        """The ``(storage_rows, words_per_row)`` uint64 view of one subarray."""
        return self._cells[bank, subarray]

    def restore(self, bank: int, subarray: int) -> np.ndarray:
        """The ``(storage_rows,)`` float64 restore-timestamp view."""
        return self._restore[bank, subarray]

    @property
    def nbytes(self) -> int:
        return self._segment.size

    @property
    def live(self) -> bool:
        """True while the mapping is still attached."""
        return self._finalizer.alive

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def release(self) -> None:
        """Detach; the owning process also unlinks.  Idempotent."""
        # Views into the buffer must be dropped before close() or CPython
        # raises BufferError on the exported memoryview.
        self._cells = None  # type: ignore[assignment]
        self._restore = None  # type: ignore[assignment]
        self._finalizer()

    close = release

    def __enter__(self) -> "SharedRowStore":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


# ----------------------------------------------------------------------
# Leak checking
# ----------------------------------------------------------------------
def live_segment_names() -> Set[str]:
    """Names of segments this process created and has not unlinked."""
    return set(_LIVE)


def system_segments() -> List[str]:
    """Segments of this process still present under ``/dev/shm``."""
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
        return []
    return sorted(
        entry for entry in os.listdir(shm_dir)
        if entry.startswith(NAME_PREFIX)
    )
