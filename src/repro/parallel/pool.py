"""Persistent worker pool with in-flight tracking.

A thin wrapper over :class:`concurrent.futures.ProcessPoolExecutor`
that (a) builds every worker's shared-memory device via
:func:`repro.parallel.worker.initialize_worker`, (b) tracks in-flight
futures so the quiesce-then-reset protocol can be enforced, and
(c) converts a dead worker into a :class:`~repro.errors.ConcurrencyError`
instead of the executor's opaque ``BrokenProcessPool``.

Start method: ``fork`` where the platform offers it (workers attach to
the segment by name either way, but fork skips the per-worker import
cost), overridable with the ``REPRO_MP_START`` environment variable or
the ``start_method`` argument.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Set

from repro.errors import ConcurrencyError
from repro.parallel.worker import WorkerConfig, initialize_worker


def default_start_method() -> str:
    """``REPRO_MP_START`` override, else fork where available."""
    override = os.environ.get("REPRO_MP_START")
    if override:
        return override
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


class WorkerPool:
    """A persistent pool of shard workers over one shared row store."""

    def __init__(
        self,
        config: WorkerConfig,
        max_workers: int,
        start_method: Optional[str] = None,
    ):
        if max_workers < 1:
            raise ConcurrencyError(f"max_workers must be >= 1; got {max_workers}")
        self.max_workers = max_workers
        self.broken = False
        self._lock = threading.Lock()
        self._inflight: Set[Future] = set()
        self._executor = ProcessPoolExecutor(
            max_workers=max_workers,
            mp_context=multiprocessing.get_context(
                start_method or default_start_method()
            ),
            initializer=initialize_worker,
            initargs=(config,),
        )

    # ------------------------------------------------------------------
    def submit(self, fn: Callable, *args) -> Future:
        """Submit a job; the future is tracked until it completes."""
        if self.broken:
            raise ConcurrencyError(
                "worker pool is broken (a worker process died); shut it "
                "down and build a fresh pool"
            )
        future = self._executor.submit(fn, *args)
        with self._lock:
            self._inflight.add(future)
        future.add_done_callback(self._discard)
        return future

    def _discard(self, future: Future) -> None:
        with self._lock:
            self._inflight.discard(future)

    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        """Jobs submitted but not yet completed."""
        with self._lock:
            return len(self._inflight)

    def quiesce(self) -> None:
        """Block until every in-flight job has completed."""
        while True:
            with self._lock:
                pending = list(self._inflight)
            if not pending:
                return
            wait(pending)

    def results(self, futures: List[Future]) -> List[object]:
        """Collect results, translating a dead worker into a clear error."""
        try:
            return [future.result() for future in futures]
        except BrokenProcessPool as exc:
            self.broken = True
            raise ConcurrencyError(
                "a worker process died mid-batch; the shared row store "
                "may hold partial results -- reset or rebuild the device "
                "before trusting cell contents"
            ) from exc

    def shutdown(self) -> None:
        """Stop the workers (idempotent; tolerates a broken pool)."""
        self._executor.shutdown(wait=True, cancel_futures=True)
