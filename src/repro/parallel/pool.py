"""Persistent worker pool with in-flight tracking and health telemetry.

A thin wrapper over :class:`concurrent.futures.ProcessPoolExecutor`
that (a) builds every worker's shared-memory device via
:func:`repro.parallel.worker.initialize_worker`, (b) tracks in-flight
futures (and which batch each belongs to) so the quiesce-then-reset
protocol can be enforced and crashes can name the batch they killed,
(c) converts a dead worker into a :class:`~repro.errors.ConcurrencyError`
carrying the worker's pid, exit code, and in-flight batch id instead of
the executor's opaque ``BrokenProcessPool``, and (d) **stages**
per-worker telemetry (read zero-copy from the shared accounting block)
for folding into the device's metrics registry at *quiesce time* --
``ambit_worker_*`` families update when :meth:`fold_telemetry` runs,
not per batch, keeping the batch hot path free of metric traffic.

Dispatch accounting: every submission and result is measured
(:class:`PoolIOStats` -- call counts plus pickled byte sizes), which is
what the dispatch-budget test suite asserts against: per-batch worker
messages must stay O(1) and must not regrow row or plan payloads.

Start method: ``fork`` where the platform offers it (workers attach to
the segment by name either way, but fork skips the per-worker import
cost), overridable with the ``REPRO_MP_START`` environment variable or
the ``start_method`` argument.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConcurrencyError
from repro.parallel.worker import ShardResult, WorkerConfig, initialize_worker


def default_start_method() -> str:
    """``REPRO_MP_START`` override, else fork where available."""
    override = os.environ.get("REPRO_MP_START")
    if override:
        return override
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


@dataclass
class PoolIOStats:
    """Bytes and calls crossing the pool's process boundary.

    ``submitted_bytes`` / ``received_bytes`` measure the pickled size of
    each job's arguments and each result -- the same serialisation the
    executor performs -- so a regression that starts shipping row lists
    or plan objects again is directly visible as a byte-count jump.
    """

    submitted_jobs: int = 0
    submitted_bytes: int = 0
    received_results: int = 0
    received_bytes: int = 0
    #: Running description of the largest single submission.
    max_submission_bytes: int = 0

    def snapshot(self) -> "PoolIOStats":
        """An immutable copy of the counters as of this call."""
        return PoolIOStats(
            self.submitted_jobs,
            self.submitted_bytes,
            self.received_results,
            self.received_bytes,
            self.max_submission_bytes,
        )

    def delta(self, since: "PoolIOStats") -> "PoolIOStats":
        """The traffic between ``since`` (an earlier snapshot) and now."""
        return PoolIOStats(
            self.submitted_jobs - since.submitted_jobs,
            self.submitted_bytes - since.submitted_bytes,
            self.received_results - since.received_results,
            self.received_bytes - since.received_bytes,
            max(self.max_submission_bytes, since.max_submission_bytes),
        )


class WorkerPool:
    """A persistent pool of shard workers over one shared row store."""

    def __init__(
        self,
        config: WorkerConfig,
        max_workers: int,
        start_method: Optional[str] = None,
        metrics: Optional[object] = None,
    ):
        if max_workers < 1:
            raise ConcurrencyError(f"max_workers must be >= 1; got {max_workers}")
        self.max_workers = max_workers
        self.broken = False
        #: ``(pid, exit_code, batch_ids)`` context of the last crash, for
        #: post-mortem inspection after the :class:`ConcurrencyError`.
        self.crash_info: Optional[Tuple[List[Tuple[int, int]], List[int]]] = None
        #: Dispatch traffic accounting (see :class:`PoolIOStats`).
        self.io = PoolIOStats()
        self._lock = threading.Lock()
        self._inflight: Dict[Future, Optional[int]] = {}
        self._procs: Dict[int, object] = {}
        #: Telemetry staged for quiesce-time folding: (result, batch_id).
        self._staged: List[Tuple[ShardResult, Optional[int]]] = []
        self._m_batches = self._m_busy = self._m_rss = None
        self._m_beat = self._m_last = self._m_crashes = None
        if metrics is not None:
            self._m_batches = metrics.counter(
                "ambit_worker_batches_total",
                "Shard jobs served, per worker process",
                labels=("pid",),
            )
            self._m_busy = metrics.counter(
                "ambit_worker_busy_ns_total",
                "Wall-clock nanoseconds spent executing shard jobs, "
                "per worker process",
                labels=("pid",),
            )
            self._m_rss = metrics.gauge(
                "ambit_worker_rss_bytes",
                "Peak resident set size, per worker process",
                labels=("pid",),
            )
            self._m_beat = metrics.gauge(
                "ambit_worker_heartbeat_ts",
                "Unix time of the worker's last completed shard job",
                labels=("pid",),
            )
            self._m_last = metrics.gauge(
                "ambit_worker_last_batch",
                "Batch id of the worker's last completed shard job",
                labels=("pid",),
            )
            self._m_crashes = metrics.counter(
                "ambit_worker_crashes_total",
                "Worker processes that died mid-batch",
            )
        self._executor = ProcessPoolExecutor(
            max_workers=max_workers,
            mp_context=multiprocessing.get_context(
                start_method or default_start_method()
            ),
            initializer=initialize_worker,
            initargs=(config,),
        )

    # ------------------------------------------------------------------
    def submit(
        self, fn: Callable, *args, batch_id: Optional[int] = None
    ) -> Future:
        """Submit a job; the future is tracked until it completes."""
        if self.broken:
            raise ConcurrencyError(
                "worker pool is broken (a worker process died); shut it "
                "down and build a fresh pool"
            )
        # Measure what the executor is about to serialise: the dispatch
        # budget the perf-invariant tests gate on.
        payload = len(pickle.dumps(args, protocol=pickle.HIGHEST_PROTOCOL))
        try:
            future = self._executor.submit(fn, *args)
        except BrokenProcessPool as exc:
            # A worker died between batches (e.g. an injected crash job);
            # flag the pool so callers rebuild it, under the same error
            # type the results path uses.
            self.broken = True
            dead = self._dead_workers()
            self.crash_info = (dead, [])
            if self._m_crashes is not None:
                self._m_crashes.inc(max(1, len(dead)))
            raise ConcurrencyError(
                f"worker pool broke before submission "
                f"({self._describe_crash(dead, [])})"
            ) from exc
        with self._lock:
            self.io.submitted_jobs += 1
            self.io.submitted_bytes += payload
            if payload > self.io.max_submission_bytes:
                self.io.max_submission_bytes = payload
            self._inflight[future] = batch_id
            # Keep our own references to the worker Process objects:
            # the executor drops its dict entries while tearing down a
            # broken pool, but a held handle still reports the cached
            # exit code for the crash report.
            self._procs.update(
                getattr(self._executor, "_processes", None) or {}
            )
        future.add_done_callback(self._discard)
        return future

    def _discard(self, future: Future) -> None:
        with self._lock:
            self._inflight.pop(future, None)

    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        """Jobs submitted but not yet completed."""
        with self._lock:
            return len(self._inflight)

    def quiesce(self) -> None:
        """Block until every in-flight job completed, then fold telemetry."""
        while True:
            with self._lock:
                pending = list(self._inflight)
            if not pending:
                break
            wait(pending)
        self.fold_telemetry()

    def results(
        self,
        futures: List[Future],
        stall_timeout_s: Optional[float] = None,
        on_stall: Optional[Callable[[int], None]] = None,
    ) -> List[object]:
        """Collect results, translating a dead worker into a clear error.

        On a crash the raised :class:`~repro.errors.ConcurrencyError`
        names the dead worker's pid and exit code and the batch id(s)
        that were in flight -- the context a post-mortem needs before
        deciding whether the shared row store can still be trusted.

        ``stall_timeout_s`` arms slow-worker detection: if any future is
        still pending after that many seconds, ``on_stall`` is called
        once with the number of stalled jobs, then collection continues
        to block (a stalled worker that eventually answers is recovered,
        not failed).
        """
        if stall_timeout_s is not None:
            done, pending = wait(futures, timeout=stall_timeout_s)
            if pending and on_stall is not None:
                on_stall(len(pending))
        with self._lock:
            batch_ids = sorted(
                {
                    self._inflight[f]
                    for f in futures
                    if f in self._inflight and self._inflight[f] is not None
                }
            )
        try:
            results = [future.result() for future in futures]
        except BrokenProcessPool as exc:
            self.broken = True
            dead = self._dead_workers()
            self.crash_info = (dead, batch_ids)
            if self._m_crashes is not None:
                self._m_crashes.inc(max(1, len(dead)))
            raise ConcurrencyError(
                f"a worker process died mid-batch "
                f"({self._describe_crash(dead, batch_ids)}); the shared "
                f"row store may hold partial results -- reset or rebuild "
                f"the device before trusting cell contents"
            ) from exc
        with self._lock:
            self.io.received_results += len(results)
            self.io.received_bytes += sum(
                len(pickle.dumps(r, protocol=pickle.HIGHEST_PROTOCOL))
                for r in results
            )
        return results

    def _dead_workers(self, timeout_s: float = 2.0) -> List[Tuple[int, int]]:
        """``(pid, exit_code)`` of workers that died abnormally.

        Polls briefly: right after a crash the dying process may not be
        reaped yet (``exitcode`` still ``None``), and the executor is
        concurrently tearing its siblings down.
        """
        with self._lock:
            self._procs.update(
                getattr(self._executor, "_processes", None) or {}
            )
            processes = dict(self._procs)
        deadline = time.monotonic() + timeout_s
        while True:
            dead = []
            pending = False
            for pid, process in processes.items():
                code = process.exitcode
                if code is None:
                    pending = True
                elif code != 0:
                    dead.append((pid, code))
            if dead or not pending or time.monotonic() >= deadline:
                return sorted(dead)
            time.sleep(0.01)

    @staticmethod
    def _describe_crash(
        dead: List[Tuple[int, int]], batch_ids: List[int]
    ) -> str:
        if dead:
            workers = ", ".join(
                f"worker pid={pid} exit code={code}" for pid, code in dead
            )
        else:  # pragma: no cover - executor reaped the process already
            workers = "worker pid unknown"
        batches = (
            ", ".join(f"batch id={b}" for b in batch_ids)
            if batch_ids
            else "batch id unknown"
        )
        return f"{workers}; in flight: {batches}"

    # ------------------------------------------------------------------
    # Telemetry (staged per batch, folded at quiesce time)
    # ------------------------------------------------------------------
    def note_result(
        self, result: ShardResult, batch_id: Optional[int] = None
    ) -> None:
        """Stage one shard's telemetry for the next fold."""
        if result.pid == 0:
            return
        with self._lock:
            self._staged.append((result, batch_id))

    def note_results(
        self, results: List[ShardResult], batch_id: Optional[int] = None
    ) -> None:
        """Stage a whole batch's telemetry for the next fold."""
        for result in results:
            if isinstance(result, ShardResult):
                self.note_result(result, batch_id)

    def fold_telemetry(self) -> int:
        """Fold all staged telemetry into the worker metric families.

        Runs at quiesce time (and whenever the device's statistics are
        observed), never per batch -- the accounting the shared block
        made zero-copy stays off the dispatch hot path.  Returns the
        number of shard records folded.
        """
        with self._lock:
            staged, self._staged = self._staged, []
        if self._m_batches is None:
            return len(staged)
        for result, batch_id in staged:
            pid = str(result.pid)
            self._m_batches.labels(pid=pid).inc()
            self._m_busy.labels(pid=pid).inc(result.busy_ns)
            self._m_rss.labels(pid=pid).set(result.rss_bytes)
            self._m_beat.labels(pid=pid).set(result.heartbeat_ts)
            if batch_id is not None:
                self._m_last.labels(pid=pid).set(batch_id)
        return len(staged)

    def drop_staged_telemetry(self) -> None:
        """Discard staged telemetry (reset-epoch semantics).

        ``reset_stats`` zeroes the registry; telemetry staged before the
        reset belongs to the zeroed epoch, so folding it afterwards
        would leak pre-reset counts into the fresh one.
        """
        with self._lock:
            self._staged = []

    @property
    def staged_telemetry(self) -> int:
        """Shard records staged and not yet folded."""
        with self._lock:
            return len(self._staged)

    def shutdown(self) -> None:
        """Stop the workers (idempotent; tolerates a broken pool)."""
        self._executor.shutdown(wait=True, cancel_futures=True)
