"""Zero-copy accounting: the shared control block of the sharded device.

:class:`SharedAccountingBlock` is the *control-plane* sibling of
:class:`~repro.parallel.shm.SharedRowStore` (which carries the cells,
the data plane).  One ``multiprocessing.shared_memory`` segment holds
three fixed-layout regions::

    header     : int64[8]   magic, version, slots, spool capacity,
                            board slots, board capacity, board count,
                            board cursor
    telemetry  : per shard slot --
                 int64[8]   pid, rows, fused, fallback, rss,
                            batches served, spool length, spool flags
                 float64[4] busy ns, heartbeat ts, (reserved x2)
    spools     : per shard slot, ``spool_capacity`` raw bytes of
                 JSON-lines trace events (traced jobs only)
    plan board : directory int64[2 x board_slots] of (offset, length)
                 plus ``board_capacity`` bytes of parent-published
                 payloads (pickled shard row-lists / tracer configs)

Why this exists: before it, every shard job round-trip pickled an
O(rows) row list out to the worker and a :class:`ShardResult` object
back, per batch.  With the block in place the parent *publishes* a
batch's row description once (:meth:`publish`), workers fetch and
memoise it by entry id, write their result counters and trace spools
straight into their slot, and the per-batch message shrinks to a
handful of integers -- the dispatch-budget property the test suite
pins (``tests/parallel/test_dispatch_budget.py``).

Concurrency contract (no locks needed):

* Only the **parent** publishes board entries, and only *before*
  submitting a job that names the new entry id -- the executor's job
  pipe provides the happens-before edge, so a worker never reads a
  half-written entry.
* Telemetry/spool slots are indexed by **shard index**, shards of one
  batch are distinct, and the parent runs one batch at a time, so no
  two writers ever share a slot.
* The parent reads slots only after the batch's futures resolved.

Lifecycle mirrors :class:`~repro.parallel.shm.SharedRowStore`: the
creating process owns (and unlinks) the segment, workers only attach,
and the test suite's leak-check fixture sees these segments through the
same registry.
"""

from __future__ import annotations

import os
import secrets
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Optional

import numpy as np

from repro.errors import ConcurrencyError, ConfigError
from repro.parallel.shm import NAME_PREFIX, _LIVE, _cleanup

_MAGIC = 0x414D4249_54414343  # "AMBITACC"
_VERSION = 1

#: int64 telemetry fields per slot, in order.
F_PID, F_ROWS, F_FUSED, F_FALLBACK, F_RSS, F_BATCHES, F_SPOOL_LEN, F_SPOOL_FLAGS = range(8)
#: float64 telemetry fields per slot, in order.
F_BUSY_NS, F_HEARTBEAT = 0, 1

_TELEM_INTS = 8
_TELEM_FLOATS = 4

#: ``spool flags`` bit: the spool overflowed the shared region and went
#: to a file instead (the parent reconstructs the path).
SPOOL_IN_FILE = 1

#: Defaults, overridable per device and via environment.
DEFAULT_SPOOL_CAPACITY = 512 * 1024
DEFAULT_BOARD_SLOTS = 512
DEFAULT_BOARD_CAPACITY = 4 * 1024 * 1024


@dataclass(frozen=True)
class ShardTelemetry:
    """Parent-side view of one shard slot after a batch completed."""

    shard: int
    pid: int
    rows: int
    fused_rows: int
    fallback_rows: int
    rss_bytes: int
    batches_served: int
    busy_ns: int
    heartbeat_ts: float
    #: Bytes of trace spool in the shared region (0 = none).
    spool_len: int
    #: ``SPOOL_IN_FILE`` when the spool overflowed to a file.
    spool_flags: int


def _region_sizes(
    slots: int, spool_capacity: int, board_slots: int, board_capacity: int
):
    header = 8 * 8
    telem = slots * (_TELEM_INTS * 8 + _TELEM_FLOATS * 8)
    spools = slots * spool_capacity
    directory = board_slots * 2 * 8
    return header, telem, spools, directory, board_capacity


class SharedAccountingBlock:
    """Fixed-layout shared accounting for one :class:`ShardedDevice`."""

    def __init__(self, segment: shared_memory.SharedMemory, owner: bool):
        self._segment = segment
        self.owner = owner
        header = np.ndarray(8, dtype=np.int64, buffer=segment.buf)
        if int(header[0]) != _MAGIC:
            raise ConfigError(
                f"segment {segment.name!r} is not an accounting block"
            )
        self.slots = int(header[2])
        self.spool_capacity = int(header[3])
        self.board_slots = int(header[4])
        self.board_capacity = int(header[5])
        h, t, s, d, b = _region_sizes(
            self.slots, self.spool_capacity,
            self.board_slots, self.board_capacity,
        )
        if segment.size < h + t + s + d + b:
            raise ConfigError(
                f"segment {segment.name!r} holds {segment.size} bytes; "
                f"its own header implies {h + t + s + d + b}"
            )
        self._header = header
        self._telem_i = np.ndarray(
            (self.slots, _TELEM_INTS), dtype=np.int64,
            buffer=segment.buf, offset=h,
        )
        self._telem_f = np.ndarray(
            (self.slots, _TELEM_FLOATS), dtype=np.float64,
            buffer=segment.buf, offset=h + self.slots * _TELEM_INTS * 8,
        )
        self._spool_base = h + t
        self._spools = np.ndarray(
            (self.slots, self.spool_capacity), dtype=np.uint8,
            buffer=segment.buf, offset=self._spool_base,
        )
        self._directory = np.ndarray(
            (self.board_slots, 2), dtype=np.int64,
            buffer=segment.buf, offset=h + t + s,
        )
        self._board = np.ndarray(
            b, dtype=np.uint8, buffer=segment.buf, offset=h + t + s + d
        )
        self._finalizer = weakref.finalize(
            self, _cleanup, segment, segment.name, owner, os.getpid()
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        slots: int,
        spool_capacity: int = DEFAULT_SPOOL_CAPACITY,
        board_slots: int = DEFAULT_BOARD_SLOTS,
        board_capacity: int = DEFAULT_BOARD_CAPACITY,
    ) -> "SharedAccountingBlock":
        """Allocate and initialise a block for ``slots`` shard workers."""
        if slots < 1:
            raise ConfigError(f"accounting block needs >= 1 slot; got {slots}")
        sizes = _region_sizes(slots, spool_capacity, board_slots, board_capacity)
        name = f"{NAME_PREFIX}-acct-{secrets.token_hex(4)}"
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=sum(sizes)
        )
        header = np.ndarray(8, dtype=np.int64, buffer=segment.buf)
        header[:] = (
            _MAGIC, _VERSION, slots, spool_capacity,
            board_slots, board_capacity, 0, 0,
        )
        _LIVE.add(name)
        return cls(segment, owner=True)

    @classmethod
    def attach(cls, name: str) -> "SharedAccountingBlock":
        """Map an existing block by name (worker side; never unlinks)."""
        return cls(shared_memory.SharedMemory(name=name), owner=False)

    @property
    def name(self) -> str:
        return self._segment.name

    @property
    def nbytes(self) -> int:
        return self._segment.size

    # ------------------------------------------------------------------
    # Telemetry slots
    # ------------------------------------------------------------------
    def clear_slots(self, shards: int) -> None:
        """Zero the first ``shards`` slots before a batch dispatch."""
        self._telem_i[:shards] = 0
        self._telem_f[:shards] = 0.0

    def write_telemetry(
        self,
        shard: int,
        *,
        pid: int,
        rows: int,
        fused_rows: int,
        rss_bytes: int,
        batches_served: int,
        busy_ns: int,
        heartbeat_ts: float,
    ) -> None:
        """Worker side: record one completed shard job in its slot."""
        ints = self._telem_i[shard]
        ints[F_PID] = pid
        ints[F_ROWS] = rows
        ints[F_FUSED] = fused_rows
        ints[F_FALLBACK] = rows - fused_rows
        ints[F_RSS] = rss_bytes
        ints[F_BATCHES] = batches_served
        floats = self._telem_f[shard]
        floats[F_BUSY_NS] = busy_ns
        floats[F_HEARTBEAT] = heartbeat_ts

    def read_telemetry(self, shard: int) -> ShardTelemetry:
        """Parent side: one slot's record, after the batch resolved."""
        ints = self._telem_i[shard]
        floats = self._telem_f[shard]
        return ShardTelemetry(
            shard=shard,
            pid=int(ints[F_PID]),
            rows=int(ints[F_ROWS]),
            fused_rows=int(ints[F_FUSED]),
            fallback_rows=int(ints[F_FALLBACK]),
            rss_bytes=int(ints[F_RSS]),
            batches_served=int(ints[F_BATCHES]),
            busy_ns=int(floats[F_BUSY_NS]),
            heartbeat_ts=float(floats[F_HEARTBEAT]),
            spool_len=int(ints[F_SPOOL_LEN]),
            spool_flags=int(ints[F_SPOOL_FLAGS]),
        )

    # ------------------------------------------------------------------
    # Trace spools
    # ------------------------------------------------------------------
    def write_spool(self, shard: int, data: bytes) -> bool:
        """Worker side: place a trace spool in the shared region.

        Returns False (leaving the slot marked ``SPOOL_IN_FILE``) when
        ``data`` exceeds the per-slot capacity; the caller then falls
        back to a spool file.
        """
        if len(data) > self.spool_capacity:
            self._telem_i[shard, F_SPOOL_LEN] = 0
            self._telem_i[shard, F_SPOOL_FLAGS] = SPOOL_IN_FILE
            return False
        self._spools[shard, : len(data)] = np.frombuffer(data, dtype=np.uint8)
        self._telem_i[shard, F_SPOOL_LEN] = len(data)
        self._telem_i[shard, F_SPOOL_FLAGS] = 0
        return True

    def read_spool(self, shard: int) -> bytes:
        """Parent side: the spool bytes a worker left in its slot."""
        length = int(self._telem_i[shard, F_SPOOL_LEN])
        return bytes(self._spools[shard, :length])

    # ------------------------------------------------------------------
    # Plan board
    # ------------------------------------------------------------------
    @property
    def board_entries(self) -> int:
        """Entries published so far (also the next entry id)."""
        return int(self._header[6])

    @property
    def board_used(self) -> int:
        """Bytes of the board data region consumed."""
        return int(self._header[7])

    def publish(self, payload: bytes) -> Optional[int]:
        """Parent side: append a payload; returns its entry id.

        Returns ``None`` when the directory or data region is full --
        the caller must then fall back to inline shipment (correct,
        just slower).  Entries are immutable and never evicted: an id,
        once handed to a worker, stays valid for the device's lifetime.
        """
        count = int(self._header[6])
        cursor = int(self._header[7])
        if count >= self.board_slots:
            return None
        if cursor + len(payload) > self.board_capacity:
            return None
        self._board[cursor : cursor + len(payload)] = np.frombuffer(
            payload, dtype=np.uint8
        )
        self._directory[count] = (cursor, len(payload))
        # Publish order matters: the entry becomes addressable only once
        # the counters advance, and jobs naming the id are submitted
        # strictly after this method returns.
        self._header[7] = cursor + len(payload)
        self._header[6] = count + 1
        return count

    def fetch(self, entry_id: int) -> bytes:
        """Worker side: the payload bytes of one published entry."""
        if not 0 <= entry_id < int(self._header[6]):
            raise ConcurrencyError(
                f"plan-board entry {entry_id} is not published "
                f"({self.board_entries} entries exist); the dispatch "
                f"protocol shipped an id before its payload"
            )
        offset, length = (int(v) for v in self._directory[entry_id])
        return bytes(self._board[offset : offset + length])

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def release(self) -> None:
        """Detach; the owning process also unlinks.  Idempotent."""
        self._header = None  # type: ignore[assignment]
        self._telem_i = None  # type: ignore[assignment]
        self._telem_f = None  # type: ignore[assignment]
        self._spools = None  # type: ignore[assignment]
        self._directory = None  # type: ignore[assignment]
        self._board = None  # type: ignore[assignment]
        self._finalizer()

    close = release

    def __enter__(self) -> "SharedAccountingBlock":
        return self

    def __exit__(self, *exc) -> None:
        self.release()
