"""Deterministic process-parallel experiment mapping.

:func:`parallel_map` is the harness behind the Monte Carlo trials, the
figure sweeps, and the ``repro bench`` CLI: it fans a list of picklable
work items across worker processes and returns results *in input
order*, so an experiment's output is a pure function of its inputs --
never of scheduling.

Determinism with randomness comes from :func:`spawn_rngs` /
:func:`spawn_seeds`: one root ``numpy.random.SeedSequence`` spawns an
independent child stream per work item, so the *same* per-item streams
are drawn whether the items run serially, across 2 processes, or across
64.  The rule for every parallel experiment in this repo: **chunk count
is part of the experiment configuration, job count is not** -- changing
``jobs`` may change wall-clock time but never a single result bit.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

import numpy as np

from repro.errors import ConfigError

T = TypeVar("T")
R = TypeVar("R")


def default_jobs() -> int:
    """Worker processes to use by default: the schedulable CPU count."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def spawn_seeds(seed: int, n: int) -> List[np.random.SeedSequence]:
    """``n`` independent child seed sequences of one root seed.

    ``SeedSequence.spawn`` guarantees statistical independence between
    children and reproducibility of the whole family from ``seed``
    alone; children are cheap, picklable, and safe to send to workers.
    """
    if n < 0:
        raise ConfigError(f"cannot spawn {n} seed sequences")
    return list(np.random.SeedSequence(seed).spawn(n))


def spawn_rngs(seed: int, n: int) -> List[np.random.Generator]:
    """``n`` independent, reproducible generators from one root seed."""
    return [np.random.default_rng(ss) for ss in spawn_seeds(seed, n)]


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    jobs: Optional[int] = None,
    start_method: Optional[str] = None,
) -> List[R]:
    """Map ``fn`` over ``items`` across processes, preserving order.

    ``jobs=None`` uses :func:`default_jobs`; ``jobs<=1`` (or a single
    item) runs serially in-process, bit-identical to the parallel path
    provided ``fn`` draws randomness only from its item (see
    :func:`spawn_seeds`).  ``fn`` and every item must be picklable
    (module-level functions; no lambdas).
    """
    jobs = default_jobs() if jobs is None else jobs
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    from repro.parallel.pool import default_start_method
    import multiprocessing

    context = multiprocessing.get_context(
        start_method or default_start_method()
    )
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(items)), mp_context=context
    ) as executor:
        return list(executor.map(fn, items))
