"""Worker-process side of the sharded simulator.

Each worker owns a process-global :class:`~repro.core.device.AmbitDevice`
built over the parent's :class:`~repro.parallel.shm.SharedRowStore`
segment, so the *functional* effect of every bulk operation it executes
(the numpy gathers/scatters of the batch engine) lands directly in the
parent-visible cell arrays.

The dispatch protocol is **resident-plan, zero-copy**:

* **Plans ship once.**  A batch's shard row-lists (and, for traced
  batches, the tracer configuration) are *published* by the parent to
  the plan board of the shared
  :class:`~repro.parallel.accounting.SharedAccountingBlock`; the
  per-batch :class:`ShardJob` carries only the board entry id plus a
  few integers.  Workers fetch an entry the first time they see its id
  and memoise the decoded rows (:data:`_RESIDENT`), so a warm batch
  costs one dict lookup -- and the worker's persistent
  :class:`~repro.engine.plan.PlanCache` keeps the compiled
  microprograms hot across batches on top of that.
* **Results travel through shared memory.**  A worker writes its
  counters (rows, fused/fallback split, busy-ns, RSS, heartbeat) into
  its shard's fixed-layout telemetry slot and returns only its shard
  index; the parent reconstructs :class:`ShardResult` views from the
  block and pickles nothing.
* **Trace spools are zero-copy too.**  A traced job serialises its
  JSON-lines events into the slot's spool region when they fit
  (falling back to a spool file on overflow, flagged in the slot), so
  the common traced batch never touches the filesystem.

The split of responsibilities is strict:

* **Workers compute cells.**  A worker runs its shard's rows through its
  own :class:`~repro.engine.batch.BatchEngine`, which applies exactly
  the same fused-vs-per-row decision logic as the single-process path
  (hazard groups take the sequential walk), so cell contents are
  bit-exact by construction.
* **The parent computes accounting.**  Worker-side statistics, traces,
  and plan caches are private scratch state (reset per job); the parent
  re-derives the exact command trace, timing, and energy from its own
  plan cache (see :meth:`repro.engine.batch.BatchEngine.account_group`).

Traced jobs are the one exception to "engine runs the shard": when a
tracer config rides along, the worker attaches a real tracer and
executes its rows *one at a time* through the per-row command walk --
the only path that emits genuine per-primitive events -- spooling them
for the parent to merge in canonical serial order
(:mod:`repro.obs.remote`).  Cells stay bit-exact (the per-row walk is
always correct); only wall-clock changes.

Workers are handed *disjoint banks*, so no two processes ever write the
same (bank, subarray) slice; B-group scratch rows are per-subarray and
therefore also disjoint, and telemetry slots are per-shard within one
batch at a time.
"""

from __future__ import annotations

import io
import os
import pickle
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.dram.geometry import DramGeometry
from repro.dram.timing import TimingParameters

#: One row of a shard job: (bank, subarray, dk, di, dj, dl).
RowSpec = Tuple[int, int, int, int, Optional[int], Optional[int]]

#: One row of a *compiled* shard job: (bank, subarray, dk, src
#: addresses in ``CompiledOp.inputs`` order, temp addresses in slot
#: order).  The nested tuples make the spec self-describing for any
#: arity/scratch count, so the worker needs no per-op schema.
CompiledRowSpec = Tuple[int, int, int, Tuple[int, ...], Tuple[int, ...]]

#: Sentinel ``ShardJob.op`` marking a compiled-operation job.  Regular
#: jobs resolve ``op`` by ``BulkOp(value)`` lookup; compiled ops are
#: synthesized objects with no enum entry, so they ride the plan board
#: (``op_resident``) or pickle inline (``op_inline``) instead.
COMPILED_OP = "__compiled__"


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs to rebuild the device (picklable)."""

    shm_name: str
    geometry: DramGeometry
    timing: TimingParameters
    split_decoder: bool = True
    #: Name of the device's :class:`SharedAccountingBlock` segment.
    block_name: Optional[str] = None


@dataclass(frozen=True)
class ShardJob:
    """One worker's slice of a batched bulk operation.

    The resident-plan protocol keeps this O(1): after the parent has
    published a batch shape once, a job is ``(op, entry id, shard,
    batch id, clock)`` -- no row lists, no plan descriptions, no tracer
    objects.  ``rows``/``tracer``/``spool_dir`` exist only as the
    inline fallback for a full plan board, and the dispatch-budget
    tests assert they stay ``None`` in the steady state.
    """

    #: ``BulkOp.value`` -- the enum member is resolved worker-side so the
    #: job pickles to a handful of primitives.
    op: str
    #: Plan-board entry id of the published shard row-lists.
    resident: Optional[int] = None
    #: Inline fallback when the plan board was full.
    rows: Optional[Tuple[RowSpec, ...]] = None
    #: Parent clock at dispatch; retention stamps written by this shard
    #: use bank-parallel time (all shards start together, as on real
    #: hardware) rather than the serialized global clock.
    start_ns: float = 0.0
    #: Parent-assigned batch identity, threaded through spool file names
    #: and crash context.
    batch_id: int = 0
    #: This job's shard index within the batch (and telemetry slot).
    shard: int = 0
    #: Plan-board entry id of the published ``(TracerConfig,
    #: spool_dir)`` pair; set on traced jobs.
    tracer_resident: Optional[int] = None
    #: Inline fallbacks for a full plan board (traced jobs only).
    tracer: Optional[object] = None
    spool_dir: Optional[str] = None
    #: Plan-board entry id of the published
    #: :class:`~repro.compile.ops.CompiledOp`; set (or ``op_inline``)
    #: when ``op`` is :data:`COMPILED_OP`.
    op_resident: Optional[int] = None
    #: Inline compiled-op fallback for a full plan board.
    op_inline: Optional[object] = None


@dataclass(frozen=True)
class ShardResult:
    """Parent-side view of one shard's telemetry slot.

    Workers no longer return this over the result pipe -- they return a
    bare shard index and the parent rebuilds the view from the shared
    accounting block (zero-copy).  The dataclass survives as the stable
    API the pool's telemetry folding consumes.
    """

    rows: int
    fused_rows: int
    fallback_rows: int
    #: Worker health telemetry.
    pid: int = 0
    #: Wall-clock nanoseconds this job spent executing.
    busy_ns: int = 0
    #: Peak resident set size of the worker process, bytes.
    rss_bytes: int = 0
    #: ``time.time()`` at job completion (the worker's heartbeat).
    heartbeat_ts: float = 0.0
    #: Shard jobs this worker process has served so far (including this).
    batches_served: int = 0
    #: Spool file holding this job's trace events (overflow fallback
    #: only; ``None`` when the spool lives in the shared block).
    spool_path: Optional[str] = None
    #: Bytes of trace spool in the shared block (0 = none).
    spool_len: int = 0


_STORE = None
_DEVICE = None
_BLOCK = None
_BATCHES_SERVED = 0
#: Memoised plan-board entries: id -> decoded payload.  Ids are
#: immutable for a device's lifetime, so this never invalidates.
_RESIDENT: Dict[int, object] = {}


def initialize_worker(config: WorkerConfig) -> None:
    """Pool initializer: attach the store and block, build the device.

    ``initialize_control_rows=False``: C0/C1 were stamped by the parent;
    re-poking them here would race other workers' reads for no reason.
    """
    global _STORE, _DEVICE, _BLOCK
    from repro.core.device import AmbitDevice
    from repro.parallel.accounting import SharedAccountingBlock
    from repro.parallel.shm import SharedRowStore

    _STORE = SharedRowStore.attach(config.shm_name, config.geometry)
    _DEVICE = AmbitDevice(
        geometry=config.geometry,
        timing=config.timing,
        split_decoder=config.split_decoder,
        row_store=_STORE,
        initialize_control_rows=False,
    )
    _BLOCK = (
        SharedAccountingBlock.attach(config.block_name)
        if config.block_name is not None
        else None
    )
    _RESIDENT.clear()


def _rss_bytes() -> int:
    """Peak RSS of this process in bytes (0 where unavailable)."""
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports kilobytes; macOS reports bytes.
        return peak * 1024 if peak < 1 << 40 else peak
    except Exception:  # pragma: no cover - platform fallback
        return 0


def _fetch_resident(entry_id: int):
    """Decode (and memoise) one plan-board entry."""
    cached = _RESIDENT.get(entry_id)
    if cached is None:
        cached = _RESIDENT[entry_id] = pickle.loads(_BLOCK.fetch(entry_id))
    return cached


def _job_rows(job: ShardJob) -> Tuple[RowSpec, ...]:
    """This job's row list: resident entry, or the inline fallback."""
    if job.resident is not None:
        return _fetch_resident(job.resident)[job.shard]
    if job.rows is None:  # pragma: no cover - dispatch contract
        raise RuntimeError("shard job carries neither resident id nor rows")
    return job.rows


def _job_tracer(job: ShardJob):
    """(TracerConfig, spool_dir) of a traced job, or (None, None)."""
    if job.tracer_resident is not None:
        return _fetch_resident(job.tracer_resident)
    return job.tracer, job.spool_dir


def _job_op(job: ShardJob):
    """The CompiledOp of a compiled job: resident entry or inline."""
    if job.op_resident is not None:
        return _fetch_resident(job.op_resident)
    if job.op_inline is None:  # pragma: no cover - dispatch contract
        raise RuntimeError("compiled shard job carries no operation")
    return job.op_inline


def run_shard(job: ShardJob) -> int:
    """Execute one shard job; results land in the accounting block.

    Returns the shard index -- the only payload that crosses the result
    pipe.  Everything else (counters, spool, health telemetry) is
    written into the job's telemetry slot of the shared block.
    """
    from repro.core.microprograms import BulkOp
    from repro.dram.chip import RowLocation

    global _BATCHES_SERVED
    device = _DEVICE
    if device is None:  # pragma: no cover - initializer contract
        raise RuntimeError("worker used before initialize_worker ran")
    started = time.perf_counter_ns()
    # Worker stats/trace are scratch: reset so the persistent process
    # does not accumulate an unbounded trace across jobs.  The plan
    # cache survives the reset, staying warm between jobs.
    device.reset_stats()
    device.chip.clock_ns = job.start_ns

    tracer_config, spool_dir = _job_tracer(job)
    if job.op == COMPILED_OP:
        cop = _job_op(job)
        dst, operands, temps = _decode_compiled(cop, _job_rows(job))
        if tracer_config is not None:
            _run_traced_compiled(
                device, job, cop, dst, operands, temps, tracer_config,
                spool_dir,
            )
            fused = 0
        else:
            report = device.engine.run_compiled(cop, dst, operands, temps)
            fused = report.fused_rows
    else:
        op = BulkOp(job.op)
        dst, src1, src2, src3 = [], [], [], []
        for bank, sub, dk, di, dj, dl in _job_rows(job):
            dst.append(RowLocation(bank, sub, dk))
            src1.append(RowLocation(bank, sub, di))
            if dj is not None:
                src2.append(RowLocation(bank, sub, dj))
            if dl is not None:
                src3.append(RowLocation(bank, sub, dl))

        if tracer_config is not None:
            _run_traced(
                device, job, op, dst, src1, src2, src3, tracer_config,
                spool_dir,
            )
            fused = 0
        else:
            report = device.engine.run_rows(
                op,
                dst,
                src1,
                src2 if src2 else None,
                src3 if src3 else None,
            )
            fused = report.fused_rows

    _BATCHES_SERVED += 1
    _BLOCK.write_telemetry(
        job.shard,
        pid=os.getpid(),
        rows=len(dst),
        fused_rows=fused,
        rss_bytes=_rss_bytes(),
        batches_served=_BATCHES_SERVED,
        busy_ns=time.perf_counter_ns() - started,
        heartbeat_ts=time.time(),
    )
    return job.shard


def _decode_compiled(cop, rows):
    """Split compiled rowspecs into dst / operand / temp row columns."""
    from repro.dram.chip import RowLocation

    dst = []
    operands = [[] for _ in range(cop.arity)]
    temps = [[] for _ in range(cop.num_temps)]
    for bank, sub, dk, srcs, temp_addrs in rows:
        dst.append(RowLocation(bank, sub, dk))
        for column, address in zip(operands, srcs):
            column.append(RowLocation(bank, sub, address))
        for column, address in zip(temps, temp_addrs):
            column.append(RowLocation(bank, sub, address))
    return dst, operands, temps


def _run_traced(
    device, job: ShardJob, op, dst, src1, src2, src3, tracer_config, spool_dir
) -> None:
    """Execute a traced shard per-row, spooling events zero-copy.

    Per-row execution in job order is what makes the parent-side merge
    exact: every row contributes one contiguous event segment ending in
    its ``kind="op"`` event, and rows of one bank retain the serial
    engine's FIFO order (cross-bank order is functionally irrelevant --
    shards own disjoint banks).

    Events serialise into an in-memory buffer first; if they fit the
    block's per-slot spool region they are published there (zero-copy),
    otherwise they spill to the traditional per-(batch, shard) spool
    file, with the slot flagged so the parent knows where to look.
    """
    buffer = io.StringIO()
    tracer = tracer_config.build(buffer)
    device.chip.tracer = tracer
    try:
        for i in range(len(dst)):
            device.bbop_row(
                op,
                dst[i],
                src1[i],
                src2[i] if src2 else None,
                src3[i] if src3 else None,
            )
    finally:
        device.chip.tracer = None
        tracer.close()
    _publish_spool(job, buffer, spool_dir)


def _run_traced_compiled(
    device, job: ShardJob, cop, dst, operands, temps, tracer_config, spool_dir
) -> None:
    """Compiled twin of :func:`_run_traced`: per-row walk, spooled.

    Each row runs through ``bbop_compiled_row`` -- the same per-row
    command walk the serial engine traces -- so every row still
    contributes one contiguous event segment ending in its ``kind="op"``
    event and the parent's canonical-order merge applies unchanged.
    """
    buffer = io.StringIO()
    tracer = tracer_config.build(buffer)
    device.chip.tracer = tracer
    try:
        for i in range(len(dst)):
            device.bbop_compiled_row(
                cop,
                dst[i],
                [column[i] for column in operands],
                [column[i] for column in temps],
            )
    finally:
        device.chip.tracer = None
        tracer.close()
    _publish_spool(job, buffer, spool_dir)


def _publish_spool(job: ShardJob, buffer: io.StringIO, spool_dir) -> None:
    """Land a traced job's events in the block slot, or spill to a file."""
    data = buffer.getvalue().encode("utf-8")
    if not _BLOCK.write_spool(job.shard, data):
        if spool_dir is None:  # pragma: no cover - dispatch contract
            raise RuntimeError(
                "trace spool overflowed the shared block and no spool "
                "directory was provided"
            )
        with open(spool_file_path(spool_dir, job.batch_id, job.shard), "w") as f:
            f.write(buffer.getvalue())


def spool_file_path(spool_dir: str, batch_id: int, shard: int) -> str:
    """The overflow spool file of one (batch, shard) -- both sides agree."""
    return os.path.join(spool_dir, f"batch{batch_id}-shard{shard}.jsonl")


def crash(exit_code: int = 1) -> None:  # pragma: no cover - runs in worker
    """Kill the calling worker without cleanup (crash-recovery tests)."""
    import os

    os._exit(exit_code)


def stall(seconds: float) -> float:  # pragma: no cover - runs in worker
    """Occupy the calling worker for ``seconds`` (stall-fault injection).

    The worker stays alive and eventually returns, so a stalled shard is
    *detected* (results exceed the stall timeout) and then *recovered*
    (the extended wait drains it) rather than treated as a crash.
    """
    import time

    time.sleep(seconds)
    return seconds
