"""Worker-process side of the sharded simulator.

Each worker owns a process-global :class:`~repro.core.device.AmbitDevice`
built over the parent's :class:`~repro.parallel.shm.SharedRowStore`
segment, so the *functional* effect of every bulk operation it executes
(the numpy gathers/scatters of the batch engine) lands directly in the
parent-visible cell arrays -- nothing is pickled but the tiny
:class:`ShardJob` description and the :class:`ShardResult` summary.

The split of responsibilities is strict:

* **Workers compute cells.**  A worker runs its shard's rows through its
  own :class:`~repro.engine.batch.BatchEngine`, which applies exactly
  the same fused-vs-per-row decision logic as the single-process path
  (hazard groups take the sequential walk), so cell contents are
  bit-exact by construction.
* **The parent computes accounting.**  Worker-side statistics, traces,
  and plan caches are private scratch state (reset per job); the parent
  re-derives the exact command trace, timing, and energy from its own
  plan cache (see :meth:`repro.engine.batch.BatchEngine.account_group`).

Traced jobs are the one exception to "engine runs the shard": when a
:class:`~repro.obs.remote.TracerConfig` rides along, the worker attaches
a real tracer and executes its rows *one at a time* through the per-row
command walk -- the only path that emits genuine per-primitive events --
spooling them to a JSON-lines file the parent merges in canonical serial
order (:mod:`repro.obs.remote`).  Cells stay bit-exact (the per-row walk
is always correct); only wall-clock changes.

Workers are handed *disjoint banks*, so no two processes ever write the
same (bank, subarray) slice; B-group scratch rows are per-subarray and
therefore also disjoint.

Every :class:`ShardResult` carries worker health telemetry (pid,
batches served, busy-ns, peak RSS, a heartbeat timestamp) that the
parent's :class:`~repro.parallel.pool.WorkerPool` folds into per-worker
metrics gauges.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.dram.geometry import DramGeometry
from repro.dram.timing import TimingParameters

#: One row of a shard job: (bank, subarray, dk, di, dj, dl).
RowSpec = Tuple[int, int, int, int, Optional[int], Optional[int]]


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs to rebuild the device (picklable)."""

    shm_name: str
    geometry: DramGeometry
    timing: TimingParameters
    split_decoder: bool = True


@dataclass(frozen=True)
class ShardJob:
    """One worker's slice of a batched bulk operation."""

    #: ``BulkOp.value`` -- the enum member is resolved worker-side so the
    #: job pickles to a handful of primitives.
    op: str
    rows: Tuple[RowSpec, ...]
    #: Parent clock at dispatch; retention stamps written by this shard
    #: use bank-parallel time (all shards start together, as on real
    #: hardware) rather than the serialized global clock.
    start_ns: float = 0.0
    #: Parent-assigned batch identity, threaded through spool file names
    #: and crash context.
    batch_id: int = 0
    #: This job's shard index within the batch.
    shard: int = 0
    #: When set (a :class:`~repro.obs.remote.TracerConfig`), execute the
    #: rows per-row under a spooling tracer instead of the batch engine.
    tracer: Optional[object] = None
    #: Directory for the trace spool file (required when tracing).
    spool_dir: Optional[str] = None


@dataclass(frozen=True)
class ShardResult:
    """Summary a worker returns (cells travel via shared memory)."""

    rows: int
    fused_rows: int
    fallback_rows: int
    #: Worker health telemetry.
    pid: int = 0
    #: Wall-clock nanoseconds this job spent executing.
    busy_ns: int = 0
    #: Peak resident set size of the worker process, bytes.
    rss_bytes: int = 0
    #: ``time.time()`` at job completion (the worker's heartbeat).
    heartbeat_ts: float = 0.0
    #: Shard jobs this worker process has served so far (including this).
    batches_served: int = 0
    #: Spool file holding this job's trace events (traced jobs only).
    spool_path: Optional[str] = None


_STORE = None
_DEVICE = None
_BATCHES_SERVED = 0


def initialize_worker(config: WorkerConfig) -> None:
    """Pool initializer: attach the store, build the worker device.

    ``initialize_control_rows=False``: C0/C1 were stamped by the parent;
    re-poking them here would race other workers' reads for no reason.
    """
    global _STORE, _DEVICE
    from repro.core.device import AmbitDevice
    from repro.parallel.shm import SharedRowStore

    _STORE = SharedRowStore.attach(config.shm_name, config.geometry)
    _DEVICE = AmbitDevice(
        geometry=config.geometry,
        timing=config.timing,
        split_decoder=config.split_decoder,
        row_store=_STORE,
        initialize_control_rows=False,
    )


def _rss_bytes() -> int:
    """Peak RSS of this process in bytes (0 where unavailable)."""
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports kilobytes; macOS reports bytes.
        return peak * 1024 if peak < 1 << 40 else peak
    except Exception:  # pragma: no cover - platform fallback
        return 0


def run_shard(job: ShardJob) -> ShardResult:
    """Execute one shard job on the process-global device."""
    from repro.core.microprograms import BulkOp
    from repro.dram.chip import RowLocation

    global _BATCHES_SERVED
    device = _DEVICE
    if device is None:  # pragma: no cover - initializer contract
        raise RuntimeError("worker used before initialize_worker ran")
    started = time.perf_counter_ns()
    # Worker stats/trace are scratch: reset so the persistent process
    # does not accumulate an unbounded trace across jobs.  The plan
    # cache survives the reset, staying warm between jobs.
    device.reset_stats()
    device.chip.clock_ns = job.start_ns

    op = BulkOp(job.op)
    dst, src1, src2, src3 = [], [], [], []
    for bank, sub, dk, di, dj, dl in job.rows:
        dst.append(RowLocation(bank, sub, dk))
        src1.append(RowLocation(bank, sub, di))
        if dj is not None:
            src2.append(RowLocation(bank, sub, dj))
        if dl is not None:
            src3.append(RowLocation(bank, sub, dl))

    spool_path = None
    if job.tracer is not None:
        spool_path = _run_traced(device, job, op, dst, src1, src2, src3)
        fused = 0
    else:
        report = device.engine.run_rows(
            op,
            dst,
            src1,
            src2 if src2 else None,
            src3 if src3 else None,
        )
        fused = report.fused_rows

    _BATCHES_SERVED += 1
    return ShardResult(
        rows=len(dst),
        fused_rows=fused,
        fallback_rows=len(dst) - fused,
        pid=os.getpid(),
        busy_ns=time.perf_counter_ns() - started,
        rss_bytes=_rss_bytes(),
        heartbeat_ts=time.time(),
        batches_served=_BATCHES_SERVED,
        spool_path=spool_path,
    )


def _run_traced(device, job: ShardJob, op, dst, src1, src2, src3) -> str:
    """Execute a traced shard per-row, spooling events; returns the path.

    Per-row execution in job order is what makes the parent-side merge
    exact: every row contributes one contiguous event segment ending in
    its ``kind="op"`` event, and rows of one bank retain the serial
    engine's FIFO order (cross-bank order is functionally irrelevant --
    shards own disjoint banks).
    """
    if job.spool_dir is None:  # pragma: no cover - dispatch contract
        raise RuntimeError("traced shard job without a spool directory")
    spool_path = os.path.join(
        job.spool_dir, f"batch{job.batch_id}-shard{job.shard}.jsonl"
    )
    tracer = job.tracer.build(spool_path)
    device.chip.tracer = tracer
    try:
        for i in range(len(dst)):
            device.bbop_row(
                op,
                dst[i],
                src1[i],
                src2[i] if src2 else None,
                src3[i] if src3 else None,
            )
    finally:
        device.chip.tracer = None
        tracer.close()
    return spool_path


def crash(exit_code: int = 1) -> None:  # pragma: no cover - runs in worker
    """Kill the calling worker without cleanup (crash-recovery tests)."""
    import os

    os._exit(exit_code)


def stall(seconds: float) -> float:  # pragma: no cover - runs in worker
    """Occupy the calling worker for ``seconds`` (stall-fault injection).

    The worker stays alive and eventually returns, so a stalled shard is
    *detected* (results exceed the stall timeout) and then *recovered*
    (the extended wait drains it) rather than treated as a crash.
    """
    import time

    time.sleep(seconds)
    return seconds
