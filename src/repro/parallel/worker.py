"""Worker-process side of the sharded simulator.

Each worker owns a process-global :class:`~repro.core.device.AmbitDevice`
built over the parent's :class:`~repro.parallel.shm.SharedRowStore`
segment, so the *functional* effect of every bulk operation it executes
(the numpy gathers/scatters of the batch engine) lands directly in the
parent-visible cell arrays -- nothing is pickled but the tiny
:class:`ShardJob` description and the :class:`ShardResult` summary.

The split of responsibilities is strict:

* **Workers compute cells.**  A worker runs its shard's rows through its
  own :class:`~repro.engine.batch.BatchEngine`, which applies exactly
  the same fused-vs-per-row decision logic as the single-process path
  (hazard groups take the sequential walk), so cell contents are
  bit-exact by construction.
* **The parent computes accounting.**  Worker-side statistics, traces,
  and plan caches are private scratch state (reset per job); the parent
  re-derives the exact command trace, timing, and energy from its own
  plan cache (see :meth:`repro.engine.batch.BatchEngine.account_group`).

Workers are handed *disjoint banks*, so no two processes ever write the
same (bank, subarray) slice; B-group scratch rows are per-subarray and
therefore also disjoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.dram.geometry import DramGeometry
from repro.dram.timing import TimingParameters

#: One row of a shard job: (bank, subarray, dk, di, dj, dl).
RowSpec = Tuple[int, int, int, int, Optional[int], Optional[int]]


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs to rebuild the device (picklable)."""

    shm_name: str
    geometry: DramGeometry
    timing: TimingParameters
    split_decoder: bool = True


@dataclass(frozen=True)
class ShardJob:
    """One worker's slice of a batched bulk operation."""

    #: ``BulkOp.value`` -- the enum member is resolved worker-side so the
    #: job pickles to a handful of primitives.
    op: str
    rows: Tuple[RowSpec, ...]
    #: Parent clock at dispatch; retention stamps written by this shard
    #: use bank-parallel time (all shards start together, as on real
    #: hardware) rather than the serialized global clock.
    start_ns: float = 0.0


@dataclass(frozen=True)
class ShardResult:
    """Summary a worker returns (cells travel via shared memory)."""

    rows: int
    fused_rows: int
    fallback_rows: int


_STORE = None
_DEVICE = None


def initialize_worker(config: WorkerConfig) -> None:
    """Pool initializer: attach the store, build the worker device.

    ``initialize_control_rows=False``: C0/C1 were stamped by the parent;
    re-poking them here would race other workers' reads for no reason.
    """
    global _STORE, _DEVICE
    from repro.core.device import AmbitDevice
    from repro.parallel.shm import SharedRowStore

    _STORE = SharedRowStore.attach(config.shm_name, config.geometry)
    _DEVICE = AmbitDevice(
        geometry=config.geometry,
        timing=config.timing,
        split_decoder=config.split_decoder,
        row_store=_STORE,
        initialize_control_rows=False,
    )


def run_shard(job: ShardJob) -> ShardResult:
    """Execute one shard job on the process-global device."""
    from repro.core.microprograms import BulkOp
    from repro.dram.chip import RowLocation

    device = _DEVICE
    if device is None:  # pragma: no cover - initializer contract
        raise RuntimeError("worker used before initialize_worker ran")
    # Worker stats/trace are scratch: reset so the persistent process
    # does not accumulate an unbounded trace across jobs.  The plan
    # cache survives the reset, staying warm between jobs.
    device.reset_stats()
    device.chip.clock_ns = job.start_ns

    op = BulkOp(job.op)
    dst, src1, src2, src3 = [], [], [], []
    for bank, sub, dk, di, dj, dl in job.rows:
        dst.append(RowLocation(bank, sub, dk))
        src1.append(RowLocation(bank, sub, di))
        if dj is not None:
            src2.append(RowLocation(bank, sub, dj))
        if dl is not None:
            src3.append(RowLocation(bank, sub, dl))
    report = device.engine.run_rows(
        op,
        dst,
        src1,
        src2 if src2 else None,
        src3 if src3 else None,
    )
    return ShardResult(
        rows=report.rows,
        fused_rows=report.fused_rows,
        fallback_rows=report.fallback_rows,
    )


def crash(exit_code: int = 1) -> None:  # pragma: no cover - runs in worker
    """Kill the calling worker without cleanup (crash-recovery tests)."""
    import os

    os._exit(exit_code)
