"""Auto-tuned dispatch: pick serial / fused / sharded per request.

The three execution tiers of a bulk batch trade fixed overhead against
marginal row cost very differently:

* **serial** -- the per-row command walk.  No planning or group setup,
  but every row pays full Python dispatch; right only for tiny batches.
* **fused** -- the in-process batch engine: one planning pass, then one
  vectorised numpy kernel per (bank, subarray) group.  The default for
  anything that fits one process.
* **sharded** -- fan the fused kernels across worker processes.  Adds a
  fixed dispatch cost (submit + collect through the pool) and a
  per-shard cost, but divides the numpy byte work by the effective
  worker count.  Wins only when the divided byte work exceeds what the
  dispatch overhead eats -- the Buddy-RAM lesson: amortize one-time
  setup over *large* batches.

:class:`AutoTuner` encodes those shapes as an explicit per-tier cost
model (:class:`CostModel`) and picks the cheapest tier per request.
The decision is a pure function of ``(rows, row_bytes, shards, jobs)``
and the model constants, which is what makes it golden-testable: the
decision table in ``tests/parallel/test_tuner.py`` pins every boundary.

Constants come from one of two places: the shipped defaults (measured
on a reference host; conservative toward ``fused``, the always-safe
tier) or :meth:`AutoTuner.calibrate`, which times micro-probes on the
caller's device and rebuilds the model from live measurements.
Correctness never depends on the model -- every tier is bit-exact by
construction -- so a mis-tuned model costs wall-clock only.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Tuple


class DispatchTier(enum.Enum):
    """How one bulk batch is executed."""

    SERIAL = "serial"
    FUSED = "fused"
    SHARDED = "sharded"


#: Tie-break preference: simpler tiers win equal estimates.
_TIER_ORDER = (DispatchTier.SERIAL, DispatchTier.FUSED, DispatchTier.SHARDED)


@dataclass(frozen=True)
class CostModel:
    """Per-tier cost constants, in seconds.

    The estimates deliberately stay three-term simple -- fixed + per-row
    + per-byte -- because the decision only needs the *crossover points*
    right, not absolute times.
    """

    #: Per-row cost of the per-row command walk (Python dispatch heavy).
    serial_row_s: float = 110e-6
    #: Fixed planning/report cost of an engine batch.
    fused_batch_s: float = 60e-6
    #: Per-row planning/accounting cost inside an engine batch.
    fused_row_s: float = 7e-6
    #: Per-byte cost of the fused numpy kernels (both in-process tiers
    #: and the workers' shards run the same kernels).  A row operation
    #: traverses each operand row several times (operand copies into
    #: the B-group, the kernel itself, the result copy-back), so this
    #: is far above a single memcpy pass.
    byte_s: float = 2.0e-9
    #: Fixed dispatch cost of a sharded batch (submit + collect through
    #: the worker pool, resident-plan protocol in effect).
    sharded_batch_s: float = 450e-6
    #: Marginal cost per shard job in a batch.
    sharded_shard_s: float = 120e-6

    def describe(self) -> Dict[str, float]:
        """The constants as a plain dict (for bench payloads / docs)."""
        return {
            "serial_row_s": self.serial_row_s,
            "fused_batch_s": self.fused_batch_s,
            "fused_row_s": self.fused_row_s,
            "byte_s": self.byte_s,
            "sharded_batch_s": self.sharded_batch_s,
            "sharded_shard_s": self.sharded_shard_s,
        }


#: Reference-host defaults.
DEFAULT_COST_MODEL = CostModel()


@dataclass(frozen=True)
class McCostModel:
    """Cost constants of the Monte Carlo fan-out, in seconds.

    The Monte Carlo arm has a different shape from a bulk batch: the
    chunk count is *experiment configuration* (it fixes the RNG
    streams), so the tuner may only pick the worker count, never the
    chunking.  The decision is therefore one-dimensional: is dividing
    the per-trial compute across ``jobs`` processes worth the pool
    spin-up plus per-chunk submit/collect overhead?
    """

    #: Per-trial compute of the vectorised variation deck.
    trial_s: float = 2.4e-7
    #: Per-chunk overhead: child-rng spawn, submit, pickle, collect.
    chunk_s: float = 5e-4
    #: One-time pool creation cost (fork/spawn + imports), paid by
    #: every parallel run because the MC path builds a fresh pool.
    pool_spinup_s: float = 0.35

    def describe(self) -> Dict[str, float]:
        """The constants as a plain dict (for bench payloads / docs)."""
        return {
            "trial_s": self.trial_s,
            "chunk_s": self.chunk_s,
            "pool_spinup_s": self.pool_spinup_s,
        }


#: Reference-host defaults for the Monte Carlo arm.
DEFAULT_MC_COST_MODEL = McCostModel()


@dataclass(frozen=True)
class McDispatchDecision:
    """Worker-count decision for one Monte Carlo run (for surfacing)."""

    trials: int
    chunks: int
    jobs_requested: int
    cores: int
    #: Worker count to actually run with (1 = stay in-process).
    jobs: int
    serial_est_s: float
    parallel_est_s: float
    #: True when fanning out is predicted to beat the in-process run.
    worthwhile: bool
    #: Why the tuner declined to fan out ("" when it did not decline).
    reason: str


def plan_mc_dispatch(
    trials: int,
    chunks: int,
    jobs: int,
    cores: Optional[int] = None,
    model: Optional[McCostModel] = None,
) -> McDispatchDecision:
    """Pick the Monte Carlo worker count from the cost model.

    Chunk count is left untouched -- it is part of the experiment's
    identity (the failure count is a function of ``(chunks, seed)``) --
    so the only free variable is how many processes share the chunks.
    On a single schedulable core, or whenever the predicted parallel
    time (pool spin-up + chunk overhead + divided trial work) exceeds
    the in-process time, the decision is ``jobs=1`` with a stated
    reason; the bench records that reason as an explicit waiver instead
    of publishing a sub-1x "speedup" that is really a dispatch tax.
    """
    model = model if model is not None else DEFAULT_MC_COST_MODEL
    if cores is None:
        from repro.parallel.pmap import default_jobs

        cores = default_jobs()
    effective = max(1, min(jobs, cores, chunks))
    work_s = trials * model.trial_s
    serial_est = work_s
    parallel_est = (
        model.pool_spinup_s + chunks * model.chunk_s + work_s / effective
    )
    worthwhile = effective >= 2 and parallel_est < serial_est
    if worthwhile:
        reason = ""
    elif min(jobs, cores) < 2:
        reason = (
            f"single-core host ({cores} schedulable core(s)); "
            f"fan-out cannot win"
        )
    else:
        reason = (
            f"dispatch-bound: predicted parallel {parallel_est:.3f}s "
            f">= serial {serial_est:.3f}s at {effective} worker(s) "
            f"(pool spin-up + {chunks} chunk submissions dominate "
            f"{trials:,} trials)"
        )
    return McDispatchDecision(
        trials=trials,
        chunks=chunks,
        jobs_requested=jobs,
        cores=cores,
        jobs=effective if worthwhile else 1,
        serial_est_s=serial_est,
        parallel_est_s=parallel_est,
        worthwhile=worthwhile,
        reason=reason,
    )


@dataclass(frozen=True)
class Decision:
    """One auto-dispatch decision with its estimates (for surfacing)."""

    rows: int
    row_bytes: int
    shards: int
    jobs: int
    tier: DispatchTier
    estimates_s: Dict[str, float]


class AutoTuner:
    """Cost-model dispatch tier selection for a sharded device."""

    def __init__(self, model: Optional[CostModel] = None):
        self.model = model if model is not None else DEFAULT_COST_MODEL
        #: Decisions taken, per tier value (mirrors the device's
        #: ``ambit_dispatch_total`` metric, kept here so a bare tuner is
        #: inspectable without a registry).
        self.decisions: Dict[str, int] = {t.value: 0 for t in DispatchTier}
        self.last_decision: Optional[Decision] = None

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def estimate(
        self,
        tier: DispatchTier,
        rows: int,
        row_bytes: int,
        shards: int,
        jobs: int,
    ) -> float:
        """Predicted wall-clock seconds of one batch on one tier."""
        m = self.model
        byte_work = rows * row_bytes * m.byte_s
        if tier is DispatchTier.SERIAL:
            return rows * m.serial_row_s + byte_work
        if tier is DispatchTier.FUSED:
            return m.fused_batch_s + rows * m.fused_row_s + byte_work
        effective = max(1, min(shards, jobs))
        return (
            m.sharded_batch_s
            + effective * m.sharded_shard_s
            + m.fused_batch_s
            + rows * m.fused_row_s
            + byte_work / effective
        )

    def choose(
        self, rows: int, row_bytes: int, shards: int, jobs: int
    ) -> DispatchTier:
        """The cheapest tier for this request shape.

        ``shards`` is the batch's *eligible* shard count (distinct
        banks, capped by workers); pass 1 when sharding is ineligible
        and the sharded tier prices itself out automatically.
        """
        estimates = {
            tier: self.estimate(tier, rows, row_bytes, shards, jobs)
            for tier in _TIER_ORDER
        }
        if shards < 2 or jobs < 2:
            del estimates[DispatchTier.SHARDED]
        tier = min(estimates, key=lambda t: (estimates[t], _TIER_ORDER.index(t)))
        self.decisions[tier.value] += 1
        self.last_decision = Decision(
            rows=rows,
            row_bytes=row_bytes,
            shards=shards,
            jobs=jobs,
            tier=tier,
            estimates_s={t.value: s for t, s in estimates.items()},
        )
        return tier

    def decision_table(
        self, shapes: Iterable[Tuple[int, int, int, int]]
    ) -> List[Dict[str, object]]:
        """Evaluate ``(rows, row_bytes, shards, jobs)`` shapes.

        Pure: rows of the returned table do not count toward
        :attr:`decisions` -- this is the inspection/golden-test surface.
        """
        saved = dict(self.decisions), self.last_decision
        try:
            table = []
            for rows, row_bytes, shards, jobs in shapes:
                tier = self.choose(rows, row_bytes, shards, jobs)
                table.append(
                    {
                        "rows": rows,
                        "row_bytes": row_bytes,
                        "shards": shards,
                        "jobs": jobs,
                        "tier": tier.value,
                    }
                )
            return table
        finally:
            self.decisions, self.last_decision = saved

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------
    def calibrate(self, device, rows: int = 32, repeats: int = 3) -> CostModel:
        """Rebuild the model from micro-probes on a live sharded device.

        Times (best of ``repeats``) a per-row walk, a fused batch, and a
        sharded batch of the same shape on subarray-local scratch rows,
        then solves the model constants from the differences.  The
        device's statistics are reset afterwards; cells of the scratch
        rows are clobbered (use before real data, as ``repro bench``
        does).  Returns (and installs) the new model.
        """
        from repro.core.microprograms import BulkOp
        from repro.dram.chip import RowLocation

        geometry = device.geometry
        banks = geometry.banks
        per_bank = max(1, min(rows // banks, geometry.subarray.data_rows - 2))
        dst, src1, src2 = [], [], []
        for bank in range(banks):
            for i in range(per_bank):
                dst.append(RowLocation(bank, 0, 2 + i))
                src1.append(RowLocation(bank, 0, 0))
                src2.append(RowLocation(bank, 0, 1))
        n = len(dst)
        row_bytes = device.row_bytes

        def best(fn) -> float:
            result = float("inf")
            for _ in range(max(1, repeats)):
                t0 = time.perf_counter()
                fn()
                result = min(result, time.perf_counter() - t0)
            return result

        engine = device.engine
        run = device.run_rows
        # Warm plan caches, the worker pool, and the resident plan so
        # calibration measures the steady state the tuner predicts for.
        engine.run_rows(BulkOp.AND, dst, src1, src2)
        run(BulkOp.AND, dst, src1, src2)
        serial_s = best(
            lambda: engine.run_rows(BulkOp.AND, dst, src1, src2, fuse=False)
        )
        fused_s = best(lambda: engine.run_rows(BulkOp.AND, dst, src1, src2))
        sharded_s = best(lambda: run(BulkOp.AND, dst, src1, src2))
        device.quiesce()
        device.reset_stats()

        shards = max(1, min(getattr(device, "max_workers", 1), banks))
        byte_work = n * row_bytes * self.model.byte_s
        fused_rows_cost = max(fused_s - byte_work, 1e-9)
        dispatch = max(
            sharded_s - (fused_s - byte_work + byte_work / max(1, shards)),
            1e-9,
        )
        self.model = replace(
            self.model,
            serial_row_s=max(serial_s / n, 1e-9),
            fused_row_s=max(
                (fused_rows_cost - self.model.fused_batch_s) / n, 1e-9
            ),
            sharded_batch_s=dispatch / 2,
            sharded_shard_s=dispatch / (2 * max(1, shards)),
        )
        return self.model
