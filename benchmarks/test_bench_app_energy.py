"""Extension: end-to-end memory-system energy of the Figure 10 query.

The paper reports per-op energy (Table 3); this extends it to the whole
bitmap-index workload, showing the 6w-OR + (2w-1)-AND query inherits the
and/or row's ~42x memory-energy reduction at every scale.
"""

import pytest

from repro.energy import bitmap_index_query_energy


def test_bench_app_energy(benchmark, save_table):
    def sweep():
        return {
            (users, weeks): bitmap_index_query_energy(users, weeks)
            for users in (8_000_000, 16_000_000)
            for weeks in (2, 3, 4)
        }

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "Extension: memory-system energy of the Figure 10 query",
        f"{'users':>12} {'weeks':>6} {'DDR uJ':>9} {'Ambit uJ':>9} "
        f"{'reduction':>10}",
    ]
    for (users, weeks), e in table.items():
        lines.append(
            f"{users:>12,} {weeks:>6} {e.ddr_nj / 1e3:>9.1f} "
            f"{e.ambit_nj / 1e3:>9.2f} {e.reduction:>9.1f}X"
        )
    save_table("app_energy", "\n".join(lines))

    for e in table.values():
        # The all-AND/OR query sits at Table 3's and/or reduction.
        assert e.reduction == pytest.approx(41.6, rel=0.10)
    # Energy scales linearly with users at fixed weeks.
    assert table[(16_000_000, 4)].ambit_nj == pytest.approx(
        2 * table[(8_000_000, 4)].ambit_nj, rel=0.01
    )
