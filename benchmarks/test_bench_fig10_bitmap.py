"""Figure 10: bitmap-index query, baseline vs Ambit.

Runs the paper's full parameter sweep -- u in {8M, 16M} users, w in
{2, 3, 4} weeks -- functionally (answers verified), and reports
execution times plus the per-point speedups the paper annotates
(5.4X - 6.6X, average ~6X).
"""

import numpy as np
import pytest

from repro.apps import bitmap_index as bi
from repro.sim import AmbitContext, CpuContext

PAPER_SPEEDUPS = {
    (8_000_000, 2): 5.4,
    (8_000_000, 3): 6.1,
    (8_000_000, 4): 6.3,
    (16_000_000, 2): 5.7,
    (16_000_000, 3): 6.2,
    (16_000_000, 4): 6.6,
}


def _sweep():
    rows = []
    for users in (8_000_000, 16_000_000):
        workload = bi.generate_workload(users, 4, seed=10)
        reference = {w: bi.reference_query(workload, w) for w in (2, 3, 4)}
        for weeks in (2, 3, 4):
            base = bi.run_query(CpuContext(), workload, weeks)
            ambit = bi.run_query(AmbitContext(), workload, weeks)
            ref = reference[weeks]
            assert base.unique_active_every_week == ref.unique_active_every_week
            assert ambit.male_active_per_week == ref.male_active_per_week
            rows.append(
                (users, weeks, base.elapsed_ns, ambit.elapsed_ns)
            )
    return rows


def _format(rows):
    lines = [
        "Figure 10: bitmap-index query execution time",
        f"{'users':>12} {'weeks':>6} {'baseline ms':>12} {'ambit ms':>10} "
        f"{'speedup':>8} {'paper':>7}",
    ]
    for users, weeks, base_ns, ambit_ns in rows:
        lines.append(
            f"{users:>12,} {weeks:>6} {base_ns / 1e6:>12.2f} "
            f"{ambit_ns / 1e6:>10.2f} {base_ns / ambit_ns:>7.1f}X "
            f"{PAPER_SPEEDUPS[(users, weeks)]:>6.1f}X"
        )
    mean = np.mean([b / a for _, _, b, a in rows])
    lines.append(f"mean speedup: {mean:.1f}X   (paper: ~6.0X)")
    return "\n".join(lines)


def test_bench_fig10_bitmap_index(benchmark, save_table):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    save_table("fig10_bitmap_index", _format(rows))

    speedups = {
        (users, weeks): base / ambit for users, weeks, base, ambit in rows
    }
    # Every point in a band around the paper's 5.4X - 6.6X.
    for key, paper in PAPER_SPEEDUPS.items():
        assert paper * 0.6 <= speedups[key] <= paper * 1.6, (key, speedups[key])
    # Speedup grows with the number of weeks (more bitwise work per
    # bitcount), as in the paper.
    for users in (8_000_000, 16_000_000):
        assert speedups[(users, 2)] < speedups[(users, 4)]
    # Execution time grows with both u and w (the O(uw) structure).
    times = {(u, w): a for u, w, _, a in rows}
    assert times[(16_000_000, 4)] > times[(8_000_000, 4)]
    assert times[(8_000_000, 4)] > times[(8_000_000, 2)]
