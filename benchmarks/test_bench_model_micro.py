"""Microbenchmarks of the simulator itself (pytest-benchmark timings).

These measure the *model's* execution speed -- useful for tracking
regressions in the functional DRAM engine, which everything else runs
on.  Each benchmark also sanity-checks its result.
"""

import numpy as np
import pytest

from repro.core.device import AmbitDevice
from repro.core.microprograms import BulkOp
from repro.dram.chip import RowLocation
from repro.dram.geometry import small_test_geometry

GEO = small_test_geometry(rows=32, row_bytes=8192, banks=2, subarrays_per_bank=2)
WORDS = GEO.subarray.words_per_row


@pytest.fixture(scope="module")
def device():
    return AmbitDevice(geometry=GEO)


@pytest.fixture(scope="module")
def operands(device):
    rng = np.random.default_rng(1)
    a = rng.integers(0, 2**63, size=WORDS, dtype=np.uint64)
    b = rng.integers(0, 2**63, size=WORDS, dtype=np.uint64)
    device.write_row(RowLocation(0, 0, 0), a)
    device.write_row(RowLocation(0, 0, 1), b)
    return a, b


def test_bench_model_bulk_and(benchmark, device, operands):
    a, b = operands

    def op():
        device.bbop_row(BulkOp.AND, RowLocation(0, 0, 2), RowLocation(0, 0, 0),
                        RowLocation(0, 0, 1))
        return device.read_row(RowLocation(0, 0, 2))

    result = benchmark(op)
    assert np.array_equal(result, a & b)


def test_bench_model_bulk_xor(benchmark, device, operands):
    a, b = operands

    def op():
        device.bbop_row(BulkOp.XOR, RowLocation(0, 0, 3), RowLocation(0, 0, 0),
                        RowLocation(0, 0, 1))
        return device.read_row(RowLocation(0, 0, 3))

    result = benchmark(op)
    assert np.array_equal(result, a ^ b)


def test_bench_model_bulk_not(benchmark, device, operands):
    a, _ = operands

    def op():
        device.bbop_row(BulkOp.NOT, RowLocation(0, 0, 4), RowLocation(0, 0, 0))
        return device.read_row(RowLocation(0, 0, 4))

    result = benchmark(op)
    assert np.array_equal(result, ~a)


def test_bench_model_rowclone_fpm(benchmark, device, operands):
    a, _ = operands
    from repro.dram.rowclone import rowclone_fpm

    def op():
        rowclone_fpm(device.chip, 0, 0, 0, 5)
        return device.read_row(RowLocation(0, 0, 5))

    result = benchmark(op)
    assert np.array_equal(result, a)


def test_bench_model_montecarlo_10k(benchmark):
    from repro.circuit import tra_failure_rate

    result = benchmark.pedantic(
        tra_failure_rate,
        kwargs={"level": 0.15, "trials": 10_000},
        rounds=3,
        iterations=1,
    )
    assert 0.0 < result.failure_rate < 0.2
