"""Compile benchmark: synthesized microprograms priced against native.

Runs :func:`repro.perf.compilebench.run_compile_bench` and writes
``benchmarks/results/BENCH_compile.json``.  The acceptance bar from the
issue is a 1.15x ceiling on the compiled/native latency ratio for AND
and XOR; the measured reality is stronger -- the compiler emits the
byte-identical command stream, so the ratio is exactly 1.0 -- and both
facts are asserted so either one regressing is loud.  Everything here
is model time (deterministic), so the gate holds on any host.
"""

import json

from repro.perf.compilebench import format_compile_bench, run_compile_bench

from .conftest import RESULTS_DIR

#: The issue's ceiling on compiled/native modelled latency.
MAX_RATIO = 1.15


def test_bench_compile():
    payload = run_compile_bench()

    assert payload["bit_exact"] is True
    for op_name, case in payload["parity"].items():
        assert case["ratio"] <= MAX_RATIO, (
            f"compiled {op_name} costs {case['ratio']:.3f}x the native "
            f"microprogram (ceiling {MAX_RATIO}x)"
        )
        assert case["trace_identical"], (
            f"compiled {op_name} no longer emits the native command "
            f"stream; the 1.0x parity claim is broken"
        )
    assert payload["kernels"]["add_bit_exact"] is True
    assert payload["kernels"]["popcount_bit_exact"] is True

    payload["max_ratio"] = MAX_RATIO
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_compile.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print(f"\n{format_compile_bench(payload)}\n")
