"""Allocator micro-benchmark: the driver must not dominate large runs.

``AmbitDriver`` used to keep its per-stripe free pools as plain lists,
paying ``list.pop(0)`` (O(n)) per allocated row and a linear membership
scan per freed row -- on a paper-sized device (1006 D-rows x 64
subarrays) allocate/free churn of row-sized handles was quadratic and
showed up ahead of the functional DRAM model itself.  The pools are now
a ``deque`` + mirror ``set``; this benchmark pins the O(1) behaviour
(and double-free detection stays exact, which the test asserts).
"""

import pytest

from repro.core.device import AmbitDevice
from repro.core.driver import AmbitDriver
from repro.dram.geometry import DramGeometry, SubarrayGeometry
from repro.errors import AllocationError

#: Paper-shaped subarrays (1024 rows) but tiny 64-byte rows: allocator
#: cost is row-count bound, not data bound.
GEO = DramGeometry(
    banks=4,
    subarrays_per_bank=8,
    subarray=SubarrayGeometry(rows=1024, row_bytes=64),
)


@pytest.fixture(scope="module")
def driver():
    return AmbitDriver(AmbitDevice(geometry=GEO))


def test_bench_allocator_churn(benchmark, driver):
    """Allocate-then-free 1024 single-row vectors, round-robin striped."""
    row_bits = driver.device.row_bits

    def churn():
        handles = [driver.allocate(row_bits) for _ in range(1024)]
        for handle in handles:
            driver.free(handle)
        return handles

    handles = benchmark(churn)
    total = GEO.banks * GEO.subarrays_per_bank * (
        GEO.subarray.data_rows - 2  # minus per-subarray scratch rows
    )
    assert driver.free_rows() == total
    assert all(not h.rows for h in handles)


def test_bench_allocator_colocated_churn(benchmark, driver):
    """Co-located pair allocation (the bbop fast path's contract)."""
    nbits = driver.device.row_bits * 8

    def churn():
        pairs = []
        for _ in range(64):
            a = driver.allocate(nbits)
            b = driver.allocate(nbits, like=a)
            pairs.append((a, b))
        for a, b in pairs:
            driver.free(a)
            driver.free(b)

    benchmark(churn)


def test_bench_allocator_double_free_detection(benchmark, driver):
    """Double-free detection is O(1) per row and still exact."""
    row_bits = driver.device.row_bits

    def alloc_free_check():
        handle = driver.allocate(row_bits)
        rows = list(handle.rows)
        driver.free(handle)
        return rows

    rows = benchmark(alloc_free_check)
    stale = type(
        "H", (), {"rows": rows, "num_rows": len(rows), "nbits": row_bits}
    )()
    with pytest.raises(AllocationError):
        driver.free(stale)
